//! # hpcc-workload
//!
//! Traffic generation for the HPCC reproduction, structured as a pluggable
//! pipeline — **size sampler × pair sampler × arrival process × trace
//! source** — rather than a single hardcoded generator:
//!
//! * [`FlowSizeCdf`] — empirical flow-size distributions with interpolated
//!   sampling, including the two public traces the paper uses
//!   ([`websearch`], [`fb_hadoop`], §5.1),
//! * [`LoadGenerator`] — Poisson flow arrivals at a target fraction of the
//!   network's host capacity (the "30% / 50% average link load" of the
//!   evaluation), with a pluggable pair-sampling stage,
//! * [`locality`] — the pair samplers: uniform (the paper's default),
//!   rack-level locality matrices ([`LocalitySpec`]) and Zipf heavy-hitter
//!   skew ([`SkewSpec`]), selected by a plain-data [`PairSpec`],
//! * [`priority`] — the priority-assignment stage ([`PrioritySpec`]): tag
//!   generated flows (uniformly or mice-vs-elephants by size) for the
//!   switch scheduling subsystem, without perturbing a single RNG draw,
//! * [`incast()`] / [`IncastGenerator`] — the N-to-1 bursts used throughout
//!   §5.2–§5.4 (e.g. 60-to-1 of 500 KB in Figure 11),
//! * [`trace`] — flow traces as reproducible artifacts: a dependency-free
//!   CSV/JSONL reader/writer ([`Trace`]), deterministic replay, and export
//!   of any synthetic workload to a trace file ([`Trace::from_flows`]).
//!
//! Every random draw comes from the in-tree deterministic
//! [`SplitMix64`](hpcc_types::rng::SplitMix64) keyed by explicit seeds, so
//! generated workloads are pure functions of their parameters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdf;
pub mod generator;
pub mod incast;
pub mod locality;
pub mod priority;
pub mod trace;

pub use cdf::{fb_hadoop, fixed_size, websearch, FlowSizeCdf};
pub use generator::LoadGenerator;
pub use incast::{incast, IncastGenerator};
pub use locality::{LocalityError, LocalitySpec, PairSampler, PairSpec, SkewSpec};
pub use priority::PrioritySpec;
pub use trace::{Trace, TraceError, TraceRecord, TraceSpec};
