//! `simlint` — the repository's determinism & wire-contract static-analysis
//! pass (see `hpcc_lint` for the analyzers and `docs/ARCHITECTURE.md`
//! "Static analysis" for the rules).
//!
//! ```text
//! simlint [--root DIR] [rust|wire|manifests|all]
//! ```
//!
//! Findings print as `file:line rule message`, one per line, sorted.
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error.

use hpcc_lint::{run, Section};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: simlint [--root DIR] [rust|wire|manifests|all]\n\
         rules: {}",
        hpcc_lint::rule_ids()
            .into_iter()
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut section = Section::All;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                let Some(dir) = args.get(i + 1) else { usage() };
                root = Some(PathBuf::from(dir));
                i += 2;
            }
            "rust" => {
                section = Section::Rust;
                i += 1;
            }
            "wire" => {
                section = Section::Wire;
                i += 1;
            }
            "manifests" => {
                section = Section::Manifests;
                i += 1;
            }
            "all" => {
                section = Section::All;
                i += 1;
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("simlint: unknown argument {other:?}");
                usage()
            }
        }
    }
    // Default root: the workspace root (two levels above this crate when
    // run via `cargo run -p hpcc-lint`, else the current directory).
    let root = root.unwrap_or_else(|| {
        let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        if cwd.join("crates/core/src/wire.rs").is_file() {
            cwd
        } else {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .canonicalize()
                .unwrap_or(cwd)
        }
    });
    match run(&root, section) {
        Ok(findings) if findings.is_empty() => {
            eprintln!("simlint: clean ({})", describe(section));
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!("simlint: {} finding(s)", findings.len());
            ExitCode::from(1)
        }
        Err(e) => {
            eprintln!("simlint: {e}");
            ExitCode::from(2)
        }
    }
}

fn describe(section: Section) -> &'static str {
    match section {
        Section::Rust => "determinism lints",
        Section::Wire => "wire contract",
        Section::Manifests => "manifests + corpus",
        Section::All => "determinism lints, wire contract, manifests + corpus",
    }
}
