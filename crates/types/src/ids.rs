//! Identifier newtypes.
//!
//! All simulator objects are stored in dense vectors and addressed by index.
//! The newtypes prevent accidentally mixing a node index with a flow index.

use std::fmt;

/// Index of a node (host or switch) in the simulator's node table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

/// Index of a port within a node (dense, starting at zero).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PortId(pub u32);

/// Globally unique flow identifier, assigned by the workload generator.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(pub u64);

/// Egress queue priority class.
///
/// The reproduction uses two classes, matching the paper's deployment model:
/// class 0 carries control traffic (ACK/NACK/CNP), class 1 carries data and
/// is the class subject to PFC and ECN.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Priority(pub u8);

impl Priority {
    /// Control traffic class (ACKs, NACKs, CNPs) — served first, never paused.
    pub const CONTROL: Priority = Priority(0);
    /// Data traffic class — subject to ECN marking and PFC.
    pub const DATA: Priority = Priority(1);
    /// Number of priority classes modelled.
    pub const COUNT: usize = 2;

    /// The index of this priority in per-class arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl NodeId {
    /// The index of this node in the simulator's node table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl PortId {
    /// The index of this port within its node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl FlowId {
    /// Raw identifier value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}
impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}
impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}
impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prio{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_constants() {
        assert_eq!(Priority::CONTROL.index(), 0);
        assert_eq!(Priority::DATA.index(), 1);
        assert_eq!(Priority::COUNT, 2);
    }

    #[test]
    fn ids_are_ordered_and_displayable() {
        assert!(NodeId(1) < NodeId(2));
        assert!(FlowId(9) > FlowId(3));
        assert_eq!(format!("{}", NodeId(4)), "n4");
        assert_eq!(format!("{}", PortId(2)), "p2");
        assert_eq!(format!("{}", FlowId(7)), "f7");
        assert_eq!(format!("{}", Priority::DATA), "prio1");
    }
}
