//! Topology partitioning for the parallel packet engine.
//!
//! [`partition`] splits a [`TopologySpec`] into `parts` shards: switches are
//! chunked in id order into host-weighted, nearly-equal groups, and every
//! host is co-located with its first-hop switch (a host has exactly one NIC
//! port, so all of its traffic crosses that switch first — keeping the pair
//! on one shard makes the host↔ToR hop shard-local and leaves only
//! switch↔switch fabric links as potential shard boundaries).
//!
//! The returned [`TopologyPartition`] also carries the *conservative
//! lookahead bound*: the minimum one-way propagation delay over all links
//! whose endpoints landed on different shards. Any event a shard executes at
//! time `t` can influence another shard no earlier than `t + lookahead`, so
//! the parallel engine may process the window `[T, T + lookahead)`
//! barrier-free on every shard (the classic conservative null-message bound).

use crate::spec::{NodeKind, TopologySpec};
use hpcc_types::Duration;

/// A shard assignment over a topology, plus the cross-shard lookahead bound.
#[derive(Clone, Debug)]
pub struct TopologyPartition {
    /// Shard index per node id (`shard_of[node.0 as usize]`).
    pub shard_of: Vec<u32>,
    /// Number of shards actually produced (`1 ..= requested`).
    pub parts: u32,
    /// Minimum one-way delay over links that cross a shard boundary;
    /// `None` when no link crosses (single shard, or disconnected groups).
    pub lookahead: Option<Duration>,
}

impl TopologyPartition {
    /// Shard of a node.
    pub fn shard(&self, node: hpcc_types::NodeId) -> u32 {
        self.shard_of[node.0 as usize]
    }

    /// Number of nodes owned by each shard.
    pub fn shard_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.parts as usize];
        for &s in &self.shard_of {
            sizes[s as usize] += 1;
        }
        sizes
    }
}

/// Partition `topo` into at most `parts` shards (see the module docs).
///
/// The request is clamped to the number of switches (an empty-switch
/// topology collapses to one shard), and a partition whose minimum
/// cross-shard delay is zero is rejected by collapsing to one shard as well:
/// a zero lookahead admits no conservative window, so running it in parallel
/// could not be both safe and deterministic.
pub fn partition(topo: &TopologySpec, parts: u32) -> TopologyPartition {
    let n = topo.node_count();
    let switches = topo.switches();
    let parts = parts.clamp(1, switches.len().max(1) as u32);
    if parts <= 1 {
        return single_shard(n);
    }

    // Weight every switch by 1 + its attached hosts: the chunker balances
    // simulated *node* count per shard, which tracks event load far better
    // than raw switch count on host-heavy tiers (ToRs vs. cores).
    let mut weight = vec![1u64; n];
    let mut first_hop = vec![None::<u32>; n];
    for &h in topo.hosts() {
        let peer = topo.ports(h)[0].peer_node;
        first_hop[h.0 as usize] = Some(peer.0);
        if topo.kind(peer) == NodeKind::Switch {
            weight[peer.0 as usize] += 1;
        }
    }

    // Contiguous chunking of the switch id order into `parts` groups with
    // nearly equal total weight: switch k goes to the shard its weight
    // midpoint falls into. Monotone in k, so shards are contiguous id
    // ranges (good locality for fat-tree/Clos builders, which emit pods in
    // id order).
    let total: u64 = switches.iter().map(|s| weight[s.0 as usize]).sum();
    let mut shard_of = vec![0u32; n];
    let mut acc = 0u64;
    for &s in switches {
        let w = weight[s.0 as usize];
        let mid = 2 * acc + w; // 2 * (acc + w/2), avoiding the halving
        let shard = ((mid * parts as u64) / (2 * total).max(1)).min(parts as u64 - 1);
        shard_of[s.0 as usize] = shard as u32;
        acc += w;
    }

    // Hosts ride with their first-hop switch. A host whose single port
    // peers another host (degenerate two-host topology) pins both to
    // shard 0 — they form an isolated component, so the choice is free.
    for &h in topo.hosts() {
        let peer = first_hop[h.0 as usize].expect("host has a port") as usize;
        shard_of[h.0 as usize] = if topo.kind(hpcc_types::NodeId(peer as u32)) == NodeKind::Switch {
            shard_of[peer]
        } else {
            0
        };
    }

    let lookahead = min_cross_delay(topo, &shard_of);
    if lookahead == Some(Duration::ZERO) {
        // No usable conservative window: run sequentially instead.
        return single_shard(n);
    }
    TopologyPartition {
        shard_of,
        parts,
        lookahead,
    }
}

fn single_shard(n: usize) -> TopologyPartition {
    TopologyPartition {
        shard_of: vec![0; n],
        parts: 1,
        lookahead: None,
    }
}

/// Minimum one-way delay over links crossing a shard boundary.
fn min_cross_delay(topo: &TopologySpec, shard_of: &[u32]) -> Option<Duration> {
    topo.links()
        .iter()
        .filter(|l| shard_of[l.a.0 as usize] != shard_of[l.b.0 as usize])
        .map(|l| l.delay)
        .min()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{fat_tree, star, FatTreeParams};
    use hpcc_types::{Bandwidth, NodeId};

    #[test]
    fn hosts_are_colocated_with_their_first_hop_switch() {
        let topo = fat_tree(FatTreeParams::small());
        let p = partition(&topo, 4);
        assert_eq!(p.parts, 4);
        for &h in topo.hosts() {
            let tor = topo.ports(h)[0].peer_node;
            assert_eq!(
                p.shard(h),
                p.shard(tor),
                "host {h} must share a shard with its ToR {tor}"
            );
        }
    }

    #[test]
    fn shards_are_balanced_within_a_factor_of_two() {
        let topo = fat_tree(FatTreeParams::small());
        let p = partition(&topo, 4);
        let sizes = p.shard_sizes();
        assert_eq!(sizes.len(), 4);
        let (min, max) = (
            *sizes.iter().min().unwrap() as f64,
            *sizes.iter().max().unwrap() as f64,
        );
        assert!(min >= 1.0, "no empty shard on a fat-tree: {sizes:?}");
        assert!(max / min <= 2.0, "balance within 2x: {sizes:?}");
    }

    #[test]
    fn lookahead_is_the_minimum_cross_shard_delay() {
        let topo = fat_tree(FatTreeParams::small());
        let p = partition(&topo, 2);
        let expected = topo
            .links()
            .iter()
            .filter(|l| p.shard(l.a) != p.shard(l.b))
            .map(|l| l.delay)
            .min();
        assert_eq!(p.lookahead, expected);
        assert!(p.lookahead.is_some_and(|d| d > Duration::ZERO));
    }

    #[test]
    fn parts_are_clamped_to_the_switch_count() {
        let topo = star(4, Bandwidth::from_gbps(100), Duration::from_us(1));
        let p = partition(&topo, 8);
        // One switch ⇒ one shard, everything on it, no cross links.
        assert_eq!(p.parts, 1);
        assert!(p.shard_of.iter().all(|&s| s == 0));
        assert_eq!(p.lookahead, None);
    }

    #[test]
    fn zero_delay_cross_links_collapse_to_one_shard() {
        let mut b = crate::TopologyBuilder::new();
        let s0 = b.add_switch();
        let s1 = b.add_switch();
        let h0 = b.add_host();
        let h1 = b.add_host();
        let bw = Bandwidth::from_gbps(100);
        b.link(h0, s0, bw, Duration::from_us(1));
        b.link(h1, s1, bw, Duration::from_us(1));
        b.link(s0, s1, bw, Duration::ZERO);
        let topo = b.build();
        let p = partition(&topo, 2);
        assert_eq!(p.parts, 1, "zero lookahead admits no parallel window");
    }

    #[test]
    fn single_part_request_is_identity() {
        let topo = fat_tree(FatTreeParams::small());
        let p = partition(&topo, 1);
        assert_eq!(p.parts, 1);
        assert_eq!(p.shard_of, vec![0; topo.node_count()]);
        let _ = NodeId(0);
    }
}
