//! Ready-made topologies for the paper's experiments.

use crate::spec::{TopologyBuilder, TopologySpec};
use hpcc_types::{Bandwidth, Duration, NodeId};

/// A single switch with `n_hosts` hosts attached, all at `host_bw`.
///
/// Used for the micro-benchmarks: 2-to-1 congestion (Figure 6), 16-to-1
/// incast (Figures 13/14), fairness (Figure 9g/9h) and elephant/mice
/// latency (Figure 9e/9f).
pub fn star(n_hosts: usize, host_bw: Bandwidth, link_delay: Duration) -> TopologySpec {
    let mut b = TopologyBuilder::new();
    let hosts = b.add_hosts(n_hosts);
    let sw = b.add_switch();
    for h in hosts {
        b.link(h, sw, host_bw, link_delay);
    }
    b.build()
}

/// Two switches joined by one `core_bw` link, with `n_left`/`n_right` hosts
/// on each side at `host_bw`. The classic shared-bottleneck topology.
pub fn dumbbell(
    n_left: usize,
    n_right: usize,
    host_bw: Bandwidth,
    core_bw: Bandwidth,
    link_delay: Duration,
) -> TopologySpec {
    let mut b = TopologyBuilder::new();
    let left = b.add_hosts(n_left);
    let right = b.add_hosts(n_right);
    let s_left = b.add_switch();
    let s_right = b.add_switch();
    for h in left {
        b.link(h, s_left, host_bw, link_delay);
    }
    for h in right {
        b.link(h, s_right, host_bw, link_delay);
    }
    b.link(s_left, s_right, core_bw, link_delay);
    b.build()
}

/// The paper's testbed PoD (§5.1), single-homed simplification: one Agg
/// switch, four ToRs connected to it at 100 Gbps, 32 servers with one
/// 25 Gbps uplink each (8 per ToR).
///
/// The real testbed dual-homes every server to two ToRs; collapsing to a
/// single uplink keeps the ToR→Agg oversubscription (200 G of hosts behind a
/// 100 G uplink) and the base RTT in the same range, which is what the
/// congestion-control comparison depends on.
pub fn testbed_pod(link_delay: Duration) -> TopologySpec {
    let mut b = TopologyBuilder::new();
    let hosts = b.add_hosts(32);
    let tors = b.add_switches(4);
    let agg = b.add_switch();
    for (i, h) in hosts.iter().enumerate() {
        b.link(*h, tors[i / 8], Bandwidth::from_gbps(25), link_delay);
    }
    for t in tors {
        b.link(t, agg, Bandwidth::from_gbps(100), link_delay);
    }
    b.build()
}

/// A two-tier leaf-spine fabric: `n_leaf` ToRs each with `hosts_per_leaf`
/// hosts at `host_bw`, fully meshed to `n_spine` spines at `fabric_bw`.
pub fn leaf_spine(
    n_leaf: usize,
    n_spine: usize,
    hosts_per_leaf: usize,
    host_bw: Bandwidth,
    fabric_bw: Bandwidth,
    link_delay: Duration,
) -> TopologySpec {
    let mut b = TopologyBuilder::new();
    let mut tors = Vec::new();
    for _ in 0..n_leaf {
        let hosts = b.add_hosts(hosts_per_leaf);
        let tor = b.add_switch();
        for h in hosts {
            b.link(h, tor, host_bw, link_delay);
        }
        tors.push(tor);
    }
    let spines = b.add_switches(n_spine);
    for &t in &tors {
        for &s in &spines {
            b.link(t, s, fabric_bw, link_delay);
        }
    }
    b.build()
}

/// Parameters of the three-tier Clos fabric of §5.1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FatTreeParams {
    /// Number of pods (groups of ToR + Agg switches).
    pub pods: usize,
    /// ToR switches per pod.
    pub tors_per_pod: usize,
    /// Agg switches per pod.
    pub aggs_per_pod: usize,
    /// Core switches (each Agg connects to all of them).
    pub cores: usize,
    /// Hosts per ToR.
    pub hosts_per_tor: usize,
    /// Host NIC bandwidth.
    pub host_bw: Bandwidth,
    /// ToR–Agg and Agg–Core link bandwidth.
    pub fabric_bw: Bandwidth,
    /// One-way propagation delay of every link.
    pub link_delay: Duration,
}

impl FatTreeParams {
    /// The paper's simulation fabric (§5.1): 16 Core, 20 Agg, 20 ToR, 320
    /// servers at 100 Gbps, 400 Gbps fabric links, 1 µs per-link delay
    /// (max base RTT ≈ 12 µs). Modeled as 4 pods of 5 ToR + 5 Agg.
    pub fn paper() -> Self {
        FatTreeParams {
            pods: 4,
            tors_per_pod: 5,
            aggs_per_pod: 5,
            cores: 16,
            hosts_per_tor: 16,
            host_bw: Bandwidth::from_gbps(100),
            fabric_bw: Bandwidth::from_gbps(400),
            link_delay: Duration::from_us(1),
        }
    }

    /// A scaled-down fabric with the same structure (2 pods of 2+2, 4 cores,
    /// 4 hosts per ToR = 16 hosts) for laptop-scale figure regeneration.
    pub fn small() -> Self {
        FatTreeParams {
            pods: 2,
            tors_per_pod: 2,
            aggs_per_pod: 2,
            cores: 4,
            hosts_per_tor: 4,
            host_bw: Bandwidth::from_gbps(25),
            fabric_bw: Bandwidth::from_gbps(100),
            link_delay: Duration::from_us(1),
        }
    }

    /// Total number of hosts this fabric will have.
    pub fn total_hosts(&self) -> usize {
        self.pods * self.tors_per_pod * self.hosts_per_tor
    }
}

/// Build the three-tier Clos ("FatTree" in the paper's terminology) fabric.
///
/// Structure: each ToR connects to every Agg in its pod; each Agg connects to
/// every Core. All fabric links share `fabric_bw`.
pub fn fat_tree(p: FatTreeParams) -> TopologySpec {
    let mut b = TopologyBuilder::new();
    let cores = b.add_switches(p.cores);
    for _pod in 0..p.pods {
        let aggs = b.add_switches(p.aggs_per_pod);
        for _t in 0..p.tors_per_pod {
            let tor = b.add_switch();
            let hosts = b.add_hosts(p.hosts_per_tor);
            for h in hosts {
                b.link(h, tor, p.host_bw, p.link_delay);
            }
            for &a in &aggs {
                b.link(tor, a, p.fabric_bw, p.link_delay);
            }
        }
        for &a in &aggs {
            for &c in &cores {
                b.link(a, c, p.fabric_bw, p.link_delay);
            }
        }
    }
    b.build()
}

/// A two-tier Clos with an explicit oversubscription ratio: each leaf's
/// uplink capacity is sized to `hosts_per_leaf * host_bw / oversubscription`,
/// split evenly across the spines. `oversubscription = 1.0` reproduces a
/// non-blocking [`leaf_spine`]; `4.0` gives the 4:1 tapering common in
/// production fabrics, which concentrates congestion on the ToR uplinks —
/// exactly where the fault presets aim their link failures.
pub fn oversubscribed_clos(
    n_leaf: usize,
    n_spine: usize,
    hosts_per_leaf: usize,
    host_bw: Bandwidth,
    oversubscription: f64,
    link_delay: Duration,
) -> TopologySpec {
    assert!(
        oversubscription >= 1.0,
        "oversubscription must be >= 1.0, got {oversubscription}"
    );
    assert!(n_spine > 0, "need at least one spine");
    let uplink_bw = host_bw
        .mul_f64(hosts_per_leaf as f64 / (n_spine as f64 * oversubscription))
        .max(Bandwidth::from_bps(1));
    let mut b = TopologyBuilder::new();
    let mut tors = Vec::new();
    for _ in 0..n_leaf {
        let hosts = b.add_hosts(hosts_per_leaf);
        let tor = b.add_switch();
        for h in hosts {
            b.link(h, tor, host_bw, link_delay);
        }
        tors.push(tor);
    }
    let spines = b.add_switches(n_spine);
    for &t in &tors {
        for &s in &spines {
            b.link(t, s, uplink_bw, link_delay);
        }
    }
    b.build()
}

/// An asymmetric two-tier Clos: identical to [`leaf_spine`] except that every
/// link through the first spine runs at `slow_factor` of `fabric_bw`
/// (`0 < slow_factor <= 1`). ECMP still spreads flows evenly across all
/// spines — routing is capacity-oblivious — so the slow plane is a standing
/// hash imbalance: the static-routing analogue of the partial-upgrade and
/// degraded-linecard asymmetries that production fabrics live with.
pub fn asymmetric_clos(
    n_leaf: usize,
    n_spine: usize,
    hosts_per_leaf: usize,
    host_bw: Bandwidth,
    fabric_bw: Bandwidth,
    slow_factor: f64,
    link_delay: Duration,
) -> TopologySpec {
    assert!(
        slow_factor > 0.0 && slow_factor <= 1.0,
        "slow_factor must be in (0, 1], got {slow_factor}"
    );
    let slow_bw = fabric_bw.mul_f64(slow_factor).max(Bandwidth::from_bps(1));
    let mut b = TopologyBuilder::new();
    let mut tors = Vec::new();
    for _ in 0..n_leaf {
        let hosts = b.add_hosts(hosts_per_leaf);
        let tor = b.add_switch();
        for h in hosts {
            b.link(h, tor, host_bw, link_delay);
        }
        tors.push(tor);
    }
    let spines = b.add_switches(n_spine);
    for &t in &tors {
        for (i, &s) in spines.iter().enumerate() {
            let bw = if i == 0 { slow_bw } else { fabric_bw };
            b.link(t, s, bw, link_delay);
        }
    }
    b.build()
}

/// Pick the `i`-th host of a topology (convenience for workload generators
/// and examples).
pub fn host(topo: &TopologySpec, i: usize) -> NodeId {
    topo.hosts()[i]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_has_expected_shape() {
        let t = star(16, Bandwidth::from_gbps(100), Duration::from_us(1));
        assert_eq!(t.hosts().len(), 16);
        assert_eq!(t.switches().len(), 1);
        assert_eq!(t.links().len(), 16);
        assert_eq!(t.path_hops(t.hosts()[0], t.hosts()[15]), Some(2));
    }

    #[test]
    fn dumbbell_routes_through_core_link() {
        let t = dumbbell(
            3,
            3,
            Bandwidth::from_gbps(25),
            Bandwidth::from_gbps(100),
            Duration::from_us(1),
        );
        assert_eq!(t.hosts().len(), 6);
        assert_eq!(t.switches().len(), 2);
        // Left host to right host crosses 3 links.
        assert_eq!(t.path_hops(t.hosts()[0], t.hosts()[3]), Some(3));
        // Same side: 2 links.
        assert_eq!(t.path_hops(t.hosts()[0], t.hosts()[1]), Some(2));
    }

    #[test]
    fn testbed_pod_matches_paper_shape() {
        let t = testbed_pod(Duration::from_us(1));
        assert_eq!(t.hosts().len(), 32);
        assert_eq!(t.switches().len(), 5);
        // 32 host links + 4 uplinks.
        assert_eq!(t.links().len(), 36);
        // Same rack: 2 hops; cross rack: host->ToR->Agg->ToR->host = 4.
        assert_eq!(t.path_hops(t.hosts()[0], t.hosts()[1]), Some(2));
        assert_eq!(t.path_hops(t.hosts()[0], t.hosts()[31]), Some(4));
        // Base RTT lands in the single-digit microseconds like the testbed
        // (5.4–8.5 us measured in §5.1).
        let rtt = t.suggested_base_rtt(1106);
        assert!(
            rtt >= Duration::from_us(4) && rtt <= Duration::from_us(12),
            "rtt = {rtt}"
        );
    }

    #[test]
    fn paper_fat_tree_matches_scale() {
        let p = FatTreeParams::paper();
        assert_eq!(p.total_hosts(), 320);
        let t = fat_tree(p);
        assert_eq!(t.hosts().len(), 320);
        // 16 core + 20 agg + 20 tor = 56 switches.
        assert_eq!(t.switches().len(), 56);
        // Host links 320 + ToR-Agg 20*5 + Agg-Core 20*16 = 740.
        assert_eq!(t.links().len(), 740);
        // Cross-pod path: host->ToR->Agg->Core->Agg->ToR->host = 6 hops.
        let h0 = t.hosts()[0];
        let h_far = t.hosts()[319];
        assert_eq!(t.path_hops(h0, h_far), Some(6));
        // Max base RTT close to the paper's 12 us.
        let rtt = t.suggested_base_rtt(1106);
        assert!(
            rtt >= Duration::from_us(10) && rtt <= Duration::from_us(15),
            "rtt = {rtt}"
        );
    }

    #[test]
    fn small_fat_tree_is_consistent() {
        let p = FatTreeParams::small();
        let t = fat_tree(p);
        assert_eq!(t.hosts().len(), p.total_hosts());
        assert_eq!(t.switches().len(), 4 + 2 * (2 + 2));
        // ECMP: a ToR has two equal-cost Agg uplinks for cross-pod traffic.
        let h0 = t.hosts()[0];
        let h_far = t.hosts()[p.total_hosts() - 1];
        let tor_of_h0 = t.ports(h0)[0].peer_node;
        assert_eq!(t.next_hops(tor_of_h0, h_far).len(), 2);
    }

    #[test]
    fn oversubscribed_clos_tapers_the_uplinks() {
        // 8 hosts x 25G behind 2 spines at 4:1 -> each uplink 25G.
        let t = oversubscribed_clos(2, 2, 8, Bandwidth::from_gbps(25), 4.0, Duration::from_us(1));
        assert_eq!(t.hosts().len(), 16);
        assert_eq!(t.switches().len(), 4);
        let uplink = t
            .links()
            .iter()
            .find(|l| {
                t.kind(l.a) == crate::NodeKind::Switch && t.kind(l.b) == crate::NodeKind::Switch
            })
            .unwrap();
        assert_eq!(uplink.bandwidth, Bandwidth::from_gbps(25));
        // 1:1 reproduces the non-blocking fabric.
        let flat =
            oversubscribed_clos(2, 2, 8, Bandwidth::from_gbps(25), 1.0, Duration::from_us(1));
        let flat_uplink = flat
            .links()
            .iter()
            .find(|l| flat.kind(l.a) == crate::NodeKind::Switch)
            .unwrap();
        assert_eq!(flat_uplink.bandwidth, Bandwidth::from_gbps(100));
    }

    #[test]
    fn asymmetric_clos_slows_exactly_one_plane() {
        let t = asymmetric_clos(
            3,
            2,
            2,
            Bandwidth::from_gbps(25),
            Bandwidth::from_gbps(100),
            0.25,
            Duration::from_us(1),
        );
        let fabric: Vec<_> = t
            .links()
            .iter()
            .filter(|l| {
                t.kind(l.a) == crate::NodeKind::Switch && t.kind(l.b) == crate::NodeKind::Switch
            })
            .collect();
        assert_eq!(fabric.len(), 6);
        let slow = fabric
            .iter()
            .filter(|l| l.bandwidth == Bandwidth::from_gbps(25))
            .count();
        assert_eq!(slow, 3, "one slow link per leaf");
        // ECMP still offers both spines for cross-rack traffic.
        let h0 = t.hosts()[0];
        let h_far = t.hosts()[5];
        let tor = t.ports(h0)[0].peer_node;
        assert_eq!(t.next_hops(tor, h_far).len(), 2);
    }

    #[test]
    #[should_panic(expected = "oversubscription")]
    fn undersubscription_is_rejected() {
        oversubscribed_clos(2, 2, 4, Bandwidth::from_gbps(25), 0.5, Duration::from_us(1));
    }

    #[test]
    fn leaf_spine_ecmp_width_equals_spine_count() {
        let t = leaf_spine(
            4,
            3,
            2,
            Bandwidth::from_gbps(25),
            Bandwidth::from_gbps(100),
            Duration::from_us(1),
        );
        let h0 = t.hosts()[0];
        let h_other_rack = t.hosts()[7];
        let tor = t.ports(h0)[0].peer_node;
        assert_eq!(t.next_hops(tor, h_other_rack).len(), 3);
        assert_eq!(host(&t, 0), h0);
    }
}
