//! Demonstrate the Appendix A.2 fluid-model convergence lemma.
fn main() {
    print!("{}", hpcc_bench::figures::fluid_convergence());
}
