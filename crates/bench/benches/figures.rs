//! Miniature versions of the figure scenarios, run under Criterion so that
//! `cargo bench` exercises the same code paths the figure binaries use and
//! catches regressions in both runtime and shape (assertions inside).

use criterion::{criterion_group, criterion_main, Criterion};
use hpcc_bench::figures;

fn figure_scenarios(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures/miniature");
    g.sample_size(10);
    g.bench_function("fig06_tx_vs_rx", |b| {
        b.iter(|| {
            let report = figures::fig06(1);
            assert!(report.contains("HPCC-rxRate"));
            report.len()
        })
    });
    g.bench_function("fig13_reaction_modes", |b| {
        b.iter(|| {
            let report = figures::fig13(1);
            assert!(report.contains("per-RTT"));
            report.len()
        })
    });
    g.bench_function("tab_int_overhead", |b| {
        b.iter(|| figures::tab_int_overhead().len())
    });
    g.bench_function("fluid_convergence", |b| {
        b.iter(|| figures::fluid_convergence().len())
    });
    g.finish();
}

criterion_group!(benches, figure_scenarios);
criterion_main!(benches);
