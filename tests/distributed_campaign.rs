//! Multi-process sharded campaign execution: worker subprocesses stream
//! `ScenarioResult`s as JSONL; the merged report must be bit-identical —
//! per-scenario FNV digests *and* canonical report JSON — to a serial run.
//!
//! The subprocess test re-spawns this very test binary
//! (`std::env::current_exe()`) as its workers: `worker_shard_entry` below
//! doubles as the worker entry point when the `HPCC_WORKER_SHARD` /
//! `HPCC_WORKER_OUT` environment variables are set (and is a no-op pass
//! otherwise), exactly the pattern the `campaign` binary's `--shards N`
//! coordinator uses with `--worker-shard i/N`.

use hpcc::core::presets::{fig11_campaign, incast_on_star};
use hpcc::core::wire::merge_shard_streams;
use hpcc::prelude::*;
use std::env;
use std::fs::File;
use std::process::{Command, Stdio};

/// The acceptance campaign: the Figure 11 six-scheme set on the scaled-down
/// Clos fabric. Both the parent and the spawned workers rebuild it from the
/// same constants, mirroring how distributed workers rebuild a campaign
/// from a shared manifest.
fn fig11_set() -> Campaign {
    fig11_campaign(FatTreeParams::small(), 0.3, Duration::from_ms(2), true, 42)
}

/// Worker entry point (and, without the environment variables, a no-op
/// test): executes one round-robin shard of [`fig11_set`] and streams each
/// result as a JSONL line into the file named by `HPCC_WORKER_OUT`.
#[test]
fn worker_shard_entry() {
    let (Ok(spec), Ok(out)) = (env::var("HPCC_WORKER_SHARD"), env::var("HPCC_WORKER_OUT")) else {
        return;
    };
    let plan = ShardPlan::parse(&spec).expect("bad HPCC_WORKER_SHARD");
    let mut file = File::create(&out).expect("cannot create HPCC_WORKER_OUT");
    fig11_set()
        .run_shard_streaming(plan, &mut file)
        .expect("shard execution failed");
}

/// Acceptance test: two real worker *processes* each run half the fig11
/// six-scheme set, their JSONL streams merge back into a report that is
/// bit-identical to `run_serial()`.
#[test]
fn two_worker_processes_reproduce_serial_bit_for_bit() {
    let campaign = fig11_set();
    let shards = 2usize;
    let exe = env::current_exe().expect("cannot locate test binary");
    let dir = env::temp_dir().join(format!("hpcc-dist-campaign-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("cannot create temp dir");

    let mut workers = Vec::new();
    for shard in 0..shards {
        let out = dir.join(format!("shard-{shard}.jsonl"));
        let child = Command::new(&exe)
            // Filter the child's libtest run down to the worker entry.
            .args(["worker_shard_entry", "--exact"])
            .env("HPCC_WORKER_SHARD", format!("{shard}/{shards}"))
            .env("HPCC_WORKER_OUT", &out)
            .stdout(Stdio::null())
            .spawn()
            .expect("cannot spawn worker process");
        workers.push((out, child));
    }

    let mut streams = Vec::new();
    for (out, mut child) in workers {
        let status = child.wait().expect("worker did not exit");
        assert!(status.success(), "worker process failed: {status}");
        streams.push(std::fs::read_to_string(&out).expect("worker wrote no stream"));
    }
    std::fs::remove_dir_all(&dir).ok();

    // Each worker streamed one line per owned scenario.
    assert_eq!(streams[0].lines().count(), 3);
    assert_eq!(streams[1].lines().count(), 3);

    let merged = merge_shard_streams(streams.iter().map(String::as_str), Some(campaign.len()))
        .expect("merge failed");
    let serial = campaign.run_serial();

    // Bit-identical: per-scenario FNV digests and the canonical report JSON.
    assert_eq!(merged.digests(), serial.digests());
    assert_eq!(merged.to_json_string(), serial.to_json_string());
    // Scenario order and summary metrics survived the round trip.
    assert_eq!(merged.results.len(), 6);
    for (m, s) in merged.results.iter().zip(&serial.results) {
        assert_eq!(m.name, s.name);
        assert_eq!(m.scheme, s.scheme);
        assert_eq!(m.slowdown, s.slowdown);
        assert_eq!(m.queue_p99, s.queue_p99);
        assert_eq!(m.pfc, s.pfc);
        assert_eq!(m.completion, s.completion);
        // Wire results carry the summary, not the raw simulator output.
        assert!(m.results.is_none());
        assert!(s.results.is_some());
        // The envelope restored a real worker-side wall measurement.
        assert!(m.wall > std::time::Duration::ZERO);
    }
    // The merged report renders like any locally-run one.
    let table = merged.table();
    assert!(table.contains("HPCC"), "{table}");
    assert!(table.contains("6 scenarios"), "{table}");
}

/// Scenario-diversity guard for the shard partitioner: a mixed
/// HPCC / DCQCN / TIMELY campaign over different topologies and workloads.
fn mixed_campaign() -> Campaign {
    let star = |label: &str, seed: u64| {
        incast_on_star(
            label,
            CcSpec::by_label(label),
            6,
            150_000,
            Bandwidth::from_gbps(25),
            Duration::from_ms(1),
        )
        .with_seed(seed)
    };
    Campaign::from_scenarios(vec![
        star("HPCC", 1),
        star("DCQCN", 2),
        star("TIMELY", 3),
        ScenarioSpec::new(
            "HPCC dumbbell websearch",
            TopologyChoice::Dumbbell {
                left: 4,
                right: 4,
                host_bw: Bandwidth::from_gbps(25),
                core_bw: Bandwidth::from_gbps(50),
                link_delay: Duration::from_us(1),
            },
            CcSpec::by_label("HPCC"),
            Duration::from_ms(1),
        )
        .with_workload(WorkloadSpec::poisson(CdfSpec::WebSearch, 0.2))
        .with_queue_sampling(Duration::from_us(5))
        .with_seed(4),
        ScenarioSpec::new(
            "DCQCN star fb_hadoop",
            TopologyChoice::star(8, Bandwidth::from_gbps(25)),
            CcSpec::by_label("DCQCN"),
            Duration::from_ms(1),
        )
        .with_workload(WorkloadSpec::poisson(CdfSpec::FbHadoop, 0.3))
        .with_queue_sampling(Duration::from_us(5))
        .with_seed(5),
    ])
}

/// Property: for every shard count `k ∈ {1, 2, 3, 7}` (including `k` larger
/// than the campaign, leaving some shards empty), running the `k` shards
/// independently and merging their streams reproduces `run_serial()` bit
/// for bit — digests and canonical JSON.
#[test]
fn shard_and_merge_matches_serial_for_every_shard_count() {
    let campaign = mixed_campaign();
    let serial = campaign.run_serial();
    assert_eq!(serial.results.len(), 5);
    for k in [1usize, 2, 3, 7] {
        let streams: Vec<String> = (0..k)
            .map(|shard| {
                let mut buf = Vec::new();
                campaign
                    .run_shard_streaming(ShardPlan::new(shard, k), &mut buf)
                    .expect("in-memory stream cannot fail");
                String::from_utf8(buf).expect("JSONL is UTF-8")
            })
            .collect();
        let total_lines: usize = streams.iter().map(|s| s.lines().count()).sum();
        assert_eq!(total_lines, campaign.len(), "k={k}");
        let merged = merge_shard_streams(streams.iter().map(String::as_str), Some(campaign.len()))
            .unwrap_or_else(|e| panic!("k={k}: {e}"));
        assert_eq!(merged.digests(), serial.digests(), "k={k}");
        assert_eq!(merged.to_json_string(), serial.to_json_string(), "k={k}");
        assert_eq!(merged.threads, k, "k={k}");
    }
}
