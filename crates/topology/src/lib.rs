//! # hpcc-topology
//!
//! Network topologies used by the HPCC reproduction, plus the ECMP routing
//! tables the simulator forwards with.
//!
//! * [`TopologyBuilder`] / [`TopologySpec`] — generic graph description
//!   (hosts, switches, links) with all-shortest-path ECMP routes computed at
//!   build time,
//! * [`star`] — a single switch with N hosts (incast, fairness and 2-to-1
//!   micro-benchmarks of §5.2/§5.4),
//! * [`dumbbell`] — two switches joined by a bottleneck link,
//! * [`testbed_pod`] — the 32-server / 4-ToR / 1-Agg PoD used for the paper's
//!   testbed experiments (§5.1, single-homed simplification),
//! * [`fat_tree`] — the three-tier Clos used for the paper's large-scale
//!   simulations (§5.1: 16 Core, 20 Agg, 20 ToR, 320 servers), parameterised
//!   so that scaled-down variants preserve the same structure,
//! * [`oversubscribed_clos`] / [`asymmetric_clos`] — tapered and
//!   asymmetric-plane leaf-spine variants for fault and imbalance studies,
//! * [`corpus`] — a dependency-free importer for external topology files
//!   (edge list and a GraphML subset) into [`TopologySpec`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builders;
pub mod corpus;
pub mod partition;
pub mod routing;
pub mod spec;

pub use builders::{
    asymmetric_clos, dumbbell, fat_tree, leaf_spine, oversubscribed_clos, star, testbed_pod,
    FatTreeParams,
};
pub use corpus::{CorpusError, CorpusTopology};
pub use partition::{partition, TopologyPartition};
pub use spec::{LinkSpec, NodeKind, PortDesc, TopologyBuilder, TopologySpec};
