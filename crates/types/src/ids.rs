//! Identifier newtypes.
//!
//! All simulator objects are stored in dense vectors and addressed by index.
//! The newtypes prevent accidentally mixing a node index with a flow index.

use std::fmt;

/// Index of a node (host or switch) in the simulator's node table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

/// Index of a port within a node (dense, starting at zero).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PortId(pub u32);

/// Globally unique flow identifier, assigned by the workload generator.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(pub u64);

/// Egress queue priority class.
///
/// Class 0 carries control traffic (ACK/NACK/CNP/PFC) and is served at
/// strict priority, never paused and never ECN-marked — the paper's
/// deployment invariant. Classes `1..=MAX_DATA_CLASSES` are *data* classes:
/// data class `c` travels in `Priority(1 + c)` and is subject to ECN and
/// PFC. The default configuration uses a single data class (class 0, i.e.
/// [`Priority::DATA`]), reproducing the paper's two-class deployment; the
/// scheduling subsystem opens the remaining classes for SP/DWRR/PIAS
/// multi-queue studies.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Priority(pub u8);

impl Priority {
    /// Control traffic class (ACKs, NACKs, CNPs) — served first, never paused.
    pub const CONTROL: Priority = Priority(0);
    /// The first (highest-priority) data class — the only data class in the
    /// paper's deployment, subject to ECN marking and PFC.
    pub const DATA: Priority = Priority(1);
    /// Maximum number of data classes a switch egress can schedule.
    pub const MAX_DATA_CLASSES: usize = 4;
    /// Number of priority classes modelled (control + data classes).
    pub const COUNT: usize = 1 + Self::MAX_DATA_CLASSES;

    /// The priority carrying data class `class` (0-based, highest first).
    ///
    /// # Panics
    /// Panics if `class >= MAX_DATA_CLASSES`.
    #[inline]
    pub fn data_class(class: u8) -> Priority {
        assert!(
            (class as usize) < Self::MAX_DATA_CLASSES,
            "data class {class} out of range"
        );
        Priority(1 + class)
    }

    /// The index of this priority in per-class arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// True for data classes (everything except [`Priority::CONTROL`]).
    #[inline]
    pub fn is_data(self) -> bool {
        self.0 != 0
    }

    /// The 0-based data-class number of a data priority (`None` for
    /// control).
    #[inline]
    pub fn class(self) -> Option<u8> {
        if self.is_data() {
            Some(self.0 - 1)
        } else {
            None
        }
    }
}

impl NodeId {
    /// The index of this node in the simulator's node table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl PortId {
    /// The index of this port within its node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl FlowId {
    /// Raw identifier value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}
impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}
impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}
impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prio{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_constants() {
        assert_eq!(Priority::CONTROL.index(), 0);
        assert_eq!(Priority::DATA.index(), 1);
        assert_eq!(Priority::COUNT, 1 + Priority::MAX_DATA_CLASSES);
        assert_eq!(Priority::data_class(0), Priority::DATA);
        assert_eq!(Priority::data_class(3), Priority(4));
        assert!(!Priority::CONTROL.is_data());
        assert!(Priority::DATA.is_data());
        assert_eq!(Priority::CONTROL.class(), None);
        assert_eq!(Priority::DATA.class(), Some(0));
        assert_eq!(Priority::data_class(2).class(), Some(2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn data_class_out_of_range_panics() {
        Priority::data_class(Priority::MAX_DATA_CLASSES as u8);
    }

    #[test]
    fn ids_are_ordered_and_displayable() {
        assert!(NodeId(1) < NodeId(2));
        assert!(FlowId(9) > FlowId(3));
        assert_eq!(format!("{}", NodeId(4)), "n4");
        assert_eq!(format!("{}", PortId(2)), "p2");
        assert_eq!(format!("{}", FlowId(7)), "f7");
        assert_eq!(format!("{}", Priority::DATA), "prio1");
    }
}
