//! Determinism lints over Rust source.
//!
//! Every digest in this repository is a fold over simulation state, and a
//! fold is only reproducible if the iteration order feeding it is. These
//! rules machine-check the conventions the golden tests rely on:
//!
//! * [`HASH_ITER`] — iteration over `HashMap`/`HashSet` (`.iter()`,
//!   `.keys()`, `.values()`, `.drain()`, `for … in &map`) inside the
//!   deterministic crates (`sim`, `stats`, `core`, `topology`) is flagged
//!   unless the site sorts the collected keys before folding (the
//!   `digest_output` pattern in `crates/core/src/campaign.rs`) or carries a
//!   justified `// simlint: sorted-fold — <why>` annotation.
//! * [`WALL_CLOCK`] — `Instant::now` / `SystemTime` are banned outside the
//!   campaign/validate timing modules and the bench crate: wall time must
//!   never leak into results (the wire envelope is the only sanctioned
//!   carrier).
//! * [`WIRE_FMT`] — debug (`{:?}`) and precision (`{:.N}`) formatting in
//!   the wire encoder and JSON module: canonical floats use
//!   shortest-round-trip `{}` formatting; anything else silently breaks
//!   byte-identity. Error-construction lines are exempt.
//! * [`FORBID_UNSAFE`] / [`CRATE_DOCS`] — every library crate root must
//!   carry `#![forbid(unsafe_code)]` and crate-level docs.
//!
//! The scanner is lexical (see [`crate::scanner`]); the `HashMap` analysis
//! resolves receiver identifiers in two tiers — identifiers declared
//! hash-typed in the same file, plus `pub` hash-typed struct fields
//! registered across the whole workspace (so `out.ports.values()` is
//! caught in a file that never names the type) — with local non-hash
//! declarations shadowing the global registry.

use crate::scanner::{ident_before, is_ident_char, scan, Line};
use crate::Finding;
use std::collections::BTreeSet;

/// Rule id: hasher-ordered iteration feeding a fold.
pub const HASH_ITER: &str = "hash-iter";
/// Rule id: wall-clock read outside the timing modules.
pub const WALL_CLOCK: &str = "wall-clock";
/// Rule id: non-canonical formatting in wire-adjacent code.
pub const WIRE_FMT: &str = "wire-fmt";
/// Rule id: missing `#![forbid(unsafe_code)]` in a crate root.
pub const FORBID_UNSAFE: &str = "forbid-unsafe";
/// Rule id: missing crate-level (`//!`) docs in a crate root.
pub const CRATE_DOCS: &str = "crate-docs";
/// Rule id: malformed `// simlint:` annotation.
pub const ANNOTATION: &str = "annotation";

/// Crates whose source the [`HASH_ITER`] rule covers: everything a golden
/// digest or wire byte can observe.
const HASH_ITER_SCOPE: [&str; 4] = [
    "crates/sim/src/",
    "crates/stats/src/",
    "crates/core/src/",
    "crates/topology/src/",
];

/// Files allowed to read the wall clock: the campaign runner and the
/// cross-validation harness measure wall time *outside* canonical results,
/// and `timing.rs` is the sanctioned clock the fabric's liveness timers
/// (heartbeats, lease timeouts) go through.
const WALL_CLOCK_EXEMPT: [&str; 3] = [
    "crates/core/src/campaign.rs",
    "crates/core/src/timing.rs",
    "crates/core/src/validate.rs",
];

/// Files the [`WIRE_FMT`] rule covers: the wire encoder and the JSON
/// module it rides on.
const WIRE_FMT_SCOPE: [&str; 2] = ["crates/core/src/wire.rs", "crates/core/src/json.rs"];

/// Hash-iteration method suffixes (checked against the blanked code line).
const ITER_METHODS: [&str; 7] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".drain(",
];

/// True when `path` (repo-relative, `/`-separated) is in the hash-iter
/// scope.
pub fn hash_iter_applies(path: &str) -> bool {
    HASH_ITER_SCOPE.iter().any(|p| path.starts_with(p))
}

/// True when `path` is in the wall-clock scope (library code outside the
/// timing modules and the bench crate).
pub fn wall_clock_applies(path: &str) -> bool {
    if path.starts_with("crates/bench/") || WALL_CLOCK_EXEMPT.contains(&path) {
        return false;
    }
    (path.starts_with("crates/") && path.contains("/src/")) || path == "src/lib.rs"
}

/// True when `path` is in the wire-format scope.
pub fn wire_fmt_applies(path: &str) -> bool {
    WIRE_FMT_SCOPE.contains(&path)
}

/// True when `path` is a crate root (`lib.rs`) subject to the
/// [`FORBID_UNSAFE`] / [`CRATE_DOCS`] rules.
pub fn crate_root_applies(path: &str) -> bool {
    path == "src/lib.rs" || (path.starts_with("crates/") && path.ends_with("/src/lib.rs"))
}

/// A parsed `// simlint:` annotation.
#[derive(Debug, Clone, PartialEq)]
pub struct Annotation {
    /// The rule the annotation silences (`sorted-fold` ⇒ [`HASH_ITER`]).
    pub rule: String,
    /// The justification text after the directive.
    pub justification: String,
}

/// Parse the annotation grammar out of a comment:
/// `simlint: sorted-fold — <why>` or `simlint: allow(<rule>) — <why>`.
pub fn parse_annotation(comment: &str) -> Option<Annotation> {
    let rest = comment.trim().strip_prefix("simlint:")?.trim_start();
    let (rule, after) = if let Some(after) = rest.strip_prefix("sorted-fold") {
        (HASH_ITER.to_string(), after)
    } else if let Some(after) = rest.strip_prefix("allow(") {
        let close = after.find(')')?;
        (after[..close].trim().to_string(), &after[close + 1..])
    } else {
        return None;
    };
    let justification = after
        .trim_start_matches([' ', '\t', '—', '-', ':', ','])
        .trim()
        .to_string();
    Some(Annotation {
        rule,
        justification,
    })
}

/// Collect `pub`(-ish) struct fields declared with an outermost
/// `HashMap`/`HashSet` type across many files — the cross-file registry
/// that lets `out.ports.values()` be resolved far from `SimOutput`.
pub fn collect_pub_hash_fields(sources: &[(String, String)]) -> BTreeSet<String> {
    let mut fields = BTreeSet::new();
    for (path, text) in sources {
        if !hash_iter_applies(path) {
            continue;
        }
        for line in scan(text) {
            if line.in_test {
                continue;
            }
            let code = &line.code;
            if !code.trim_start().starts_with("pub") {
                continue;
            }
            for (name, hash) in declared_names(code) {
                if hash {
                    fields.insert(name);
                }
            }
        }
    }
    fields
}

/// `(name, is_hash_typed)` for every `name: Type` / `name = HashMap::…`
/// declaration-shaped pattern on a code line.
fn declared_names(code: &str) -> Vec<(String, bool)> {
    let mut out = Vec::new();
    // Type-annotation declarations: `name: [&mut] [std::collections::]Type`.
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b':' {
            continue;
        }
        // Skip `::` path separators on either side.
        if bytes.get(i + 1) == Some(&b':') || (i > 0 && bytes[i - 1] == b':') {
            continue;
        }
        let Some(name) = ident_before(code, i) else {
            continue;
        };
        if matches!(
            name,
            "pub" | "crate" | "mut" | "ref" | "in" | "if" | "else" | "match" | "return"
        ) {
            continue;
        }
        let mut rest = code[i + 1..].trim_start();
        for prefix in ["&mut ", "&", "mut ", "std::collections::"] {
            rest = rest.strip_prefix(prefix).unwrap_or(rest).trim_start();
        }
        let hash = rest.starts_with("HashMap<") || rest.starts_with("HashSet<");
        let is_type = hash
            || rest.chars().next().is_some_and(|c| {
                c.is_ascii_uppercase() || matches!(c, '[' | '(' | '&' | 'u' | 'i' | 'f' | 'b' | 'd')
            });
        if is_type {
            out.push((name.to_string(), hash));
        }
    }
    // Initializer declarations: `let [mut] name = [std::collections::]HashMap::…`.
    let mut search = 0usize;
    while let Some(pos) = code[search..].find("let ") {
        let at = search + pos + 4;
        search = at;
        let rest = code[at..].trim_start();
        let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
        let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
        if name.is_empty() {
            continue;
        }
        let after = &rest[name.len()..];
        // Only the untyped `= HashMap::new()` shape; typed `let` bindings are
        // handled by the annotation branch above.
        if let Some(init) = after.trim_start().strip_prefix('=') {
            let init = init.trim_start();
            let init = init.strip_prefix("std::collections::").unwrap_or(init);
            let hash = init.starts_with("HashMap::") || init.starts_with("HashSet::");
            out.push((name, hash));
        } else if !after.trim_start().starts_with(':') {
            out.push((name, false));
        }
    }
    out
}

/// Lint one Rust source file. `pub_hash_fields` is the output of
/// [`collect_pub_hash_fields`] over the whole tree (pass an empty set to
/// lint a file in isolation).
pub fn lint_rust_source(
    path: &str,
    source: &str,
    pub_hash_fields: &BTreeSet<String>,
) -> Vec<Finding> {
    let lines = scan(source);
    let mut findings = Vec::new();

    // Malformed annotations are findings wherever they appear.
    for line in &lines {
        if line.comment.trim().starts_with("simlint:") {
            match parse_annotation(&line.comment) {
                Some(a) if a.justification.is_empty() => findings.push(Finding::new(
                    path,
                    line.number,
                    ANNOTATION,
                    "annotation carries no justification; write `// simlint: \
                     sorted-fold — <why this fold is order-free>`",
                )),
                Some(_) => {}
                None => findings.push(Finding::new(
                    path,
                    line.number,
                    ANNOTATION,
                    "unrecognized simlint directive; the grammar is `simlint: \
                     sorted-fold — <why>` or `simlint: allow(<rule>) — <why>`",
                )),
            }
        }
    }

    if crate_root_applies(path) {
        if !lines
            .iter()
            .any(|l| l.code.contains("#![forbid(unsafe_code)]"))
        {
            findings.push(Finding::new(
                path,
                1,
                FORBID_UNSAFE,
                "library crate root must carry #![forbid(unsafe_code)]",
            ));
        }
        if !source.lines().any(|l| l.trim_start().starts_with("//!")) {
            findings.push(Finding::new(
                path,
                1,
                CRATE_DOCS,
                "library crate root must carry crate-level `//!` docs",
            ));
        }
    }

    if wall_clock_applies(path) {
        for line in lines.iter().filter(|l| !l.in_test) {
            if line.code.contains("Instant::now") || line.code.contains("SystemTime") {
                if annotated(&lines, line.number, WALL_CLOCK) {
                    continue;
                }
                findings.push(Finding::new(
                    path,
                    line.number,
                    WALL_CLOCK,
                    "wall-clock read in deterministic code; timing belongs in \
                     crates/core/src/campaign.rs, timing.rs, validate.rs or \
                     crates/bench",
                ));
            }
        }
    }

    if wire_fmt_applies(path) {
        for line in lines.iter().filter(|l| !l.in_test) {
            let lit = &line.literals;
            let debug_fmt = lit.contains(":?}") || lit.contains(":#?}");
            let precision_fmt = lit.match_indices(":.").any(|(i, _)| {
                lit[i + 2..]
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_digit() || c == '*')
            });
            if !(debug_fmt || precision_fmt || lit.contains(":e}")) {
                continue;
            }
            if error_context(&lines, line.number) || annotated(&lines, line.number, WIRE_FMT) {
                continue;
            }
            findings.push(Finding::new(
                path,
                line.number,
                WIRE_FMT,
                "debug/precision formatting next to the wire encoder; canonical \
                 floats must use shortest-round-trip `{}` formatting",
            ));
        }
    }

    if hash_iter_applies(path) {
        findings.extend(lint_hash_iteration(path, &lines, pub_hash_fields));
    }

    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// True when the flagged line (or the up-to-3 preceding lines of its
/// statement) is constructing an error/panic — exempt from [`WIRE_FMT`].
fn error_context(lines: &[Line], number: usize) -> bool {
    const TOKENS: [&str; 7] = [
        "err(",
        "Err(",
        "JsonError",
        "panic!",
        "assert",
        "unreachable!",
        "expect(",
    ];
    let idx = number - 1;
    let from = idx.saturating_sub(3);
    lines[from..=idx]
        .iter()
        .any(|l| TOKENS.iter().any(|t| l.code.contains(t)))
}

/// True when line `number` or the line directly above carries a justified
/// annotation for `rule`.
fn annotated(lines: &[Line], number: usize, rule: &str) -> bool {
    let idx = number - 1;
    let mut candidates = vec![&lines[idx]];
    if idx > 0 {
        candidates.push(&lines[idx - 1]);
    }
    candidates.iter().any(|l| {
        parse_annotation(&l.comment).is_some_and(|a| a.rule == rule && !a.justification.is_empty())
    })
}

fn lint_hash_iteration(
    path: &str,
    lines: &[Line],
    pub_hash_fields: &BTreeSet<String>,
) -> Vec<Finding> {
    // Tier 1: names declared locally, with their hash-ness.
    let mut local_hash: BTreeSet<String> = BTreeSet::new();
    let mut local_any: BTreeSet<String> = BTreeSet::new();
    for line in lines.iter().filter(|l| !l.in_test) {
        for (name, hash) in declared_names(&line.code) {
            if hash {
                local_hash.insert(name.clone());
            }
            local_any.insert(name);
        }
    }
    let flaggable = |name: &str| {
        local_hash.contains(name) || (pub_hash_fields.contains(name) && !local_any.contains(name))
    };

    let mut findings = Vec::new();
    for (li, line) in lines.iter().enumerate().filter(|(_, l)| !l.in_test) {
        let mut receivers: Vec<String> = Vec::new();
        // Method-style iteration: `<recv>.keys()` etc. A chain broken across
        // lines (`self.ports\n    .values()`) resolves the receiver from the
        // trailing identifier of the previous non-empty code line.
        for m in ITER_METHODS {
            for (at, _) in line.code.match_indices(m) {
                if let Some(name) = ident_before(&line.code, at) {
                    receivers.push(name.to_string());
                } else if line.code[..at].trim().is_empty() {
                    if let Some(prev) = lines[..li].iter().rev().find(|p| !p.code.trim().is_empty())
                    {
                        let trimmed = prev.code.trim_end();
                        if let Some(name) = ident_before(trimmed, trimmed.len()) {
                            receivers.push(name.to_string());
                        }
                    }
                }
            }
        }
        // Loop-style iteration: `for … in [&[mut]] <recv> {`.
        if let Some(pos) = line.code.find(" in ") {
            if line.code.trim_start().starts_with("for ") || line.code.contains(" for ") {
                let mut expr = line.code[pos + 4..].trim_start();
                expr = expr.strip_prefix("&mut ").unwrap_or(expr);
                expr = expr.strip_prefix('&').unwrap_or(expr);
                let token: &str = expr
                    .split(|c: char| c.is_whitespace() || c == '{')
                    .next()
                    .unwrap_or("");
                if !token.is_empty() && !token.contains('(') && !token.contains('[') {
                    let last = token.rsplit('.').next().unwrap_or(token);
                    if last.chars().all(is_ident_char) && !last.is_empty() {
                        receivers.push(last.to_string());
                    }
                }
            }
        }
        for name in receivers {
            if !flaggable(&name) {
                continue;
            }
            if annotated(lines, line.number, HASH_ITER) {
                continue;
            }
            if sort_feeds_fold(lines, line.number) {
                continue;
            }
            findings.push(Finding::new(
                path,
                line.number,
                HASH_ITER,
                format!(
                    "iteration over HashMap/HashSet `{name}` — order is \
                     hasher-dependent and can leak into digests or the wire; \
                     collect + sort before folding, or annotate `// simlint: \
                     sorted-fold — <why>`"
                ),
            ));
        }
    }
    findings
}

/// The `digest_output` pattern: the iteration is collected into a `let`
/// binding that is sorted within the next few lines —
/// `let mut keys: Vec<_> = map.keys().copied().collect(); keys.sort();`.
fn sort_feeds_fold(lines: &[Line], number: usize) -> bool {
    let idx = number - 1;
    // Walk back to the start of the statement (bounded).
    let mut start = idx;
    while start > 0 && idx - start < 4 {
        let prev = lines[start - 1].code.trim_end();
        if prev.ends_with(';') || prev.ends_with('{') || prev.ends_with('}') || prev.is_empty() {
            break;
        }
        start -= 1;
    }
    // Walk forward to the `;` that ends it (bounded).
    let mut end = idx;
    while end < lines.len() - 1 && end - idx < 4 && !lines[end].code.contains(';') {
        end += 1;
    }
    let statement: String = lines[start..=end]
        .iter()
        .map(|l| l.code.as_str())
        .collect::<Vec<_>>()
        .join(" ");
    if !statement.contains(".collect()") {
        return false;
    }
    let Some(let_at) = statement.find("let ") else {
        return false;
    };
    let rest = statement[let_at + 4..].trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
    if name.is_empty() {
        return false;
    }
    let sort_call = format!("{name}.sort");
    lines[end + 1..lines.len().min(end + 7)]
        .iter()
        .any(|l| l.code.contains(&sort_call))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotation_grammar() {
        let a = parse_annotation("simlint: sorted-fold — commutative u64 sum").unwrap();
        assert_eq!(a.rule, HASH_ITER);
        assert_eq!(a.justification, "commutative u64 sum");
        let b = parse_annotation("simlint: allow(wall-clock) progress logging only").unwrap();
        assert_eq!(b.rule, WALL_CLOCK);
        assert!(!b.justification.is_empty());
        assert!(parse_annotation("simlint: sorted-fold")
            .unwrap()
            .justification
            .is_empty());
        assert!(parse_annotation("not a directive").is_none());
    }

    #[test]
    fn declared_names_resolve_outermost_types() {
        let names = declared_names("    routes: Vec<HashMap<NodeId, Vec<PortId>>>,");
        assert!(names.contains(&("routes".to_string(), false)));
        let names = declared_names("let mut index: HashMap<String, usize> = HashMap::new();");
        assert!(names.contains(&("index".to_string(), true)));
        let names = declared_names("let mut res_index = std::collections::HashMap::new();");
        assert!(names.contains(&("res_index".to_string(), true)));
    }
}
