//! PFC pause accounting and propagation analysis.
//!
//! The paper reports (i) the fraction of time links spend paused
//! (Figures 2b, 11b, 11d), and (ii) how far pause waves propagate and how
//! much sending capacity they suppress (Figure 1, production telemetry that
//! we reproduce from simulated pause events).

use hpcc_types::{Duration, NodeId, SimTime};
use std::collections::HashSet;

/// Summary of PFC activity over one run.
#[derive(Clone, Debug, PartialEq)]
pub struct PfcSummary {
    /// Total pause time summed over all (port, class) pairs.
    pub total_pause: Duration,
    /// Number of ports that were ever paused.
    pub paused_ports: usize,
    /// Number of ports observed in total.
    pub total_ports: usize,
    /// Run duration.
    pub elapsed: Duration,
    /// Number of pause frames emitted.
    pub pause_frames: u64,
}

impl PfcSummary {
    /// Build a summary from per-port pause durations.
    pub fn new(per_port_pause: &[Duration], pause_frames: u64, elapsed: Duration) -> Self {
        PfcSummary {
            total_pause: per_port_pause
                .iter()
                .fold(Duration::ZERO, |acc, d| acc + *d),
            paused_ports: per_port_pause.iter().filter(|d| !d.is_zero()).count(),
            total_ports: per_port_pause.len(),
            elapsed,
            pause_frames,
        }
    }

    /// Fraction (0–1) of total port-time spent paused — the "fraction of
    /// pause time (%)" metric of Figure 11b/11d.
    pub fn pause_time_fraction(&self) -> f64 {
        if self.total_ports == 0 || self.elapsed.is_zero() {
            return 0.0;
        }
        self.total_pause.as_secs_f64() / (self.total_ports as f64 * self.elapsed.as_secs_f64())
    }
}

/// Group pause-frame emissions into bursts (events separated by less than
/// `gap`) and report, for each burst, how many distinct switches emitted
/// pauses — a proxy for the propagation depth of Figure 1a (a pause that
/// cascades upstream shows up at more switches).
pub fn pause_burst_spread(events: &[(SimTime, NodeId)], gap: Duration) -> Vec<usize> {
    if events.is_empty() {
        return Vec::new();
    }
    let mut sorted: Vec<(SimTime, NodeId)> = events.to_vec();
    sorted.sort_by_key(|(t, _)| *t);
    let mut bursts = Vec::new();
    // Determinism audit (simlint hash-iter): `current` is only ever
    // inserted into, counted with `len()`, and cleared — it is never
    // iterated, so hasher state cannot leak into the output.
    let mut current: HashSet<NodeId> = HashSet::new();
    let mut last_time = sorted[0].0;
    for (t, node) in sorted {
        if t.saturating_since(last_time) > gap && !current.is_empty() {
            bursts.push(current.len());
            current.clear();
        }
        current.insert(node);
        last_time = t;
    }
    if !current.is_empty() {
        bursts.push(current.len());
    }
    bursts
}

/// The fraction of host capacity suppressed by pauses: each host-facing port
/// paused for `pause` out of `elapsed` suppresses `pause/elapsed` of one
/// host's bandwidth (Figure 1b's "suppressed bandwidth" proxy).
pub fn suppressed_bandwidth_fraction(host_pause: &[Duration], elapsed: Duration) -> f64 {
    if host_pause.is_empty() || elapsed.is_zero() {
        return 0.0;
    }
    let total: f64 = host_pause.iter().map(|d| d.as_secs_f64()).sum();
    total / (host_pause.len() as f64 * elapsed.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_fraction() {
        let pauses = vec![
            Duration::from_us(100),
            Duration::ZERO,
            Duration::from_us(300),
            Duration::ZERO,
        ];
        let s = PfcSummary::new(&pauses, 7, Duration::from_ms(1));
        assert_eq!(s.total_pause, Duration::from_us(400));
        assert_eq!(s.paused_ports, 2);
        assert_eq!(s.total_ports, 4);
        assert_eq!(s.pause_frames, 7);
        // 400 us paused over 4 ports × 1 ms = 10%.
        assert!((s.pause_time_fraction() - 0.10).abs() < 1e-9);
        let empty = PfcSummary::new(&[], 0, Duration::ZERO);
        assert_eq!(empty.pause_time_fraction(), 0.0);
    }

    #[test]
    fn bursts_group_by_time_and_count_distinct_nodes() {
        let e = |us: u64, n: u32| (SimTime::from_us(us), NodeId(n));
        let events = vec![
            e(10, 1),
            e(12, 2),
            e(13, 1),
            // 500 us of silence → new burst
            e(600, 3),
            e(601, 4),
            e(602, 5),
        ];
        let bursts = pause_burst_spread(&events, Duration::from_us(100));
        assert_eq!(bursts, vec![2, 3]);
        assert!(pause_burst_spread(&[], Duration::from_us(100)).is_empty());
    }

    #[test]
    fn unsorted_events_are_sorted_first() {
        let e = |us: u64, n: u32| (SimTime::from_us(us), NodeId(n));
        let events = vec![e(600, 3), e(10, 1), e(12, 2)];
        let bursts = pause_burst_spread(&events, Duration::from_us(100));
        assert_eq!(bursts, vec![2, 1]);
    }

    #[test]
    fn suppressed_bandwidth() {
        let pauses = vec![
            Duration::from_ms(1),
            Duration::ZERO,
            Duration::ZERO,
            Duration::ZERO,
        ];
        // One of four hosts paused for a quarter of the run: 1/16 suppressed.
        let f = suppressed_bandwidth_fraction(&pauses, Duration::from_ms(4));
        assert!((f - 0.0625).abs() < 1e-9);
        assert_eq!(
            suppressed_bandwidth_fraction(&[], Duration::from_ms(1)),
            0.0
        );
    }
}
