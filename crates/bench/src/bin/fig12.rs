//! Regenerate Figure 12 (flow-control choices x congestion control).
//! Usage: `cargo run --release -p hpcc-bench --bin fig12 [duration_ms] [load]`
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ms = hpcc_bench::arg_or(&args, 1, 15u64);
    let load = hpcc_bench::arg_or(&args, 2, 0.3f64);
    print!("{}", hpcc_bench::figures::fig12(ms, load));
}
