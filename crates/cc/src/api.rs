//! The interface between a congestion-control algorithm and the host NIC.
//!
//! The simulator keeps one boxed [`CongestionControl`] per flow. Events flow
//! from the NIC into the algorithm (`on_ack`, `on_cnp`, `on_loss`,
//! `on_timer`) and the NIC reads back the current sending window (an
//! inflight-byte limit) and pacing rate after every event.
//!
//! The split mirrors §4.2 of the paper: the "CC module" receives ACK events
//! from the RX pipeline and pushes `(window, rate)` updates into the flow
//! scheduler.

use hpcc_types::{Bandwidth, Duration, IntHeader, SimTime};

/// Everything an algorithm may want to know about one acknowledgement.
#[derive(Clone, Copy, Debug)]
pub struct AckEvent<'a> {
    /// Simulated time at which the ACK reached the sender NIC.
    pub now: SimTime,
    /// Cumulative acknowledgement carried by the ACK (next expected byte).
    pub ack_seq: u64,
    /// The sender's next byte to be sent (`snd_nxt`), used by HPCC to stamp
    /// `lastUpdateSeq` when it refreshes the reference window.
    pub snd_nxt: u64,
    /// Bytes newly acknowledged by this ACK (0 for duplicate ACKs).
    pub newly_acked: u64,
    /// The acknowledged data packet carried an ECN CE mark.
    pub ecn_echo: bool,
    /// Round-trip time measured for the acknowledged packet.
    pub rtt: Duration,
    /// INT records echoed by the receiver (empty when INT is disabled).
    pub int: &'a IntHeader,
}

/// The output state every algorithm maintains: a window and a pacing rate.
///
/// Window-based schemes (HPCC, DCTCP, the `+win` wrappers) keep both in sync
/// via `rate = window / base_rtt`; pure rate-based schemes (DCQCN, TIMELY)
/// leave the window at [`FlowRateState::UNLIMITED_WINDOW`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlowRateState {
    /// Maximum bytes that may be in flight (sent but not acknowledged).
    pub window: u64,
    /// Pacing rate enforced by the NIC's per-flow credit scheduler.
    pub rate: Bandwidth,
}

impl FlowRateState {
    /// Sentinel window for schemes that do not limit inflight bytes.
    pub const UNLIMITED_WINDOW: u64 = u64::MAX;

    /// A state that starts at line rate with no inflight limit.
    pub fn line_rate_unlimited(line_rate: Bandwidth) -> Self {
        FlowRateState {
            window: Self::UNLIMITED_WINDOW,
            rate: line_rate,
        }
    }

    /// A window-based state starting at line rate with `window` bytes.
    pub fn windowed(window: u64, line_rate: Bandwidth) -> Self {
        FlowRateState {
            window,
            rate: line_rate,
        }
    }

    /// True if the scheme enforces an inflight-byte limit.
    pub fn is_window_limited(&self) -> bool {
        self.window != Self::UNLIMITED_WINDOW
    }
}

/// A congestion-control algorithm instance bound to a single flow.
pub trait CongestionControl: std::fmt::Debug + Send {
    /// Handle one acknowledgement (possibly carrying echoed INT records).
    fn on_ack(&mut self, ack: &AckEvent<'_>);

    /// Handle a DCQCN congestion-notification packet. Schemes that do not
    /// use CNPs ignore it.
    fn on_cnp(&mut self, _now: SimTime) {}

    /// Handle a loss indication (go-back-N NACK, IRN retransmission request
    /// or retransmission timeout).
    fn on_loss(&mut self, _now: SimTime) {}

    /// The earliest simulated time at which the algorithm wants
    /// [`CongestionControl::on_timer`] to be invoked, if any. The NIC
    /// re-queries this after every event delivered to the algorithm.
    fn next_timer(&self) -> Option<SimTime> {
        None
    }

    /// Invoked when a previously requested timer fires.
    fn on_timer(&mut self, _now: SimTime) {}

    /// Current window / pacing-rate pair.
    fn state(&self) -> FlowRateState;

    /// Human-readable algorithm name (used in reports and traces).
    fn name(&self) -> &'static str;
}

/// Convenience helpers shared by the concrete algorithms.
pub(crate) fn clamp_rate(rate: Bandwidth, min: Bandwidth, max: Bandwidth) -> Bandwidth {
    rate.max(min).min(max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_rate_state_constructors() {
        let line = Bandwidth::from_gbps(100);
        let s = FlowRateState::line_rate_unlimited(line);
        assert!(!s.is_window_limited());
        assert_eq!(s.rate, line);
        let w = FlowRateState::windowed(150_000, line);
        assert!(w.is_window_limited());
        assert_eq!(w.window, 150_000);
    }

    #[test]
    fn clamp_rate_respects_bounds() {
        let min = Bandwidth::from_mbps(100);
        let max = Bandwidth::from_gbps(100);
        assert_eq!(clamp_rate(Bandwidth::from_mbps(10), min, max), min);
        assert_eq!(clamp_rate(Bandwidth::from_gbps(400), min, max), max);
        let mid = Bandwidth::from_gbps(40);
        assert_eq!(clamp_rate(mid, min, max), mid);
    }
}
