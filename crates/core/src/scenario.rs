//! The declarative scenario API.
//!
//! A [`ScenarioSpec`] is a plain-data description of one simulation — which
//! network ([`TopologyChoice`]), which congestion control ([`CcSpec`]), which
//! traffic ([`WorkloadSpec`]), for how long, under which seed, with which
//! measurement options ([`MeasurementSpec`]). Because it is data, a scenario
//! can be cloned, swept over, serialized to JSON (campaign manifests), queued
//! into a [`crate::campaign::Campaign`] and executed on any thread — the
//! paper's whole evaluation grid (six schemes × topologies × workloads ×
//! parameter sweeps) becomes a list of values.
//!
//! [`ScenarioSpec::build`] resolves the description into a concrete
//! [`Experiment`] through [`ExperimentBuilder`]: the topology is
//! instantiated, the CC label is resolved against the line rate and the
//! topology's suggested base RTT, and every workload draws from its own
//! deterministic seed stream derived from the scenario seed — so the same
//! spec always yields the bit-identical experiment, no matter where or when
//! it is built.

use crate::experiment::{Experiment, ExperimentBuilder, ExperimentResults, MTU_WIRE_SIZE};
use crate::json::{obj, JsonError, JsonValue};
use crate::presets::scheme_by_label;
use hpcc_cc::{CcAlgorithm, DcqcnConfig, DctcpConfig, HpccConfig, HpccReactionMode, TimelyConfig};
use hpcc_sim::{
    BackendKind, DegradedLink, EcnConfig, FaultConfig, FlowControlMode, LinkDownMode, LinkFault,
    StragglerHost,
};
use hpcc_topology::{
    dumbbell, fat_tree, leaf_spine, star, testbed_pod, FatTreeParams, TopologySpec,
};
use hpcc_types::rng::derive_seed;
use hpcc_types::{Bandwidth, Duration, FlowId, FlowSpec, SimTime};
use hpcc_workload::trace::{TraceRecord, TraceSpec};
use hpcc_workload::{
    fb_hadoop, fixed_size, websearch, FlowSizeCdf, IncastGenerator, LoadGenerator, LocalitySpec,
    PairSpec, PrioritySpec, SkewSpec,
};
use std::fmt;

/// Error produced when a [`ScenarioSpec`] cannot be resolved into an
/// [`Experiment`] — an invalid locality matrix, an unreadable or malformed
/// trace file, a trace record referencing hosts the topology lacks.
///
/// The message names the failing workload (by position) and, for trace
/// problems, carries the file's 1-based line number (see
/// [`hpcc_workload::TraceError`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BuildError(pub String);

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario build error: {}", self.0)
    }
}

impl std::error::Error for BuildError {}

/// Which network a scenario runs on, as plain data.
#[derive(Clone, Debug, PartialEq)]
pub enum TopologyChoice {
    /// A single switch with `hosts` hosts.
    Star {
        /// Number of hosts.
        hosts: usize,
        /// Host NIC bandwidth.
        host_bw: Bandwidth,
        /// One-way propagation delay of every link.
        link_delay: Duration,
    },
    /// Two switches joined by one bottleneck link.
    Dumbbell {
        /// Hosts on the left switch.
        left: usize,
        /// Hosts on the right switch.
        right: usize,
        /// Host NIC bandwidth.
        host_bw: Bandwidth,
        /// Bandwidth of the switch-to-switch bottleneck.
        core_bw: Bandwidth,
        /// One-way propagation delay of every link.
        link_delay: Duration,
    },
    /// The paper's 32-server / 4-ToR / 1-Agg testbed PoD (§5.1), 25 Gbps
    /// NICs.
    TestbedPod {
        /// One-way propagation delay of every link.
        link_delay: Duration,
    },
    /// A two-tier leaf-spine fabric.
    LeafSpine {
        /// Number of leaf (ToR) switches.
        leaves: usize,
        /// Number of spine switches.
        spines: usize,
        /// Hosts per leaf.
        hosts_per_leaf: usize,
        /// Host NIC bandwidth.
        host_bw: Bandwidth,
        /// Leaf-spine link bandwidth.
        fabric_bw: Bandwidth,
        /// One-way propagation delay of every link.
        link_delay: Duration,
    },
    /// The three-tier Clos fabric of §5.1 ("FatTree" in the paper).
    FatTree(FatTreeParams),
    /// A topology imported from a corpus file (edge-list or GraphML subset,
    /// see [`hpcc_topology::corpus`]). `host_bw` declares the NIC rate used
    /// for ideal-FCT computation — corpus files may be heterogeneous, so the
    /// spec author states the reference rate explicitly.
    Corpus {
        /// Path to the corpus file, relative to the process working
        /// directory (campaign manifests conventionally use repo-relative
        /// paths like `corpus/rocketfuel_pop.edges`).
        path: String,
        /// Reference host NIC bandwidth for slowdown computation.
        host_bw: Bandwidth,
    },
}

impl TopologyChoice {
    /// A star with the conventional 1 µs link delay.
    pub fn star(hosts: usize, host_bw: Bandwidth) -> Self {
        TopologyChoice::Star {
            hosts,
            host_bw,
            link_delay: Duration::from_us(1),
        }
    }

    /// The testbed PoD with the conventional 1 µs link delay.
    pub fn testbed_pod() -> Self {
        TopologyChoice::TestbedPod {
            link_delay: Duration::from_us(1),
        }
    }

    /// Instantiate the topology.
    ///
    /// # Panics
    /// Panics when a [`TopologyChoice::Corpus`] file cannot be read or
    /// parsed — use [`TopologyChoice::try_build`] for the typed-error form.
    pub fn build(&self) -> TopologySpec {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible counterpart of [`TopologyChoice::build`]: corpus-file I/O and
    /// parse problems come back as typed [`BuildError`]s naming the file.
    pub fn try_build(&self) -> Result<TopologySpec, BuildError> {
        Ok(match self {
            TopologyChoice::Star {
                hosts,
                host_bw,
                link_delay,
            } => star(*hosts, *host_bw, *link_delay),
            TopologyChoice::Dumbbell {
                left,
                right,
                host_bw,
                core_bw,
                link_delay,
            } => dumbbell(*left, *right, *host_bw, *core_bw, *link_delay),
            TopologyChoice::TestbedPod { link_delay } => testbed_pod(*link_delay),
            TopologyChoice::LeafSpine {
                leaves,
                spines,
                hosts_per_leaf,
                host_bw,
                fabric_bw,
                link_delay,
            } => leaf_spine(
                *leaves,
                *spines,
                *hosts_per_leaf,
                *host_bw,
                *fabric_bw,
                *link_delay,
            ),
            TopologyChoice::FatTree(params) => fat_tree(*params),
            TopologyChoice::Corpus { path, .. } => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| BuildError(format!("corpus topology {path:?}: {e}")))?;
                hpcc_topology::corpus::parse(&text)
                    .map_err(|e| BuildError(format!("corpus topology {path:?}: {e}")))?
                    .build()
            }
        })
    }

    /// Host NIC bandwidth of this topology.
    pub fn host_bw(&self) -> Bandwidth {
        match self {
            TopologyChoice::Star { host_bw, .. }
            | TopologyChoice::Dumbbell { host_bw, .. }
            | TopologyChoice::LeafSpine { host_bw, .. }
            | TopologyChoice::Corpus { host_bw, .. } => *host_bw,
            TopologyChoice::TestbedPod { .. } => Bandwidth::from_gbps(25),
            TopologyChoice::FatTree(params) => params.host_bw,
        }
    }
}

/// Which engine answers a scenario, as plain data.
///
/// The JSON form is the optional `"backend"` key: a label string (`"packet"`
/// | `"fluid"`) or the object form `{"parallel_packet": {"threads": N}}` for
/// the multi-core engine (see [`crate::wire::backend_to_json`]). An omitted
/// key is canonical for [`BackendSpec::Packet`] and keeps every pre-existing
/// manifest bit-identical. Fluid is a steady-state model: scenarios
/// combining it with features it cannot answer (fault injection,
/// multi-class/PIAS queueing) are rejected with a typed [`BuildError`] at
/// `try_build` time, as is a parallel backend with zero threads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BackendSpec {
    /// The packet-level event-wheel engine (the default, and the reference).
    #[default]
    Packet,
    /// The Appendix A.2 fluid-model fast path.
    Fluid,
    /// The parallel partitioned packet engine: `threads` shard threads over
    /// a conservative-lookahead partition, bit-identical to
    /// [`Packet`](BackendSpec::Packet).
    ParallelPacket {
        /// Worker threads (must be ≥ 1; the partitioner clamps to the
        /// switch count, and 1 collapses to the sequential engine).
        threads: u32,
    },
}

impl BackendSpec {
    /// The wire label ("packet" / "fluid" / "parallel_packet").
    pub fn label(self) -> &'static str {
        self.kind().label()
    }

    /// The engine-layer kind this spec resolves to.
    pub fn kind(self) -> BackendKind {
        match self {
            BackendSpec::Packet => BackendKind::Packet,
            BackendSpec::Fluid => BackendKind::Fluid,
            BackendSpec::ParallelPacket { threads } => BackendKind::ParallelPacket { threads },
        }
    }

    /// Parse a wire label. The parallel engine has no bare-label form — it
    /// needs its thread count — so `"parallel_packet"` here points at the
    /// object form instead of decoding.
    pub fn from_label(label: &str) -> Result<Self, JsonError> {
        match label {
            "packet" => Ok(BackendSpec::Packet),
            "fluid" => Ok(BackendSpec::Fluid),
            "parallel_packet" => Err(JsonError(
                "backend \"parallel_packet\" needs a thread count; write \
                 {\"parallel_packet\": {\"threads\": N}}"
                    .into(),
            )),
            other => Err(JsonError(format!("unknown backend {other:?}"))),
        }
    }
}

/// Which congestion control the hosts run, as plain data.
///
/// `Label` names one of the paper's six schemes and is resolved against the
/// scenario's line rate and base RTT at build time; the other variants carry
/// the explicit parameters the paper's sweeps vary.
#[derive(Clone, Debug, PartialEq)]
pub enum CcSpec {
    /// A scheme from [`crate::presets::SCHEME_SET_FIG11`] with paper-default
    /// parameters.
    Label(String),
    /// HPCC with explicit parameters (the §3.4/§5.4 ablations and the W_AI
    /// sweep).
    Hpcc(HpccConfig),
    /// DCQCN with explicit rate-timer settings (the Figure 2 sweep).
    DcqcnTimers {
        /// Rate-increase timer `Ti`.
        ti: Duration,
        /// Rate-decrease minimum interval `Td`.
        td: Duration,
    },
    /// TIMELY with explicit gradient-band parameters (sweeps over the
    /// `Tlow`/`Thigh` thresholds, the multiplicative-decrease factor and the
    /// HAI threshold); the remaining fields keep the recommended defaults
    /// for the line rate and base RTT.
    Timely {
        /// Add the paper's window bound (the "TIMELY+win" variant).
        window: bool,
        /// Gradient band lower RTT threshold `Tlow`.
        t_low: Duration,
        /// Gradient band upper RTT threshold `Thigh`.
        t_high: Duration,
        /// Multiplicative decrease factor `beta`.
        beta: f64,
        /// Completion events of negative gradient before hyper-active
        /// increase.
        hai_threshold: u32,
    },
    /// DCTCP with an explicit ECN-fraction EWMA gain `g` (the convergence
    /// sweep); everything else keeps the defaults.
    Dctcp {
        /// EWMA gain of the marked-fraction estimator.
        g: f64,
    },
}

impl CcSpec {
    /// Scheme by Figure-11 label ("HPCC", "DCQCN", "DCQCN+win", "TIMELY",
    /// "TIMELY+win", "DCTCP").
    pub fn by_label(label: impl Into<String>) -> Self {
        CcSpec::Label(label.into())
    }

    /// The display label this spec resolves to.
    pub fn scheme_label(&self) -> String {
        match self {
            CcSpec::Label(l) => l.clone(),
            CcSpec::Hpcc(cfg) => CcAlgorithm::Hpcc(*cfg).label().to_string(),
            CcSpec::DcqcnTimers { .. } => "DCQCN".to_string(),
            CcSpec::Timely { window: true, .. } => "TIMELY+win".to_string(),
            CcSpec::Timely { window: false, .. } => "TIMELY".to_string(),
            CcSpec::Dctcp { .. } => "DCTCP".to_string(),
        }
    }

    /// Resolve into a concrete algorithm for the given line rate and base
    /// RTT.
    pub fn resolve(&self, line_rate: Bandwidth, base_rtt: Duration) -> CcAlgorithm {
        match self {
            CcSpec::Label(label) => scheme_by_label(label, line_rate, base_rtt),
            CcSpec::Hpcc(cfg) => CcAlgorithm::Hpcc(*cfg),
            CcSpec::DcqcnTimers { ti, td } => {
                CcAlgorithm::Dcqcn(DcqcnConfig::vendor_default(line_rate).with_timers(*ti, *td))
            }
            CcSpec::Timely {
                window,
                t_low,
                t_high,
                beta,
                hai_threshold,
            } => {
                let cfg = TimelyConfig {
                    t_low: *t_low,
                    t_high: *t_high,
                    beta: *beta,
                    hai_threshold: *hai_threshold,
                    ..TimelyConfig::recommended(line_rate, base_rtt)
                };
                if *window {
                    CcAlgorithm::TimelyWin(cfg)
                } else {
                    CcAlgorithm::Timely(cfg)
                }
            }
            CcSpec::Dctcp { g } => CcAlgorithm::Dctcp(DctcpConfig {
                g: *g,
                ..DctcpConfig::default()
            }),
        }
    }
}

impl From<&str> for CcSpec {
    fn from(label: &str) -> Self {
        CcSpec::by_label(label)
    }
}

impl From<HpccConfig> for CcSpec {
    fn from(cfg: HpccConfig) -> Self {
        CcSpec::Hpcc(cfg)
    }
}

/// A flow-size distribution, as plain data.
#[derive(Clone, Debug, PartialEq)]
pub enum CdfSpec {
    /// The DCTCP WebSearch trace (§5.1).
    WebSearch,
    /// The FB_Hadoop trace (§5.1).
    FbHadoop,
    /// Every flow has the same size.
    Fixed(u64),
    /// Explicit `(size, cumulative probability)` knee points.
    Custom(Vec<(u64, f64)>),
}

impl CdfSpec {
    /// Instantiate the sampler.
    ///
    /// # Panics
    /// Panics when a [`CdfSpec::Custom`] point list is invalid; scenario
    /// resolution goes through [`CdfSpec::try_build`] instead, so manifest
    /// input cannot reach the panic.
    pub fn build(&self) -> FlowSizeCdf {
        match self {
            CdfSpec::WebSearch => websearch(),
            CdfSpec::FbHadoop => fb_hadoop(),
            CdfSpec::Fixed(size) => fixed_size(*size),
            CdfSpec::Custom(points) => FlowSizeCdf::new("Custom", points.clone()),
        }
    }

    /// Fallible form of [`CdfSpec::build`]: a malformed
    /// [`CdfSpec::Custom`] point list (empty, non-monotone, not ending at
    /// probability 1) is a typed error instead of a panic, so untrusted
    /// manifests cannot abort a worker.
    pub fn try_build(&self) -> Result<FlowSizeCdf, String> {
        if let CdfSpec::Custom(points) = self {
            if points.is_empty() {
                return Err("custom CDF needs at least one point".into());
            }
            for (i, w) in points.windows(2).enumerate() {
                // NaN probabilities fail the check too (is_nan, not just >).
                if w[0].0 > w[1].0 || w[0].1.is_nan() || w[1].1.is_nan() || w[0].1 > w[1].1 {
                    return Err(format!(
                        "custom CDF points {i} and {} are not non-decreasing",
                        i + 1
                    ));
                }
            }
            let last = points.last().unwrap().1;
            if last.is_nan() || (last - 1.0).abs() >= 1e-9 {
                return Err(format!(
                    "custom CDF must end at probability 1.0, ends at {last}"
                ));
            }
        }
        Ok(self.build())
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            CdfSpec::WebSearch => "WebSearch",
            CdfSpec::FbHadoop => "FB_Hadoop",
            CdfSpec::Fixed(_) => "Fixed",
            CdfSpec::Custom(_) => "Custom",
        }
    }
}

/// One explicitly placed flow, endpoints given as host *indices* into the
/// topology's host list (so the declaration stays valid before the topology
/// is instantiated).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlowDecl {
    /// Flow identifier.
    pub id: u64,
    /// Index of the sending host.
    pub src_host: usize,
    /// Index of the receiving host.
    pub dst_host: usize,
    /// Flow size in bytes.
    pub size: u64,
    /// Start time, relative to the scenario start.
    pub start: Duration,
}

impl FlowDecl {
    /// Declare one flow.
    pub fn new(id: u64, src_host: usize, dst_host: usize, size: u64, start: Duration) -> Self {
        FlowDecl {
            id,
            src_host,
            dst_host,
            size,
            start,
        }
    }
}

/// Traffic injected into a scenario, as plain data. A scenario carries a
/// list of workloads whose flows are merged; each workload draws from its
/// own seed stream derived from the scenario seed.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkloadSpec {
    /// Poisson flow arrivals between sampled host pairs at a target fraction
    /// of aggregate host capacity. Pairs are uniform by default
    /// ([`PairSpec::Uniform`]); rack-level locality and Zipf heavy-hitter
    /// skew plug in through `pairs`.
    Poisson {
        /// Flow-size distribution.
        cdf: CdfSpec,
        /// Target average load in `(0, 1]`.
        load: f64,
        /// First flow id assigned.
        first_flow_id: u64,
        /// How src/dst host pairs are drawn.
        pairs: PairSpec,
        /// How generated flows are priority-tagged (default: all normal).
        /// Assignment is a pure size function after generation, so it never
        /// perturbs the flow list itself.
        prio: PrioritySpec,
    },
    /// Repeating N-to-1 bursts at a target fraction of network capacity
    /// (§5.3's "incast traffic load is 2% of the network capacity").
    Incast {
        /// Senders per burst.
        fan_in: usize,
        /// Bytes per sender per burst.
        flow_size: u64,
        /// Fraction of aggregate host capacity consumed by incast traffic.
        capacity_fraction: f64,
        /// First flow id assigned.
        first_flow_id: u64,
    },
    /// Explicitly placed flows (micro-benchmarks).
    Explicit(Vec<FlowDecl>),
    /// Deterministic replay of a flow trace (a file on disk or records
    /// inlined in the manifest); see [`hpcc_workload::trace`]. Record `k`
    /// becomes flow `first_flow_id + k`.
    Trace {
        /// Where the records come from.
        trace: TraceSpec,
        /// First flow id assigned.
        first_flow_id: u64,
    },
}

impl WorkloadSpec {
    /// Poisson background load with uniform pairs and the conventional id
    /// range (from 0).
    pub fn poisson(cdf: CdfSpec, load: f64) -> Self {
        WorkloadSpec::Poisson {
            cdf,
            load,
            first_flow_id: 0,
            pairs: PairSpec::Uniform,
            prio: PrioritySpec::default(),
        }
    }

    /// Poisson background load with an explicit pair-sampling stage
    /// (locality matrix or heavy-hitter skew).
    pub fn poisson_with_pairs(cdf: CdfSpec, load: f64, pairs: PairSpec) -> Self {
        WorkloadSpec::Poisson {
            cdf,
            load,
            first_flow_id: 0,
            pairs,
            prio: PrioritySpec::default(),
        }
    }

    /// Poisson background load with a priority-assignment stage (e.g.
    /// mice-vs-elephants tagging for multi-queue studies).
    pub fn poisson_with_prio(cdf: CdfSpec, load: f64, prio: PrioritySpec) -> Self {
        WorkloadSpec::Poisson {
            cdf,
            load,
            first_flow_id: 0,
            pairs: PairSpec::Uniform,
            prio,
        }
    }

    /// Repeating incast bursts with the conventional id range (from 10M, so
    /// ids never collide with background flows).
    pub fn incast(fan_in: usize, flow_size: u64, capacity_fraction: f64) -> Self {
        WorkloadSpec::Incast {
            fan_in,
            flow_size,
            capacity_fraction,
            first_flow_id: 10_000_000,
        }
    }

    /// Replay a trace file (CSV or JSONL; see [`hpcc_workload::trace`] for
    /// the formats) with the conventional id range (from 0).
    pub fn trace_file(path: impl Into<String>) -> Self {
        WorkloadSpec::Trace {
            trace: TraceSpec::Path(path.into()),
            first_flow_id: 0,
        }
    }

    /// Replay records carried inline in the spec/manifest itself, with the
    /// conventional id range (from 0).
    pub fn trace_inline(records: Vec<TraceRecord>) -> Self {
        WorkloadSpec::Trace {
            trace: TraceSpec::Inline(records),
            first_flow_id: 0,
        }
    }

    /// Generate this workload's flows for a concrete host list.
    fn generate(
        &self,
        topo: &TopologySpec,
        host_bw: Bandwidth,
        duration: Duration,
        seed: u64,
    ) -> Result<Vec<FlowSpec>, BuildError> {
        let hosts = topo.hosts();
        match self {
            WorkloadSpec::Poisson {
                cdf,
                load,
                first_flow_id,
                pairs,
                prio,
            } => {
                // Validate manifest-supplied parameters here so untrusted
                // input surfaces as a typed error, never as a generator
                // assert aborting the process.
                if !(*load > 0.0 && *load <= 1.0) {
                    return Err(BuildError(format!("load {load} not in (0, 1]")));
                }
                let cdf = cdf.try_build().map_err(BuildError)?;
                let sampler = pairs
                    .build(hosts.len(), &topo.host_rack_ids(), seed)
                    .map_err(|e| BuildError(e.to_string()))?;
                Ok(
                    LoadGenerator::new(hosts.to_vec(), host_bw, *load, cdf, seed)
                        .with_first_flow_id(*first_flow_id)
                        .with_pair_sampler(sampler)
                        .with_priority(*prio)
                        .generate(duration),
                )
            }
            WorkloadSpec::Incast {
                fan_in,
                flow_size,
                capacity_fraction,
                first_flow_id,
            } => {
                if *fan_in == 0 {
                    return Err(BuildError("incast fan_in must be >= 1".into()));
                }
                if !(*capacity_fraction > 0.0 && *capacity_fraction <= 1.0) {
                    return Err(BuildError(format!(
                        "incast capacity fraction {capacity_fraction} not in (0, 1]"
                    )));
                }
                Ok(
                    IncastGenerator::paper_default(hosts.to_vec(), host_bw, seed)
                        .with_fan_in(*fan_in)
                        .with_flow_size(*flow_size)
                        .with_capacity_fraction(*capacity_fraction)
                        .with_first_flow_id(*first_flow_id)
                        .generate(duration),
                )
            }
            WorkloadSpec::Explicit(decls) => decls
                .iter()
                .enumerate()
                .map(|(i, d)| {
                    let host = |index: usize, what: &str| {
                        hosts.get(index).copied().ok_or_else(|| {
                            BuildError(format!(
                                "explicit flow {i}: {what} index {index} out of range ({} hosts)",
                                hosts.len()
                            ))
                        })
                    };
                    Ok(FlowSpec::new(
                        FlowId(d.id),
                        host(d.src_host, "src_host")?,
                        host(d.dst_host, "dst_host")?,
                        d.size,
                        SimTime::ZERO + d.start,
                    ))
                })
                .collect(),
            WorkloadSpec::Trace {
                trace,
                first_flow_id,
            } => {
                let loaded = trace.load().map_err(|e| BuildError(e.to_string()))?;
                loaded
                    .replay(hosts, *first_flow_id)
                    .map_err(|e| BuildError(e.to_string()))
            }
        }
    }
}

/// The egress scheduling discipline of a scenario's switches, as plain data.
///
/// Together with [`QueueingSpec::ecn_scale`] this resolves into the
/// simulator's [`hpcc_sim::QueueingConfig`]. The number of data classes is
/// implied: explicit for strict priority, the weight count for DWRR, one
/// more than the threshold count for PIAS.
#[derive(Clone, Debug, PartialEq)]
pub enum SchedulerSpec {
    /// Strict priority over `classes` data classes (class 0 first). One
    /// class is the paper's deployment and the legacy default.
    StrictPriority {
        /// Number of data classes (`1..=Priority::MAX_DATA_CLASSES`).
        classes: u8,
    },
    /// Deficit-weighted round robin, one weight per data class.
    Dwrr {
        /// Per-class DWRR weights (all `>= 1`); the length is the class
        /// count.
        weights: Vec<u32>,
    },
    /// PIAS-style dynamic demotion: senders tag packets by the bytes their
    /// flow has already sent (crossing threshold `i` demotes to class
    /// `i + 1`) and switches serve the classes in strict priority.
    Pias {
        /// Strictly increasing bytes-sent demotion thresholds; the class
        /// count is `thresholds.len() + 1`.
        thresholds: Vec<u64>,
    },
}

/// Multi-class switch queueing of a scenario, as plain data (JSON key
/// `"queueing"`; omitted from manifests ⇒ the legacy single-class default,
/// so every pre-existing manifest parses — and stays canonical — unchanged).
#[derive(Clone, Debug, PartialEq)]
pub struct QueueingSpec {
    /// The egress scheduling discipline (and implied class count).
    pub scheduler: SchedulerSpec,
    /// Optional per-class multipliers on the base ECN thresholds (empty =
    /// every class marks at the base `Kmin`/`Kmax`).
    pub ecn_scale: Vec<f64>,
}

impl QueueingSpec {
    /// The explicit legacy default: one data class under strict priority.
    /// Building with this spec is bit-identical to omitting it.
    pub fn legacy() -> Self {
        QueueingSpec {
            scheduler: SchedulerSpec::StrictPriority { classes: 1 },
            ecn_scale: Vec::new(),
        }
    }

    /// Strict priority over `classes` data classes.
    pub fn strict_priority(classes: u8) -> Self {
        QueueingSpec {
            scheduler: SchedulerSpec::StrictPriority { classes },
            ecn_scale: Vec::new(),
        }
    }

    /// DWRR with the given per-class weights.
    pub fn dwrr(weights: Vec<u32>) -> Self {
        QueueingSpec {
            scheduler: SchedulerSpec::Dwrr { weights },
            ecn_scale: Vec::new(),
        }
    }

    /// PIAS with the given bytes-sent demotion thresholds.
    pub fn pias(thresholds: Vec<u64>) -> Self {
        QueueingSpec {
            scheduler: SchedulerSpec::Pias { thresholds },
            ecn_scale: Vec::new(),
        }
    }

    /// Attach per-class ECN threshold scaling.
    pub fn with_ecn_scale(mut self, scale: Vec<f64>) -> Self {
        self.ecn_scale = scale;
        self
    }

    /// The number of data classes this spec configures.
    pub fn classes(&self) -> usize {
        match &self.scheduler {
            SchedulerSpec::StrictPriority { classes } => *classes as usize,
            SchedulerSpec::Dwrr { weights } => weights.len(),
            SchedulerSpec::Pias { thresholds } => thresholds.len() + 1,
        }
    }

    /// A short label for scenario names and reports ("SP-1", "DWRR-4",
    /// "PIAS-3").
    pub fn label(&self) -> String {
        match &self.scheduler {
            SchedulerSpec::StrictPriority { classes } => format!("SP-{classes}"),
            SchedulerSpec::Dwrr { weights } => format!("DWRR-{}", weights.len()),
            SchedulerSpec::Pias { thresholds } => format!("PIAS-{}", thresholds.len() + 1),
        }
    }

    /// Resolve into the simulator's [`hpcc_sim::QueueingConfig`], validating
    /// every invariant on the way (class counts, weight/threshold/scale
    /// shapes) so malformed manifests surface as typed [`BuildError`]s.
    pub fn resolve(&self) -> Result<hpcc_sim::QueueingConfig, BuildError> {
        let classes = self.classes();
        let cfg = hpcc_sim::QueueingConfig {
            data_classes: classes.min(u8::MAX as usize) as u8,
            scheduler: match self.scheduler {
                SchedulerSpec::Dwrr { .. } => hpcc_sim::SchedulerKind::Dwrr,
                _ => hpcc_sim::SchedulerKind::StrictPriority,
            },
            weights: match &self.scheduler {
                SchedulerSpec::Dwrr { weights } => weights.clone(),
                _ => Vec::new(),
            },
            pias_thresholds: match &self.scheduler {
                SchedulerSpec::Pias { thresholds } => thresholds.clone(),
                _ => Vec::new(),
            },
            ecn_scale: self.ecn_scale.clone(),
        };
        cfg.validate()
            .map_err(|e| BuildError(format!("queueing: {e}")))?;
        Ok(cfg)
    }
}

/// The fault plan of a scenario, as plain data (JSON key `"faults"`;
/// omitted from manifests ⇒ a healthy network: no timeline is allocated and
/// every pre-existing manifest parses — and stays canonical — unchanged).
///
/// The three fault families are the simulator's own plain-data records
/// ([`LinkFault`], [`DegradedLink`], [`StragglerHost`]), so a spec is
/// sweepable exactly like any other scenario field: clone, mutate one knob,
/// queue into a campaign. Resolution validates link/host indices and window
/// shapes against the built topology and surfaces violations as typed
/// [`BuildError`]s — malformed manifests never panic a worker.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultSpec {
    /// Scheduled link outages / flaps.
    pub link_faults: Vec<LinkFault>,
    /// Degraded-link windows (added latency, iid loss).
    pub degraded_links: Vec<DegradedLink>,
    /// Straggler-host windows (reduced NIC rate).
    pub stragglers: Vec<StragglerHost>,
}

impl FaultSpec {
    /// An empty fault plan (attachable, but resolves to a healthy network).
    pub fn new() -> Self {
        FaultSpec::default()
    }

    /// A single outage of `link` at `at` lasting `down_for`, in `mode`.
    pub fn link_down(link: usize, at: Duration, down_for: Duration, mode: LinkDownMode) -> Self {
        FaultSpec::new().with_link_fault(LinkFault {
            link,
            at,
            down_for,
            flaps: 0,
            period: Duration::ZERO,
            mode,
        })
    }

    /// Append a link outage / flap.
    pub fn with_link_fault(mut self, f: LinkFault) -> Self {
        self.link_faults.push(f);
        self
    }

    /// Append a degraded-link window.
    pub fn with_degraded_link(mut self, d: DegradedLink) -> Self {
        self.degraded_links.push(d);
        self
    }

    /// Append a straggler-host window.
    pub fn with_straggler(mut self, s: StragglerHost) -> Self {
        self.stragglers.push(s);
        self
    }

    /// True when no fault of any kind is declared.
    pub fn is_empty(&self) -> bool {
        self.link_faults.is_empty() && self.degraded_links.is_empty() && self.stragglers.is_empty()
    }

    /// Resolve into the simulator's [`FaultConfig`], validating every link
    /// and host index and every window shape against a topology with
    /// `links` links and `hosts` hosts.
    pub fn resolve(&self, links: usize, hosts: usize) -> Result<FaultConfig, BuildError> {
        let cfg = FaultConfig {
            link_faults: self.link_faults.clone(),
            degraded_links: self.degraded_links.clone(),
            stragglers: self.stragglers.clone(),
        };
        cfg.validate(links, hosts)
            .map_err(|e| BuildError(format!("faults: {e}")))?;
        Ok(cfg)
    }
}

/// Measurement options of a scenario, as plain data.
///
/// (Formerly named `TraceSpec`; renamed so that "trace" unambiguously means
/// a *flow trace* ([`hpcc_workload::trace`]) — this type is about sampling
/// queues and goodput, not about traffic. The JSON key remains `"trace"`.)
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MeasurementSpec {
    /// Sample all switch data queues into a histogram at this period.
    pub queue_sample_interval: Option<Duration>,
    /// Trace the first switch's egress queue towards this host index (the
    /// bottleneck port of star micro-benchmarks).
    pub bottleneck_host: Option<usize>,
    /// Sampling period of traced ports (defaults to 1 µs).
    pub trace_interval: Option<Duration>,
    /// Accumulate per-flow goodput into bins of this width.
    pub goodput_bin: Option<Duration>,
}

/// A complete, declarative, serializable description of one simulation.
///
/// See the [module docs](self) for the design rationale. Construct with
/// [`ScenarioSpec::new`] plus the `with_*` helpers, or deserialize a
/// campaign manifest with [`ScenarioSpec::from_json_str`].
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Label used in reports.
    pub name: String,
    /// The network.
    pub topology: TopologyChoice,
    /// The congestion control scheme.
    pub cc: CcSpec,
    /// Traffic; flows of all workloads are merged.
    pub workloads: Vec<WorkloadSpec>,
    /// Simulation horizon.
    pub duration: Duration,
    /// Master seed; workload and switch randomness derive from it.
    pub seed: u64,
    /// Loss prevention / recovery mode.
    pub flow_control: FlowControlMode,
    /// Shared buffer per switch in bytes (`None` keeps the 32 MB default).
    pub buffer_bytes: Option<u64>,
    /// ECN threshold override (`None` keeps the scheme's default).
    pub ecn: Option<EcnConfig>,
    /// Multi-class switch queueing (`None` keeps the legacy single-class
    /// strict-priority path, bit-identically).
    pub queueing: Option<QueueingSpec>,
    /// Fault injection plan (`None` keeps the healthy network,
    /// bit-identically: no timeline is allocated).
    pub faults: Option<FaultSpec>,
    /// Which engine answers the scenario ([`BackendSpec::Packet`] is the
    /// default and serializes as an omitted key, bit-identically to specs
    /// predating the backend boundary).
    pub backend: BackendSpec,
    /// Measurement options.
    pub trace: MeasurementSpec,
}

impl ScenarioSpec {
    /// A scenario with no workloads yet, seed 1, lossless fabric, default
    /// buffers and no tracing.
    pub fn new(
        name: impl Into<String>,
        topology: TopologyChoice,
        cc: impl Into<CcSpec>,
        duration: Duration,
    ) -> Self {
        ScenarioSpec {
            name: name.into(),
            topology,
            cc: cc.into(),
            workloads: Vec::new(),
            duration,
            seed: 1,
            flow_control: FlowControlMode::Lossless,
            buffer_bytes: None,
            ecn: None,
            queueing: None,
            faults: None,
            backend: BackendSpec::Packet,
            trace: MeasurementSpec::default(),
        }
    }

    /// Append a workload.
    pub fn with_workload(mut self, w: WorkloadSpec) -> Self {
        self.workloads.push(w);
        self
    }

    /// Set the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the flow-control mode.
    pub fn with_flow_control(mut self, mode: FlowControlMode) -> Self {
        self.flow_control = mode;
        self
    }

    /// Override the per-switch shared buffer.
    pub fn with_buffer_bytes(mut self, bytes: u64) -> Self {
        self.buffer_bytes = Some(bytes);
        self
    }

    /// Override the ECN thresholds.
    pub fn with_ecn(mut self, ecn: EcnConfig) -> Self {
        self.ecn = Some(ecn);
        self
    }

    /// Configure multi-class switch queueing (scheduler, class count, PIAS
    /// thresholds, per-class ECN scaling).
    pub fn with_queueing(mut self, queueing: QueueingSpec) -> Self {
        self.queueing = Some(queueing);
        self
    }

    /// Attach a fault-injection plan (link outages/flaps, degraded links,
    /// straggler hosts).
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Select the engine that answers the scenario.
    pub fn with_backend(mut self, backend: BackendSpec) -> Self {
        self.backend = backend;
        self
    }

    /// Enable queue-histogram sampling.
    pub fn with_queue_sampling(mut self, interval: Duration) -> Self {
        self.trace.queue_sample_interval = Some(interval);
        self
    }

    /// Trace the bottleneck egress towards a host index.
    pub fn with_bottleneck_trace(mut self, host_index: usize, interval: Duration) -> Self {
        self.trace.bottleneck_host = Some(host_index);
        self.trace.trace_interval = Some(interval);
        self
    }

    /// Enable per-flow goodput accumulation.
    pub fn with_goodput_bin(mut self, bin: Duration) -> Self {
        self.trace.goodput_bin = Some(bin);
        self
    }

    /// The display label of the congestion control scheme.
    pub fn scheme_label(&self) -> String {
        self.cc.scheme_label()
    }

    /// Resolve the declaration into a runnable [`Experiment`].
    ///
    /// Deterministic: the same spec always produces the bit-identical
    /// experiment (topology, config, flow list), regardless of thread or
    /// process.
    ///
    /// # Panics
    /// Panics when the spec cannot be resolved — see
    /// [`ScenarioSpec::try_build`] for the fallible form and [`BuildError`]
    /// for what can go wrong.
    pub fn build(&self) -> Experiment {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible counterpart of [`ScenarioSpec::build`]: workload resolution
    /// failures (invalid locality matrices, unreadable or malformed trace
    /// files, out-of-range trace endpoints) come back as typed
    /// [`BuildError`]s naming the workload and — for trace input — the
    /// offending line.
    pub fn try_build(&self) -> Result<Experiment, BuildError> {
        if self.backend == BackendSpec::Fluid {
            if self.faults.is_some() {
                return Err(BuildError(
                    "the fluid backend does not support fault injection \
                     (steady-state model has no fault timeline); \
                     use \"backend\": \"packet\" or drop \"faults\""
                        .into(),
                ));
            }
            if let Some(q) = &self.queueing {
                if !q.resolve()?.is_legacy() {
                    return Err(BuildError(
                        "the fluid backend does not support multi-class/PIAS \
                         queueing (steady-state model has a single data class); \
                         use \"backend\": \"packet\" or drop \"queueing\""
                            .into(),
                    ));
                }
            }
        }
        if let BackendSpec::ParallelPacket { threads: 0 } = self.backend {
            return Err(BuildError(
                "the parallel_packet backend needs at least one worker thread \
                 (got \"threads\": 0); use \"threads\": 1 or more, or drop \
                 \"backend\" for the sequential engine"
                    .into(),
            ));
        }
        let topo = self.topology.try_build()?;
        let host_bw = self.topology.host_bw();
        let base_rtt = topo.suggested_base_rtt(MTU_WIRE_SIZE);
        let cc = self.cc.resolve(host_bw, base_rtt);
        let mut flows = Vec::new();
        for (stream, workload) in self.workloads.iter().enumerate() {
            flows.extend(
                workload
                    .generate(
                        &topo,
                        host_bw,
                        self.duration,
                        derive_seed(self.seed, stream as u64),
                    )
                    .map_err(|e| BuildError(format!("workload {stream}: {}", e.0)))?,
            );
        }
        let mut b: ExperimentBuilder = Experiment::builder(self.name.clone(), topo, cc, host_bw)
            .duration(self.duration)
            .seed(self.seed)
            .flow_control(self.flow_control)
            .backend(self.backend.kind());
        if let Some(bytes) = self.buffer_bytes {
            b = b.buffer_bytes(bytes);
        }
        if let Some(ecn) = self.ecn {
            b = b.ecn(ecn);
        }
        if let Some(q) = &self.queueing {
            b = b.queueing(q.resolve()?);
        }
        if let Some(f) = &self.faults {
            let (links, hosts) = (b.topology().links().len(), b.topology().hosts().len());
            b = b.faults(f.resolve(links, hosts)?);
        }
        if let Some(interval) = self.trace.queue_sample_interval {
            b = b.queue_sampling(interval);
        }
        if let Some(host) = self.trace.bottleneck_host {
            let interval = self.trace.trace_interval.unwrap_or(Duration::from_us(1));
            b = b.trace_bottleneck_to(host, interval);
        }
        if let Some(bin) = self.trace.goodput_bin {
            b = b.goodput_bin(bin);
        }
        Ok(b.flows(flows).build())
    }

    /// Build and run in one step.
    pub fn run(&self) -> ExperimentResults {
        self.build().run()
    }

    /// Freeze the scenario into a trace-replay artifact: every *generated*
    /// workload (Poisson, Incast) is executed once and replaced by an
    /// inline [`WorkloadSpec::Trace`] carrying the exact flows it produced;
    /// [`WorkloadSpec::Explicit`] and existing trace workloads are already
    /// plain data and pass through unchanged.
    ///
    /// The frozen spec builds the bit-identical experiment (the in-tree
    /// generators assign flow ids sequentially from their `first_flow_id`,
    /// which is exactly how replay re-assigns them), so its campaign digests
    /// equal the original's — but it no longer depends on the generator
    /// code: it is a self-contained, shippable reproduction artifact.
    pub fn freeze(&self) -> Result<ScenarioSpec, BuildError> {
        let topo = self.topology.try_build()?;
        let host_bw = self.topology.host_bw();
        let mut frozen = self.clone();
        for (stream, workload) in self.workloads.iter().enumerate() {
            let first_flow_id = match workload {
                WorkloadSpec::Poisson { first_flow_id, .. }
                | WorkloadSpec::Incast { first_flow_id, .. } => *first_flow_id,
                WorkloadSpec::Explicit(_) | WorkloadSpec::Trace { .. } => continue,
            };
            let flows = workload
                .generate(
                    &topo,
                    host_bw,
                    self.duration,
                    derive_seed(self.seed, stream as u64),
                )
                .map_err(|e| BuildError(format!("workload {stream}: {}", e.0)))?;
            let trace = hpcc_workload::Trace::from_flows(&flows, topo.hosts())
                .map_err(|e| BuildError(format!("workload {stream}: {e}")))?;
            frozen.workloads[stream] = WorkloadSpec::Trace {
                trace: TraceSpec::Inline(trace.records),
                first_flow_id,
            };
        }
        Ok(frozen)
    }

    /// Serialize to a JSON value.
    pub fn to_json(&self) -> JsonValue {
        let mut pairs = vec![
            ("name", JsonValue::Str(self.name.clone())),
            ("topology", topology_to_json(&self.topology)),
            ("cc", cc_to_json(&self.cc)),
            (
                "workloads",
                JsonValue::Array(self.workloads.iter().map(workload_to_json).collect()),
            ),
            ("duration_ps", JsonValue::UInt(self.duration.as_ps())),
            ("seed", JsonValue::UInt(self.seed)),
            (
                "flow_control",
                JsonValue::Str(self.flow_control.label().to_string()),
            ),
        ];
        if let Some(bytes) = self.buffer_bytes {
            pairs.push(("buffer_bytes", JsonValue::UInt(bytes)));
        }
        if let Some(ecn) = self.ecn {
            pairs.push((
                "ecn",
                obj(vec![
                    ("kmin_bytes", JsonValue::UInt(ecn.kmin_bytes)),
                    ("kmax_bytes", JsonValue::UInt(ecn.kmax_bytes)),
                    ("pmax", JsonValue::Float(ecn.pmax)),
                ]),
            ));
        }
        if let Some(q) = &self.queueing {
            pairs.push(("queueing", queueing_to_json(q)));
        }
        if let Some(f) = &self.faults {
            pairs.push(("faults", faults_to_json(f)));
        }
        if let Some(b) = crate::wire::backend_to_json(self.backend) {
            pairs.push(("backend", b));
        }
        pairs.push(("trace", trace_to_json(&self.trace)));
        obj(pairs)
    }

    /// Serialize to a compact JSON string.
    pub fn to_json_string(&self) -> String {
        self.to_json().render()
    }

    /// Deserialize from a JSON value.
    pub fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        let mut spec = ScenarioSpec::new(
            v.require("name")?.as_str()?,
            topology_from_json(v.require("topology")?)?,
            cc_from_json(v.require("cc")?)?,
            Duration::from_ps(v.require("duration_ps")?.as_u64()?),
        );
        for w in v.require("workloads")?.as_array()? {
            spec.workloads.push(workload_from_json(w)?);
        }
        spec.seed = v.require("seed")?.as_u64()?;
        spec.flow_control = match v.require("flow_control")?.as_str()? {
            "PFC" => FlowControlMode::Lossless,
            "GBN" => FlowControlMode::LossyGoBackN,
            "IRN" => FlowControlMode::LossyIrn,
            other => return Err(JsonError(format!("unknown flow control {other:?}"))),
        };
        if let Some(bytes) = v.get("buffer_bytes") {
            spec.buffer_bytes = Some(bytes.as_u64()?);
        }
        if let Some(ecn) = v.get("ecn") {
            spec.ecn = Some(EcnConfig {
                kmin_bytes: ecn.require("kmin_bytes")?.as_u64()?,
                kmax_bytes: ecn.require("kmax_bytes")?.as_u64()?,
                pmax: ecn.require("pmax")?.as_f64()?,
            });
        }
        if let Some(q) = v.get("queueing") {
            spec.queueing = Some(queueing_from_json(q)?);
        }
        if let Some(f) = v.get("faults") {
            spec.faults = Some(faults_from_json(f)?);
        }
        if let Some(b) = v.get("backend") {
            spec.backend = crate::wire::backend_from_json(b)?;
        }
        if let Some(trace) = v.get("trace") {
            spec.trace = trace_from_json(trace)?;
        }
        Ok(spec)
    }

    /// Deserialize from a JSON string.
    pub fn from_json_str(text: &str) -> Result<Self, JsonError> {
        Self::from_json(&JsonValue::parse(text)?)
    }
}

fn bw_json(bw: Bandwidth) -> JsonValue {
    JsonValue::UInt(bw.as_bps())
}

fn bw_from(v: &JsonValue) -> Result<Bandwidth, JsonError> {
    Ok(Bandwidth::from_bps(v.as_u64()?))
}

fn dur_json(d: Duration) -> JsonValue {
    JsonValue::UInt(d.as_ps())
}

fn dur_from(v: &JsonValue) -> Result<Duration, JsonError> {
    Ok(Duration::from_ps(v.as_u64()?))
}

fn topology_to_json(t: &TopologyChoice) -> JsonValue {
    match *t {
        TopologyChoice::Corpus { ref path, host_bw } => obj(vec![
            ("kind", JsonValue::Str("Corpus".into())),
            ("path", JsonValue::Str(path.clone())),
            ("host_bw_bps", bw_json(host_bw)),
        ]),
        TopologyChoice::Star {
            hosts,
            host_bw,
            link_delay,
        } => obj(vec![
            ("kind", JsonValue::Str("Star".into())),
            ("hosts", JsonValue::UInt(hosts as u64)),
            ("host_bw_bps", bw_json(host_bw)),
            ("link_delay_ps", dur_json(link_delay)),
        ]),
        TopologyChoice::Dumbbell {
            left,
            right,
            host_bw,
            core_bw,
            link_delay,
        } => obj(vec![
            ("kind", JsonValue::Str("Dumbbell".into())),
            ("left", JsonValue::UInt(left as u64)),
            ("right", JsonValue::UInt(right as u64)),
            ("host_bw_bps", bw_json(host_bw)),
            ("core_bw_bps", bw_json(core_bw)),
            ("link_delay_ps", dur_json(link_delay)),
        ]),
        TopologyChoice::TestbedPod { link_delay } => obj(vec![
            ("kind", JsonValue::Str("TestbedPod".into())),
            ("link_delay_ps", dur_json(link_delay)),
        ]),
        TopologyChoice::LeafSpine {
            leaves,
            spines,
            hosts_per_leaf,
            host_bw,
            fabric_bw,
            link_delay,
        } => obj(vec![
            ("kind", JsonValue::Str("LeafSpine".into())),
            ("leaves", JsonValue::UInt(leaves as u64)),
            ("spines", JsonValue::UInt(spines as u64)),
            ("hosts_per_leaf", JsonValue::UInt(hosts_per_leaf as u64)),
            ("host_bw_bps", bw_json(host_bw)),
            ("fabric_bw_bps", bw_json(fabric_bw)),
            ("link_delay_ps", dur_json(link_delay)),
        ]),
        TopologyChoice::FatTree(p) => obj(vec![
            ("kind", JsonValue::Str("FatTree".into())),
            ("pods", JsonValue::UInt(p.pods as u64)),
            ("tors_per_pod", JsonValue::UInt(p.tors_per_pod as u64)),
            ("aggs_per_pod", JsonValue::UInt(p.aggs_per_pod as u64)),
            ("cores", JsonValue::UInt(p.cores as u64)),
            ("hosts_per_tor", JsonValue::UInt(p.hosts_per_tor as u64)),
            ("host_bw_bps", bw_json(p.host_bw)),
            ("fabric_bw_bps", bw_json(p.fabric_bw)),
            ("link_delay_ps", dur_json(p.link_delay)),
        ]),
    }
}

fn topology_from_json(v: &JsonValue) -> Result<TopologyChoice, JsonError> {
    match v.require("kind")?.as_str()? {
        "Star" => Ok(TopologyChoice::Star {
            hosts: v.require("hosts")?.as_usize()?,
            host_bw: bw_from(v.require("host_bw_bps")?)?,
            link_delay: dur_from(v.require("link_delay_ps")?)?,
        }),
        "Dumbbell" => Ok(TopologyChoice::Dumbbell {
            left: v.require("left")?.as_usize()?,
            right: v.require("right")?.as_usize()?,
            host_bw: bw_from(v.require("host_bw_bps")?)?,
            core_bw: bw_from(v.require("core_bw_bps")?)?,
            link_delay: dur_from(v.require("link_delay_ps")?)?,
        }),
        "TestbedPod" => Ok(TopologyChoice::TestbedPod {
            link_delay: dur_from(v.require("link_delay_ps")?)?,
        }),
        "LeafSpine" => Ok(TopologyChoice::LeafSpine {
            leaves: v.require("leaves")?.as_usize()?,
            spines: v.require("spines")?.as_usize()?,
            hosts_per_leaf: v.require("hosts_per_leaf")?.as_usize()?,
            host_bw: bw_from(v.require("host_bw_bps")?)?,
            fabric_bw: bw_from(v.require("fabric_bw_bps")?)?,
            link_delay: dur_from(v.require("link_delay_ps")?)?,
        }),
        "FatTree" => Ok(TopologyChoice::FatTree(FatTreeParams {
            pods: v.require("pods")?.as_usize()?,
            tors_per_pod: v.require("tors_per_pod")?.as_usize()?,
            aggs_per_pod: v.require("aggs_per_pod")?.as_usize()?,
            cores: v.require("cores")?.as_usize()?,
            hosts_per_tor: v.require("hosts_per_tor")?.as_usize()?,
            host_bw: bw_from(v.require("host_bw_bps")?)?,
            fabric_bw: bw_from(v.require("fabric_bw_bps")?)?,
            link_delay: dur_from(v.require("link_delay_ps")?)?,
        })),
        "Corpus" => Ok(TopologyChoice::Corpus {
            path: v.require("path")?.as_str()?.to_string(),
            host_bw: bw_from(v.require("host_bw_bps")?)?,
        }),
        other => Err(JsonError(format!("unknown topology kind {other:?}"))),
    }
}

fn cc_to_json(cc: &CcSpec) -> JsonValue {
    match cc {
        CcSpec::Label(label) => obj(vec![
            ("kind", JsonValue::Str("Label".into())),
            ("label", JsonValue::Str(label.clone())),
        ]),
        CcSpec::Hpcc(cfg) => obj(vec![
            ("kind", JsonValue::Str("Hpcc".into())),
            ("eta", JsonValue::Float(cfg.eta)),
            ("max_stage", JsonValue::UInt(cfg.max_stage as u64)),
            ("wai", JsonValue::UInt(cfg.wai)),
            (
                "mode",
                JsonValue::Str(
                    match cfg.mode {
                        HpccReactionMode::Combined => "Combined",
                        HpccReactionMode::PerAck => "PerAck",
                        HpccReactionMode::PerRtt => "PerRtt",
                    }
                    .into(),
                ),
            ),
            ("use_rx_rate", JsonValue::Bool(cfg.use_rx_rate)),
            ("min_rate_bps", bw_json(cfg.min_rate)),
        ]),
        CcSpec::DcqcnTimers { ti, td } => obj(vec![
            ("kind", JsonValue::Str("DcqcnTimers".into())),
            ("ti_ps", dur_json(*ti)),
            ("td_ps", dur_json(*td)),
        ]),
        CcSpec::Timely {
            window,
            t_low,
            t_high,
            beta,
            hai_threshold,
        } => obj(vec![
            ("kind", JsonValue::Str("Timely".into())),
            ("window", JsonValue::Bool(*window)),
            ("t_low_ps", dur_json(*t_low)),
            ("t_high_ps", dur_json(*t_high)),
            ("beta", JsonValue::Float(*beta)),
            ("hai_threshold", JsonValue::UInt(*hai_threshold as u64)),
        ]),
        CcSpec::Dctcp { g } => obj(vec![
            ("kind", JsonValue::Str("Dctcp".into())),
            ("g", JsonValue::Float(*g)),
        ]),
    }
}

fn cc_from_json(v: &JsonValue) -> Result<CcSpec, JsonError> {
    match v.require("kind")?.as_str()? {
        "Label" => Ok(CcSpec::Label(v.require("label")?.as_str()?.to_string())),
        "Hpcc" => Ok(CcSpec::Hpcc(HpccConfig {
            eta: v.require("eta")?.as_f64()?,
            max_stage: v.require("max_stage")?.as_u64()? as u32,
            wai: v.require("wai")?.as_u64()?,
            mode: match v.require("mode")?.as_str()? {
                "Combined" => HpccReactionMode::Combined,
                "PerAck" => HpccReactionMode::PerAck,
                "PerRtt" => HpccReactionMode::PerRtt,
                other => return Err(JsonError(format!("unknown HPCC mode {other:?}"))),
            },
            use_rx_rate: v.require("use_rx_rate")?.as_bool()?,
            min_rate: bw_from(v.require("min_rate_bps")?)?,
        })),
        "DcqcnTimers" => Ok(CcSpec::DcqcnTimers {
            ti: dur_from(v.require("ti_ps")?)?,
            td: dur_from(v.require("td_ps")?)?,
        }),
        "Timely" => Ok(CcSpec::Timely {
            window: v.require("window")?.as_bool()?,
            t_low: dur_from(v.require("t_low_ps")?)?,
            t_high: dur_from(v.require("t_high_ps")?)?,
            beta: v.require("beta")?.as_f64()?,
            hai_threshold: {
                let t = v.require("hai_threshold")?.as_u64()?;
                if t > u32::MAX as u64 {
                    return Err(JsonError(format!("hai_threshold {t} out of range")));
                }
                t as u32
            },
        }),
        "Dctcp" => Ok(CcSpec::Dctcp {
            g: v.require("g")?.as_f64()?,
        }),
        other => Err(JsonError(format!("unknown cc kind {other:?}"))),
    }
}

fn cdf_to_json(cdf: &CdfSpec) -> JsonValue {
    match cdf {
        CdfSpec::WebSearch => JsonValue::Str("WebSearch".into()),
        CdfSpec::FbHadoop => JsonValue::Str("FB_Hadoop".into()),
        CdfSpec::Fixed(size) => obj(vec![("fixed", JsonValue::UInt(*size))]),
        CdfSpec::Custom(points) => obj(vec![(
            "custom",
            JsonValue::Array(
                points
                    .iter()
                    .map(|(size, p)| {
                        JsonValue::Array(vec![JsonValue::UInt(*size), JsonValue::Float(*p)])
                    })
                    .collect(),
            ),
        )]),
    }
}

fn cdf_from_json(v: &JsonValue) -> Result<CdfSpec, JsonError> {
    if let Ok(name) = v.as_str() {
        return match name {
            "WebSearch" => Ok(CdfSpec::WebSearch),
            "FB_Hadoop" => Ok(CdfSpec::FbHadoop),
            other => Err(JsonError(format!("unknown cdf {other:?}"))),
        };
    }
    if let Some(size) = v.get("fixed") {
        return Ok(CdfSpec::Fixed(size.as_u64()?));
    }
    if let Some(points) = v.get("custom") {
        let mut out = Vec::new();
        for p in points.as_array()? {
            let pair = p.as_array()?;
            if pair.len() != 2 {
                return Err(JsonError("cdf point must be [size, prob]".into()));
            }
            out.push((pair[0].as_u64()?, pair[1].as_f64()?));
        }
        return Ok(CdfSpec::Custom(out));
    }
    Err(JsonError("unrecognized cdf spec".into()))
}

fn pair_to_json(p: &PairSpec) -> JsonValue {
    // `PairSpec::name` is the single source of the kind tags, shared with
    // display code; `pair_from_json` matches the same strings.
    let kind = ("kind", JsonValue::Str(p.name().into()));
    match p {
        PairSpec::Uniform => obj(vec![kind]),
        PairSpec::Locality(LocalitySpec::IntraRack { fraction }) => {
            obj(vec![kind, ("fraction", JsonValue::Float(*fraction))])
        }
        PairSpec::Locality(LocalitySpec::Matrix { rows }) => obj(vec![
            kind,
            (
                "rows",
                JsonValue::Array(
                    rows.iter()
                        .map(|row| {
                            JsonValue::Array(row.iter().map(|p| JsonValue::Float(*p)).collect())
                        })
                        .collect(),
                ),
            ),
        ]),
        PairSpec::Skew(s) => obj(vec![kind, ("exponent", JsonValue::Float(s.exponent))]),
    }
}

fn pair_from_json(v: &JsonValue) -> Result<PairSpec, JsonError> {
    match v.require("kind")?.as_str()? {
        "Uniform" => Ok(PairSpec::Uniform),
        "IntraRack" => Ok(PairSpec::Locality(LocalitySpec::IntraRack {
            fraction: v.require("fraction")?.as_f64()?,
        })),
        "Matrix" => {
            let mut rows = Vec::new();
            for row in v.require("rows")?.as_array()? {
                let mut out = Vec::new();
                for p in row.as_array()? {
                    out.push(p.as_f64()?);
                }
                rows.push(out);
            }
            Ok(PairSpec::Locality(LocalitySpec::Matrix { rows }))
        }
        "Skew" => Ok(PairSpec::Skew(SkewSpec::new(
            v.require("exponent")?.as_f64()?,
        ))),
        other => Err(JsonError(format!("unknown pair kind {other:?}"))),
    }
}

/// A trace record as the compact array `[start_ps, src, dst, bytes, prio]`
/// (exact picosecond integers; `prio` is the [`hpcc_types::FlowPriority`]
/// wire code: 0 = normal, 1 = latency-sensitive, 2+c = data class c).
fn trace_record_to_json(r: &TraceRecord) -> JsonValue {
    JsonValue::Array(vec![
        JsonValue::UInt(r.start.as_ps()),
        JsonValue::UInt(r.src as u64),
        JsonValue::UInt(r.dst as u64),
        JsonValue::UInt(r.bytes),
        JsonValue::UInt(r.prio.wire_code() as u64),
    ])
}

fn trace_record_from_json(v: &JsonValue) -> Result<TraceRecord, JsonError> {
    let parts = v.as_array()?;
    if parts.len() != 5 {
        return Err(JsonError(
            "trace record must be [start_ps, src, dst, bytes, prio]".into(),
        ));
    }
    let mut r = TraceRecord::new(
        Duration::from_ps(parts[0].as_u64()?),
        parts[1].as_usize()?,
        parts[2].as_usize()?,
        parts[3].as_u64()?,
    );
    let code = parts[4].as_u64()?;
    if code > 1 + hpcc_types::Priority::MAX_DATA_CLASSES as u64 {
        return Err(JsonError(format!("unknown trace priority {code}")));
    }
    r.prio = hpcc_types::FlowPriority::from_wire_code(code as u8);
    Ok(r)
}

/// Serialize a [`PrioritySpec`]; the default is canonical-omitted by the
/// caller, so this only sees non-default stages.
fn prio_spec_to_json(p: &PrioritySpec) -> JsonValue {
    match p {
        PrioritySpec::Normal => obj(vec![("kind", JsonValue::Str("Normal".into()))]),
        PrioritySpec::Uniform(fp) => obj(vec![
            ("kind", JsonValue::Str("Uniform".into())),
            ("prio", JsonValue::UInt(fp.wire_code() as u64)),
        ]),
        PrioritySpec::ShortFlows { threshold } => obj(vec![
            ("kind", JsonValue::Str("ShortFlows".into())),
            ("threshold", JsonValue::UInt(*threshold)),
        ]),
    }
}

fn prio_spec_from_json(v: &JsonValue) -> Result<PrioritySpec, JsonError> {
    match v.require("kind")?.as_str()? {
        "Normal" => Ok(PrioritySpec::Normal),
        "Uniform" => {
            let code = v.require("prio")?.as_u64()?;
            if code > 1 + hpcc_types::Priority::MAX_DATA_CLASSES as u64 {
                return Err(JsonError(format!("unknown priority code {code}")));
            }
            Ok(PrioritySpec::Uniform(
                hpcc_types::FlowPriority::from_wire_code(code as u8),
            ))
        }
        "ShortFlows" => Ok(PrioritySpec::ShortFlows {
            threshold: v.require("threshold")?.as_u64()?,
        }),
        other => Err(JsonError(format!("unknown priority kind {other:?}"))),
    }
}

fn workload_to_json(w: &WorkloadSpec) -> JsonValue {
    match w {
        WorkloadSpec::Poisson {
            cdf,
            load,
            first_flow_id,
            pairs,
            prio,
        } => {
            let mut fields = vec![
                ("kind", JsonValue::Str("Poisson".into())),
                ("cdf", cdf_to_json(cdf)),
                ("load", JsonValue::Float(*load)),
                ("first_flow_id", JsonValue::UInt(*first_flow_id)),
            ];
            // Uniform pairs and normal priorities are the defaults and are
            // omitted, so pre-existing manifests and their canonical
            // renderings stay byte-stable.
            if *pairs != PairSpec::Uniform {
                fields.push(("pairs", pair_to_json(pairs)));
            }
            if !prio.is_default() {
                fields.push(("prio", prio_spec_to_json(prio)));
            }
            obj(fields)
        }
        WorkloadSpec::Incast {
            fan_in,
            flow_size,
            capacity_fraction,
            first_flow_id,
        } => obj(vec![
            ("kind", JsonValue::Str("Incast".into())),
            ("fan_in", JsonValue::UInt(*fan_in as u64)),
            ("flow_size", JsonValue::UInt(*flow_size)),
            ("capacity_fraction", JsonValue::Float(*capacity_fraction)),
            ("first_flow_id", JsonValue::UInt(*first_flow_id)),
        ]),
        WorkloadSpec::Explicit(decls) => obj(vec![
            ("kind", JsonValue::Str("Explicit".into())),
            (
                "flows",
                JsonValue::Array(
                    decls
                        .iter()
                        .map(|d| {
                            obj(vec![
                                ("id", JsonValue::UInt(d.id)),
                                ("src_host", JsonValue::UInt(d.src_host as u64)),
                                ("dst_host", JsonValue::UInt(d.dst_host as u64)),
                                ("size", JsonValue::UInt(d.size)),
                                ("start_ps", dur_json(d.start)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        WorkloadSpec::Trace {
            trace,
            first_flow_id,
        } => {
            let mut fields = vec![
                ("kind", JsonValue::Str("Trace".into())),
                ("first_flow_id", JsonValue::UInt(*first_flow_id)),
            ];
            match trace {
                TraceSpec::Path(path) => fields.push(("path", JsonValue::Str(path.clone()))),
                TraceSpec::Inline(records) => fields.push((
                    "records",
                    JsonValue::Array(records.iter().map(trace_record_to_json).collect()),
                )),
            }
            obj(fields)
        }
    }
}

fn workload_from_json(v: &JsonValue) -> Result<WorkloadSpec, JsonError> {
    match v.require("kind")?.as_str()? {
        "Poisson" => Ok(WorkloadSpec::Poisson {
            cdf: cdf_from_json(v.require("cdf")?)?,
            load: v.require("load")?.as_f64()?,
            first_flow_id: v.require("first_flow_id")?.as_u64()?,
            pairs: match v.get("pairs") {
                Some(p) => pair_from_json(p)?,
                None => PairSpec::Uniform,
            },
            prio: match v.get("prio") {
                Some(p) => prio_spec_from_json(p)?,
                None => PrioritySpec::default(),
            },
        }),
        "Incast" => Ok(WorkloadSpec::Incast {
            fan_in: v.require("fan_in")?.as_usize()?,
            flow_size: v.require("flow_size")?.as_u64()?,
            capacity_fraction: v.require("capacity_fraction")?.as_f64()?,
            first_flow_id: v.require("first_flow_id")?.as_u64()?,
        }),
        "Explicit" => {
            let mut decls = Vec::new();
            for d in v.require("flows")?.as_array()? {
                decls.push(FlowDecl::new(
                    d.require("id")?.as_u64()?,
                    d.require("src_host")?.as_usize()?,
                    d.require("dst_host")?.as_usize()?,
                    d.require("size")?.as_u64()?,
                    dur_from(d.require("start_ps")?)?,
                ));
            }
            Ok(WorkloadSpec::Explicit(decls))
        }
        "Trace" => {
            let first_flow_id = v.require("first_flow_id")?.as_u64()?;
            let trace = match (v.get("path"), v.get("records")) {
                (Some(path), None) => TraceSpec::Path(path.as_str()?.to_string()),
                (None, Some(records)) => {
                    let mut out = Vec::new();
                    for r in records.as_array()? {
                        out.push(trace_record_from_json(r)?);
                    }
                    TraceSpec::Inline(out)
                }
                _ => {
                    return Err(JsonError(
                        "trace workload needs exactly one of \"path\" or \"records\"".into(),
                    ))
                }
            };
            Ok(WorkloadSpec::Trace {
                trace,
                first_flow_id,
            })
        }
        other => Err(JsonError(format!("unknown workload kind {other:?}"))),
    }
}

fn queueing_to_json(q: &QueueingSpec) -> JsonValue {
    let mut fields = match &q.scheduler {
        SchedulerSpec::StrictPriority { classes } => vec![
            ("kind", JsonValue::Str("SP".into())),
            ("classes", JsonValue::UInt(*classes as u64)),
        ],
        SchedulerSpec::Dwrr { weights } => vec![
            ("kind", JsonValue::Str("DWRR".into())),
            (
                "weights",
                JsonValue::Array(weights.iter().map(|&w| JsonValue::UInt(w as u64)).collect()),
            ),
        ],
        SchedulerSpec::Pias { thresholds } => vec![
            ("kind", JsonValue::Str("PIAS".into())),
            (
                "thresholds",
                JsonValue::Array(thresholds.iter().map(|&t| JsonValue::UInt(t)).collect()),
            ),
        ],
    };
    if !q.ecn_scale.is_empty() {
        fields.push((
            "ecn_scale",
            JsonValue::Array(q.ecn_scale.iter().map(|&s| JsonValue::Float(s)).collect()),
        ));
    }
    obj(fields)
}

fn queueing_from_json(v: &JsonValue) -> Result<QueueingSpec, JsonError> {
    let scheduler = match v.require("kind")?.as_str()? {
        "SP" => {
            let classes = v.require("classes")?.as_u64()?;
            if classes > u8::MAX as u64 {
                return Err(JsonError(format!(
                    "queueing classes {classes} out of range"
                )));
            }
            SchedulerSpec::StrictPriority {
                classes: classes as u8,
            }
        }
        "DWRR" => {
            let mut weights = Vec::new();
            for w in v.require("weights")?.as_array()? {
                let w = w.as_u64()?;
                if w > u32::MAX as u64 {
                    return Err(JsonError(format!("DWRR weight {w} out of range")));
                }
                weights.push(w as u32);
            }
            SchedulerSpec::Dwrr { weights }
        }
        "PIAS" => {
            let mut thresholds = Vec::new();
            for t in v.require("thresholds")?.as_array()? {
                thresholds.push(t.as_u64()?);
            }
            SchedulerSpec::Pias { thresholds }
        }
        other => return Err(JsonError(format!("unknown queueing kind {other:?}"))),
    };
    let mut ecn_scale = Vec::new();
    if let Some(scale) = v.get("ecn_scale") {
        for s in scale.as_array()? {
            ecn_scale.push(s.as_f64()?);
        }
    }
    Ok(QueueingSpec {
        scheduler,
        ecn_scale,
    })
}

fn faults_to_json(f: &FaultSpec) -> JsonValue {
    let mut fields = Vec::new();
    if !f.link_faults.is_empty() {
        fields.push((
            "links",
            JsonValue::Array(
                f.link_faults
                    .iter()
                    .map(|f| {
                        obj(vec![
                            ("link", JsonValue::UInt(f.link as u64)),
                            ("at_ps", dur_json(f.at)),
                            ("down_for_ps", dur_json(f.down_for)),
                            ("flaps", JsonValue::UInt(f.flaps as u64)),
                            ("period_ps", dur_json(f.period)),
                            ("mode", JsonValue::Str(f.mode.label().into())),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    if !f.degraded_links.is_empty() {
        fields.push((
            "degraded",
            JsonValue::Array(
                f.degraded_links
                    .iter()
                    .map(|d| {
                        obj(vec![
                            ("link", JsonValue::UInt(d.link as u64)),
                            ("from_ps", dur_json(d.from)),
                            ("until_ps", dur_json(d.until)),
                            ("extra_delay_ps", dur_json(d.extra_delay)),
                            ("loss", JsonValue::Float(d.loss)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    if !f.stragglers.is_empty() {
        fields.push((
            "stragglers",
            JsonValue::Array(
                f.stragglers
                    .iter()
                    .map(|s| {
                        obj(vec![
                            ("host", JsonValue::UInt(s.host as u64)),
                            ("from_ps", dur_json(s.from)),
                            ("until_ps", dur_json(s.until)),
                            ("rate_factor", JsonValue::Float(s.rate_factor)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    obj(fields)
}

fn faults_from_json(v: &JsonValue) -> Result<FaultSpec, JsonError> {
    let mut spec = FaultSpec::new();
    if let Some(links) = v.get("links") {
        for f in links.as_array()? {
            spec.link_faults.push(LinkFault {
                link: f.require("link")?.as_usize()?,
                at: dur_from(f.require("at_ps")?)?,
                down_for: dur_from(f.require("down_for_ps")?)?,
                flaps: {
                    let n = f.require("flaps")?.as_u64()?;
                    if n > u32::MAX as u64 {
                        return Err(JsonError(format!("flap count {n} out of range")));
                    }
                    n as u32
                },
                period: dur_from(f.require("period_ps")?)?,
                mode: match f.require("mode")?.as_str()? {
                    "Drop" => LinkDownMode::Drop,
                    "Pause" => LinkDownMode::Pause,
                    other => {
                        return Err(JsonError(format!("unknown link-down mode {other:?}")));
                    }
                },
            });
        }
    }
    if let Some(degraded) = v.get("degraded") {
        for d in degraded.as_array()? {
            spec.degraded_links.push(DegradedLink {
                link: d.require("link")?.as_usize()?,
                from: dur_from(d.require("from_ps")?)?,
                until: dur_from(d.require("until_ps")?)?,
                extra_delay: dur_from(d.require("extra_delay_ps")?)?,
                loss: d.require("loss")?.as_f64()?,
            });
        }
    }
    if let Some(stragglers) = v.get("stragglers") {
        for s in stragglers.as_array()? {
            spec.stragglers.push(StragglerHost {
                host: s.require("host")?.as_usize()?,
                from: dur_from(s.require("from_ps")?)?,
                until: dur_from(s.require("until_ps")?)?,
                rate_factor: s.require("rate_factor")?.as_f64()?,
            });
        }
    }
    Ok(spec)
}

fn trace_to_json(t: &MeasurementSpec) -> JsonValue {
    let mut pairs = Vec::new();
    if let Some(d) = t.queue_sample_interval {
        pairs.push(("queue_sample_interval_ps", dur_json(d)));
    }
    if let Some(h) = t.bottleneck_host {
        pairs.push(("bottleneck_host", JsonValue::UInt(h as u64)));
    }
    if let Some(d) = t.trace_interval {
        pairs.push(("trace_interval_ps", dur_json(d)));
    }
    if let Some(d) = t.goodput_bin {
        pairs.push(("goodput_bin_ps", dur_json(d)));
    }
    obj(pairs)
}

fn trace_from_json(v: &JsonValue) -> Result<MeasurementSpec, JsonError> {
    let mut t = MeasurementSpec::default();
    if let Some(d) = v.get("queue_sample_interval_ps") {
        t.queue_sample_interval = Some(dur_from(d)?);
    }
    if let Some(h) = v.get("bottleneck_host") {
        t.bottleneck_host = Some(h.as_usize()?);
    }
    if let Some(d) = v.get("trace_interval_ps") {
        t.trace_interval = Some(dur_from(d)?);
    }
    if let Some(d) = v.get("goodput_bin_ps") {
        t.goodput_bin = Some(dur_from(d)?);
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rich_spec() -> ScenarioSpec {
        ScenarioSpec::new(
            "fig11 HPCC",
            TopologyChoice::FatTree(FatTreeParams::small()),
            CcSpec::by_label("HPCC"),
            Duration::from_ms(10),
        )
        .with_workload(WorkloadSpec::poisson(CdfSpec::FbHadoop, 0.3))
        .with_workload(WorkloadSpec::incast(16, 500_000, 0.02))
        .with_seed(42)
        .with_flow_control(FlowControlMode::LossyIrn)
        .with_buffer_bytes(16_000_000)
        .with_ecn(EcnConfig::thresholds_kb(12, 50))
        .with_queue_sampling(Duration::from_us(5))
        .with_goodput_bin(Duration::from_us(50))
    }

    #[test]
    fn json_round_trip_preserves_every_field() {
        let specs = vec![
            rich_spec(),
            ScenarioSpec::new(
                "2-to-1",
                TopologyChoice::star(3, Bandwidth::from_gbps(100)),
                CcSpec::Hpcc(HpccConfig {
                    use_rx_rate: true,
                    ..HpccConfig::default()
                }),
                Duration::from_ms(2),
            )
            .with_workload(WorkloadSpec::Explicit(vec![
                FlowDecl::new(1, 0, 2, 4_000_000, Duration::ZERO),
                FlowDecl::new(2, 1, 2, 4_000_000, Duration::from_us(50)),
            ]))
            .with_bottleneck_trace(2, Duration::from_us(1)),
            ScenarioSpec::new(
                "dcqcn timers",
                TopologyChoice::testbed_pod(),
                CcSpec::DcqcnTimers {
                    ti: Duration::from_us(300),
                    td: Duration::from_us(4),
                },
                Duration::from_ms(5),
            )
            .with_workload(WorkloadSpec::poisson(CdfSpec::Fixed(10_000), 0.2))
            .with_workload(WorkloadSpec::poisson(
                CdfSpec::Custom(vec![(1_000, 0.5), (2_000, 1.0)]),
                0.1,
            )),
        ];
        for spec in specs {
            let text = spec.to_json_string();
            let back = ScenarioSpec::from_json_str(&text).unwrap_or_else(|e| {
                panic!("{e} while parsing {text}");
            });
            assert_eq!(back, spec, "round trip changed {text}");
        }
    }

    #[test]
    fn pair_and_trace_workloads_round_trip_through_json() {
        let spec = ScenarioSpec::new(
            "locality+skew+trace",
            TopologyChoice::FatTree(FatTreeParams::small()),
            CcSpec::by_label("HPCC"),
            Duration::from_ms(2),
        )
        .with_workload(WorkloadSpec::poisson_with_pairs(
            CdfSpec::FbHadoop,
            0.3,
            PairSpec::Locality(LocalitySpec::IntraRack { fraction: 0.8 }),
        ))
        .with_workload(WorkloadSpec::Poisson {
            cdf: CdfSpec::WebSearch,
            load: 0.1,
            first_flow_id: 5_000_000,
            pairs: PairSpec::Locality(LocalitySpec::Matrix {
                rows: vec![vec![0.5, 0.5, 0.0, 0.0]; 4],
            }),
            prio: PrioritySpec::ShortFlows { threshold: 30_000 },
        })
        .with_workload(WorkloadSpec::poisson_with_pairs(
            CdfSpec::Fixed(1_000),
            0.05,
            PairSpec::Skew(SkewSpec::new(1.25)),
        ))
        .with_workload(WorkloadSpec::Trace {
            trace: TraceSpec::Path("flows.csv".into()),
            first_flow_id: 20_000_000,
        })
        .with_workload(WorkloadSpec::trace_inline(vec![
            TraceRecord::new(Duration::from_ps(1_500_250), 0, 3, 64_000),
            TraceRecord {
                start: Duration::from_us(2),
                src: 2,
                dst: 1,
                bytes: 500,
                prio: hpcc_types::FlowPriority::LatencySensitive,
            },
        ]));
        let text = spec.to_json_string();
        let back = ScenarioSpec::from_json_str(&text)
            .unwrap_or_else(|e| panic!("{e} while parsing {text}"));
        assert_eq!(back, spec, "round trip changed {text}");
        // Uniform pairs are canonical-omitted: the key only appears for the
        // non-default samplers.
        let uniform = rich_spec().to_json_string();
        assert!(!uniform.contains("\"pairs\""), "{uniform}");
        assert_eq!(text.matches("\"pairs\"").count(), 3, "{text}");
    }

    #[test]
    fn queueing_specs_round_trip_through_json() {
        let base = || {
            ScenarioSpec::new(
                "multi-class",
                TopologyChoice::star(4, Bandwidth::from_gbps(25)),
                CcSpec::by_label("HPCC"),
                Duration::from_ms(1),
            )
        };
        for q in [
            QueueingSpec::legacy(),
            QueueingSpec::strict_priority(4),
            QueueingSpec::dwrr(vec![4, 2, 1]),
            QueueingSpec::pias(vec![50_000, 1_000_000]),
            QueueingSpec::dwrr(vec![2, 1]).with_ecn_scale(vec![1.0, 0.25]),
        ] {
            let spec = base().with_queueing(q.clone());
            let text = spec.to_json_string();
            assert!(text.contains("\"queueing\""), "{text}");
            let back = ScenarioSpec::from_json_str(&text)
                .unwrap_or_else(|e| panic!("{e} while parsing {text}"));
            assert_eq!(back, spec, "round trip changed {text}");
            assert_eq!(back.queueing.as_ref().unwrap().label(), q.label());
        }
        // Omitted queueing is canonical-omitted: no key in the JSON, and a
        // manifest without the key parses back to None.
        let plain = base();
        let text = plain.to_json_string();
        assert!(!text.contains("queueing"), "{text}");
        assert_eq!(ScenarioSpec::from_json_str(&text).unwrap().queueing, None);
    }

    #[test]
    fn queueing_labels_and_class_counts() {
        assert_eq!(QueueingSpec::legacy().label(), "SP-1");
        assert_eq!(QueueingSpec::legacy().classes(), 1);
        assert_eq!(QueueingSpec::strict_priority(3).label(), "SP-3");
        assert_eq!(QueueingSpec::dwrr(vec![1, 1]).classes(), 2);
        assert_eq!(QueueingSpec::pias(vec![10, 20]).label(), "PIAS-3");
        assert_eq!(QueueingSpec::pias(vec![10, 20]).classes(), 3);
    }

    #[test]
    fn malformed_queueing_specs_are_typed_build_errors() {
        let base = |q: QueueingSpec| {
            ScenarioSpec::new(
                "bad queueing",
                TopologyChoice::star(3, Bandwidth::from_gbps(25)),
                CcSpec::by_label("HPCC"),
                Duration::from_ms(1),
            )
            .with_workload(WorkloadSpec::poisson(CdfSpec::Fixed(1_000), 0.1))
            .with_queueing(q)
        };
        let cases: Vec<(QueueingSpec, &str)> = vec![
            (QueueingSpec::strict_priority(0), "data_classes"),
            (QueueingSpec::strict_priority(9), "data_classes"),
            (QueueingSpec::dwrr(vec![]), "data_classes"),
            (QueueingSpec::dwrr(vec![1, 0]), ">= 1"),
            (QueueingSpec::pias(vec![200, 100]), "increasing"),
            (
                QueueingSpec::strict_priority(2).with_ecn_scale(vec![1.0]),
                "ecn_scale",
            ),
            (
                QueueingSpec::strict_priority(2).with_ecn_scale(vec![1.0, f64::NAN]),
                "positive",
            ),
        ];
        for (q, needle) in cases {
            let err = match base(q.clone()).try_build() {
                Err(e) => e,
                Ok(_) => panic!("{q:?} must fail"),
            };
            assert!(err.to_string().contains("queueing"), "{q:?} -> {err}");
            assert!(err.to_string().contains(needle), "{q:?} -> {err}");
        }
        // A valid multi-class spec resolves and runs.
        let ok = base(QueueingSpec::pias(vec![10_000]));
        assert_eq!(ok.try_build().unwrap().config().queueing.data_classes, 2);
    }

    #[test]
    fn manifests_without_a_pairs_key_parse_as_uniform() {
        // A pre-locality manifest (the exact shape older versions emitted)
        // must keep parsing — and keep meaning uniform pairs.
        let old = r#"{"name":"legacy","topology":{"kind":"Star","hosts":4,"host_bw_bps":25000000000,"link_delay_ps":1000000},"cc":{"kind":"Label","label":"HPCC"},"workloads":[{"kind":"Poisson","cdf":"WebSearch","load":0.3,"first_flow_id":0}],"duration_ps":1000000000,"seed":1,"flow_control":"PFC","trace":{}}"#;
        let spec = ScenarioSpec::from_json_str(old).unwrap();
        match &spec.workloads[0] {
            WorkloadSpec::Poisson { pairs, .. } => assert_eq!(*pairs, PairSpec::Uniform),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn invalid_workloads_are_typed_build_errors_not_panics() {
        // A locality matrix whose shape cannot match the topology's racks.
        let bad_matrix = ScenarioSpec::new(
            "bad",
            TopologyChoice::star(4, Bandwidth::from_gbps(25)),
            CcSpec::by_label("HPCC"),
            Duration::from_ms(1),
        )
        .with_workload(WorkloadSpec::poisson_with_pairs(
            CdfSpec::Fixed(1_000),
            0.1,
            PairSpec::Locality(LocalitySpec::Matrix {
                rows: vec![vec![0.5, 0.5], vec![0.5, 0.5]],
            }),
        ));
        let err = match bad_matrix.try_build() {
            Err(e) => e,
            Ok(_) => panic!("must fail"),
        };
        assert!(err.to_string().contains("workload 0"), "{err}");
        assert!(err.to_string().contains("rows"), "{err}");
        // A missing trace file.
        let missing = ScenarioSpec::new(
            "missing",
            TopologyChoice::star(4, Bandwidth::from_gbps(25)),
            CcSpec::by_label("HPCC"),
            Duration::from_ms(1),
        )
        .with_workload(WorkloadSpec::trace_file("/nonexistent/p.csv"));
        let err = match missing.try_build() {
            Err(e) => e,
            Ok(_) => panic!("must fail"),
        };
        assert!(err.to_string().contains("cannot read"), "{err}");
        // A trace record pointing outside the host list, with its line.
        let out_of_range = ScenarioSpec::new(
            "oor",
            TopologyChoice::star(3, Bandwidth::from_gbps(25)),
            CcSpec::by_label("HPCC"),
            Duration::from_ms(1),
        )
        .with_workload(WorkloadSpec::trace_inline(vec![
            TraceRecord::new(Duration::ZERO, 0, 1, 10),
            TraceRecord::new(Duration::ZERO, 0, 9, 10),
        ]));
        let err = match out_of_range.try_build() {
            Err(e) => e,
            Ok(_) => panic!("must fail"),
        };
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(err.to_string().contains("out of range"), "{err}");
        // Manifest-supplied generator parameters that used to hit asserts
        // are typed errors too: load range, malformed custom CDFs, incast
        // parameters, and out-of-range explicit host indices.
        let base = |w: WorkloadSpec| {
            ScenarioSpec::new(
                "param",
                TopologyChoice::star(4, Bandwidth::from_gbps(25)),
                CcSpec::by_label("HPCC"),
                Duration::from_ms(1),
            )
            .with_workload(w)
        };
        let cases: Vec<(WorkloadSpec, &str)> = vec![
            (
                WorkloadSpec::poisson(CdfSpec::WebSearch, 1.5),
                "not in (0, 1]",
            ),
            (
                WorkloadSpec::poisson(CdfSpec::WebSearch, 0.0),
                "not in (0, 1]",
            ),
            (
                WorkloadSpec::poisson(CdfSpec::Custom(vec![(10, 0.5)]), 0.3),
                "end at probability 1.0",
            ),
            (
                WorkloadSpec::poisson(CdfSpec::Custom(vec![(10, 0.6), (20, 0.4), (30, 1.0)]), 0.3),
                "non-decreasing",
            ),
            (
                WorkloadSpec::poisson(CdfSpec::Custom(vec![]), 0.3),
                "at least one point",
            ),
            (WorkloadSpec::incast(0, 500_000, 0.02), "fan_in"),
            (WorkloadSpec::incast(8, 500_000, 0.0), "capacity fraction"),
            (
                WorkloadSpec::Explicit(vec![FlowDecl::new(1, 0, 9, 100, Duration::ZERO)]),
                "dst_host index 9 out of range",
            ),
        ];
        for (w, needle) in cases {
            let err = match base(w.clone()).try_build() {
                Err(e) => e,
                Ok(_) => panic!("{w:?} must fail"),
            };
            assert!(err.to_string().contains(needle), "{w:?} -> {err}");
        }
    }

    #[test]
    fn freezing_a_generated_scenario_reproduces_its_flows() {
        let spec = rich_spec();
        let frozen = spec.freeze().unwrap();
        // Generators became inline traces; nothing else moved.
        assert_eq!(frozen.workloads.len(), spec.workloads.len());
        for w in &frozen.workloads {
            assert!(matches!(w, WorkloadSpec::Trace { .. }), "{w:?}");
        }
        assert_eq!(frozen.seed, spec.seed);
        // The frozen spec builds the bit-identical flow list (ids included)…
        let original = spec.build();
        let replayed = frozen.build();
        assert_eq!(original.flows(), replayed.flows());
        // …and survives a manifest round trip intact.
        let back = ScenarioSpec::from_json_str(&frozen.to_json_string()).unwrap();
        assert_eq!(back, frozen);
        assert_eq!(back.build().flows(), original.flows());
    }

    #[test]
    fn locality_pairs_change_flows_but_stay_deterministic() {
        let base = |pairs: PairSpec| {
            ScenarioSpec::new(
                "loc",
                TopologyChoice::FatTree(FatTreeParams::small()),
                CcSpec::by_label("HPCC"),
                Duration::from_ms(2),
            )
            .with_seed(9)
            .with_workload(WorkloadSpec::poisson_with_pairs(
                CdfSpec::FbHadoop,
                0.3,
                pairs,
            ))
        };
        let uniform = base(PairSpec::Uniform).build();
        let local = base(PairSpec::Locality(LocalitySpec::IntraRack {
            fraction: 1.0,
        }))
        .build();
        assert_ne!(uniform.flows(), local.flows());
        // Determinism: building twice is identical.
        assert_eq!(
            local.flows(),
            base(PairSpec::Locality(LocalitySpec::IntraRack {
                fraction: 1.0
            }))
            .build()
            .flows()
        );
        // All-intra-rack flows never leave their ToR: with 4 hosts per rack
        // in the small Clos fabric, src/dst indices share the rack of 4.
        let topo = local.topology();
        let rack_of = topo.host_rack_ids();
        let index_of = |n: hpcc_types::NodeId| topo.hosts().iter().position(|&h| h == n).unwrap();
        for f in local.flows() {
            assert_eq!(rack_of[index_of(f.src)], rack_of[index_of(f.dst)]);
        }
    }

    #[test]
    fn build_is_deterministic_across_calls() {
        let spec = rich_spec();
        let a = spec.build();
        let b = spec.build();
        assert_eq!(a.flows(), b.flows());
        assert_eq!(a.label(), b.label());
        assert_eq!(a.config().seed, 42);
        assert_eq!(a.config().buffer_bytes, 16_000_000);
        assert_eq!(a.config().ecn.unwrap().kmin_bytes, 12_000);
        assert!(!a.flows().is_empty());
    }

    #[test]
    fn workload_streams_are_independent() {
        // Each workload draws from its own seed stream (derived from the
        // scenario seed and the workload's index), so changing the *content*
        // of workload 0 must not perturb the flows workload 1 generates.
        let incast_flows = |background_load: f64| {
            let mut s = rich_spec();
            s.workloads = vec![
                WorkloadSpec::poisson(CdfSpec::FbHadoop, background_load),
                WorkloadSpec::incast(16, 500_000, 0.02),
            ];
            let exp = s.build();
            let mut flows: Vec<_> = exp
                .flows()
                .iter()
                .filter(|f| f.id.raw() >= 10_000_000)
                .copied()
                .collect();
            flows.sort_by_key(|f| f.id);
            flows
        };
        let a = incast_flows(0.3);
        let b = incast_flows(0.5);
        assert!(!a.is_empty());
        assert_eq!(a, b);
    }

    #[test]
    fn label_resolution_uses_topology_line_rate() {
        let spec = ScenarioSpec::new(
            "dcqcn",
            TopologyChoice::testbed_pod(),
            CcSpec::by_label("DCQCN"),
            Duration::from_ms(1),
        );
        let exp = spec.build();
        // DCQCN on a 25G pod gets the 25G-scaled ECN thresholds.
        assert_eq!(exp.config().ecn.unwrap().kmin_bytes, 100_000);
        assert_eq!(spec.scheme_label(), "DCQCN");
    }

    #[test]
    fn explicit_flows_resolve_host_indices() {
        let spec = ScenarioSpec::new(
            "pair",
            TopologyChoice::star(4, Bandwidth::from_gbps(25)),
            CcSpec::by_label("HPCC"),
            Duration::from_ms(1),
        )
        .with_workload(WorkloadSpec::Explicit(vec![FlowDecl::new(
            7,
            1,
            3,
            1_000,
            Duration::from_us(3),
        )]));
        let exp = spec.build();
        let hosts = exp.topology().hosts();
        assert_eq!(exp.flows().len(), 1);
        let f = exp.flows()[0];
        assert_eq!(f.id, FlowId(7));
        assert_eq!(f.src, hosts[1]);
        assert_eq!(f.dst, hosts[3]);
        assert_eq!(f.start, SimTime::ZERO + Duration::from_us(3));
    }
}
