//! HPCC sender algorithm — Algorithm 1 of the paper.
//!
//! The sender keeps, per flow, a current window `W`, a *reference* window
//! `W^c` refreshed once per RTT, an EWMA estimate `U` of the normalized
//! inflight bytes of the most-congested link on the path, and the INT records
//! `L` from the previous acknowledgement. On every ACK it recomputes
//!
//! ```text
//! U  = max over links j of ( qlen_j / (B_j * T) + txRate_j / B_j )   (EWMA)
//! W  = W^c / (U / eta) + W_AI          if U >= eta or incStage >= maxStage
//! W  = W^c + W_AI                      otherwise (additive-increase stage)
//! R  = W / T
//! ```
//!
//! and refreshes `W^c := W` only when the ACK acknowledges the first packet
//! sent after the previous refresh ("fast reaction without overreaction",
//! §3.2, Figure 5). The per-ACK-only and per-RTT-only ablations of §5.4
//! (Figure 13) and the rxRate signal variant of §3.4 (Figure 6) are selected
//! with [`HpccReactionMode`] and [`HpccConfig::use_rx_rate`].

use crate::api::{clamp_rate, AckEvent, CongestionControl, FlowRateState};
use hpcc_types::{Bandwidth, Duration, IntHeader, SimTime};

/// How the sender combines per-ACK and per-RTT reactions (§3.2 / §5.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum HpccReactionMode {
    /// The paper's design: react on every ACK, but against a reference
    /// window that is refreshed once per RTT.
    #[default]
    Combined,
    /// Ablation: blindly react on every ACK (the overreacting strawman of
    /// Figure 5 / Figure 13 "per-ACK").
    PerAck,
    /// Ablation: only react once per RTT (Figure 13 "per-RTT").
    PerRtt,
}

/// Tunable parameters of HPCC (§3.3: only three are operator-facing).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HpccConfig {
    /// Target utilization `eta` (paper default 95%).
    pub eta: f64,
    /// Maximum number of consecutive additive-increase rounds before a
    /// multiplicative adjustment is forced (`maxStage`, paper default 5).
    pub max_stage: u32,
    /// Additive-increase step `W_AI` in bytes. The paper's rule of thumb is
    /// `W_AI = Winit * (1 - eta) / N` for `N` expected concurrent flows.
    pub wai: u64,
    /// Reaction-mode ablation switch.
    pub mode: HpccReactionMode,
    /// Use the rxRate (arrival-rate) signal instead of txRate (Figure 6
    /// ablation). The paper shows this oscillates.
    pub use_rx_rate: bool,
    /// Minimum pacing rate the algorithm will not go below.
    pub min_rate: Bandwidth,
}

impl Default for HpccConfig {
    fn default() -> Self {
        HpccConfig {
            eta: 0.95,
            max_stage: 5,
            wai: 80,
            mode: HpccReactionMode::Combined,
            use_rx_rate: false,
            min_rate: Bandwidth::from_mbps(100),
        }
    }
}

impl HpccConfig {
    /// The paper's rule of thumb for `W_AI` (§3.3): the total additive
    /// increase of `n_flows` concurrent flows per round should not exceed the
    /// bandwidth headroom `(1 - eta) * Winit`.
    pub fn wai_for_flows(line_rate: Bandwidth, base_rtt: Duration, eta: f64, n_flows: u64) -> u64 {
        let winit = line_rate.bdp_bytes(base_rtt) as f64;
        ((winit * (1.0 - eta)) / n_flows.max(1) as f64).max(1.0) as u64
    }
}

/// Per-link snapshot kept from the previous acknowledgement (`L` in
/// Algorithm 1).
#[derive(Clone, Copy, Debug, Default)]
struct LinkSnapshot {
    ts: SimTime,
    tx_bytes: u64,
    rx_bytes: u64,
    qlen: u64,
}

/// HPCC congestion control for one flow.
#[derive(Debug)]
pub struct Hpcc {
    cfg: HpccConfig,
    line_rate: Bandwidth,
    base_rtt: Duration,
    /// Initial (and maximum) window: `B_NIC * T` plus one MTU of slack.
    w_init: u64,
    w_min: u64,
    /// Current window (bytes). Kept as f64 to avoid systematic rounding bias
    /// across many multiplicative updates.
    window: f64,
    /// Reference window `W^c`.
    w_c: f64,
    /// EWMA of the normalized inflight bytes of the most loaded link.
    u_est: f64,
    inc_stage: u32,
    last_update_seq: u64,
    /// INT records of the previous ACK (`L`), one per hop.
    last_hops: Vec<LinkSnapshot>,
    last_path_id: Option<u16>,
    rate: Bandwidth,
    /// Number of multiplicative (MI/MD) adjustments performed, exposed for
    /// tests and traces.
    pub mimd_updates: u64,
    /// Number of additive-increase adjustments performed.
    pub ai_updates: u64,
}

impl Hpcc {
    /// Create an HPCC instance for a flow on a NIC with `line_rate` and a
    /// network base RTT of `base_rtt` (the paper's `T`).
    pub fn new(cfg: HpccConfig, line_rate: Bandwidth, base_rtt: Duration, mtu: u64) -> Self {
        let w_init = line_rate.bdp_bytes(base_rtt) + mtu;
        let w_min = cfg.min_rate.bdp_bytes(base_rtt).max(1);
        Hpcc {
            cfg,
            line_rate,
            base_rtt,
            w_init,
            w_min,
            window: w_init as f64,
            w_c: w_init as f64,
            u_est: 1.0,
            inc_stage: 0,
            last_update_seq: 0,
            last_hops: Vec::new(),
            last_path_id: None,
            rate: line_rate,
            mimd_updates: 0,
            ai_updates: 0,
        }
    }

    /// The initial window `Winit = B_NIC * T` (+1 MTU), also the upper bound.
    pub fn w_init(&self) -> u64 {
        self.w_init
    }

    /// The current EWMA utilization estimate `U`.
    pub fn utilization_estimate(&self) -> f64 {
        self.u_est
    }

    /// The current reference window `W^c`.
    pub fn reference_window(&self) -> u64 {
        self.w_c as u64
    }

    /// Function `MeasureInflight(ack)` of Algorithm 1: update the EWMA `U`
    /// from the echoed INT records and the snapshot of the previous ACK.
    ///
    /// Returns `false` when no valid measurement could be made (very first
    /// ACK of the flow, or a path change that forces the per-link snapshot to
    /// be re-seeded); the caller must then skip the window update.
    fn measure_inflight(&mut self, int: &IntHeader) -> bool {
        let hops = int.hops();
        if hops.is_empty() {
            return false;
        }
        // Path change (ECMP reroute): discard stale per-link state (§4.1).
        if self.last_path_id != Some(int.path_id) || self.last_hops.len() != hops.len() {
            self.take_snapshot(int);
            return false;
        }

        let t_sec = self.base_rtt.as_secs_f64();
        let mut u_new = 0.0f64;
        let mut tau = self.base_rtt;
        let mut measured = false;
        for (hop, last) in hops.iter().zip(self.last_hops.iter()) {
            let dt = hop.ts.saturating_since(last.ts);
            if dt.is_zero() {
                // Two ACKs echoing the same egress timestamp carry no new
                // rate information for this hop.
                continue;
            }
            let dt_sec = dt.as_secs_f64();
            let byte_delta = if self.cfg.use_rx_rate {
                hop.rx_bytes.saturating_sub(last.rx_bytes)
            } else {
                hop.tx_bytes.saturating_sub(last.tx_bytes)
            };
            let rate_bps = byte_delta as f64 * 8.0 / dt_sec;
            let b_bps = hop.bandwidth.as_bps() as f64;
            if b_bps <= 0.0 {
                continue;
            }
            // Line 5: u' = min(qlen, qlen_last) / (B*T) + txRate / B.
            let qlen = hop.qlen.min(last.qlen) as f64;
            let u_hop = qlen * 8.0 / (b_bps * t_sec) + rate_bps / b_bps;
            if u_hop > u_new {
                u_new = u_hop;
                tau = dt;
            }
            measured = true;
        }
        if measured {
            // Line 8-9: tau = min(tau, T); U = (1 - tau/T) U + (tau/T) u.
            let tau = tau.min(self.base_rtt);
            let frac = tau / self.base_rtt;
            self.u_est = (1.0 - frac) * self.u_est + frac * u_new;
        }
        self.take_snapshot(int);
        true
    }

    fn take_snapshot(&mut self, int: &IntHeader) {
        self.last_hops.clear();
        for hop in int.hops() {
            self.last_hops.push(LinkSnapshot {
                ts: hop.ts,
                tx_bytes: hop.tx_bytes,
                rx_bytes: hop.rx_bytes,
                qlen: hop.qlen,
            });
        }
        self.last_path_id = Some(int.path_id);
    }

    /// Function `ComputeWind(U, updateWc)` of Algorithm 1.
    fn compute_wind(&mut self, update_wc: bool) {
        if self.u_est >= self.cfg.eta || self.inc_stage >= self.cfg.max_stage {
            // Multiplicative adjustment towards eta, plus the AI term.
            let k = (self.u_est / self.cfg.eta).max(f64::MIN_POSITIVE);
            self.window = self.w_c / k + self.cfg.wai as f64;
            self.mimd_updates += 1;
            if update_wc {
                self.inc_stage = 0;
                self.w_c = self.window;
            }
        } else {
            // Additive increase stage.
            self.window = self.w_c + self.cfg.wai as f64;
            self.ai_updates += 1;
            if update_wc {
                self.inc_stage += 1;
                self.w_c = self.window;
            }
        }
        self.clamp();
    }

    fn clamp(&mut self) {
        self.window = self.window.clamp(self.w_min as f64, self.w_init as f64);
        self.w_c = self.w_c.clamp(self.w_min as f64, self.w_init as f64);
        // R = W / T.
        let rate = Bandwidth::from_bps((self.window * 8.0 / self.base_rtt.as_secs_f64()) as u64);
        self.rate = clamp_rate(rate, self.cfg.min_rate, self.line_rate);
    }
}

impl CongestionControl for Hpcc {
    fn on_ack(&mut self, ack: &AckEvent<'_>) {
        if ack.int.hops().is_empty() {
            // No telemetry (INT disabled): HPCC cannot react; keep state.
            return;
        }
        if !self.measure_inflight(ack.int) {
            // First ACK of the flow or a rerouted path: only (re-)seed the
            // per-link snapshot, mirroring the "first RTT" branch of the
            // authors' implementation.
            return;
        }
        match self.cfg.mode {
            HpccReactionMode::Combined => {
                // Procedure NewAck, lines 21-27: a full update (refreshing
                // the reference window) once per round, a fast reaction
                // against the unchanged reference otherwise.
                if ack.ack_seq > self.last_update_seq {
                    self.compute_wind(true);
                    self.last_update_seq = ack.snd_nxt;
                } else {
                    self.compute_wind(false);
                }
            }
            HpccReactionMode::PerAck => {
                // Blindly refresh the reference window on every ACK: this is
                // the overreacting behaviour of Figure 5.
                self.compute_wind(true);
                self.last_update_seq = ack.snd_nxt;
            }
            HpccReactionMode::PerRtt => {
                // Only adjust when the first packet of the current round is
                // acknowledged; information from other ACKs only enters the
                // EWMA.
                if ack.ack_seq > self.last_update_seq {
                    self.compute_wind(true);
                    self.last_update_seq = ack.snd_nxt;
                }
            }
        }
    }

    fn on_loss(&mut self, _now: SimTime) {
        // HPCC does not have an explicit loss term: losses are prevented by
        // PFC or recovered by the transport. The window keeps following INT.
    }

    fn state(&self) -> FlowRateState {
        FlowRateState {
            window: self.window as u64,
            rate: self.rate,
        }
    }

    fn name(&self) -> &'static str {
        match (self.cfg.mode, self.cfg.use_rx_rate) {
            (HpccReactionMode::Combined, false) => "HPCC",
            (HpccReactionMode::Combined, true) => "HPCC-rxRate",
            (HpccReactionMode::PerAck, _) => "HPCC-perACK",
            (HpccReactionMode::PerRtt, _) => "HPCC-perRTT",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcc_types::{IntHopRecord, MAX_INT_HOPS};

    const LINE: Bandwidth = Bandwidth::from_gbps(100);
    const RTT: Duration = Duration::from_us(13);
    const MTU: u64 = 1000;

    fn make(cfg: HpccConfig) -> Hpcc {
        Hpcc::new(cfg, LINE, RTT, MTU)
    }

    /// Build an INT header with a single hop carrying the given load.
    fn int_one_hop(ts_us: u64, tx_bytes: u64, qlen: u64) -> IntHeader {
        let mut h = IntHeader::new();
        h.push_hop(
            1,
            IntHopRecord {
                bandwidth: LINE,
                ts: SimTime::from_us(ts_us),
                tx_bytes,
                rx_bytes: tx_bytes,
                qlen,
            },
        );
        h
    }

    fn ack<'a>(now_us: u64, ack_seq: u64, snd_nxt: u64, int: &'a IntHeader) -> AckEvent<'a> {
        AckEvent {
            now: SimTime::from_us(now_us),
            ack_seq,
            snd_nxt,
            newly_acked: 1000,
            ecn_echo: false,
            rtt: RTT,
            int,
        }
    }

    /// Bytes a 100 Gbps link transmits in `us` microseconds.
    fn bytes_at_line_rate(us: u64) -> u64 {
        LINE.bytes_in(Duration::from_us(us))
    }

    #[test]
    fn starts_at_line_rate_with_bdp_window() {
        let h = make(HpccConfig::default());
        let s = h.state();
        assert_eq!(s.rate, LINE);
        assert_eq!(s.window, LINE.bdp_bytes(RTT) + MTU);
    }

    #[test]
    fn congested_link_causes_multiplicative_decrease() {
        let mut h = make(HpccConfig::default());
        let w0 = h.state().window;
        // First ACK only establishes the snapshot L (it already reports the
        // standing queue so that the min-filter of Line 5 keeps it).
        let i0 = int_one_hop(10, 0, LINE.bdp_bytes(RTT));
        h.on_ack(&ack(10, 1000, 2000, &i0));
        assert_eq!(h.state().window, w0);
        // Second ACK: link fully busy (tx at line rate) with a deep queue of
        // one BDP → U ≈ qlen/(B*T) + 1 ≈ 2 → window roughly halves.
        let i1 = int_one_hop(23, bytes_at_line_rate(13), LINE.bdp_bytes(RTT));
        h.on_ack(&ack(23, 2000, 4000, &i1));
        let w1 = h.state().window;
        assert!(
            w1 < w0 * 6 / 10,
            "expected strong decrease, got {w1} vs {w0}"
        );
        assert!(h.utilization_estimate() > 1.5);
        assert!(h.state().rate < LINE);
    }

    #[test]
    fn idle_link_triggers_additive_then_multiplicative_increase() {
        let mut h = make(HpccConfig {
            wai: 800,
            ..HpccConfig::default()
        });
        // Drive the window down first.
        let i0 = int_one_hop(10, 0, LINE.bdp_bytes(RTT) * 2);
        h.on_ack(&ack(10, 1000, 2000, &i0));
        let i1 = int_one_hop(23, bytes_at_line_rate(13), LINE.bdp_bytes(RTT) * 2);
        h.on_ack(&ack(23, 2000, 4000, &i1));
        let w_low = h.state().window;
        assert!(w_low < h.w_init() / 2);

        // Now the link goes almost idle: 20% utilization, empty queue.
        let mut prev_tx = bytes_at_line_rate(13);
        let mut seq = 4000;
        let mut ts = 23;
        let mut windows = Vec::new();
        for round in 0..(h.cfg.max_stage + 3) {
            ts += 13;
            prev_tx += bytes_at_line_rate(13) / 5;
            let i = int_one_hop(ts, prev_tx, 0);
            // Each ACK opens a new round: the acknowledged sequence moves
            // past the snd_nxt recorded at the previous round opening.
            seq += 100_000;
            h.on_ack(&ack(ts, seq, seq + 50_000, &i));
            windows.push(h.state().window);
            let _ = round;
        }
        // During the first maxStage rounds the growth is additive (small
        // steps of W_AI); once incStage exceeds maxStage the multiplicative
        // term kicks in and the window jumps far more than W_AI.
        let ai_step = windows[1].saturating_sub(windows[0]);
        assert!(ai_step <= 2 * 800, "additive step too large: {ai_step}");
        let max_jump = windows
            .windows(2)
            .map(|w| w[1].saturating_sub(w[0]))
            .max()
            .unwrap();
        assert!(
            max_jump > 10 * 800,
            "expected a multiplicative jump after maxStage rounds, max step {max_jump}"
        );
        assert!(h.mimd_updates >= 2);
        assert!(h.ai_updates >= 1);
    }

    #[test]
    fn no_overreaction_within_one_rtt() {
        // Figure 5: ACKs within the same round all react against the same
        // reference window Wc, so two fast-react ACKs reporting the same
        // congested queue compute the same window (W(2) = W(1)), instead of
        // compounding the decrease.
        let mut h = make(HpccConfig::default());
        let q = LINE.bdp_bytes(RTT);
        let i0 = int_one_hop(10, 0, q);
        h.on_ack(&ack(10, 1000, 200_000, &i0));
        // Round-opening ACK: refreshes Wc and lastUpdateSeq (= 200_000).
        let i1 = int_one_hop(23, bytes_at_line_rate(13), q);
        h.on_ack(&ack(23, 2000, 200_000, &i1));
        let wc = h.reference_window();
        // Two fast-react ACKs in the same round reporting the same state.
        let i2 = int_one_hop(24, bytes_at_line_rate(14), q);
        h.on_ack(&ack(24, 3000, 200_000, &i2));
        let w_first = h.state().window;
        let i3 = int_one_hop(25, bytes_at_line_rate(15), q);
        h.on_ack(&ack(25, 4000, 200_000, &i3));
        let w_second = h.state().window;
        assert_eq!(
            h.reference_window(),
            wc,
            "Wc must not change within a round"
        );
        let diff = w_first.abs_diff(w_second);
        assert!(
            diff * 100 <= w_first.max(1),
            "fast-react windows differ: {w_first} vs {w_second}"
        );
    }

    #[test]
    fn per_ack_mode_overreacts() {
        let mut combined = make(HpccConfig::default());
        let mut per_ack = make(HpccConfig {
            mode: HpccReactionMode::PerAck,
            ..HpccConfig::default()
        });
        let q = LINE.bdp_bytes(RTT);
        let i0 = int_one_hop(10, 0, 0);
        for h in [&mut combined, &mut per_ack] {
            h.on_ack(&ack(10, 1000, 200_000, &i0));
        }
        // Deliver a run of ACKs inside one RTT all reporting a saturated
        // queue; per-ACK mode compounds the decrease, combined does not.
        for k in 0..8u64 {
            let i = int_one_hop(23 + k, bytes_at_line_rate(13 + k), q);
            let a = ack(23 + k, 2000 + k * 1000, 200_000, &i);
            combined.on_ack(&a);
            per_ack.on_ack(&a);
        }
        assert!(
            per_ack.state().window * 3 < combined.state().window,
            "per-ACK ({}) should collapse well below combined ({})",
            per_ack.state().window,
            combined.state().window
        );
    }

    #[test]
    fn per_rtt_mode_reacts_once_per_round() {
        let mut h = make(HpccConfig {
            mode: HpccReactionMode::PerRtt,
            ..HpccConfig::default()
        });
        let q = LINE.bdp_bytes(RTT);
        let i0 = int_one_hop(10, 0, 0);
        h.on_ack(&ack(10, 1000, 200_000, &i0));
        let i1 = int_one_hop(23, bytes_at_line_rate(13), q);
        h.on_ack(&ack(23, 2000, 200_000, &i1));
        let w1 = h.state().window;
        assert!(w1 < h.w_init());
        // Subsequent ACKs within the same round change nothing.
        let i2 = int_one_hop(24, bytes_at_line_rate(14), q);
        h.on_ack(&ack(24, 3000, 200_000, &i2));
        assert_eq!(h.state().window, w1);
    }

    #[test]
    fn path_change_resets_measurement() {
        let mut h = make(HpccConfig::default());
        let i0 = int_one_hop(10, 0, 0);
        h.on_ack(&ack(10, 1000, 2000, &i0));
        // Same structure but a different path id (rerouted flow).
        let mut i1 = int_one_hop(23, bytes_at_line_rate(13), LINE.bdp_bytes(RTT));
        i1.path_id = 0xbeef;
        let w0 = h.state().window;
        h.on_ack(&ack(23, 2000, 4000, &i1));
        // The reroute ACK only re-seeds the snapshot; no window change even
        // though it reports a congested hop.
        assert_eq!(h.state().window, w0);
        // The next ACK on the new path measures against the fresh snapshot
        // and reacts normally.
        let mut i2 = int_one_hop(36, 2 * bytes_at_line_rate(13), LINE.bdp_bytes(RTT));
        i2.path_id = 0xbeef;
        h.on_ack(&ack(36, 3000, 6000, &i2));
        assert!(h.state().window < w0);
    }

    #[test]
    fn identical_timestamps_do_not_divide_by_zero() {
        let mut h = make(HpccConfig::default());
        let i0 = int_one_hop(10, 5000, 100);
        h.on_ack(&ack(10, 1000, 2000, &i0));
        // Same egress timestamp: hop is skipped, no NaN/panic.
        let i1 = int_one_hop(10, 5000, 100);
        h.on_ack(&ack(11, 2000, 4000, &i1));
        assert!(h.utilization_estimate().is_finite());
        assert!(h.state().window >= 1);
    }

    #[test]
    fn window_stays_within_bounds_under_random_feedback() {
        // Property-style bound check with a deterministic pseudo-random walk.
        let mut h = make(HpccConfig::default());
        let mut x: u64 = 0x12345678;
        let mut ts = 10u64;
        let mut tx = 0u64;
        let mut seq = 0u64;
        let i0 = int_one_hop(ts, tx, 0);
        h.on_ack(&ack(ts, 1, 2, &i0));
        for _ in 0..500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let dt = 1 + (x >> 33) % 20;
            ts += dt;
            tx += (x >> 17) % (2 * bytes_at_line_rate(dt));
            let qlen = (x >> 5) % (4 * LINE.bdp_bytes(RTT));
            seq += 1 + (x % 3) * 50_000;
            let i = int_one_hop(ts, tx, qlen);
            h.on_ack(&ack(ts, seq, seq + 100_000, &i));
            let w = h.state().window;
            assert!(w >= h.w_min, "window {w} below floor");
            assert!(w <= h.w_init(), "window {w} above Winit");
            assert!(h.utilization_estimate().is_finite());
            assert!(h.state().rate <= LINE);
            assert!(h.state().rate >= HpccConfig::default().min_rate);
        }
    }

    #[test]
    fn wai_rule_of_thumb_matches_paper_example() {
        // §5.4: 16 flows at 100 Gbps, 4 us base RTT, eta = 0.95 →
        // WAI must not exceed ~150 bytes; §5.1 footnote: 100 flows → 80 B
        // (the paper rounds 162500*0.05/100 ≈ 81 down to 80).
        let w16 = HpccConfig::wai_for_flows(LINE, Duration::from_us(4), 0.95, 16);
        assert!((140..=160).contains(&w16), "wai for 16 flows = {w16}");
        let w100 = HpccConfig::wai_for_flows(LINE, Duration::from_us(13), 0.95, 100);
        assert!((75..=85).contains(&w100), "wai for 100 flows = {w100}");
    }

    #[test]
    fn ignores_acks_without_int() {
        let mut h = make(HpccConfig::default());
        let empty = IntHeader::new();
        let w0 = h.state().window;
        h.on_ack(&ack(10, 1000, 2000, &empty));
        assert_eq!(h.state().window, w0);
    }

    #[test]
    fn names_reflect_variants() {
        assert_eq!(make(HpccConfig::default()).name(), "HPCC");
        assert_eq!(
            make(HpccConfig {
                use_rx_rate: true,
                ..HpccConfig::default()
            })
            .name(),
            "HPCC-rxRate"
        );
        assert_eq!(
            make(HpccConfig {
                mode: HpccReactionMode::PerAck,
                ..HpccConfig::default()
            })
            .name(),
            "HPCC-perACK"
        );
    }

    #[test]
    fn multi_hop_reacts_to_most_congested_link() {
        let mut h = make(HpccConfig::default());
        let mk = |ts: u64, tx0: u64, q0: u64, tx1: u64, q1: u64| {
            let mut hdr = IntHeader::new();
            hdr.push_hop(
                1,
                IntHopRecord {
                    bandwidth: LINE,
                    ts: SimTime::from_us(ts),
                    tx_bytes: tx0,
                    rx_bytes: tx0,
                    qlen: q0,
                },
            );
            hdr.push_hop(
                2,
                IntHopRecord {
                    bandwidth: LINE,
                    ts: SimTime::from_us(ts),
                    tx_bytes: tx1,
                    rx_bytes: tx1,
                    qlen: q1,
                },
            );
            hdr
        };
        let i0 = mk(10, 0, 0, 0, LINE.bdp_bytes(RTT));
        h.on_ack(&ack(10, 1000, 2000, &i0));
        // Hop 0 is nearly idle, hop 1 is saturated with a deep queue: the
        // congested hop must dominate the decision.
        let i1 = mk(
            23,
            bytes_at_line_rate(13) / 10,
            0,
            bytes_at_line_rate(13),
            LINE.bdp_bytes(RTT),
        );
        h.on_ack(&ack(23, 2000, 4000, &i1));
        assert!(h.utilization_estimate() > 1.5);
        assert!(h.state().window < h.w_init() * 6 / 10);
        assert!(h.last_hops.len() == 2 && h.last_hops.capacity() <= MAX_INT_HOPS * 2);
    }
}
