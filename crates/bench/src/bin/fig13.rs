//! Regenerate Figure 13 (per-ACK vs per-RTT vs HPCC reaction).
//! Usage: `cargo run --release -p hpcc-bench --bin fig13 [duration_ms]`
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ms = hpcc_bench::arg_or(&args, 1, 2u64);
    print!("{}", hpcc_bench::figures::fig13(ms));
}
