//! Percentile helpers.

/// Compute the `p`-th percentile (0–100) of a slice using nearest-rank on a
/// sorted copy. Returns `None` for an empty slice.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    // total_cmp gives a total order even in the presence of NaN (NaN sorts
    // above every number), where partial_cmp would silently produce an
    // arbitrary order.
    sorted.sort_unstable_by(f64::total_cmp);
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    let idx = rank.max(1).min(sorted.len()) - 1;
    Some(sorted[idx])
}

/// Median / 95th / 99th percentiles of a set of values (the three the paper
/// reports for FCT slowdowns).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Percentiles {
    /// Number of samples.
    pub count: usize,
    /// Median (50th percentile).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Mean.
    pub mean: f64,
    /// Maximum.
    pub max: f64,
}

impl Percentiles {
    /// Compute all summary percentiles of `values`; `None` if empty.
    pub fn of(values: &[f64]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        Some(Percentiles {
            count: values.len(),
            p50: percentile(values, 50.0).unwrap(),
            p95: percentile(values, 95.0).unwrap(),
            p99: percentile(values, 99.0).unwrap(),
            mean: values.iter().sum::<f64>() / values.len() as f64,
            max: values.iter().cloned().fold(f64::MIN, f64::max),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let v: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        assert_eq!(percentile(&v, 50.0), Some(50.0));
        assert_eq!(percentile(&v, 95.0), Some(95.0));
        assert_eq!(percentile(&v, 99.0), Some(99.0));
        assert_eq!(percentile(&v, 100.0), Some(100.0));
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn nan_sorts_above_all_numbers() {
        // A NaN must not scramble the order of the finite values: total_cmp
        // places NaN above every number, so percentiles below the top still
        // come from the finite values in their correct order.
        let v = vec![5.0, f64::NAN, 1.0, 9.0, 3.0, 7.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 50.0), Some(5.0));
        // The 100th percentile lands on the NaN slot (nearest-rank picks the
        // last element) — pinned so a future change is a conscious decision.
        assert!(percentile(&v, 100.0).unwrap().is_nan());
    }

    #[test]
    fn unsorted_input_is_handled() {
        let v = vec![5.0, 1.0, 9.0, 3.0, 7.0];
        assert_eq!(percentile(&v, 50.0), Some(5.0));
        assert_eq!(percentile(&v, 100.0), Some(9.0));
    }

    #[test]
    fn summary_struct() {
        let v: Vec<f64> = (1..=200).map(|x| x as f64).collect();
        let s = Percentiles::of(&v).unwrap();
        assert_eq!(s.count, 200);
        assert_eq!(s.p50, 100.0);
        assert_eq!(s.p95, 190.0);
        assert_eq!(s.p99, 198.0);
        assert_eq!(s.max, 200.0);
        assert!((s.mean - 100.5).abs() < 1e-9);
        assert!(Percentiles::of(&[]).is_none());
    }
}
