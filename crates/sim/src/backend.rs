//! The backend boundary: one resolved scenario, several engines to answer it.
//!
//! A [`CompiledScenario`] is everything a simulation run needs — the built
//! topology, the behavioural [`SimConfig`] and the generated flow list —
//! with every spec-level concern (workload generation, CC resolution, RTT
//! suggestion) already resolved. A [`Backend`] turns one into a
//! [`SimOutput`]:
//!
//! * [`PacketBackend`] — the packet-level event-wheel engine
//!   ([`crate::Simulator`]). This is the reference implementation: the
//!   default path, bit-identical to the pre-refactor `Simulator` calls and
//!   pinned by the golden-digest tests.
//! * [`crate::fluid::FluidBackend`] — the Appendix A.2 fluid-model fast
//!   path: solves per-flow rate recursions over the path×resource incidence
//!   matrix instead of moving packets, typically 2–4 orders of magnitude
//!   faster, at the price of modelling CC as its steady state.
//!
//! Both backends are deterministic: the same `CompiledScenario` produces the
//! same `SimOutput` (and therefore the same campaign digest) on every run.

use crate::config::SimConfig;
use crate::output::SimOutput;
use crate::simulator::Simulator;
use hpcc_topology::TopologySpec;
use hpcc_types::FlowSpec;

/// A fully resolved simulation input, independent of the engine that runs it.
pub struct CompiledScenario {
    /// The built network.
    pub topo: TopologySpec,
    /// Host and switch behaviour (CC scheme, horizon, tracing, …).
    pub cfg: SimConfig,
    /// Flows to inject.
    pub flows: Vec<FlowSpec>,
}

/// An engine that can answer a [`CompiledScenario`].
pub trait Backend {
    /// Short identifier used in reports and manifests ("packet", "fluid").
    fn name(&self) -> &'static str;

    /// Execute the scenario and produce the raw measurement records.
    fn run(&self, scenario: CompiledScenario) -> SimOutput;
}

/// Which backend a run should use — the plain-data form of the boundary,
/// carried on scenario specs and resolved with [`backend_for`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BackendKind {
    /// The packet-level event-wheel engine (the default, and the reference).
    #[default]
    Packet,
    /// The Appendix A.2 fluid-model fast path.
    Fluid,
    /// The parallel partitioned packet engine
    /// ([`crate::parallel::ParallelPacketBackend`]): `threads` shard
    /// threads, bit-identical to [`Packet`](BackendKind::Packet).
    ParallelPacket {
        /// Worker threads (the partitioner may clamp; 1 collapses to the
        /// sequential engine).
        threads: u32,
    },
}

impl BackendKind {
    /// The backend's short identifier ("packet" / "fluid" /
    /// "parallel_packet").
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Packet => "packet",
            BackendKind::Fluid => "fluid",
            BackendKind::ParallelPacket { .. } => "parallel_packet",
        }
    }
}

/// Resolve a [`BackendKind`] to its engine.
pub fn backend_for(kind: BackendKind) -> Box<dyn Backend> {
    match kind {
        BackendKind::Packet => Box::new(PacketBackend),
        BackendKind::Fluid => Box::new(crate::fluid::FluidBackend),
        BackendKind::ParallelPacket { threads } => {
            Box::new(crate::parallel::ParallelPacketBackend { threads })
        }
    }
}

/// The packet-level event-wheel engine behind the [`Backend`] boundary.
///
/// A thin adapter over [`Simulator`]: construction, flow injection and the
/// run loop are exactly the calls the pre-refactor code made, so output is
/// bit-identical to it (pinned by the golden-digest tests).
pub struct PacketBackend;

impl Backend for PacketBackend {
    fn name(&self) -> &'static str {
        "packet"
    }

    fn run(&self, scenario: CompiledScenario) -> SimOutput {
        let mut sim = Simulator::new(scenario.topo, scenario.cfg);
        sim.add_flows(scenario.flows);
        sim.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_resolve_to_matching_backends() {
        assert_eq!(BackendKind::default(), BackendKind::Packet);
        for kind in [
            BackendKind::Packet,
            BackendKind::Fluid,
            BackendKind::ParallelPacket { threads: 2 },
        ] {
            assert_eq!(backend_for(kind).name(), kind.label());
        }
    }
}
