//! A small line-oriented token scanner over Rust source.
//!
//! The analyzers in this crate are *lints*, not a compiler: they work on a
//! per-line view of the source with enough lexical structure to avoid the
//! classic false positives — matches inside string literals, inside
//! comments, or inside `#[cfg(test)]` modules. For each input line the
//! scanner produces:
//!
//! * [`Line::code`] — the line with comments removed and the *contents* of
//!   string/char literals blanked to spaces (quotes kept), so identifier
//!   and method-call patterns match only real code;
//! * [`Line::literals`] — the line with comments removed but string
//!   literals intact, for rules that inspect format strings;
//! * [`Line::comment`] — the text of a trailing `//` comment, where the
//!   `// simlint:` annotation grammar lives;
//! * [`Line::in_test`] — whether the line sits inside a `#[cfg(test)]`
//!   module (brace-matched), which every rule skips.

/// One scanned source line. See the [module docs](self) for field
/// semantics.
#[derive(Debug, Clone)]
pub struct Line {
    /// 1-based line number in the source file.
    pub number: usize,
    /// Code with comments stripped and literal contents blanked.
    pub code: String,
    /// Code with comments stripped but literal contents kept.
    pub literals: String,
    /// Trailing `//` comment text (without the `//`), empty if none.
    pub comment: String,
    /// True inside a `#[cfg(test)] mod … { … }` region.
    pub in_test: bool,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Normal,
    Str,
    RawStr(usize),
    Char,
    Block(usize),
}

/// Scan `source` into per-line lexical views.
pub fn scan(source: &str) -> Vec<Line> {
    let mut out = Vec::new();
    let mut state = State::Normal;
    for (i, raw) in source.lines().enumerate() {
        let mut code = String::with_capacity(raw.len());
        let mut literals = String::with_capacity(raw.len());
        let mut comment = String::new();
        let chars: Vec<char> = raw.chars().collect();
        let mut j = 0usize;
        while j < chars.len() {
            let c = chars[j];
            match state {
                State::Normal => {
                    if c == '/' && chars.get(j + 1) == Some(&'/') {
                        comment = chars[j + 2..].iter().collect::<String>().trim().to_string();
                        break;
                    } else if c == '/' && chars.get(j + 1) == Some(&'*') {
                        state = State::Block(1);
                        j += 2;
                        continue;
                    } else if c == '"' {
                        code.push('"');
                        literals.push('"');
                        state = State::Str;
                    } else if c == 'r'
                        && (chars.get(j + 1) == Some(&'"') || chars.get(j + 1) == Some(&'#'))
                    {
                        // Raw string r"…" / r#"…"#: count the hashes.
                        let mut hashes = 0usize;
                        let mut k = j + 1;
                        while chars.get(k) == Some(&'#') {
                            hashes += 1;
                            k += 1;
                        }
                        if chars.get(k) == Some(&'"') {
                            code.push('"');
                            literals.push('"');
                            state = State::RawStr(hashes);
                            j = k + 1;
                            continue;
                        }
                        code.push(c);
                        literals.push(c);
                    } else if c == '\'' {
                        // Char literal vs lifetime: a lifetime is `'ident`
                        // not followed by a closing quote.
                        let close =
                            chars.get(j + 2) == Some(&'\'') || (chars.get(j + 1) == Some(&'\\'));
                        if close {
                            code.push('\'');
                            literals.push('\'');
                            state = State::Char;
                        } else {
                            code.push(c);
                            literals.push(c);
                        }
                    } else {
                        code.push(c);
                        literals.push(c);
                    }
                }
                State::Str => {
                    literals.push(c);
                    if c == '\\' {
                        if let Some(&n) = chars.get(j + 1) {
                            literals.push(n);
                            code.push(' ');
                            code.push(' ');
                            j += 2;
                            continue;
                        }
                    }
                    if c == '"' {
                        code.push('"');
                        state = State::Normal;
                    } else {
                        code.push(' ');
                    }
                }
                State::RawStr(hashes) => {
                    if c == '"' {
                        let mut k = j + 1;
                        let mut seen = 0usize;
                        while seen < hashes && chars.get(k) == Some(&'#') {
                            seen += 1;
                            k += 1;
                        }
                        if seen == hashes {
                            code.push('"');
                            literals.push('"');
                            state = State::Normal;
                            j = k;
                            continue;
                        }
                    }
                    code.push(' ');
                    literals.push(c);
                }
                State::Char => {
                    literals.push(c);
                    if c == '\\' {
                        if let Some(&n) = chars.get(j + 1) {
                            literals.push(n);
                            code.push(' ');
                            code.push(' ');
                            j += 2;
                            continue;
                        }
                    }
                    if c == '\'' {
                        code.push('\'');
                        state = State::Normal;
                    } else {
                        code.push(' ');
                    }
                }
                State::Block(depth) => {
                    if c == '*' && chars.get(j + 1) == Some(&'/') {
                        state = if depth == 1 {
                            State::Normal
                        } else {
                            State::Block(depth - 1)
                        };
                        j += 2;
                        continue;
                    }
                    if c == '/' && chars.get(j + 1) == Some(&'*') {
                        state = State::Block(depth + 1);
                        j += 2;
                        continue;
                    }
                }
            }
            j += 1;
        }
        // Ordinary string literals span lines in Rust (with or without a
        // trailing `\` continuation), so `Str` state carries over; char
        // literals cannot.
        if state == State::Char {
            state = State::Normal;
        }
        out.push(Line {
            number: i + 1,
            code,
            literals,
            comment,
            in_test: false,
        });
    }
    mark_test_regions(&mut out);
    out
}

/// Mark every line inside a `#[cfg(test)]`-attributed item (brace-matched
/// from the item's opening `{`). In practice this is the conventional
/// `#[cfg(test)] mod tests { … }` at the end of each module.
fn mark_test_regions(lines: &mut [Line]) {
    let mut i = 0usize;
    while i < lines.len() {
        if lines[i].code.contains("#[cfg(test)]") {
            // Find the opening brace of the attributed item.
            let mut depth = 0i64;
            let mut opened = false;
            let mut j = i;
            while j < lines.len() {
                for c in lines[j].code.chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                lines[j].in_test = true;
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
}

/// True if `c` can appear in a Rust identifier.
pub fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// The identifier ending at byte offset `end` (exclusive) of `s`, if the
/// character run directly before `end` is one.
pub fn ident_before(s: &str, end: usize) -> Option<&str> {
    let bytes = s.as_bytes();
    let mut start = end;
    while start > 0 && is_ident_char(bytes[start - 1] as char) {
        start -= 1;
    }
    if start == end || (bytes[start] as char).is_ascii_digit() {
        None
    } else {
        Some(&s[start..end])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_stripped() {
        let src = r#"let x = "HashMap::new()"; // HashMap comment
let m: HashMap<u32, u32> = HashMap::new();"#;
        let lines = scan(src);
        assert!(!lines[0].code.contains("HashMap"));
        assert!(lines[0].literals.contains("HashMap::new()"));
        assert_eq!(lines[0].comment, "HashMap comment");
        assert!(lines[1].code.contains("HashMap<u32, u32>"));
    }

    #[test]
    fn block_comments_and_raw_strings() {
        let src = "let a = 1; /* HashMap\nstill comment */ let b = r#\"HashSet\"#;";
        let lines = scan(src);
        assert!(!lines[0].code.contains("HashMap"));
        assert!(!lines[1].code.contains("HashSet"));
        assert!(lines[1].code.contains("let b ="));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lines = scan("fn f<'a>(x: &'a HashMap<u32, u32>) {}");
        assert!(lines[0].code.contains("HashMap"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}";
        let lines = scan(src);
        let flags: Vec<bool> = lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn ident_before_finds_receivers() {
        let s = "self.out.ports.values()";
        let dot = s.rfind(".values").unwrap();
        assert_eq!(ident_before(s, dot), Some("ports"));
        assert_eq!(ident_before("(x).iter", 3), None);
    }
}
