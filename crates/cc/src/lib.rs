//! # hpcc-cc
//!
//! Congestion-control algorithms evaluated in "HPCC: High Precision
//! Congestion Control" (Li et al., SIGCOMM 2019):
//!
//! * [`hpcc::Hpcc`] — the paper's Algorithm 1 (window-based, INT-driven),
//!   including the ablations used in §3.4 and §5.4 (per-ACK-only,
//!   per-RTT-only reaction, and the rxRate signal variant of Figure 6),
//! * [`dcqcn::Dcqcn`] — the production baseline (ECN/CNP driven rate control
//!   with fast recovery, additive and hyper increase),
//! * [`timely::Timely`] — RTT-gradient rate control,
//! * [`dctcp::Dctcp`] — ECN-fraction window control (slow start removed, as
//!   in the paper's comparison),
//! * [`windowed::Windowed`] — the paper's "DCQCN+win" / "TIMELY+win"
//!   variants: a rate-based scheme wrapped with a static BDP sending window.
//!
//! Every algorithm implements the [`CongestionControl`] trait. The simulator
//! drives a trait object per flow: it reports ACKs (with echoed INT records),
//! CNPs, NACK/loss events and timer expirations, and reads back the sending
//! window (inflight-byte limit) and pacing rate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod config;
pub mod dcqcn;
pub mod dctcp;
pub mod hpcc;
pub mod timely;
pub mod windowed;

pub use api::{AckEvent, CongestionControl, FlowRateState};
pub use config::{build_cc, CcAlgorithm};
pub use dcqcn::{Dcqcn, DcqcnConfig};
pub use dctcp::{Dctcp, DctcpConfig};
pub use hpcc::{Hpcc, HpccConfig, HpccReactionMode};
pub use timely::{Timely, TimelyConfig};
pub use windowed::Windowed;
