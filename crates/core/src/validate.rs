//! Cross-validation of the fluid backend against the packet engine.
//!
//! The fluid backend answers a scenario orders of magnitude faster than the
//! packet engine, but it is a steady-state *model* — the only way to trust
//! it is to run both engines on an overlapping scenario grid and measure how
//! far apart they land. [`ValidationReport::run`] does exactly that: every
//! spec is resolved twice (once per [`BackendSpec`]), both runs execute, and
//! each [`ValidationRow`] records the per-scenario FCT-slowdown and
//! utilization divergence plus both output digests.
//!
//! The canonical JSON ([`ValidationReport::to_json_string`]) contains only
//! deterministic fields — digests, metrics, divergences; wall-clock times
//! live next to it but outside the canonical object, exactly like the
//! campaign wire format. [`ValidationReport::digest`] folds the canonical
//! string, so one pinned integer asserts the entire cross-validation
//! outcome, on every platform.

use crate::campaign::digest_output;
use crate::json::{obj, JsonValue};
use crate::scenario::{BackendSpec, BuildError, ScenarioSpec};
use std::fmt::Write as _;
use std::time::Instant;

/// One scenario, both engines, and how far apart they landed.
#[derive(Clone, Debug)]
pub struct ValidationRow {
    /// Scenario name (from the spec).
    pub name: String,
    /// Congestion-control scheme label.
    pub scheme: String,
    /// Digest of the packet engine's raw output.
    pub packet_digest: u64,
    /// Digest of the fluid backend's raw output.
    pub fluid_digest: u64,
    /// Mean FCT slowdown under the packet engine (`None`: no flow finished).
    pub packet_mean_slowdown: Option<f64>,
    /// Mean FCT slowdown under the fluid backend.
    pub fluid_mean_slowdown: Option<f64>,
    /// Median FCT slowdown under the packet engine.
    pub packet_p50_slowdown: Option<f64>,
    /// Median FCT slowdown under the fluid backend.
    pub fluid_p50_slowdown: Option<f64>,
    /// Average host-NIC utilization under the packet engine.
    pub packet_utilization: f64,
    /// Average host-NIC utilization under the fluid backend.
    pub fluid_utilization: f64,
    /// Flows completed under the packet engine.
    pub packet_completed: usize,
    /// Flows completed under the fluid backend.
    pub fluid_completed: usize,
    /// Events the packet engine processed (the numerator of the
    /// events/sec-equivalent fluid throughput).
    pub packet_events: u64,
    /// Packet-engine wall time (host-dependent; not in the canonical JSON).
    pub packet_wall: std::time::Duration,
    /// Fluid-backend wall time (host-dependent; not in the canonical JSON).
    pub fluid_wall: std::time::Duration,
}

impl ValidationRow {
    /// Relative divergence of the mean FCT slowdown: `|fluid − packet| /
    /// packet`. Zero when neither engine finished a flow; infinite when
    /// exactly one of them did (the engines disagree about whether the
    /// scenario makes progress at all).
    pub fn slowdown_divergence(&self) -> f64 {
        match (self.packet_mean_slowdown, self.fluid_mean_slowdown) {
            (Some(p), Some(f)) if p > 0.0 => (f - p).abs() / p,
            (None, None) => 0.0,
            _ => f64::INFINITY,
        }
    }

    /// Absolute divergence of the average utilization (both are fractions
    /// of the host NIC rate, so an absolute difference is the honest
    /// comparison near zero).
    pub fn utilization_divergence(&self) -> f64 {
        (self.fluid_utilization - self.packet_utilization).abs()
    }

    fn to_json(&self) -> JsonValue {
        fn opt(v: Option<f64>) -> JsonValue {
            match v {
                Some(x) => JsonValue::Float(x),
                None => JsonValue::Null,
            }
        }
        obj(vec![
            ("name", JsonValue::Str(self.name.clone())),
            ("scheme", JsonValue::Str(self.scheme.clone())),
            ("packet_digest", JsonValue::UInt(self.packet_digest)),
            ("fluid_digest", JsonValue::UInt(self.fluid_digest)),
            ("packet_mean_slowdown", opt(self.packet_mean_slowdown)),
            ("fluid_mean_slowdown", opt(self.fluid_mean_slowdown)),
            ("packet_p50_slowdown", opt(self.packet_p50_slowdown)),
            ("fluid_p50_slowdown", opt(self.fluid_p50_slowdown)),
            (
                "packet_utilization",
                JsonValue::Float(self.packet_utilization),
            ),
            (
                "fluid_utilization",
                JsonValue::Float(self.fluid_utilization),
            ),
            (
                "packet_completed",
                JsonValue::UInt(self.packet_completed as u64),
            ),
            (
                "fluid_completed",
                JsonValue::UInt(self.fluid_completed as u64),
            ),
            ("packet_events", JsonValue::UInt(self.packet_events)),
            (
                "slowdown_divergence",
                JsonValue::Float(self.slowdown_divergence()),
            ),
            (
                "utilization_divergence",
                JsonValue::Float(self.utilization_divergence()),
            ),
        ])
    }
}

/// The outcome of cross-validating a scenario grid on both backends.
#[derive(Clone, Debug, Default)]
pub struct ValidationReport {
    /// One row per scenario, in grid order.
    pub rows: Vec<ValidationRow>,
}

impl ValidationReport {
    /// Run every spec on both backends and measure the divergence.
    ///
    /// Each spec is cloned twice — once forced to [`BackendSpec::Packet`],
    /// once to [`BackendSpec::Fluid`] — so the grid may carry any default.
    /// Specs using features the fluid backend rejects (faults, PIAS) fail
    /// with the same typed [`BuildError`] `try_build` reports.
    pub fn run(specs: &[ScenarioSpec]) -> Result<Self, BuildError> {
        let mut rows = Vec::with_capacity(specs.len());
        for spec in specs {
            let host_bw = spec.topology.host_bw();

            let t0 = Instant::now();
            let packet = spec
                .clone()
                .with_backend(BackendSpec::Packet)
                .try_build()?
                .run();
            let packet_wall = t0.elapsed();

            let t1 = Instant::now();
            let fluid = spec
                .clone()
                .with_backend(BackendSpec::Fluid)
                .try_build()?
                .run();
            let fluid_wall = t1.elapsed();

            let p_slow = packet.slowdown_overall();
            let f_slow = fluid.slowdown_overall();
            rows.push(ValidationRow {
                name: spec.name.clone(),
                scheme: spec.scheme_label(),
                packet_digest: digest_output(&packet.out),
                fluid_digest: digest_output(&fluid.out),
                packet_mean_slowdown: p_slow.as_ref().map(|p| p.mean),
                fluid_mean_slowdown: f_slow.as_ref().map(|p| p.mean),
                packet_p50_slowdown: p_slow.as_ref().map(|p| p.p50),
                fluid_p50_slowdown: f_slow.as_ref().map(|p| p.p50),
                packet_utilization: packet.average_utilization(host_bw),
                fluid_utilization: fluid.average_utilization(host_bw),
                packet_completed: packet.out.flows.len(),
                fluid_completed: fluid.out.flows.len(),
                packet_events: packet.out.events_processed,
                packet_wall,
                fluid_wall,
            });
        }
        Ok(ValidationReport { rows })
    }

    /// The largest per-scenario mean-slowdown divergence.
    pub fn max_slowdown_divergence(&self) -> f64 {
        self.rows
            .iter()
            .map(ValidationRow::slowdown_divergence)
            .fold(0.0, f64::max)
    }

    /// The largest per-scenario utilization divergence.
    pub fn max_utilization_divergence(&self) -> f64 {
        self.rows
            .iter()
            .map(ValidationRow::utilization_divergence)
            .fold(0.0, f64::max)
    }

    /// Wall-clock speedup of the fluid backend over the packet engine,
    /// summed over the grid (host-dependent).
    pub fn speedup(&self) -> f64 {
        let packet: f64 = self.rows.iter().map(|r| r.packet_wall.as_secs_f64()).sum();
        let fluid: f64 = self.rows.iter().map(|r| r.fluid_wall.as_secs_f64()).sum();
        if fluid == 0.0 {
            f64::INFINITY
        } else {
            packet / fluid
        }
    }

    /// Events/sec-equivalent throughput of the fluid backend: the packet
    /// events the grid *would have cost*, divided by the fluid wall time
    /// that answered it (host-dependent).
    pub fn fluid_events_per_sec_equivalent(&self) -> f64 {
        let events: u64 = self.rows.iter().map(|r| r.packet_events).sum();
        let fluid: f64 = self.rows.iter().map(|r| r.fluid_wall.as_secs_f64()).sum();
        if fluid == 0.0 {
            f64::INFINITY
        } else {
            events as f64 / fluid
        }
    }

    /// The canonical JSON object: rows in grid order plus the grid-level
    /// maxima. Only deterministic fields — no wall times, no speedups.
    pub fn to_json(&self) -> JsonValue {
        obj(vec![
            (
                "rows",
                JsonValue::Array(self.rows.iter().map(ValidationRow::to_json).collect()),
            ),
            (
                "max_slowdown_divergence",
                JsonValue::Float(self.max_slowdown_divergence()),
            ),
            (
                "max_utilization_divergence",
                JsonValue::Float(self.max_utilization_divergence()),
            ),
        ])
    }

    /// The canonical JSON rendered to a string (deterministic across runs,
    /// platforms and thread counts).
    pub fn to_json_string(&self) -> String {
        self.to_json().render()
    }

    /// FNV-1a digest of the canonical JSON string — one pinned integer
    /// asserts the whole cross-validation outcome.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for byte in self.to_json_string().bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// A human-readable comparison table (wall times and speedup included —
    /// this is for eyes, not for digests).
    pub fn table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<24} {:<10} {:>12} {:>12} {:>9} {:>12} {:>12} {:>9} {:>9}",
            "scenario",
            "scheme",
            "pkt slow",
            "fluid slow",
            "Δrel",
            "pkt util",
            "fluid util",
            "Δabs",
            "speedup"
        );
        for r in &self.rows {
            let fmt_opt = |v: Option<f64>| match v {
                Some(x) => format!("{x:.3}"),
                None => "-".to_string(),
            };
            let speedup = if r.fluid_wall.as_secs_f64() > 0.0 {
                r.packet_wall.as_secs_f64() / r.fluid_wall.as_secs_f64()
            } else {
                f64::INFINITY
            };
            let _ = writeln!(
                s,
                "{:<24} {:<10} {:>12} {:>12} {:>9.3} {:>12.4} {:>12.4} {:>9.4} {:>8.0}x",
                r.name,
                r.scheme,
                fmt_opt(r.packet_mean_slowdown),
                fmt_opt(r.fluid_mean_slowdown),
                r.slowdown_divergence(),
                r.packet_utilization,
                r.fluid_utilization,
                r.utilization_divergence(),
                speedup,
            );
        }
        let _ = writeln!(
            s,
            "max divergence: slowdown {:.3} (relative), utilization {:.4} (absolute); overall speedup {:.0}x",
            self.max_slowdown_divergence(),
            self.max_utilization_divergence(),
            self.speedup(),
        );
        s
    }
}
