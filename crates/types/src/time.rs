//! Simulated time.
//!
//! Time is measured in integer **picoseconds** since the start of the
//! simulation. Picoseconds keep serialization delays exact: one byte at
//! 400 Gbps is 20 ps, at 100 Gbps 80 ps, at 25 Gbps 320 ps — all integers.
//! A `u64` of picoseconds covers ~213 days of simulated time, far beyond any
//! experiment in the paper.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Picoseconds per nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds per microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds per millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds per second.
pub const PS_PER_SEC: u64 = 1_000_000_000_000;

/// An absolute instant in simulated time (picoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (picoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far away"
    /// sentinel for timers that are not armed.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }
    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * PS_PER_NS)
    }
    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * PS_PER_US)
    }
    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * PS_PER_MS)
    }
    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * PS_PER_SEC)
    }

    /// Raw picoseconds since the epoch.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }
    /// Nanoseconds since the epoch (truncating).
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0 / PS_PER_NS
    }
    /// Microseconds since the epoch as a float.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }
    /// Seconds since the epoch as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// Elapsed time since `earlier`, saturating at zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration (useful near `SimTime::MAX` sentinels).
    #[inline]
    pub fn saturating_add(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);
    /// Largest representable duration.
    pub const MAX: Duration = Duration(u64::MAX);

    /// Construct from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        Duration(ps)
    }
    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Duration(ns * PS_PER_NS)
    }
    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Duration(us * PS_PER_US)
    }
    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        Duration(ms * PS_PER_MS)
    }
    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * PS_PER_SEC)
    }
    /// Construct from a floating-point number of microseconds (rounding).
    #[inline]
    pub fn from_us_f64(us: f64) -> Self {
        Duration((us * PS_PER_US as f64).round().max(0.0) as u64)
    }
    /// Construct from a floating-point number of seconds (rounding).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        Duration((s * PS_PER_SEC as f64).round().max(0.0) as u64)
    }

    /// Raw picoseconds.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }
    /// Nanoseconds (truncating).
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0 / PS_PER_NS
    }
    /// Microseconds as a float.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }
    /// Seconds as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }
    /// True if this duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }
    /// The smaller of two durations.
    #[inline]
    pub fn min(self, other: Duration) -> Duration {
        Duration(self.0.min(other.0))
    }
    /// The larger of two durations.
    #[inline]
    pub fn max(self, other: Duration) -> Duration {
        Duration(self.0.max(other.0))
    }
    /// Multiply by a float (e.g. scaling an RTT), rounding to picoseconds.
    #[inline]
    pub fn mul_f64(self, x: f64) -> Duration {
        Duration((self.0 as f64 * x).round().max(0.0) as u64)
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}
impl AddAssign<Duration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}
impl Sub<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: Duration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}
impl Sub<SimTime> for SimTime {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: SimTime) -> Duration {
        Duration(self.0 - rhs.0)
    }
}
impl Add<Duration> for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}
impl AddAssign<Duration> for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}
impl Sub<Duration> for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}
impl SubAssign<Duration> for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}
impl Mul<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}
impl Div<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}
impl Div<Duration> for Duration {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Duration) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}
impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}
impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}
impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_are_consistent() {
        assert_eq!(SimTime::from_ns(1).as_ps(), 1_000);
        assert_eq!(SimTime::from_us(1).as_ps(), 1_000_000);
        assert_eq!(SimTime::from_ms(1).as_ps(), 1_000_000_000);
        assert_eq!(SimTime::from_secs(1).as_ps(), 1_000_000_000_000);
        assert_eq!(Duration::from_us(13).as_ns(), 13_000);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_us(5);
        let d = Duration::from_ns(250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
        let mut acc = Duration::ZERO;
        for _ in 0..8 {
            acc += d;
        }
        assert_eq!(acc, d * 8);
        assert_eq!(acc / 8, d);
    }

    #[test]
    fn saturating_since_clamps_at_zero() {
        let a = SimTime::from_us(1);
        let b = SimTime::from_us(2);
        assert_eq!(b.saturating_since(a), Duration::from_us(1));
        assert_eq!(a.saturating_since(b), Duration::ZERO);
    }

    #[test]
    fn float_conversions() {
        let d = Duration::from_us_f64(12.5);
        assert_eq!(d.as_ns(), 12_500);
        assert!((d.as_us_f64() - 12.5).abs() < 1e-9);
        assert!((Duration::from_secs_f64(0.001).as_us_f64() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn ratio_division() {
        let a = Duration::from_us(5);
        let b = Duration::from_us(20);
        assert!((a / b - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mul_f64_rounds() {
        let d = Duration::from_ns(100);
        assert_eq!(d.mul_f64(1.5).as_ps(), 150_000);
        assert_eq!(d.mul_f64(0.0), Duration::ZERO);
    }

    #[test]
    fn display_formats_microseconds() {
        assert_eq!(format!("{}", SimTime::from_us(3)), "3.000us");
        assert_eq!(format!("{}", Duration::from_ns(1500)), "1.500us");
    }
}
