//! The elastic cross-host campaign fabric.
//!
//! A [`Coordinator`] treats a campaign's scenario indices as a dynamic work
//! queue served to any number of workers over a plain TCP line protocol on
//! `std::net` (length-framed canonical JSON — [`crate::wire::FabricMsg`],
//! normatively documented in `docs/WIRE.md`). A worker ([`join`]) connects,
//! says hello, receives the whole campaign manifest over the wire (no
//! shared filesystem needed), and then executes leases of scenario indices,
//! streaming each [`ScenarioResult`] back the moment it completes.
//!
//! Robustness is the design center, and it rests on the repository's
//! determinism contract rather than on distributed-systems machinery:
//!
//! * **Elastic leasing.** Lease sizes follow the observed per-scenario wall
//!   time (an EWMA per worker), so fast workers drain the queue and slow
//!   ones cannot hold more than one lease's worth of work hostage.
//! * **Failure detection.** Workers heartbeat between results; a worker
//!   silent past the lease timeout (or whose connection drops) is retired
//!   and its outstanding indices return to the queue.
//! * **Dedup by digest.** A retired worker may still have executed part of
//!   its lease, so results can arrive twice. The [`ResultLedger`] keeps the
//!   first copy, drops byte-identical duplicates (same index, same digest),
//!   and treats conflicting digests for one index as the hard error they
//!   are ([`FabricError::DigestConflict`]) — never a silent drop.
//! * **Checkpointing.** Every accepted result is appended to a JSONL
//!   checkpoint file (the standard result-line encoding) and flushed; a
//!   restarted coordinator replays the file — tolerating a truncated tail
//!   from a mid-write kill — and re-runs only what is missing.
//!
//! Because every scenario is a pure function of its spec, the merged
//! [`CampaignReport`] is bit-identical (canonical JSON and digests) to
//! [`Campaign::run_serial`] regardless of worker count, death schedule, or
//! completion order.
//!
//! Liveness timers (heartbeats, lease timeouts) are real-time by nature and
//! go through [`crate::timing`], the sanctioned wall-clock funnel; nothing
//! they measure reaches canonical output.

use crate::campaign::{Campaign, CampaignReport, ScenarioResult};
use crate::timing;
use crate::wire::{self, FabricMsg, WireError};
use std::collections::{BTreeMap, BTreeSet};
use std::io::{BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Errors of the campaign fabric.
#[derive(Debug)]
pub enum FabricError {
    /// Socket or checkpoint-file I/O failed.
    Io(std::io::Error),
    /// A peer violated the fabric message protocol.
    Protocol(String),
    /// A checkpoint stream failed to decode.
    Wire(WireError),
    /// Two executions of one scenario produced different digests. The
    /// determinism contract is broken (mismatched builds on the fleet?),
    /// and no merge that hides it can be trusted.
    DigestConflict {
        /// The scenario index delivered twice.
        index: usize,
        /// The digest recorded first.
        have: u64,
        /// The conflicting digest of the re-execution.
        got: u64,
    },
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricError::Io(e) => write!(f, "fabric i/o: {e}"),
            FabricError::Protocol(msg) => write!(f, "fabric protocol: {msg}"),
            FabricError::Wire(e) => write!(f, "fabric checkpoint: {e}"),
            FabricError::DigestConflict { index, have, got } => write!(
                f,
                "digest conflict for scenario {index}: recorded {have:#018x}, \
                 re-execution produced {got:#018x}; refusing to merge"
            ),
        }
    }
}

impl std::error::Error for FabricError {}

impl From<std::io::Error> for FabricError {
    fn from(e: std::io::Error) -> Self {
        FabricError::Io(e)
    }
}

impl From<WireError> for FabricError {
    fn from(e: WireError) -> Self {
        FabricError::Wire(e)
    }
}

/// Tuning knobs of one [`Coordinator::serve`] run.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// How long a worker may stay silent (no result, no heartbeat) before
    /// it is declared dead and its outstanding lease returns to the queue.
    pub lease_timeout: std::time::Duration,
    /// The wall-time budget one lease should amount to: the batch size is
    /// `target_lease_wall / EWMA(per-scenario wall)`, clamped to
    /// `1..=max_batch`.
    pub target_lease_wall: std::time::Duration,
    /// Upper bound on the indices of a single lease.
    pub max_batch: usize,
    /// Lease size granted to a worker before any wall-time observation
    /// exists (kept small so the EWMA calibrates quickly).
    pub initial_batch: usize,
    /// Checkpoint file: every accepted result is appended as one canonical
    /// result line and flushed. An existing file is replayed on startup
    /// (tolerating a truncated tail, which is cut off in place), so a
    /// restarted coordinator re-runs only the missing scenarios.
    pub checkpoint: Option<std::path::PathBuf>,
    /// Live progress observer: after every accepted result the coordinator
    /// stores the count of completed scenarios (the CLI's chaos-kill
    /// monitor watches this).
    pub progress: Option<Arc<AtomicUsize>>,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            lease_timeout: std::time::Duration::from_secs(10),
            target_lease_wall: std::time::Duration::from_millis(500),
            max_batch: 16,
            initial_batch: 1,
            checkpoint: None,
            progress: None,
        }
    }
}

/// The coordinator's dedup / conflict / completion state machine, factored
/// out of the socket plumbing so its invariants are testable in isolation:
/// results arrive in any order and possibly more than once (a reassigned
/// lease re-executes scenarios), and the ledger keeps the first copy, drops
/// byte-identical duplicates, and rejects conflicting digests.
pub struct ResultLedger {
    len: usize,
    done: BTreeMap<usize, ScenarioResult>,
    accepted: u64,
    deduped: u64,
}

impl ResultLedger {
    /// An empty ledger for a campaign of `len` scenarios.
    pub fn new(len: usize) -> Self {
        ResultLedger {
            len,
            done: BTreeMap::new(),
            accepted: 0,
            deduped: 0,
        }
    }

    /// Record one delivered result. `Ok(true)`: the result was new and is
    /// now recorded. `Ok(false)`: a byte-identical duplicate (same index,
    /// same digest), dropped. Errors: an out-of-range index, or a digest
    /// conflicting with the recorded one — never silently dropped.
    pub fn record(&mut self, index: usize, result: ScenarioResult) -> Result<bool, FabricError> {
        if index >= self.len {
            return Err(FabricError::Protocol(format!(
                "result index {index} out of range for a campaign of {} scenarios",
                self.len
            )));
        }
        match self.done.get(&index) {
            Some(have) if have.digest == result.digest => {
                self.deduped += 1;
                Ok(false)
            }
            Some(have) => Err(FabricError::DigestConflict {
                index,
                have: have.digest,
                got: result.digest,
            }),
            None => {
                self.done.insert(index, result);
                self.accepted += 1;
                Ok(true)
            }
        }
    }

    /// Whether scenario `index` already has a recorded result.
    pub fn contains(&self, index: usize) -> bool {
        self.done.contains_key(&index)
    }

    /// Number of distinct scenarios recorded so far.
    pub fn done(&self) -> usize {
        self.done.len()
    }

    /// True once every scenario has a result.
    pub fn is_complete(&self) -> bool {
        self.done.len() == self.len
    }

    /// Distinct results accepted so far (resumed and live).
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Byte-identical duplicates dropped so far.
    pub fn deduped(&self) -> u64 {
        self.deduped
    }

    /// The scenario indices still missing, ascending.
    pub fn missing(&self) -> Vec<usize> {
        (0..self.len).filter(|i| !self.contains(*i)).collect()
    }

    /// Finish into a report in scenario order; an incomplete ledger is a
    /// protocol error. `wall` is zero and `threads` is 1 — the caller
    /// overwrites them with its own measurements (neither field reaches
    /// canonical output).
    pub fn into_report(self) -> Result<CampaignReport, FabricError> {
        if !self.is_complete() {
            return Err(FabricError::Protocol(format!(
                "ledger incomplete: {} of {} scenarios recorded",
                self.done.len(),
                self.len
            )));
        }
        Ok(CampaignReport {
            results: self.done.into_values().collect(),
            wall: std::time::Duration::ZERO,
            threads: 1,
        })
    }
}

/// The outcome of one [`Coordinator::serve`] run.
pub struct FabricReport {
    /// The merged campaign report — bit-identical to
    /// [`Campaign::run_serial`] (canonical JSON and digests).
    pub report: CampaignReport,
    /// Results received from workers during this run (excludes checkpoint
    /// replay).
    pub executed: u64,
    /// Byte-identical duplicate results dropped (a reassigned lease whose
    /// original worker had already finished some of it).
    pub deduped: u64,
    /// Lease indices returned to the queue by worker death or silence.
    pub reassigned: u64,
    /// Results replayed from the checkpoint instead of re-run.
    pub resumed: usize,
    /// Number of workers that ever completed the hello handshake.
    pub workers_seen: usize,
}

struct WorkerSlot {
    name: String,
    stream: TcpStream,
    outstanding: BTreeSet<usize>,
    last_heard: std::time::Instant,
    /// EWMA of the worker's per-scenario wall time, seconds.
    ewma_wall: Option<f64>,
    alive: bool,
}

struct CoordState {
    pending: BTreeSet<usize>,
    ledger: ResultLedger,
    workers: Vec<WorkerSlot>,
    checkpoint: Option<std::fs::File>,
    progress: Option<Arc<AtomicUsize>>,
    fatal: Option<FabricError>,
    done_serving: bool,
    reassigned: u64,
}

impl CoordState {
    /// Retire a worker: mark it dead, return its outstanding lease to the
    /// queue, and shut its socket down (which also unblocks the reader
    /// thread parked on it). Idempotent.
    fn retire(&mut self, worker: usize) {
        if !self.workers[worker].alive {
            return;
        }
        self.workers[worker].alive = false;
        let returned = std::mem::take(&mut self.workers[worker].outstanding);
        self.reassigned += returned.len() as u64;
        self.pending.extend(returned);
        let _ = self.workers[worker].stream.shutdown(Shutdown::Both);
    }

    /// Record a result delivered by `worker`: refresh its liveness and
    /// wall-time EWMA, feed the ledger, and on acceptance append to the
    /// checkpoint and publish progress. Failures land in `self.fatal`.
    fn handle_result(&mut self, worker: usize, index: usize, result: ScenarioResult) {
        let slot = &mut self.workers[worker];
        slot.last_heard = timing::now();
        slot.outstanding.remove(&index);
        let wall = result.wall.as_secs_f64();
        slot.ewma_wall = Some(match slot.ewma_wall {
            Some(prev) => 0.7 * prev + 0.3 * wall,
            None => wall,
        });
        let line = wire::encode_result_line(index, &result);
        match self.ledger.record(index, result) {
            Ok(true) => {
                if let Some(file) = &mut self.checkpoint {
                    if let Err(e) = writeln!(file, "{line}").and_then(|()| file.flush()) {
                        self.fatal.get_or_insert(FabricError::Io(e));
                        return;
                    }
                }
                if let Some(progress) = &self.progress {
                    progress.store(self.ledger.done(), Ordering::Relaxed);
                }
            }
            Ok(false) => {}
            Err(e) => {
                self.fatal.get_or_insert(e);
            }
        }
    }

    /// The lease size for `worker`: the configured wall-time budget divided
    /// by the worker's observed per-scenario EWMA, clamped to
    /// `1..=max_batch` (`initial_batch` before any observation).
    fn lease_size(&self, worker: usize, cfg: &FabricConfig) -> usize {
        match self.workers[worker].ewma_wall {
            None => self.clamp_batch(cfg.initial_batch, cfg),
            Some(ewma) => {
                let target = cfg.target_lease_wall.as_secs_f64();
                self.clamp_batch((target / ewma.max(1e-9)) as usize, cfg)
            }
        }
    }

    fn clamp_batch(&self, batch: usize, cfg: &FabricConfig) -> usize {
        batch.clamp(1, cfg.max_batch.max(1))
    }
}

struct Shared {
    campaign: Campaign,
    state: Mutex<CoordState>,
    wake: Condvar,
}

/// The fabric coordinator: owns the listener, the work queue, the
/// checkpoint, and the merge.
pub struct Coordinator {
    listener: TcpListener,
}

impl Coordinator {
    /// Bind the coordinator's listener. Pass port `0` for an ephemeral
    /// port; [`Coordinator::local_addr`] reports what was bound.
    pub fn bind(addr: &str) -> Result<Coordinator, FabricError> {
        Ok(Coordinator {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The bound listen address (what workers [`join`]).
    pub fn local_addr(&self) -> Result<SocketAddr, FabricError> {
        Ok(self.listener.local_addr()?)
    }

    /// Serve `campaign` to however many workers connect, until every
    /// scenario has a result (or a fatal error). Returns the merged report
    /// plus run statistics. With a checkpoint configured, an existing file
    /// is replayed first — a coordinator restarted over a complete
    /// checkpoint returns without waiting for any worker.
    pub fn serve(
        &self,
        campaign: &Campaign,
        cfg: &FabricConfig,
    ) -> Result<FabricReport, FabricError> {
        let started = timing::now();
        let len = campaign.len();
        let mut ledger = ResultLedger::new(len);
        let mut resumed = 0usize;
        let mut checkpoint = None;
        if let Some(path) = &cfg.checkpoint {
            let existing = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
                Err(e) => return Err(e.into()),
            };
            let (entries, tail) = wire::decode_stream_lines(&existing, 1)?;
            for (index, result) in entries {
                if ledger.record(index, result)? {
                    resumed += 1;
                }
            }
            let file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?;
            if let Some(tail) = tail {
                // Cut off the record a dying coordinator left half-written,
                // so the file stays a clean prefix we append to.
                file.set_len(tail.byte_offset as u64)?;
            }
            checkpoint = Some(file);
        }
        if let Some(progress) = &cfg.progress {
            progress.store(ledger.done(), Ordering::Relaxed);
        }
        if ledger.is_complete() {
            // Nothing left to run (e.g. restart over a complete
            // checkpoint): skip the networking entirely.
            let mut report = ledger.into_report()?;
            report.wall = started.elapsed();
            return Ok(FabricReport {
                report,
                executed: 0,
                deduped: 0,
                reassigned: 0,
                resumed,
                workers_seen: 0,
            });
        }

        let pending: BTreeSet<usize> = ledger.missing().into_iter().collect();
        let shared = Arc::new(Shared {
            campaign: campaign.clone(),
            state: Mutex::new(CoordState {
                pending,
                ledger,
                workers: Vec::new(),
                checkpoint,
                progress: cfg.progress.clone(),
                fatal: None,
                done_serving: false,
                reassigned: 0,
            }),
            wake: Condvar::new(),
        });
        self.listener.set_nonblocking(true)?;
        let accept_handle = {
            let listener = self.listener.try_clone()?;
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };

        // Scheduler: detect silent workers, grant leases, wait for events.
        let granularity = (cfg.lease_timeout / 4).clamp(
            std::time::Duration::from_millis(5),
            std::time::Duration::from_millis(100),
        );
        let mut st = shared.state.lock().expect("fabric state poisoned");
        loop {
            if st.fatal.is_some() || st.ledger.is_complete() {
                break;
            }
            for i in 0..st.workers.len() {
                if st.workers[i].alive && st.workers[i].last_heard.elapsed() > cfg.lease_timeout {
                    st.retire(i);
                }
            }
            for i in 0..st.workers.len() {
                if !st.workers[i].alive || !st.workers[i].outstanding.is_empty() {
                    continue;
                }
                let batch = st.lease_size(i, cfg);
                let mut indices = Vec::new();
                while indices.len() < batch {
                    match st.pending.pop_first() {
                        Some(index) => indices.push(index),
                        None => break,
                    }
                }
                if indices.is_empty() {
                    continue;
                }
                for &index in &indices {
                    st.workers[i].outstanding.insert(index);
                }
                let lease = FabricMsg::Lease { indices };
                if wire::write_frame(&mut &st.workers[i].stream, &lease).is_err() {
                    st.retire(i);
                }
            }
            st = shared
                .wake
                .wait_timeout(st, granularity)
                .expect("fabric state poisoned")
                .0;
        }

        // Wind down: stop accepting, say goodbye, unblock every reader.
        st.done_serving = true;
        for i in 0..st.workers.len() {
            if st.workers[i].alive {
                let _ = wire::write_frame(&mut &st.workers[i].stream, &FabricMsg::Bye);
            }
            let _ = st.workers[i].stream.shutdown(Shutdown::Both);
        }
        let fatal = st.fatal.take();
        let reassigned = st.reassigned;
        let workers_seen = st.workers.len();
        let ledger = std::mem::replace(&mut st.ledger, ResultLedger::new(0));
        drop(st);
        let _ = accept_handle.join();
        if let Some(e) = fatal {
            return Err(e);
        }
        let executed = ledger.accepted() - resumed as u64;
        let deduped = ledger.deduped();
        let mut report = ledger.into_report()?;
        report.wall = started.elapsed();
        report.threads = workers_seen.max(1);
        Ok(FabricReport {
            report,
            executed,
            deduped,
            reassigned,
            resumed,
            workers_seen,
        })
    }
}

/// Poll the (nonblocking) listener until the run winds down, spawning a
/// detached reader thread per connection.
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        if shared
            .state
            .lock()
            .expect("fabric state poisoned")
            .done_serving
        {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                let shared = Arc::clone(shared);
                std::thread::spawn(move || serve_connection(&shared, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            Err(_) => return,
        }
    }
}

/// One worker connection, from hello to bye (or death). Runs on its own
/// detached thread; the scheduler unblocks it by shutting the socket down.
fn serve_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    // The first frame must be a hello; the manifest goes back before the
    // slot becomes leasable, so a worker never sees a lease it cannot map
    // onto a campaign.
    let worker = match wire::read_frame(&mut reader) {
        Ok(Some(FabricMsg::Hello { worker })) => {
            let mut st = shared.state.lock().expect("fabric state poisoned");
            if st.done_serving {
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
            let manifest = FabricMsg::Manifest {
                campaign: shared.campaign.clone(),
            };
            if wire::write_frame(&mut &stream, &manifest).is_err() {
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
            st.workers.push(WorkerSlot {
                name: worker,
                stream,
                outstanding: BTreeSet::new(),
                last_heard: timing::now(),
                ewma_wall: None,
                alive: true,
            });
            shared.wake.notify_all();
            st.workers.len() - 1
        }
        _ => {
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
    };
    loop {
        let frame = wire::read_frame(&mut reader);
        let mut st = shared.state.lock().expect("fabric state poisoned");
        match frame {
            Ok(Some(FabricMsg::Result { index, result })) => {
                st.handle_result(worker, index, *result);
            }
            Ok(Some(FabricMsg::Heartbeat { .. })) => {
                st.workers[worker].last_heard = timing::now();
            }
            Ok(Some(FabricMsg::Bye)) | Ok(None) | Err(_) => {
                // Graceful bye and death look the same to the queue: any
                // outstanding lease goes back to pending.
                st.retire(worker);
                shared.wake.notify_all();
                return;
            }
            Ok(Some(_)) => {
                let msg = format!("unexpected message from worker {}", st.workers[worker].name);
                st.fatal.get_or_insert(FabricError::Protocol(msg));
                st.retire(worker);
                shared.wake.notify_all();
                return;
            }
        }
        shared.wake.notify_all();
    }
}

/// Per-worker options for [`join`].
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Display name sent in the hello (diagnostics only).
    pub name: String,
    /// Heartbeat period; keep it well under the coordinator's lease
    /// timeout.
    pub heartbeat: std::time::Duration,
    /// Chaos hook: after executing this many scenarios, go silent without
    /// sending the result — no results, no heartbeats, connection left
    /// open (what a wedged or SIGSTOPped worker looks like) — and park the
    /// thread forever. Tests SIGKILL the parked process.
    pub hang_after: Option<usize>,
    /// Chaos hook: after *sending* this many results, drop the connection
    /// without a bye (a crash) and return.
    pub quit_after: Option<usize>,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            name: "worker".to_string(),
            heartbeat: std::time::Duration::from_millis(200),
            hang_after: None,
            quit_after: None,
        }
    }
}

/// What one [`join`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Scenarios executed and streamed back.
    pub executed: usize,
    /// Scenario count of the campaign the coordinator shipped.
    pub campaign_len: usize,
}

/// Connect to a coordinator at `addr`, receive the campaign manifest over
/// the wire, and execute leases — streaming each result back the moment it
/// completes — until the coordinator says bye or the connection ends.
/// Heartbeats ride a separate thread so a long scenario cannot make a
/// healthy worker look dead.
pub fn join(addr: &str, cfg: &WorkerConfig) -> Result<WorkerSummary, FabricError> {
    let stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    let writer = Arc::new(Mutex::new(stream.try_clone()?));
    let mut reader = BufReader::new(stream);
    send(
        &writer,
        &FabricMsg::Hello {
            worker: cfg.name.clone(),
        },
    )?;
    let campaign = match wire::read_frame(&mut reader)? {
        Some(FabricMsg::Manifest { campaign }) => campaign,
        _ => {
            return Err(FabricError::Protocol(
                "expected a manifest after hello".to_string(),
            ))
        }
    };
    let stop = Arc::new(AtomicBool::new(false));
    let executed = Arc::new(AtomicU64::new(0));
    let heartbeat_handle = {
        let writer = Arc::clone(&writer);
        let stop = Arc::clone(&stop);
        let executed = Arc::clone(&executed);
        let period = cfg.heartbeat;
        std::thread::spawn(move || loop {
            std::thread::sleep(period);
            if stop.load(Ordering::Relaxed) {
                return;
            }
            let beat = FabricMsg::Heartbeat {
                executed: executed.load(Ordering::Relaxed),
            };
            if send(&writer, &beat).is_err() {
                return;
            }
        })
    };
    let mut ran = 0usize;
    let outcome = 'conversation: loop {
        match wire::read_frame(&mut reader) {
            Ok(Some(FabricMsg::Lease { indices })) => {
                for index in indices {
                    if index >= campaign.len() {
                        break 'conversation Err(FabricError::Protocol(format!(
                            "leased index {index} out of range for {} scenarios",
                            campaign.len()
                        )));
                    }
                    let result = campaign.run_index(index);
                    ran += 1;
                    if cfg.hang_after == Some(ran) {
                        // Chaos: the scenario ran but its result never
                        // leaves; heartbeats stop; the connection stays
                        // open. Park until SIGKILLed.
                        stop.store(true, Ordering::Relaxed);
                        loop {
                            std::thread::sleep(std::time::Duration::from_secs(3600));
                        }
                    }
                    executed.store(ran as u64, Ordering::Relaxed);
                    let reply = FabricMsg::Result {
                        index,
                        result: Box::new(result),
                    };
                    if let Err(e) = send(&writer, &reply) {
                        break 'conversation Err(e);
                    }
                    if cfg.quit_after == Some(ran) {
                        // Chaos: vanish without a bye.
                        stop.store(true, Ordering::Relaxed);
                        return Ok(WorkerSummary {
                            executed: ran,
                            campaign_len: campaign.len(),
                        });
                    }
                }
            }
            Ok(Some(FabricMsg::Bye)) | Ok(None) => break Ok(()),
            Ok(Some(_)) => {
                break Err(FabricError::Protocol(
                    "unexpected message from coordinator".to_string(),
                ))
            }
            Err(e) => break Err(e.into()),
        }
    };
    stop.store(true, Ordering::Relaxed);
    let _ = send(&writer, &FabricMsg::Bye);
    let _ = heartbeat_handle.join();
    outcome.map(|()| WorkerSummary {
        executed: ran,
        campaign_len: campaign.len(),
    })
}

fn send(writer: &Arc<Mutex<TcpStream>>, msg: &FabricMsg) -> Result<(), FabricError> {
    let mut stream = writer.lock().expect("fabric writer poisoned");
    wire::write_frame(&mut *stream, msg).map_err(FabricError::Io)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::incast_on_star;
    use crate::scenario::CcSpec;
    use hpcc_types::{Bandwidth, Duration};

    fn tiny_campaign(n: usize) -> Campaign {
        Campaign::from_scenarios(
            (0..n)
                .map(|i| {
                    incast_on_star(
                        format!("t{i}"),
                        CcSpec::by_label(["HPCC", "DCQCN", "TIMELY"][i % 3]),
                        2 + i % 2,
                        20_000,
                        Bandwidth::from_gbps(25),
                        Duration::from_us(50),
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn ledger_dedupes_and_rejects_conflicts() {
        let campaign = tiny_campaign(2);
        let a = campaign.run_index(0);
        let a_dup = campaign.run_index(0);
        let mut doctored = campaign.run_index(0);
        doctored.digest ^= 1;

        let mut ledger = ResultLedger::new(2);
        assert!(ledger.record(0, a).unwrap());
        assert!(!ledger.record(0, a_dup).unwrap(), "identical dup dropped");
        assert_eq!(ledger.deduped(), 1);
        match ledger.record(0, doctored) {
            Err(FabricError::DigestConflict { index: 0, .. }) => {}
            other => panic!(
                "conflicting digest must be a typed error, got {:?}",
                other.map(|_| ())
            ),
        }
        assert_eq!(ledger.missing(), vec![1]);
        assert!(ledger.record(2, campaign.run_index(1)).is_err(), "range");
        assert!(ledger.record(1, campaign.run_index(1)).unwrap());
        assert!(ledger.is_complete());
        let report = ledger.into_report().unwrap();
        assert_eq!(
            report.to_json_string(),
            campaign.run_serial().to_json_string()
        );
    }

    #[test]
    fn lease_sizes_follow_the_ewma() {
        let cfg = FabricConfig {
            target_lease_wall: std::time::Duration::from_millis(100),
            max_batch: 8,
            initial_batch: 2,
            ..FabricConfig::default()
        };
        let state = |ewma: Option<f64>| CoordState {
            pending: BTreeSet::new(),
            ledger: ResultLedger::new(0),
            workers: vec![WorkerSlot {
                name: "w".to_string(),
                stream: TcpStream::connect(
                    TcpListener::bind("127.0.0.1:0")
                        .unwrap()
                        .local_addr()
                        .unwrap(),
                )
                .unwrap(),
                outstanding: BTreeSet::new(),
                last_heard: timing::now(),
                ewma_wall: ewma,
                alive: true,
            }],
            checkpoint: None,
            progress: None,
            fatal: None,
            done_serving: false,
            reassigned: 0,
        };
        // No observation yet: the initial batch.
        assert_eq!(state(None).lease_size(0, &cfg), 2);
        // 25 ms/scenario → 4 fit in the 100 ms budget.
        assert_eq!(state(Some(0.025)).lease_size(0, &cfg), 4);
        // Very slow scenarios: never below 1.
        assert_eq!(state(Some(10.0)).lease_size(0, &cfg), 1);
        // Very fast scenarios: capped at max_batch.
        assert_eq!(state(Some(1e-6)).lease_size(0, &cfg), 8);
    }

    #[test]
    fn fabric_matches_serial_end_to_end() {
        let campaign = tiny_campaign(6);
        let serial = campaign.run_serial();
        let coordinator = Coordinator::bind("127.0.0.1:0").unwrap();
        let addr = coordinator.local_addr().unwrap().to_string();
        let workers: Vec<_> = (0..2)
            .map(|i| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    join(
                        &addr,
                        &WorkerConfig {
                            name: format!("w{i}"),
                            heartbeat: std::time::Duration::from_millis(20),
                            ..WorkerConfig::default()
                        },
                    )
                })
            })
            .collect();
        let fabric = coordinator
            .serve(&campaign, &FabricConfig::default())
            .unwrap();
        assert_eq!(fabric.report.to_json_string(), serial.to_json_string());
        assert_eq!(fabric.report.digests(), serial.digests());
        assert_eq!(fabric.executed, 6);
        assert_eq!(fabric.resumed, 0);
        let executed: usize = workers
            .into_iter()
            .map(|w| w.join().unwrap().unwrap().executed)
            .sum();
        assert_eq!(executed, 6, "both workers drained the queue exactly");
    }

    #[test]
    fn checkpoint_resume_skips_completed_scenarios() {
        let campaign = tiny_campaign(4);
        let serial = campaign.run_serial();
        let dir = std::env::temp_dir().join(format!("fabric-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint.jsonl");

        // Seed the checkpoint with scenarios 1 and 3 plus a truncated tail
        // (a coordinator killed mid-append).
        let mut seeded = String::new();
        for index in [1usize, 3] {
            seeded.push_str(&wire::encode_result_line(index, &campaign.run_index(index)));
            seeded.push('\n');
        }
        let partial = wire::encode_result_line(0, &campaign.run_index(0));
        seeded.push_str(&partial[..partial.len() / 2]);
        std::fs::write(&path, &seeded).unwrap();

        let coordinator = Coordinator::bind("127.0.0.1:0").unwrap();
        let addr = coordinator.local_addr().unwrap().to_string();
        let worker = {
            let addr = addr.clone();
            std::thread::spawn(move || join(&addr, &WorkerConfig::default()))
        };
        let cfg = FabricConfig {
            checkpoint: Some(path.clone()),
            ..FabricConfig::default()
        };
        let fabric = coordinator.serve(&campaign, &cfg).unwrap();
        worker.join().unwrap().unwrap();
        assert_eq!(fabric.resumed, 2, "intact checkpoint records replayed");
        assert_eq!(
            fabric.executed, 2,
            "only 0 and 2 re-ran (truncated tail cut)"
        );
        assert_eq!(fabric.report.to_json_string(), serial.to_json_string());

        // The file now replays cleanly and completely…
        let text = std::fs::read_to_string(&path).unwrap();
        let (entries, tail) = wire::decode_stream_lines(&text, 1).unwrap();
        assert!(tail.is_none(), "tail was truncated in place");
        assert_eq!(entries.len(), 4);
        // …and a restart over the complete checkpoint runs nothing.
        let coordinator = Coordinator::bind("127.0.0.1:0").unwrap();
        let fabric = coordinator.serve(&campaign, &cfg).unwrap();
        assert_eq!(fabric.executed, 0);
        assert_eq!(fabric.resumed, 4);
        assert_eq!(fabric.workers_seen, 0, "no worker needed");
        assert_eq!(fabric.report.to_json_string(), serial.to_json_string());
        std::fs::remove_dir_all(&dir).ok();
    }
}
