//! A tiny deterministic PRNG (SplitMix64) shared by the simulator and the
//! workload generators.
//!
//! Reproducibility across platforms and dependency versions is a hard
//! requirement — campaign results must be bit-identical between serial and
//! parallel execution and across machines — so the workspace carries its own
//! generator instead of relying on an external crate's stream stability.

/// Deterministic 64-bit PRNG (SplitMix64).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 {
            state: seed.wrapping_add(0x9E3779B97F4A7C15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)` (n > 0).
    pub fn next_below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

/// Derive an independent child seed from a parent seed and a stream index.
///
/// Used for deterministic per-scenario and per-workload seeding: every
/// consumer of randomness inside one scenario gets its own stream, so adding
/// or removing a workload does not perturb the others.
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    SplitMix64::new(parent ^ stream.wrapping_mul(0xA076_1D64_78BD_642F)).next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn floats_are_in_unit_interval_and_roughly_uniform() {
        let mut r = SplitMix64::new(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            assert!(r.next_below(7) < 7);
        }
        // A bound of zero is clamped to one instead of dividing by zero.
        assert_eq!(r.next_below(0), 0);
    }

    #[test]
    fn derived_seeds_are_stable_and_distinct() {
        assert_eq!(derive_seed(7, 0), derive_seed(7, 0));
        assert_ne!(derive_seed(7, 0), derive_seed(7, 1));
        assert_ne!(derive_seed(7, 0), derive_seed(8, 0));
    }
}
