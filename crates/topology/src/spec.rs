//! Topology description: nodes, links, ports and routing tables.
//!
//! A [`TopologySpec`] is produced once by a builder and then treated as
//! immutable by the simulator. Ports are assigned densely per node in the
//! order links are added; routing tables list, for every node and every
//! destination host, the set of equal-cost next-hop ports.

use crate::routing::compute_routes;
use hpcc_types::{Bandwidth, Duration, NodeId, PortId};
use std::collections::HashMap;

/// What a node is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// An end host with a NIC (sender/receiver of flows).
    Host,
    /// A switch (forwards packets, stamps INT, marks ECN, generates PFC).
    Switch,
}

/// One bidirectional link between two nodes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkSpec {
    /// First endpoint.
    pub a: NodeId,
    /// Second endpoint.
    pub b: NodeId,
    /// Capacity of each direction.
    pub bandwidth: Bandwidth,
    /// One-way propagation delay.
    pub delay: Duration,
}

/// A port of a node: its peer and the attached link's properties.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PortDesc {
    /// The node on the other end of the link.
    pub peer_node: NodeId,
    /// The port index on the peer that this port connects to.
    pub peer_port: PortId,
    /// Egress capacity of this port.
    pub bandwidth: Bandwidth,
    /// One-way propagation delay of the link.
    pub delay: Duration,
}

/// A fully built topology: nodes, per-node ports, and ECMP routes.
#[derive(Clone, Debug)]
pub struct TopologySpec {
    kinds: Vec<NodeKind>,
    links: Vec<LinkSpec>,
    ports: Vec<Vec<PortDesc>>,
    /// `routes[node][dst_host] -> equal-cost next-hop ports of `node``.
    routes: Vec<HashMap<NodeId, Vec<PortId>>>,
    hosts: Vec<NodeId>,
    switches: Vec<NodeId>,
}

impl TopologySpec {
    /// Number of nodes (hosts + switches).
    pub fn node_count(&self) -> usize {
        self.kinds.len()
    }
    /// Kind of a node.
    pub fn kind(&self, node: NodeId) -> NodeKind {
        self.kinds[node.index()]
    }
    /// All host node ids.
    pub fn hosts(&self) -> &[NodeId] {
        &self.hosts
    }
    /// All switch node ids.
    pub fn switches(&self) -> &[NodeId] {
        &self.switches
    }
    /// All links.
    pub fn links(&self) -> &[LinkSpec] {
        &self.links
    }
    /// Ports of a node.
    pub fn ports(&self, node: NodeId) -> &[PortDesc] {
        &self.ports[node.index()]
    }
    /// The equal-cost next-hop ports of `node` towards destination host
    /// `dst`. Empty when `dst` is unreachable or `node == dst`.
    pub fn next_hops(&self, node: NodeId, dst: NodeId) -> &[PortId] {
        self.routes[node.index()]
            .get(&dst)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// The number of hops (links) on a shortest path between two hosts.
    pub fn path_hops(&self, src: NodeId, dst: NodeId) -> Option<usize> {
        if src == dst {
            return Some(0);
        }
        let mut node = src;
        let mut hops = 0;
        // Routes always follow shortest paths, so walking the first
        // candidate port converges.
        while node != dst {
            let ports = self.next_hops(node, dst);
            let port = *ports.first()?;
            node = self.ports[node.index()][port.index()].peer_node;
            hops += 1;
            if hops > self.node_count() {
                return None;
            }
        }
        Some(hops)
    }

    /// One-way propagation delay plus one-MTU store-and-forward delay per
    /// hop along a shortest path between two hosts.
    pub fn path_one_way_delay(&self, src: NodeId, dst: NodeId, mtu_wire: u64) -> Option<Duration> {
        if src == dst {
            return Some(Duration::ZERO);
        }
        let mut node = src;
        let mut total = Duration::ZERO;
        let mut hops = 0;
        while node != dst {
            let ports = self.next_hops(node, dst);
            let port = *ports.first()?;
            let desc = self.ports[node.index()][port.index()];
            total += desc.delay + desc.bandwidth.tx_time(mtu_wire);
            node = desc.peer_node;
            hops += 1;
            if hops > self.node_count() {
                return None;
            }
        }
        Some(total)
    }

    /// A base-RTT estimate for the whole network: twice the largest one-way
    /// delay between any pair of hosts (propagation + store-and-forward of
    /// one MTU per hop), rounded up to the next microsecond. This mirrors the
    /// paper's practice of setting `T` "slightly greater than the maximum
    /// base RTT" (§5.1).
    pub fn suggested_base_rtt(&self, mtu_wire: u64) -> Duration {
        let mut max_one_way = Duration::ZERO;
        // The maximum is attained between the "farthest" pair; scanning all
        // pairs is O(H^2) walks but each walk is short. For large topologies
        // sample only the first host against all others plus a diagonal pair
        // sweep — sufficient because Clos topologies are symmetric.
        let hosts = &self.hosts;
        if hosts.is_empty() {
            return Duration::from_us(1);
        }
        let probes: Vec<NodeId> = if hosts.len() > 64 {
            vec![hosts[0], hosts[hosts.len() / 2], hosts[hosts.len() - 1]]
        } else {
            hosts.clone()
        };
        for &src in &probes {
            for &dst in hosts {
                if src == dst {
                    continue;
                }
                if let Some(d) = self.path_one_way_delay(src, dst, mtu_wire) {
                    max_one_way = max_one_way.max(d);
                }
            }
        }
        let rtt_ps = 2 * max_one_way.as_ps();
        // Round up to a whole microsecond and add one for slack.
        Duration::from_us(rtt_ps.div_ceil(1_000_000) + 1)
    }

    /// Rack assignment of every host, as one rack id per position in
    /// [`TopologySpec::hosts`].
    ///
    /// A host's rack is the switch its first port connects to (its ToR), so
    /// the grouping falls out of the wiring: every host of a star shares one
    /// rack, a dumbbell has a left and a right rack, the testbed PoD has
    /// four 8-host racks and a Clos fabric one rack per ToR. Rack ids are
    /// dense (`0..rack_count`) in order of first appearance, which follows
    /// host order for every in-tree builder. A host with no links (possible
    /// only through hand-built topologies) gets a rack of its own.
    ///
    /// This is what locality-aware workload generation keys on: see
    /// `LocalitySpec` in `hpcc-workload`.
    pub fn host_rack_ids(&self) -> Vec<usize> {
        let mut rack_of_switch: HashMap<NodeId, usize> = HashMap::new();
        let mut next = 0usize;
        self.hosts
            .iter()
            .map(|&h| match self.ports[h.index()].first() {
                Some(port) => *rack_of_switch.entry(port.peer_node).or_insert_with(|| {
                    let id = next;
                    next += 1;
                    id
                }),
                None => {
                    let id = next;
                    next += 1;
                    id
                }
            })
            .collect()
    }

    /// Total host-facing capacity (sum of host NIC bandwidths), the
    /// denominator of "average link load" in the paper's workloads.
    pub fn total_host_bandwidth(&self) -> Bandwidth {
        let mut total = 0u64;
        for &h in &self.hosts {
            for p in &self.ports[h.index()] {
                total += p.bandwidth.as_bps();
            }
        }
        Bandwidth::from_bps(total)
    }
}

/// Incremental builder for a [`TopologySpec`].
#[derive(Default, Debug)]
pub struct TopologyBuilder {
    kinds: Vec<NodeKind>,
    links: Vec<LinkSpec>,
}

impl TopologyBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a host and return its id.
    pub fn add_host(&mut self) -> NodeId {
        self.kinds.push(NodeKind::Host);
        NodeId(self.kinds.len() as u32 - 1)
    }

    /// Add `n` hosts and return their ids.
    pub fn add_hosts(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.add_host()).collect()
    }

    /// Add a switch and return its id.
    pub fn add_switch(&mut self) -> NodeId {
        self.kinds.push(NodeKind::Switch);
        NodeId(self.kinds.len() as u32 - 1)
    }

    /// Add `n` switches and return their ids.
    pub fn add_switches(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.add_switch()).collect()
    }

    /// Connect two nodes with a bidirectional link.
    pub fn link(&mut self, a: NodeId, b: NodeId, bandwidth: Bandwidth, delay: Duration) {
        assert!(a.index() < self.kinds.len(), "unknown node {a}");
        assert!(b.index() < self.kinds.len(), "unknown node {b}");
        assert_ne!(a, b, "self-links are not allowed");
        self.links.push(LinkSpec {
            a,
            b,
            bandwidth,
            delay,
        });
    }

    /// Finalise: assign ports and compute all-shortest-path ECMP routes.
    pub fn build(self) -> TopologySpec {
        let n = self.kinds.len();
        let mut ports: Vec<Vec<PortDesc>> = vec![Vec::new(); n];
        for link in &self.links {
            let pa = PortId(ports[link.a.index()].len() as u32);
            let pb = PortId(ports[link.b.index()].len() as u32);
            ports[link.a.index()].push(PortDesc {
                peer_node: link.b,
                peer_port: pb,
                bandwidth: link.bandwidth,
                delay: link.delay,
            });
            ports[link.b.index()].push(PortDesc {
                peer_node: link.a,
                peer_port: pa,
                bandwidth: link.bandwidth,
                delay: link.delay,
            });
        }
        let hosts: Vec<NodeId> = self
            .kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| **k == NodeKind::Host)
            .map(|(i, _)| NodeId(i as u32))
            .collect();
        let switches: Vec<NodeId> = self
            .kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| **k == NodeKind::Switch)
            .map(|(i, _)| NodeId(i as u32))
            .collect();
        let routes = compute_routes(n, &ports, &hosts);
        TopologySpec {
            kinds: self.kinds,
            links: self.links,
            ports,
            routes,
            hosts,
            switches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_hosts_one_switch() -> TopologySpec {
        let mut b = TopologyBuilder::new();
        let h0 = b.add_host();
        let h1 = b.add_host();
        let s = b.add_switch();
        b.link(h0, s, Bandwidth::from_gbps(100), Duration::from_us(1));
        b.link(h1, s, Bandwidth::from_gbps(100), Duration::from_us(1));
        b.build()
    }

    #[test]
    fn ports_are_assigned_symmetrically() {
        let t = two_hosts_one_switch();
        assert_eq!(t.ports(NodeId(0)).len(), 1);
        assert_eq!(t.ports(NodeId(2)).len(), 2);
        let host_port = t.ports(NodeId(0))[0];
        assert_eq!(host_port.peer_node, NodeId(2));
        let back = t.ports(NodeId(2))[host_port.peer_port.index()];
        assert_eq!(back.peer_node, NodeId(0));
        assert_eq!(back.peer_port, PortId(0));
    }

    #[test]
    fn routes_reach_all_hosts() {
        let t = two_hosts_one_switch();
        // Host 0 to host 1: out of its single port.
        assert_eq!(t.next_hops(NodeId(0), NodeId(1)), &[PortId(0)]);
        // Switch towards host 1: port 1 (the second link added).
        assert_eq!(t.next_hops(NodeId(2), NodeId(1)), &[PortId(1)]);
        // No route to self.
        assert!(t.next_hops(NodeId(1), NodeId(1)).is_empty());
        assert_eq!(t.path_hops(NodeId(0), NodeId(1)), Some(2));
    }

    #[test]
    fn base_rtt_accounts_for_propagation_and_serialization() {
        let t = two_hosts_one_switch();
        // One way: 2 us propagation + 2 hops of ~85 ns serialization for a
        // 1064-byte frame at 100 Gbps; doubled and rounded up -> 5-6 us.
        let rtt = t.suggested_base_rtt(1064);
        assert!(
            rtt >= Duration::from_us(5) && rtt <= Duration::from_us(6),
            "rtt={rtt}"
        );
    }

    #[test]
    fn host_bandwidth_totals() {
        let t = two_hosts_one_switch();
        assert_eq!(t.total_host_bandwidth(), Bandwidth::from_gbps(200));
        assert_eq!(t.hosts().len(), 2);
        assert_eq!(t.switches().len(), 1);
        assert_eq!(t.links().len(), 2);
        assert_eq!(t.kind(NodeId(0)), NodeKind::Host);
        assert_eq!(t.kind(NodeId(2)), NodeKind::Switch);
    }

    #[test]
    fn rack_ids_follow_the_first_hop_switch() {
        // Star: every host hangs off the single switch — one rack.
        let star = two_hosts_one_switch();
        assert_eq!(star.host_rack_ids(), vec![0, 0]);
        // Two racks of two hosts each, bridged by a core link.
        let mut b = TopologyBuilder::new();
        let hosts = b.add_hosts(4);
        let tors = b.add_switches(2);
        for (i, &h) in hosts.iter().enumerate() {
            b.link(
                h,
                tors[i / 2],
                Bandwidth::from_gbps(25),
                Duration::from_us(1),
            );
        }
        b.link(
            tors[0],
            tors[1],
            Bandwidth::from_gbps(100),
            Duration::from_us(1),
        );
        let t = b.build();
        assert_eq!(t.host_rack_ids(), vec![0, 0, 1, 1]);
        // A linkless host still gets a (unique) rack.
        let mut b = TopologyBuilder::new();
        let h0 = b.add_host();
        let _island = b.add_host();
        let h2 = b.add_host();
        let sw = b.add_switch();
        b.link(h0, sw, Bandwidth::from_gbps(25), Duration::from_us(1));
        b.link(h2, sw, Bandwidth::from_gbps(25), Duration::from_us(1));
        assert_eq!(b.build().host_rack_ids(), vec![0, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_links_rejected() {
        let mut b = TopologyBuilder::new();
        let h = b.add_host();
        b.link(h, h, Bandwidth::from_gbps(10), Duration::from_us(1));
    }
}
