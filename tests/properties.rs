//! Property-style tests on the core data structures and invariants that the
//! rest of the system leans on.
//!
//! The original proptest harness is replaced by deterministic seeded
//! sampling (the build environment vendors no external crates): each
//! property is checked against a few hundred pseudo-random cases drawn from
//! a fixed-seed [`SplitMix64`] stream, so failures reproduce exactly.

use hpcc::cc::{
    build_cc, AckEvent, CcAlgorithm, DcqcnConfig, DctcpConfig, HpccConfig, TimelyConfig,
};
use hpcc::prelude::*;
use hpcc::types::rng::SplitMix64;
use hpcc::types::{IntHeader, IntHopRecord};

const LINE: Bandwidth = Bandwidth::from_gbps(100);
const RTT: Duration = Duration::from_us(13);

fn all_schemes() -> Vec<CcAlgorithm> {
    vec![
        CcAlgorithm::Hpcc(HpccConfig::default()),
        CcAlgorithm::Dcqcn(DcqcnConfig::vendor_default(LINE)),
        CcAlgorithm::DcqcnWin(DcqcnConfig::vendor_default(LINE)),
        CcAlgorithm::Timely(TimelyConfig::recommended(LINE, RTT)),
        CcAlgorithm::TimelyWin(TimelyConfig::recommended(LINE, RTT)),
        CcAlgorithm::Dctcp(DctcpConfig::default()),
    ]
}

/// Time arithmetic: (t + d) - d == t and durations add commutatively, for
/// any representable values.
#[test]
fn time_arithmetic_roundtrips() {
    let mut rng = SplitMix64::new(0xA11CE);
    for _ in 0..500 {
        let t = SimTime::from_ns(rng.next_below(u64::MAX / 4_000));
        let d = Duration::from_ns(rng.next_below(u64::MAX / 4_000));
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.saturating_since(t + d), Duration::ZERO);
    }
}

/// Bandwidth: tx_time and bytes_in invert each other (within one byte of
/// rounding) for realistic link speeds and packet sizes.
#[test]
fn bandwidth_tx_time_inverts() {
    let mut rng = SplitMix64::new(0xB0B);
    for _ in 0..500 {
        let gbps = 1 + rng.next_below(799);
        let bytes = 1 + rng.next_below(999_999);
        let b = Bandwidth::from_gbps(gbps);
        let d = b.tx_time(bytes);
        let back = b.bytes_in(d);
        assert!(back.abs_diff(bytes) <= 1, "{bytes} -> {d} -> {back}");
    }
}

/// The INT header's wire size always matches 2 + 8 * hops, and the path id
/// is the XOR of all pushed switch ids regardless of overflow.
#[test]
fn int_header_size_and_path_id() {
    let mut rng = SplitMix64::new(0xC0FFEE);
    for _ in 0..200 {
        let n = rng.next_below(12) as usize;
        let ids: Vec<u16> = (0..n).map(|_| rng.next_below(4096) as u16).collect();
        let mut h = IntHeader::new();
        for (i, id) in ids.iter().enumerate() {
            h.push_hop(
                *id,
                IntHopRecord {
                    bandwidth: LINE,
                    ts: SimTime::from_ns(i as u64),
                    tx_bytes: i as u64 * 1000,
                    rx_bytes: i as u64 * 1000,
                    qlen: i as u64,
                },
            );
        }
        let expected_hops = ids.len().min(hpcc::types::MAX_INT_HOPS);
        assert_eq!(h.n_hops as usize, expected_hops);
        assert_eq!(h.wire_size(), 2 + 8 * expected_hops as u64);
        let xor = ids.iter().fold(0u16, |acc, id| acc ^ id);
        assert_eq!(h.path_id, xor);
    }
}

/// Every congestion-control algorithm keeps its rate within [min, line rate]
/// and its window positive, no matter what sequence of ACK / ECN / CNP /
/// loss / timer events it sees.
#[test]
fn cc_state_stays_bounded() {
    let mut seeds = SplitMix64::new(0xD1CE);
    for _ in 0..25 {
        let seed = seeds.next_u64();
        let steps = 10 + seeds.next_below(190) as usize;
        let mut rng = SplitMix64::new(seed);
        for alg in all_schemes() {
            let mut cc = build_cc(&alg, LINE, RTT, 1000);
            let mut now = SimTime::ZERO;
            let mut tx_bytes = 0u64;
            let mut seq = 0u64;
            for _ in 0..steps {
                now += Duration::from_ns(1 + rng.next_below(20_000));
                let r = rng.next_below(100);
                if r < 60 {
                    // ACK with plausible INT contents.
                    tx_bytes += rng.next_below(200_000);
                    seq += 1000 + rng.next_below(50_000);
                    let mut int = IntHeader::new();
                    int.push_hop(
                        1,
                        IntHopRecord {
                            bandwidth: LINE,
                            ts: now,
                            tx_bytes,
                            rx_bytes: tx_bytes,
                            qlen: rng.next_below(2_000_000),
                        },
                    );
                    let ack = AckEvent {
                        now,
                        ack_seq: seq,
                        snd_nxt: seq + rng.next_below(200_000),
                        newly_acked: 1000,
                        ecn_echo: rng.next_below(4) == 0,
                        rtt: Duration::from_us(5 + rng.next_below(500)),
                        int: &int,
                    };
                    cc.on_ack(&ack);
                } else if r < 75 {
                    cc.on_cnp(now);
                } else if r < 85 {
                    cc.on_loss(now);
                } else if let Some(t) = cc.next_timer() {
                    if t <= now {
                        cc.on_timer(now);
                    }
                }
                let st = cc.state();
                assert!(st.rate.as_bps() > 0, "{}: zero rate", cc.name());
                assert!(st.rate <= LINE, "{}: rate above line", cc.name());
                assert!(st.window > 0, "{}: zero window", cc.name());
            }
        }
    }
}

/// The workload CDFs always return sizes inside their support and the
/// quantile function is monotone.
#[test]
fn flow_size_cdfs_are_well_behaved() {
    let mut rng = SplitMix64::new(0xFACADE);
    for _ in 0..500 {
        let (u1, u2) = (rng.next_f64(), rng.next_f64());
        for cdf in [websearch(), fb_hadoop()] {
            let (lo, hi) = (u1.min(u2), u1.max(u2));
            let a = cdf.quantile(lo);
            let b = cdf.quantile(hi);
            assert!(a >= 1);
            assert!(b <= cdf.points().last().unwrap().0);
            assert!(a <= b, "{}: quantile not monotone", cdf.name());
        }
    }
}

/// ECMP routing: every host pair in a leaf-spine fabric has at least one
/// route from every node on the path, and the path length is bounded by
/// 4 hops (host-ToR-spine-ToR-host).
#[test]
fn leaf_spine_routing_is_complete() {
    let mut rng = SplitMix64::new(0x5EED);
    for _ in 0..12 {
        let n_leaf = 2 + rng.next_below(3) as usize;
        let n_spine = 1 + rng.next_below(3) as usize;
        let hosts_per = 1 + rng.next_below(3) as usize;
        let topo = leaf_spine(
            n_leaf,
            n_spine,
            hosts_per,
            Bandwidth::from_gbps(25),
            Bandwidth::from_gbps(100),
            Duration::from_us(1),
        );
        let hosts = topo.hosts();
        for &src in hosts.iter() {
            for &dst in hosts.iter() {
                if src == dst {
                    continue;
                }
                let hops = topo.path_hops(src, dst);
                assert!(hops.is_some());
                assert!(hops.unwrap() <= 4);
            }
        }
    }
}

/// A tiny mixed-scheme campaign for the fabric-ledger properties: four
/// schemes over an incast, cheap enough to re-execute indices many times
/// (duplicate deliveries re-run the scenario, as a real fabric worker
/// would after a lease reassignment).
fn fabric_property_campaign() -> Campaign {
    use hpcc::core::presets::incast_on_star;
    Campaign::from_scenarios(
        ["HPCC", "DCQCN", "TIMELY", "DCTCP"]
            .iter()
            .enumerate()
            .map(|(i, label)| {
                incast_on_star(
                    *label,
                    CcSpec::by_label(*label),
                    3 + i % 2,
                    20_000,
                    Bandwidth::from_gbps(25),
                    Duration::from_ms(1),
                )
                .with_seed(i as u64 + 1)
            })
            .collect(),
    )
}

/// Fabric ledger invariance: for every worker count `k ∈ {1..4}`, any
/// interleaving of per-worker completion orders, and randomly injected
/// duplicate deliveries, the merged report is bit-identical to
/// `run_serial()` — digests and canonical JSON — and the ledger accounts
/// exactly for the duplicates it absorbed.
#[test]
fn fabric_ledger_is_invariant_to_order_duplicates_and_worker_count() {
    let campaign = fabric_property_campaign();
    let serial = campaign.run_serial();
    let reference_json = serial.to_json_string();
    let mut rng = SplitMix64::new(0xFAB51C);
    for k in 1usize..=4 {
        for _round in 0..3 {
            // Each worker owns the indices `i % k == w`, completes them in
            // its own shuffled order, and the streams interleave randomly
            // — exactly the delivery pattern an elastic coordinator sees.
            let mut queues: Vec<Vec<usize>> = (0..k)
                .map(|w| (0..campaign.len()).filter(|i| i % k == w).collect())
                .collect();
            for q in &mut queues {
                for i in (1..q.len()).rev() {
                    let j = rng.next_below(i as u64 + 1) as usize;
                    q.swap(i, j);
                }
                // A reassigned lease delivers some indices twice.
                if let Some(&dup) = q.first() {
                    if rng.next_below(2) == 0 {
                        q.push(dup);
                    }
                }
            }
            let mut deliveries = Vec::new();
            while queues.iter().any(|q| !q.is_empty()) {
                let w = rng.next_below(k as u64) as usize;
                if let Some(&i) = queues[w].first() {
                    queues[w].remove(0);
                    deliveries.push(i);
                }
            }
            let mut ledger = ResultLedger::new(campaign.len());
            let mut fresh = 0usize;
            for &i in &deliveries {
                // Re-executing an index (a duplicate delivery) must yield
                // the identical digest, and the ledger absorbs it.
                let new = ledger
                    .record(i, campaign.run_index(i))
                    .unwrap_or_else(|e| panic!("k={k}: unexpected conflict: {e}"));
                fresh += usize::from(new);
            }
            assert!(ledger.is_complete(), "k={k}");
            assert_eq!(fresh, campaign.len(), "k={k}");
            assert_eq!(
                ledger.deduped() as usize,
                deliveries.len() - campaign.len(),
                "k={k}"
            );
            let report = ledger
                .into_report()
                .unwrap_or_else(|e| panic!("k={k}: {e}"));
            assert_eq!(report.digests(), serial.digests(), "k={k}");
            assert_eq!(report.to_json_string(), reference_json, "k={k}");
        }
    }
}

/// A doctored duplicate — same index, different digest — is a typed
/// determinism error, never silently preferred or dropped.
#[test]
fn fabric_ledger_rejects_conflicting_digests() {
    let campaign = fabric_property_campaign();
    let mut ledger = ResultLedger::new(campaign.len());
    assert!(ledger.record(0, campaign.run_index(0)).unwrap());
    let mut evil = campaign.run_index(0);
    evil.digest ^= 1;
    match ledger.record(0, evil) {
        Err(FabricError::DigestConflict {
            index: 0,
            have,
            got,
        }) => {
            assert_eq!(have ^ 1, got);
        }
        Err(other) => panic!("wrong error: {other}"),
        Ok(_) => panic!("conflicting digest accepted"),
    }
    // The conflict is sticky state-wise: the original result survives.
    assert!(ledger.contains(0));
    assert_eq!(ledger.deduped(), 0);
}

/// A small deterministic simulation invariant: conservation — every data
/// packet delivered was sent, and all completed flows acked exactly their
/// size (checked through the goodput accounting).
#[test]
fn simulation_conserves_bytes() {
    let bw = Bandwidth::from_gbps(25);
    let topo = star(6, bw, Duration::from_us(1));
    let rtt = topo.suggested_base_rtt(1106);
    let mut cfg = SimConfig::for_cc(CcAlgorithm::hpcc_default(), bw, rtt);
    cfg.end_time = SimTime::from_ms(20);
    cfg.flow_throughput_bin = Some(Duration::from_us(100));
    let hosts = topo.hosts().to_vec();
    let mut sim = Simulator::new(topo, cfg);
    for i in 0..5u64 {
        sim.add_flow(FlowSpec::new(
            FlowId(i + 1),
            hosts[i as usize],
            hosts[(i as usize + 1) % 5],
            200_000 + i * 50_000,
            SimTime::from_us(i * 10),
        ));
    }
    let out = sim.run();
    assert_eq!(out.flows.len(), 5);
    assert!(out.packets_sent >= out.packets_delivered);
    for f in &out.flows {
        let acked: u64 = out.flow_goodput[&f.id].iter().sum();
        assert_eq!(acked, f.size, "flow {} acked bytes mismatch", f.id);
    }
}
