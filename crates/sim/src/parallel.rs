//! The parallel partitioned packet engine: conservative-lookahead multi-core
//! execution, bit-identical to the sequential [`crate::Simulator`].
//!
//! # Execution model
//!
//! The topology is cut into P shards ([`crate::partition::plan_shards`]:
//! switches chunked by weight, hosts co-located with their first-hop switch).
//! Each shard runs its own event loop on an OS thread over its own nodes,
//! `Effects` arena and packet pool. Shards synchronize with the classic
//! conservative null-message bound: every cross-shard interaction is a
//! `PacketArrive` over a cross-shard link, which arrives no earlier than the
//! link's propagation delay after it was sent, so with `L` = the minimum
//! cross-shard link delay every shard may process the window
//! `[T, T + L)` (T = global minimum pending time) without hearing from its
//! peers. Cross-shard arrivals travel through per-(producer, consumer)
//! channels that the phase discipline keeps single-producer/single-consumer:
//! producers append only during the processing phase, consumers drain only
//! during the (barrier-separated) exchange phase, so the mutex that makes
//! them safe under `#![forbid(unsafe_code)]` is never contended.
//!
//! # The determinism rule (tie order)
//!
//! The sequential engine pops events in `(time, insertion-seq)` order. The
//! parallel engine reproduces that order *exactly* — not approximately —
//! from each event's lineage instead of a global counter:
//!
//! * Every event carries an `EventKey`: its parent (the executed event
//!   that scheduled it, or a seed ordinal for events scheduled before the
//!   run) and its push index within that parent's execution.
//! * Two events pending at the same instant compare by parent execution
//!   order, then push index. Seeds execute before any runtime push at the
//!   same instant (their insertion seqs are smaller), parents compare by
//!   `(pop time, their own key)` — the recursion the sequential seq order
//!   is built from.
//! * The recursion is *flattened* at each window barrier: a leader k-way
//!   merges the shards' per-window step lists in `(time, key)` order and
//!   assigns dense global ranks, after which a step compares by its rank
//!   and the per-window lists are dropped (keys hold at most a two-deep
//!   `Arc` chain, so memory stays bounded). Replicated global events
//!   (sampling, tracing, fault transitions) execute once per shard with
//!   equal keys and receive the *same* rank, keeping every shard's replica
//!   lineage aligned.
//!
//! Within one executed event the sequential engine's push order is: pushes
//! made while dispatching, then — LIFO — the transmission kick cascade.
//! Both are local to the owning shard except one case: a fault-timeline
//! `LinkUp` kicks both endpoints of the link, which may live on different
//! shards. The kick list is derived from the (replicated) fault timeline, so
//! every shard computes it identically; sub-cascade `r` (in sequential LIFO
//! order) stamps its pushes with index base `(r + 1) << 32`, reproducing the
//! sequential intra-event order without any cross-shard negotiation.
//!
//! The merged [`SimOutput`] normalizes completion records to
//! `(finish, flow id)` order (the campaign digest sorts them by id, so the
//! digest is invariant) and sorts PFC events by `(step rank, push index)` —
//! the exact sequential emission order.

use crate::backend::{Backend, CompiledScenario, PacketBackend};
use crate::config::SimConfig;
use crate::engine::{Effects, Event};
use crate::fault::{LinkDownMode, Transition, FAULT_RNG_STREAM};
use crate::host::Host;
use crate::output::{PfcEvent, SimOutput};
use crate::partition::{plan_shards, ShardLayout};
use crate::rng::SplitMix64;
use crate::simulator::{FaultRuntime, Node};
use crate::switch::Switch;
use hpcc_topology::{NodeKind, TopologySpec};
use hpcc_types::{Duration, FlowSpec, NodeId, PortId, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Barrier, Mutex};

/// Sentinel for "no pending events" in the shared pending-time slots.
const PENDING_NONE: u64 = u64::MAX;

/// One executed event that scheduled children. `rank` is 0 until the window
/// barrier's leader merge assigns the step its dense global execution rank.
#[derive(Debug)]
struct StepRef {
    /// The instant the step executed (its event's pop time).
    time: SimTime,
    /// Shard-local pop ordinal; orders same-shard steps before flattening.
    local_seq: u64,
    /// Dense global execution rank; 0 = not yet flattened. Written only by
    /// the barrier leader, read after the next barrier wait (the barrier's
    /// happens-before makes `Relaxed` sufficient).
    rank: AtomicU64,
}

/// Where an event came from: a pre-run seed or an executed step.
#[derive(Clone, Debug)]
enum Parent {
    /// Seed ordinal in global registration order (sampling, tracing, fault
    /// timeline, then flows) — the order the sequential engine pushes them.
    Seed(u32),
    /// The executed event that scheduled this one.
    Step(Arc<StepRef>),
}

/// The lineage key reproducing the sequential `(time, insertion-seq)` tie
/// order: parent execution order, then push index within the parent.
#[derive(Clone, Debug)]
struct EventKey {
    parent: Parent,
    /// Push index within the parent's execution. Fault `LinkUp` kick
    /// sub-cascade `r` uses base `(r + 1) << 32` (see module docs).
    idx: u64,
}

impl EventKey {
    fn cmp_key(&self, other: &EventKey) -> Ordering {
        match (&self.parent, &other.parent) {
            (Parent::Seed(a), Parent::Seed(b)) => a.cmp(b).then_with(|| self.idx.cmp(&other.idx)),
            // Seeds hold the smallest insertion seqs: at equal pop times
            // they execute before anything pushed at runtime.
            (Parent::Seed(_), Parent::Step(_)) => Ordering::Less,
            (Parent::Step(_), Parent::Seed(_)) => Ordering::Greater,
            (Parent::Step(p), Parent::Step(q)) => p
                .time
                .cmp(&q.time)
                .then_with(|| step_cmp(p, q))
                .then_with(|| self.idx.cmp(&other.idx)),
        }
    }
}

/// Order two same-time steps. Flattened steps compare by global rank
/// (replicas of one global event share a rank and fall through to the push
/// index); unflattened steps are provably from the same shard and window
/// (cross-shard events only enter a heap after their parents flattened, and
/// windows partition time), so the local pop ordinal decides.
fn step_cmp(p: &Arc<StepRef>, q: &Arc<StepRef>) -> Ordering {
    if Arc::ptr_eq(p, q) {
        return Ordering::Equal;
    }
    match (p.rank.load(Relaxed), q.rank.load(Relaxed)) {
        (0, 0) => p.local_seq.cmp(&q.local_seq),
        (0, _) | (_, 0) => {
            debug_assert!(false, "same-time steps must flatten in the same window");
            // Unreachable by construction; keep a deterministic total order
            // anyway rather than panicking in release builds.
            p.local_seq.cmp(&q.local_seq)
        }
        (rp, rq) => rp.cmp(&rq),
    }
}

/// A pending event in a shard's queue (also the cross-shard handoff payload).
#[derive(Debug)]
struct ParSched {
    time: SimTime,
    key: EventKey,
    event: Event,
}

impl PartialEq for ParSched {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for ParSched {}
impl PartialOrd for ParSched {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ParSched {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we pop earliest (time, key).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.key.cmp_key(&self.key))
    }
}

/// One window's worth of executed steps from a single shard, in local
/// execution order, awaiting the leader's global rank merge.
type WindowSteps = Vec<(EventKey, Arc<StepRef>)>;

/// Shared synchronization state of one parallel run.
struct SharedState {
    parts: usize,
    barrier: Barrier,
    /// Per-shard window step lists, published before the rank merge. The
    /// mutexes are uncontended: each shard writes its own slot, only the
    /// leader reads, in barrier-separated phases.
    steps: Vec<Mutex<WindowSteps>>,
    /// Cross-shard handoff channels, `channels[consumer * parts + producer]`.
    /// SPSC by construction; the mutex only exists to stay in safe Rust, and
    /// the phase discipline keeps it uncontended (see module docs).
    channels: Vec<Mutex<Vec<ParSched>>>,
    /// Earliest pending event time per shard (`PENDING_NONE` = empty).
    pending: Vec<AtomicU64>,
    /// Last processed event time per shard (drives `SimOutput::elapsed`).
    frontier: Vec<AtomicU64>,
    /// Next global step rank (written by the leader only).
    next_rank: AtomicU64,
}

impl SharedState {
    fn new(parts: usize) -> SharedState {
        SharedState {
            parts,
            barrier: Barrier::new(parts),
            steps: (0..parts).map(|_| Mutex::new(Vec::new())).collect(),
            channels: (0..parts * parts).map(|_| Mutex::new(Vec::new())).collect(),
            pending: (0..parts).map(|_| AtomicU64::new(PENDING_NONE)).collect(),
            frontier: (0..parts).map(|_| AtomicU64::new(0)).collect(),
            next_rank: AtomicU64::new(0),
        }
    }

    fn global_now(&self) -> SimTime {
        let ps = self
            .frontier
            .iter()
            .map(|a| a.load(Relaxed))
            .max()
            .unwrap_or(0);
        SimTime::from_ps(ps)
    }
}

/// Leader-side window flattening: k-way merge the shards' step lists in
/// `(time, key)` order and assign dense global ranks. Replicas of one global
/// event appear once per shard with equal keys and get the same rank.
fn rank_window(shared: &SharedState) {
    let lists: Vec<Vec<(EventKey, Arc<StepRef>)>> = shared
        .steps
        .iter()
        .map(|m| std::mem::take(&mut *m.lock().unwrap()))
        .collect();
    let mut heads = vec![0usize; lists.len()];
    let mut rank = shared.next_rank.load(Relaxed);
    loop {
        let mut best: Option<usize> = None;
        for s in 0..lists.len() {
            if heads[s] >= lists[s].len() {
                continue;
            }
            best = Some(match best {
                None => s,
                Some(b) => {
                    let (kb, sb) = &lists[b][heads[b]];
                    let (ks, ss) = &lists[s][heads[s]];
                    if ss.time.cmp(&sb.time).then_with(|| ks.cmp_key(kb)) == Ordering::Less {
                        s
                    } else {
                        b
                    }
                }
            });
        }
        let Some(b) = best else { break };
        rank += 1;
        let (kb, sb) = lists[b][heads[b]].clone();
        sb.rank.store(rank, Relaxed);
        heads[b] += 1;
        for (s, list) in lists.iter().enumerate() {
            if s == b {
                continue;
            }
            while heads[s] < list.len() {
                let (ks, ss) = &list[heads[s]];
                if ss.time == sb.time && ks.cmp_key(&kb) == Ordering::Equal {
                    ss.rank.store(rank, Relaxed);
                    heads[s] += 1;
                } else {
                    break;
                }
            }
        }
        // `lists[b]` may have advanced past further replicas of its own? No:
        // keys are unique within one shard (one pop each), so only other
        // shards can replicate this key.
    }
    shared.next_rank.store(rank, Relaxed);
}

/// What one shard hands back after its thread joins.
struct ShardResult {
    out: SimOutput,
    /// PFC events tagged `(step rank, push index)` — the global sort key.
    pfc: Vec<(u64, u64, PfcEvent)>,
    /// Total PFC events emitted by this shard (beyond the per-shard cap).
    pfc_emitted: u64,
}

/// One shard of the parallel run: a full node array (only owned nodes ever
/// process events; replicas exist so fault state and RNG streams stay in
/// lockstep with the sequential engine), its own event heap, `Effects`
/// arena, output accumulator and key machinery.
struct ShardSim<'a> {
    me: u32,
    layout: &'a ShardLayout,
    topo: &'a TopologySpec,
    cfg: &'a SimConfig,
    flows: &'a [FlowSpec],
    dst_slots: Vec<u32>,
    nodes: Vec<Node>,
    heap: BinaryHeap<ParSched>,
    peak: usize,
    time: SimTime,
    processed: u64,
    eff: Effects,
    kick_stack: Vec<(NodeId, PortId)>,
    faults: Option<FaultRuntime>,
    out: SimOutput,
    /// Shard-local pop ordinal for the next materialized step.
    next_step_seq: u64,
    /// Steps materialized this window, in pop order (sorted by (time, key)).
    window_steps: Vec<(EventKey, Arc<StepRef>)>,
    /// The current event's step, materialized lazily on its first push.
    cur_parent: Option<Arc<StepRef>>,
    /// The current event's own key (consumed when the step materializes).
    cur_key: Option<EventKey>,
    /// Push-index base of the current intra-event region (see module docs).
    idx_base: u64,
    next_idx: u64,
    next_pfc_idx: u64,
    pfc_tagged: Vec<(Arc<StepRef>, u64, PfcEvent)>,
    pfc_emitted: u64,
}

impl<'a> ShardSim<'a> {
    fn new(
        me: u32,
        layout: &'a ShardLayout,
        topo: &'a TopologySpec,
        cfg: &'a SimConfig,
        flows: &'a [FlowSpec],
    ) -> ShardSim<'a> {
        // Node construction mirrors `Simulator::new` exactly — including
        // non-owned replicas — so per-node RNG streams and initial state
        // match the sequential engine bit-for-bit.
        let mut nodes = Vec::with_capacity(topo.node_count());
        for i in 0..topo.node_count() {
            let id = NodeId(i as u32);
            let node = match topo.kind(id) {
                NodeKind::Host => Node::Host(Host::new(id, topo.ports(id))),
                NodeKind::Switch => Node::Switch(Switch::new(id, topo.ports(id), cfg)),
            };
            nodes.push(node);
        }
        let mut heap = BinaryHeap::new();
        let mut seed = 0u32;
        let mut push_seed = |heap: &mut BinaryHeap<ParSched>, t: SimTime, ev: Event, mine: bool| {
            if mine {
                heap.push(ParSched {
                    time: t,
                    key: EventKey {
                        parent: Parent::Seed(seed),
                        idx: 0,
                    },
                    event: ev,
                });
            }
            seed += 1;
        };
        if let Some(interval) = cfg.queue_sample_interval {
            push_seed(&mut heap, SimTime::ZERO + interval, Event::Sample, true);
        }
        if !cfg.trace_ports.is_empty() {
            push_seed(
                &mut heap,
                SimTime::ZERO + cfg.trace_interval,
                Event::TraceSample,
                true,
            );
        }
        let faults = match &cfg.faults {
            Some(plan) if !plan.is_empty() => {
                let runtime = FaultRuntime::new(plan, topo);
                for d in &plan.degraded_links {
                    if d.loss > 0.0 {
                        let (ea, eb) = runtime.endpoints[d.link];
                        for (n, _) in [ea, eb] {
                            let rng = SplitMix64::new(
                                cfg.seed
                                    ^ FAULT_RNG_STREAM
                                    ^ (n.0 as u64).wrapping_mul(0x9E3779B97F4A7C15),
                            );
                            match &mut nodes[n.index()] {
                                Node::Host(h) => h.set_fault_rng(rng),
                                Node::Switch(s) => s.set_fault_rng(rng),
                            }
                        }
                    }
                }
                if let Some(first) = runtime.timeline.next_time() {
                    push_seed(&mut heap, first, Event::FaultTransition, true);
                }
                Some(runtime)
            }
            _ => None,
        };
        let mut dst_slots = Vec::with_capacity(flows.len());
        let mut next_dst_slot = vec![0u32; topo.node_count()];
        for (i, spec) in flows.iter().enumerate() {
            let slot = &mut next_dst_slot[spec.dst.index()];
            dst_slots.push(*slot);
            *slot += 1;
            push_seed(
                &mut heap,
                spec.start,
                Event::FlowStart(i),
                layout.owner(spec.src) == me,
            );
        }
        let mut out = SimOutput::new(1024, cfg.flow_throughput_bin.unwrap_or(Duration::ZERO));
        if cfg.queueing.data_classes > 1 {
            out.class_queue_histograms = vec![Vec::new(); cfg.queueing.data_classes as usize];
        }
        let peak = heap.len();
        ShardSim {
            me,
            layout,
            topo,
            cfg,
            flows,
            dst_slots,
            nodes,
            heap,
            peak,
            time: SimTime::ZERO,
            processed: 0,
            eff: Effects::default(),
            kick_stack: Vec::new(),
            faults,
            out,
            next_step_seq: 0,
            window_steps: Vec::new(),
            cur_parent: None,
            cur_key: None,
            idx_base: 0,
            next_idx: 0,
            next_pfc_idx: 0,
            pfc_tagged: Vec::new(),
            pfc_emitted: 0,
        }
    }

    fn owns(&self, node: NodeId) -> bool {
        self.layout.owns(self.me, node)
    }

    /// The window loop. Each round: publish the finished window's steps,
    /// flatten (leader), exchange handoffs, agree on the next window, run it.
    fn run(&mut self, shared: &SharedState) {
        loop {
            *shared.steps[self.me as usize].lock().unwrap() =
                std::mem::take(&mut self.window_steps);
            if shared.barrier.wait().is_leader() {
                rank_window(shared);
            }
            shared.barrier.wait(); // ranks visible to every shard
            for src in 0..shared.parts {
                let mut inbox = shared.channels[self.me as usize * shared.parts + src]
                    .lock()
                    .unwrap();
                for sched in inbox.drain(..) {
                    self.push_heap(sched);
                }
            }
            let pending = self.heap.peek().map_or(PENDING_NONE, |s| s.time.as_ps());
            shared.pending[self.me as usize].store(pending, Relaxed);
            shared.frontier[self.me as usize].store(self.time.as_ps(), Relaxed);
            shared.barrier.wait(); // pending times visible
            let t_min = shared
                .pending
                .iter()
                .map(|a| a.load(Relaxed))
                .min()
                .expect("at least one shard");
            if t_min == PENDING_NONE || SimTime::from_ps(t_min) > self.cfg.end_time {
                break;
            }
            let window_end = self.layout.lookahead.map(|l| SimTime::from_ps(t_min) + l);
            self.process_window(window_end, shared);
        }
    }

    fn process_window(&mut self, window_end: Option<SimTime>, shared: &SharedState) {
        while let Some(head) = self.heap.peek() {
            let t = head.time;
            if t > self.cfg.end_time {
                break;
            }
            if let Some(we) = window_end {
                if t >= we {
                    break;
                }
            }
            let sched = self.heap.pop().expect("peeked");
            self.step(sched, shared);
        }
    }

    fn push_heap(&mut self, sched: ParSched) {
        self.heap.push(sched);
        self.peak = self.peak.max(self.heap.len());
    }

    /// Mirror of `Simulator::step`, filtered to owned nodes. Replicated
    /// global events run on every shard but count as processed on shard 0
    /// only, so the summed counter matches the sequential engine.
    fn step(&mut self, sched: ParSched, shared: &SharedState) {
        let ParSched {
            time: t,
            key,
            event,
        } = sched;
        let replicated = matches!(
            event,
            Event::Sample | Event::TraceSample | Event::FaultTransition
        );
        if !replicated || self.me == 0 {
            self.processed += 1;
        }
        self.time = t;
        self.cur_key = Some(key);
        self.cur_parent = None;
        self.idx_base = 0;
        self.next_idx = 0;
        self.next_pfc_idx = 0;
        self.eff.clear();
        let mut fault_roots: Vec<(NodeId, PortId)> = Vec::new();
        match event {
            Event::FlowStart(idx) => {
                let spec = self.flows[idx];
                let dst_slot = self.dst_slots[idx];
                debug_assert!(self.owns(spec.src));
                if let Node::Host(h) = &mut self.nodes[spec.src.index()] {
                    h.flow_start(t, spec, dst_slot, self.cfg, &mut self.eff);
                }
            }
            Event::PortReady { node, port } => {
                debug_assert!(self.owns(node));
                match &mut self.nodes[node.index()] {
                    Node::Host(h) => h.port_ready(),
                    Node::Switch(s) => s.port_ready(port),
                }
                self.eff.kicks.push((node, port));
            }
            Event::PacketArrive { node, port, packet } => {
                debug_assert!(self.owns(node));
                match &mut self.nodes[node.index()] {
                    Node::Host(h) => h.handle_arrival(t, port, packet, self.cfg, &mut self.eff),
                    Node::Switch(s) => {
                        s.handle_arrival(t, port, packet, self.cfg, self.topo, &mut self.eff)
                    }
                }
            }
            Event::HostWake { node } => {
                debug_assert!(self.owns(node));
                if let Node::Host(h) = &mut self.nodes[node.index()] {
                    h.handle_wake(t, &mut self.eff);
                }
            }
            Event::CcTimer { node, slot } => {
                debug_assert!(self.owns(node));
                if let Node::Host(h) = &mut self.nodes[node.index()] {
                    h.handle_cc_timer(t, slot, self.cfg, &mut self.eff);
                }
            }
            Event::RtoCheck { node, slot } => {
                debug_assert!(self.owns(node));
                if let Node::Host(h) = &mut self.nodes[node.index()] {
                    h.handle_rto(t, slot, self.cfg, &mut self.eff);
                }
            }
            Event::Sample => {
                let classes = self.cfg.queueing.data_classes;
                for (i, node) in self.nodes.iter().enumerate() {
                    if !self.layout.owns(self.me, NodeId(i as u32)) {
                        continue;
                    }
                    if let Node::Switch(s) = node {
                        for port in s.ports() {
                            self.out.record_queue_sample(port.data_queue_bytes());
                            if classes > 1 {
                                for c in 0..classes {
                                    self.out.record_class_queue_sample(
                                        c as usize,
                                        port.class_queue_bytes(c),
                                    );
                                }
                            }
                        }
                    }
                }
                if let Some(interval) = self.cfg.queue_sample_interval {
                    let next = t + interval;
                    if next <= self.cfg.end_time {
                        self.eff.events.push((next, Event::Sample));
                    }
                }
            }
            Event::TraceSample => {
                for i in 0..self.cfg.trace_ports.len() {
                    let (n, p) = self.cfg.trace_ports[i];
                    if !self.owns(n) {
                        continue;
                    }
                    let qlen = match &self.nodes[n.index()] {
                        Node::Switch(s) => s.ports()[p.index()].data_queue_bytes(),
                        Node::Host(_) => 0,
                    };
                    self.out
                        .port_traces
                        .entry((n, p))
                        .or_default()
                        .push((t, qlen));
                }
                let next = t + self.cfg.trace_interval;
                if next <= self.cfg.end_time {
                    self.eff.events.push((next, Event::TraceSample));
                }
            }
            Event::FaultTransition => self.fault_transition(t, &mut fault_roots),
        }
        self.apply_effects(shared);
        if !fault_roots.is_empty() {
            debug_assert!(self.kick_stack.is_empty() && self.eff.kicks.is_empty());
            // Sequential LIFO pops the kick list back-to-front, completing
            // each root's sub-cascade before the next; region r gets push
            // base (r + 1) << 32 on every shard, and exactly the endpoint
            // owner executes it.
            for (r, &(n, p)) in fault_roots.iter().rev().enumerate() {
                self.idx_base = ((r as u64) + 1) << 32;
                self.next_idx = 0;
                self.next_pfc_idx = 0;
                if self.owns(n) {
                    self.kick_stack.push((n, p));
                    self.work_kicks(shared);
                }
            }
        }
    }

    /// Mirror of `Simulator::fault_transition`: applied to every local
    /// replica (owned or not) so link state, RNG draws and the accounting
    /// evolve identically on all shards; the `LinkUp` resume kicks are
    /// collected into `roots` instead of the kick stack (see module docs).
    fn fault_transition(&mut self, now: SimTime, roots: &mut Vec<(NodeId, PortId)>) {
        let Some(fr) = self.faults.as_mut() else {
            return;
        };
        for (_, tr) in fr.timeline.due(now) {
            fr.events_applied += 1;
            match tr {
                Transition::LinkDown { link, mode } => {
                    let drop_mode = mode == LinkDownMode::Drop;
                    let (ea, eb) = fr.endpoints[link];
                    for (n, p) in [ea, eb] {
                        match &mut self.nodes[n.index()] {
                            Node::Host(h) => h.set_link_down(true, drop_mode),
                            Node::Switch(s) => s.set_link_down(p, true, drop_mode),
                        }
                    }
                    fr.down_since[link] = Some(now);
                    fr.active += 1;
                }
                Transition::LinkUp { link } => {
                    let (ea, eb) = fr.endpoints[link];
                    for (n, p) in [ea, eb] {
                        match &mut self.nodes[n.index()] {
                            Node::Host(h) => h.set_link_down(false, false),
                            Node::Switch(s) => s.set_link_down(p, false, false),
                        }
                        roots.push((n, p));
                    }
                    if let Some(since) = fr.down_since[link].take() {
                        let dt = now.saturating_since(since);
                        fr.downtime[link] += dt;
                        fr.host_nic_downtime += dt * fr.host_ends[link] as u64;
                    }
                    fr.active = fr.active.saturating_sub(1);
                }
                Transition::DegradeOn { idx } => {
                    let d = fr.plan.degraded_links[idx];
                    let (ea, eb) = fr.endpoints[d.link];
                    for (n, p) in [ea, eb] {
                        match &mut self.nodes[n.index()] {
                            Node::Host(h) => h.set_link_degraded(d.extra_delay, d.loss),
                            Node::Switch(s) => s.set_link_degraded(p, d.extra_delay, d.loss),
                        }
                    }
                    fr.active += 1;
                }
                Transition::DegradeOff { idx } => {
                    let d = fr.plan.degraded_links[idx];
                    let (ea, eb) = fr.endpoints[d.link];
                    for (n, p) in [ea, eb] {
                        match &mut self.nodes[n.index()] {
                            Node::Host(h) => h.set_link_degraded(Duration::ZERO, 0.0),
                            Node::Switch(s) => s.set_link_degraded(p, Duration::ZERO, 0.0),
                        }
                    }
                    fr.active = fr.active.saturating_sub(1);
                }
                Transition::StraggleOn { idx } => {
                    let s = fr.plan.stragglers[idx];
                    let id = self.topo.hosts()[s.host];
                    let line = self.topo.ports(id)[0].bandwidth;
                    if let Node::Host(h) = &mut self.nodes[id.index()] {
                        h.set_straggle(Some(line.mul_f64(s.rate_factor)));
                    }
                    fr.active += 1;
                }
                Transition::StraggleOff { idx } => {
                    let s = fr.plan.stragglers[idx];
                    let id = self.topo.hosts()[s.host];
                    if let Node::Host(h) = &mut self.nodes[id.index()] {
                        h.set_straggle(None);
                    }
                    fr.active = fr.active.saturating_sub(1);
                }
            }
        }
        if let Some(next) = fr.timeline.next_time() {
            self.eff.events.push((next, Event::FaultTransition));
        }
    }

    /// Mirror of `Simulator::apply_effects`.
    fn apply_effects(&mut self, shared: &SharedState) {
        self.absorb(shared);
        debug_assert!(self.kick_stack.is_empty());
        self.kick_stack.append(&mut self.eff.kicks);
        self.work_kicks(shared);
    }

    /// The LIFO transmission-kick loop (every kick is self-node, hence
    /// shard-local; checked in debug builds).
    fn work_kicks(&mut self, shared: &SharedState) {
        while let Some((n, p)) = self.kick_stack.pop() {
            debug_assert!(self.owns(n), "kick cascades never cross shards");
            match &mut self.nodes[n.index()] {
                Node::Host(h) => h.try_transmit(self.time, self.cfg, &mut self.eff),
                Node::Switch(s) => s.try_transmit(self.time, p, self.cfg, &mut self.eff),
            }
            self.kick_stack.append(&mut self.eff.kicks);
            self.absorb(shared);
        }
    }

    /// Materialize the current event's step on its first push.
    fn current_step(&mut self) -> Arc<StepRef> {
        if let Some(s) = &self.cur_parent {
            return Arc::clone(s);
        }
        let s = Arc::new(StepRef {
            time: self.time,
            local_seq: self.next_step_seq,
            rank: AtomicU64::new(0),
        });
        self.next_step_seq += 1;
        let key = self.cur_key.take().expect("step key is materialized once");
        self.window_steps.push((key, Arc::clone(&s)));
        self.cur_parent = Some(Arc::clone(&s));
        s
    }

    /// Mirror of `Simulator::absorb`: drain the arena into the local heap,
    /// the cross-shard channels and the output records, stamping every push
    /// with its lineage key.
    fn absorb(&mut self, shared: &SharedState) {
        if !self.eff.events.is_empty() {
            let step = self.current_step();
            let mut evs = std::mem::take(&mut self.eff.events);
            for (t, e) in evs.drain(..) {
                debug_assert!(self.next_idx < 1 << 32, "push index fits the region base");
                let key = EventKey {
                    parent: Parent::Step(Arc::clone(&step)),
                    idx: self.idx_base | self.next_idx,
                };
                self.next_idx += 1;
                let sched = ParSched {
                    time: t,
                    key,
                    event: e,
                };
                match self.layout.event_home(&sched.event, self.flows) {
                    Some(owner) if owner != self.me => {
                        shared.channels[owner as usize * shared.parts + self.me as usize]
                            .lock()
                            .unwrap()
                            .push(sched);
                    }
                    _ => self.push_heap(sched),
                }
            }
            self.eff.events = evs;
        }
        for rec in self.eff.completions.drain(..) {
            self.out.flows.push(rec);
        }
        if !self.eff.pfc_events.is_empty() {
            let step = self.current_step();
            for ev in self.eff.pfc_events.drain(..) {
                debug_assert!(self.next_pfc_idx < 1 << 32);
                if self.pfc_tagged.len() < SimOutput::PFC_EVENT_CAP {
                    self.pfc_tagged.push((
                        Arc::clone(&step),
                        self.idx_base | self.next_pfc_idx,
                        ev,
                    ));
                }
                self.next_pfc_idx += 1;
                self.pfc_emitted += 1;
            }
        }
        let fault_active = self.faults.as_ref().is_some_and(|fr| fr.active > 0);
        for (f, b) in self.eff.goodput.drain(..) {
            if fault_active {
                self.out.goodput_during_faults += b;
            }
            self.out.record_goodput(f, self.time, b);
        }
        self.out.packets_delivered += self.eff.packets_delivered;
        self.out.packets_sent += self.eff.packets_sent;
        self.eff.packets_delivered = 0;
        self.eff.packets_sent = 0;
    }

    /// Mirror of `Simulator::finalize` over owned nodes. `now` is the
    /// *global* last processed time (all shards close out at the same
    /// instant, like the sequential engine). The fault close-out runs on
    /// every shard (the accounting is replicated) but only shard 0 exports
    /// it, so the merge does not double count.
    fn finalize(mut self, now: SimTime) -> ShardResult {
        for (i, node) in self.nodes.iter_mut().enumerate() {
            let id = NodeId(i as u32);
            if !self.layout.owns(self.me, id) {
                continue;
            }
            match node {
                Node::Switch(s) => {
                    s.finalize(now);
                    let (fp, fb) = s.fault_drops();
                    self.out.fault_dropped_packets += fp;
                    self.out.fault_dropped_bytes += fb;
                    for (pi, port) in s.ports().iter().enumerate() {
                        self.out
                            .ports
                            .insert((id, PortId(pi as u32)), port.counters);
                    }
                }
                Node::Host(h) => {
                    let unfinished = h.finalize(now);
                    self.out.unfinished_flows += unfinished;
                    let (fp, fb) = h.fault_drops();
                    self.out.fault_dropped_packets += fp;
                    self.out.fault_dropped_bytes += fb;
                    self.out.ports.insert((id, PortId(0)), h.counters);
                }
            }
        }
        if let Some(mut fr) = self.faults.take() {
            for link in 0..fr.down_since.len() {
                if let Some(since) = fr.down_since[link].take() {
                    let dt = now.saturating_since(since);
                    fr.downtime[link] += dt;
                    fr.host_nic_downtime += dt * fr.host_ends[link] as u64;
                }
            }
            if self.me == 0 {
                self.out.fault_events = fr.events_applied;
                self.out.host_nic_downtime = fr.host_nic_downtime;
                self.out.link_downtime = fr
                    .downtime
                    .iter()
                    .enumerate()
                    .filter(|(_, d)| !d.is_zero())
                    .map(|(i, &d)| (i, d))
                    .collect();
            }
        }
        self.out.elapsed = now;
        self.out.events_processed = self.processed;
        self.out.peak_event_queue = self.peak as u64;
        let pfc = self
            .pfc_tagged
            .into_iter()
            .map(|(step, sub, ev)| {
                let rank = step.rank.load(Relaxed);
                debug_assert!(rank > 0, "every emitting step was flattened");
                (rank, sub, ev)
            })
            .collect();
        ShardResult {
            out: self.out,
            pfc,
            pfc_emitted: self.pfc_emitted,
        }
    }
}

/// Merge the per-shard outputs into one [`SimOutput`]. Node-keyed maps are
/// disjoint by ownership; histograms sum elementwise; PFC events globally
/// re-sort by `(step rank, push index)`; completion records normalize to
/// `(finish, id)` order (digest-invariant — the digest sorts by id).
fn merge_outputs(cfg: &SimConfig, shards: Vec<ShardResult>, now: SimTime) -> SimOutput {
    let mut out = SimOutput::new(1024, cfg.flow_throughput_bin.unwrap_or(Duration::ZERO));
    if cfg.queueing.data_classes > 1 {
        out.class_queue_histograms = vec![Vec::new(); cfg.queueing.data_classes as usize];
    }
    let mut pfc_all: Vec<(u64, u64, PfcEvent)> = Vec::new();
    let mut pfc_total = 0u64;
    for sh in shards {
        let s = sh.out;
        out.flows.extend(s.flows);
        out.unfinished_flows += s.unfinished_flows;
        // Per-node maps are disjoint across shards; collect-and-sort keeps
        // the merge order deterministic (and simlint-clean).
        let mut ports: Vec<_> = s.ports.into_iter().collect();
        ports.sort_unstable_by_key(|&((n, p), _)| (n.0, p.0));
        for (k, v) in ports {
            out.ports.insert(k, v);
        }
        let mut traces: Vec<_> = s.port_traces.into_iter().collect();
        traces.sort_unstable_by_key(|&((n, p), _)| (n.0, p.0));
        for (k, v) in traces {
            out.port_traces.insert(k, v);
        }
        let mut goodput: Vec<_> = s.flow_goodput.into_iter().collect();
        goodput.sort_unstable_by_key(|&(f, _)| f.0);
        for (k, v) in goodput {
            out.flow_goodput.insert(k, v);
        }
        if out.queue_histogram.len() < s.queue_histogram.len() {
            out.queue_histogram.resize(s.queue_histogram.len(), 0);
        }
        for (i, c) in s.queue_histogram.iter().enumerate() {
            out.queue_histogram[i] += c;
        }
        for (class, hist) in s.class_queue_histograms.iter().enumerate() {
            let dst = &mut out.class_queue_histograms[class];
            if dst.len() < hist.len() {
                dst.resize(hist.len(), 0);
            }
            for (i, c) in hist.iter().enumerate() {
                dst[i] += c;
            }
        }
        out.events_processed += s.events_processed;
        out.peak_event_queue = out.peak_event_queue.max(s.peak_event_queue);
        out.packets_delivered += s.packets_delivered;
        out.packets_sent += s.packets_sent;
        out.fault_dropped_bytes += s.fault_dropped_bytes;
        out.fault_dropped_packets += s.fault_dropped_packets;
        out.goodput_during_faults += s.goodput_during_faults;
        // Replicated fault accounting is exported by shard 0 only.
        out.fault_events += s.fault_events;
        out.host_nic_downtime += s.host_nic_downtime;
        if !s.link_downtime.is_empty() {
            out.link_downtime = s.link_downtime;
        }
        pfc_all.extend(sh.pfc);
        pfc_total += sh.pfc_emitted;
    }
    out.flows.sort_unstable_by_key(|f| (f.finish, f.id.0));
    pfc_all.sort_unstable_by_key(|&(rank, sub, _)| (rank, sub));
    out.pfc_events = pfc_all
        .into_iter()
        .take(SimOutput::PFC_EVENT_CAP)
        .map(|(_, _, ev)| ev)
        .collect();
    out.pfc_events_truncated = pfc_total > SimOutput::PFC_EVENT_CAP as u64;
    out.elapsed = now;
    out
}

/// Run a compiled scenario on `threads` shards (see module docs). Collapses
/// to the sequential engine when the partitioner yields one shard (threads
/// ≤ 1, single-switch topologies, or a zero-lookahead cut).
pub fn run_parallel(scenario: CompiledScenario, threads: u32) -> SimOutput {
    let layout = plan_shards(&scenario.topo, threads);
    if layout.parts <= 1 {
        return PacketBackend.run(scenario);
    }
    let CompiledScenario { topo, cfg, flows } = scenario;
    let parts = layout.parts as usize;
    let shared = SharedState::new(parts);
    let results: Vec<ShardResult> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(parts);
        for me in 0..parts as u32 {
            let (layout, topo, cfg, flows, shared) = (&layout, &topo, &cfg, &flows, &shared);
            handles.push(scope.spawn(move || {
                let mut sim = ShardSim::new(me, layout, topo, cfg, flows);
                sim.run(shared);
                sim.finalize(shared.global_now())
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("shard thread panicked"))
            .collect()
    });
    merge_outputs(&cfg, results, shared.global_now())
}

/// The parallel partitioned packet engine behind the [`Backend`] boundary.
///
/// Produces output bit-identical (up to digest-invariant record order; see
/// `merge_outputs`) to [`PacketBackend`] for every scenario, at
/// multi-core throughput on partitionable topologies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelPacketBackend {
    /// Worker threads requested (the partitioner may clamp; 1 collapses to
    /// the sequential engine).
    pub threads: u32,
}

impl Backend for ParallelPacketBackend {
    fn name(&self) -> &'static str {
        "parallel_packet"
    }

    fn run(&self, scenario: CompiledScenario) -> SimOutput {
        run_parallel(scenario, self.threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlowControlMode;
    use crate::fault::{FaultConfig, LinkFault};
    use hpcc_cc::{CcAlgorithm, DcqcnConfig};
    use hpcc_topology::{fat_tree, FatTreeParams};
    use hpcc_types::{Bandwidth, FlowId};

    const LINE: Bandwidth = Bandwidth::from_gbps(100);

    fn fat_tree_scenario(with_faults: bool) -> CompiledScenario {
        let topo = fat_tree(FatTreeParams::small());
        let base_rtt = topo.suggested_base_rtt(1106);
        let mut cfg = SimConfig::for_cc(CcAlgorithm::hpcc_default(), LINE, base_rtt);
        cfg.end_time = SimTime::from_ms(2);
        cfg.queue_sample_interval = Some(Duration::from_us(3));
        cfg.flow_throughput_bin = Some(Duration::from_us(100));
        let switch = topo.switches()[0];
        cfg.trace_ports = vec![(switch, PortId(0))];
        cfg.trace_interval = Duration::from_us(7);
        if with_faults {
            cfg.faults = Some(FaultConfig {
                link_faults: vec![LinkFault {
                    link: 0,
                    at: Duration::from_us(100),
                    down_for: Duration::from_us(300),
                    flaps: 1,
                    period: Duration::from_us(700),
                    mode: crate::fault::LinkDownMode::Drop,
                }],
                ..Default::default()
            });
        }
        let hosts = topo.hosts().to_vec();
        let n = hosts.len();
        let mut flows = Vec::new();
        for i in 0..n {
            flows.push(FlowSpec::new(
                FlowId(i as u64 + 1),
                hosts[i],
                hosts[(i + n / 2 + 1) % n],
                200_000,
                SimTime::from_us((i as u64) % 7),
            ));
        }
        CompiledScenario { topo, cfg, flows }
    }

    fn normalize(mut out: SimOutput) -> SimOutput {
        out.flows.sort_unstable_by_key(|f| (f.finish, f.id.0));
        out
    }

    fn assert_outputs_match(seq: &SimOutput, par: &SimOutput) {
        assert_eq!(seq.flows, par.flows);
        assert_eq!(seq.unfinished_flows, par.unfinished_flows);
        assert_eq!(seq.ports, par.ports);
        assert_eq!(seq.queue_histogram, par.queue_histogram);
        assert_eq!(seq.class_queue_histograms, par.class_queue_histograms);
        assert_eq!(seq.port_traces, par.port_traces);
        assert_eq!(seq.flow_goodput, par.flow_goodput);
        assert_eq!(seq.pfc_events, par.pfc_events);
        assert_eq!(seq.pfc_events_truncated, par.pfc_events_truncated);
        assert_eq!(seq.elapsed, par.elapsed);
        assert_eq!(seq.events_processed, par.events_processed);
        assert_eq!(seq.packets_delivered, par.packets_delivered);
        assert_eq!(seq.packets_sent, par.packets_sent);
        assert_eq!(seq.fault_events, par.fault_events);
        assert_eq!(seq.link_downtime, par.link_downtime);
        assert_eq!(seq.fault_dropped_bytes, par.fault_dropped_bytes);
        assert_eq!(seq.fault_dropped_packets, par.fault_dropped_packets);
        assert_eq!(seq.goodput_during_faults, par.goodput_during_faults);
        assert_eq!(seq.host_nic_downtime, par.host_nic_downtime);
    }

    #[test]
    fn parallel_matches_sequential_on_a_fat_tree() {
        let seq = normalize(PacketBackend.run(fat_tree_scenario(false)));
        for threads in [2, 3, 4] {
            let par = run_parallel(fat_tree_scenario(false), threads);
            assert_outputs_match(&seq, &par);
        }
    }

    #[test]
    fn parallel_matches_sequential_under_faults() {
        let seq = normalize(PacketBackend.run(fat_tree_scenario(true)));
        let par = run_parallel(fat_tree_scenario(true), 2);
        assert_outputs_match(&seq, &par);
    }

    #[test]
    fn parallel_matches_sequential_with_pfc_under_incast() {
        // DCQCN + a small buffer forces PFC pauses: exercises the pause-frame
        // path (cross-shard PFC packets) and the tagged PFC event merge.
        let build = || {
            let topo = fat_tree(FatTreeParams::small());
            let base_rtt = topo.suggested_base_rtt(1106);
            let mut cfg = SimConfig::for_cc(
                CcAlgorithm::Dcqcn(DcqcnConfig::vendor_default(LINE)),
                LINE,
                base_rtt,
            );
            cfg.end_time = SimTime::from_ms(3);
            cfg.flow_control = FlowControlMode::Lossless;
            cfg.buffer_bytes = 300_000;
            let hosts = topo.hosts().to_vec();
            let mut flows = Vec::new();
            for i in 0..hosts.len() - 1 {
                flows.push(FlowSpec::new(
                    FlowId(i as u64 + 1),
                    hosts[i],
                    hosts[hosts.len() - 1],
                    300_000,
                    SimTime::from_us(i as u64),
                ));
            }
            CompiledScenario { topo, cfg, flows }
        };
        let seq = normalize(PacketBackend.run(build()));
        assert!(!seq.pfc_events.is_empty(), "incast should trigger PFC");
        let par = run_parallel(build(), 4);
        assert_outputs_match(&seq, &par);
    }

    #[test]
    fn single_switch_topologies_collapse_to_the_sequential_engine() {
        let topo = hpcc_topology::star(4, LINE, Duration::from_us(1));
        let base_rtt = topo.suggested_base_rtt(1106);
        let mut cfg = SimConfig::for_cc(CcAlgorithm::hpcc_default(), LINE, base_rtt);
        cfg.end_time = SimTime::from_ms(2);
        let hosts = topo.hosts().to_vec();
        let flows = vec![FlowSpec::new(
            FlowId(1),
            hosts[0],
            hosts[1],
            100_000,
            SimTime::ZERO,
        )];
        let seq = PacketBackend.run(CompiledScenario {
            topo: topo.clone(),
            cfg: cfg.clone(),
            flows: flows.clone(),
        });
        let par = ParallelPacketBackend { threads: 8 }.run(CompiledScenario { topo, cfg, flows });
        // Collapsed path delegates wholesale: even the completion order and
        // the peak queue metric match.
        assert_eq!(seq.flows, par.flows);
        assert_eq!(seq.events_processed, par.events_processed);
        assert_eq!(seq.peak_event_queue, par.peak_event_queue);
    }
}
