//! Deterministic PRNG used for ECN marking probabilities and ECMP
//! perturbation.
//!
//! The generator itself lives in `hpcc-types` (it is shared with the
//! workload generators); this module re-exports it under the simulator's
//! historical path.

pub use hpcc_types::rng::SplitMix64;
