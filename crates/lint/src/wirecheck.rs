//! Wire-contract drift checker.
//!
//! `docs/WIRE.md` is the normative specification of the JSONL shard wire
//! format and `crates/core/src/wire.rs` is its only implementation. This
//! analyzer extracts the set of JSON member keys from both sides and
//! cross-checks them **bidirectionally**, so an encoder key the doc never
//! mentions — or a documented key the encoder dropped — fails the build
//! instead of drifting silently.
//!
//! * From the **source**, keys are string literals in key position:
//!   `("key", …)` pairs fed to the JSON object builder and
//!   `.require("key")` / `.get("key")` decode lookups (test modules are
//!   skipped).
//! * From the **doc**, keys are `"key":` members inside fenced ```json
//!   blocks, `"key":` members inside inline code spans that contain an
//!   object brace, and backticked identifiers in the *first cell* of
//!   markdown table rows. Prose mentions (like the hypothetical `"v"`
//!   version member) are deliberately not key positions.

use crate::scanner::{is_ident_char, scan};
use crate::Finding;
use std::collections::BTreeMap;

/// Rule id for wire-contract drift findings.
pub const WIRE_DRIFT: &str = "wire-drift";

/// Extract `key → first line` from the wire implementation source.
pub fn keys_from_source(source: &str) -> BTreeMap<String, usize> {
    let mut keys = BTreeMap::new();
    let lines = scan(source);
    for (li, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let text = &line.literals;
        let bytes = text.as_bytes();
        for (i, &b) in bytes.iter().enumerate() {
            if b != b'"' {
                continue;
            }
            // A candidate literal `"ident"` …
            let Some(end) = text[i + 1..].find('"').map(|e| i + 1 + e) else {
                continue;
            };
            let lit = &text[i + 1..end];
            if lit.is_empty()
                || !lit
                    .chars()
                    .all(|c| is_ident_char(c) && !c.is_ascii_uppercase())
            {
                continue;
            }
            // … in key position: tuple `("key",` or lookup `("key")`. A
            // tuple pair broken across lines (`obj.push((\n    "key",`)
            // resolves the opening paren from the previous code line.
            let before = text[..i].trim_end();
            let after = text[end + 1..].trim_start();
            let opens_tuple = before.ends_with('(')
                || (before.is_empty()
                    && lines[..li]
                        .iter()
                        .rev()
                        .find(|p| !p.literals.trim().is_empty())
                        .is_some_and(|p| p.literals.trim_end().ends_with('(')));
            let tuple_key = opens_tuple && after.starts_with(',');
            let lookup_key = (before.ends_with(".require(") || before.ends_with(".get("))
                && after.starts_with(')');
            if tuple_key || lookup_key {
                keys.entry(lit.to_string()).or_insert(line.number);
            }
        }
    }
    keys
}

/// Extract `key → first line` from the markdown specification.
pub fn keys_from_doc(doc: &str) -> BTreeMap<String, usize> {
    let mut keys = BTreeMap::new();
    let mut in_json_block = false;
    for (i, raw) in doc.lines().enumerate() {
        let number = i + 1;
        let trimmed = raw.trim();
        if trimmed.starts_with("```") {
            in_json_block = !in_json_block && trimmed.starts_with("```json");
            continue;
        }
        if in_json_block {
            collect_colon_keys(raw, number, &mut keys);
            continue;
        }
        // Inline code spans containing an object brace.
        for span in inline_spans(raw) {
            if span.contains('{') {
                collect_colon_keys(span, number, &mut keys);
            }
        }
        // First cell of table rows: `| `key` | … |` (separator rows have no
        // backticks and header cells no backticked identifiers).
        if let Some(rest) = trimmed.strip_prefix('|') {
            if let Some(cell) = rest.split('|').next() {
                for span in inline_spans(cell) {
                    let ident = span.trim().trim_matches('`');
                    if !ident.is_empty()
                        && ident
                            .chars()
                            .all(|c| is_ident_char(c) && !c.is_ascii_uppercase())
                    {
                        keys.entry(ident.to_string()).or_insert(number);
                    }
                }
            }
        }
    }
    keys
}

/// The backtick-delimited code spans of one markdown line.
fn inline_spans(line: &str) -> Vec<&str> {
    let mut spans = Vec::new();
    let mut rest = line;
    while let Some(open) = rest.find('`') {
        let after = &rest[open + 1..];
        let Some(close) = after.find('`') else { break };
        spans.push(&after[..close]);
        rest = &after[close + 1..];
    }
    spans
}

/// Collect `"ident":` members of `text` into `keys`.
fn collect_colon_keys(text: &str, number: usize, keys: &mut BTreeMap<String, usize>) {
    let bytes = text.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'"' {
            continue;
        }
        let Some(end) = text[i + 1..].find('"').map(|e| i + 1 + e) else {
            continue;
        };
        let lit = &text[i + 1..end];
        if lit.is_empty()
            || !lit
                .chars()
                .all(|c| is_ident_char(c) && !c.is_ascii_uppercase())
        {
            continue;
        }
        if text[end + 1..].trim_start().starts_with(':') {
            keys.entry(lit.to_string()).or_insert(number);
        }
    }
}

/// Cross-check implementation and specification; `source_path` / `doc_path`
/// only label the findings.
pub fn check_wire_contract(
    source_path: &str,
    source: &str,
    doc_path: &str,
    doc: &str,
) -> Vec<Finding> {
    let code = keys_from_source(source);
    let documented = keys_from_doc(doc);
    let mut findings = Vec::new();
    for (key, line) in &code {
        if !documented.contains_key(key) {
            findings.push(Finding::new(
                source_path,
                *line,
                WIRE_DRIFT,
                format!("wire key \"{key}\" is encoded here but not documented in {doc_path}"),
            ));
        }
    }
    for (key, line) in &documented {
        if !code.contains_key(key) {
            findings.push(Finding::new(
                doc_path,
                *line,
                WIRE_DRIFT,
                format!("documented wire key \"{key}\" does not appear in {source_path}"),
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_keys_need_key_position() {
        let src = r#"
            let v = obj(vec![("name", JsonValue::Str(x)), ("digest", JsonValue::UInt(d))]);
            let n = v.require("count")?;
            let o = v.get("faults");
            let msg = format!("not a key: {}", "nor_this");
            let label = b.as_str("also_not");
        "#;
        let keys = keys_from_source(src);
        assert!(keys.contains_key("name"));
        assert!(keys.contains_key("digest"));
        assert!(keys.contains_key("count"));
        assert!(keys.contains_key("faults"));
        assert!(!keys.contains_key("nor_this"));
        assert!(!keys.contains_key("also_not"));
    }

    #[test]
    fn doc_keys_from_blocks_spans_and_tables() {
        let doc = "\n\
            ```json\n{\"index\": 3, \"result\": {}}\n```\n\
            A *percentiles* object is `{\"count\": <unsigned>, \"p50\": <number>}`.\n\
            | key | type |\n|---|---|\n| `name` | string |\n\
            | `queue_p50` / `queue_p95` | unsigned |\n\
            Future: add a `\"v\"` member. The label `\"fluid\"` is a value.\n";
        let keys = keys_from_doc(doc);
        for k in [
            "index",
            "result",
            "count",
            "p50",
            "name",
            "queue_p50",
            "queue_p95",
        ] {
            assert!(keys.contains_key(k), "missing {k}");
        }
        assert!(!keys.contains_key("v"));
        assert!(!keys.contains_key("fluid"));
        assert!(!keys.contains_key("key"));
    }

    #[test]
    fn drift_is_bidirectional() {
        let src = r#"obj(vec![("a", x), ("b", y)]);"#;
        let doc = "| `a` | u | |\n| `c` | u | |\n";
        let findings = check_wire_contract("wire.rs", src, "WIRE.md", doc);
        let rendered: Vec<String> = findings.iter().map(|f| f.to_string()).collect();
        assert_eq!(findings.len(), 2, "{rendered:?}");
        assert!(rendered.iter().any(|f| f.contains("\"b\"")));
        assert!(rendered.iter().any(|f| f.contains("\"c\"")));
    }
}
