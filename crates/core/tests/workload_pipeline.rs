//! End-to-end pins for the trace/locality/skew workload subsystem:
//!
//! * a campaign manifest can declare trace-replay scenarios and
//!   locality/skew sweeps, round-trips through JSON, and merges
//!   bit-identically to `run_serial()` when executed as 2 shard streams,
//! * freezing any synthetic workload to a trace and replaying it reproduces
//!   the original campaign digests — through a file on disk as well as
//!   through inline manifest records.

use hpcc_core::campaign::{Campaign, ShardPlan};
use hpcc_core::presets::{fattree_locality_sweep, fattree_skew_sweep, trace_replay};
use hpcc_core::{wire, CcSpec, CdfSpec, ScenarioSpec, TopologyChoice, WorkloadSpec};
use hpcc_topology::FatTreeParams;
use hpcc_types::{Bandwidth, Duration};
use hpcc_workload::Trace;

/// A campaign exercising every new workload axis: an intra-rack locality
/// sweep, a Zipf skew sweep, and a trace-replay scenario whose records are
/// inlined in the manifest.
fn mixed_campaign() -> Campaign {
    let mut scenarios = Vec::new();
    scenarios.extend(
        fattree_locality_sweep(
            CcSpec::by_label("HPCC"),
            FatTreeParams::small(),
            0.3,
            Duration::from_ms(2),
            &[0.0, 0.9],
            7,
        )
        .scenarios()
        .to_vec(),
    );
    scenarios.extend(
        fattree_skew_sweep(
            CcSpec::by_label("DCQCN"),
            FatTreeParams::small(),
            0.3,
            Duration::from_ms(2),
            &[1.2],
            7,
        )
        .scenarios()
        .to_vec(),
    );
    // The trace scenario: freeze a small Poisson workload into inline
    // records so the manifest is fully self-contained.
    let frozen = ScenarioSpec::new(
        "trace replay (inline)",
        TopologyChoice::star(8, Bandwidth::from_gbps(25)),
        CcSpec::by_label("HPCC"),
        Duration::from_ms(2),
    )
    .with_seed(3)
    .with_workload(WorkloadSpec::poisson(CdfSpec::WebSearch, 0.2))
    .freeze()
    .expect("freezing a Poisson workload");
    scenarios.push(frozen);
    Campaign::from_scenarios(scenarios)
}

#[test]
fn mixed_campaign_manifest_round_trips_and_shards_merge_bit_identically() {
    let campaign = mixed_campaign();
    // The manifest (locality sweep + skew sweep + inline trace) is plain
    // JSON and round-trips losslessly.
    let manifest = campaign.to_json_string();
    let back = Campaign::from_json_str(&manifest).unwrap();
    assert_eq!(back, campaign);

    // Two shard streams, exactly as `campaign --shards 2` runs them, must
    // merge into a report bit-identical to the serial reference.
    let serial = campaign.run_serial();
    let mut streams = Vec::new();
    for shard in 0..2 {
        let mut buf = Vec::new();
        back.run_shard_streaming(ShardPlan::new(shard, 2), &mut buf)
            .unwrap();
        streams.push(String::from_utf8(buf).unwrap());
    }
    let merged =
        wire::merge_shard_streams(streams.iter().map(String::as_str), Some(campaign.len()))
            .unwrap();
    assert_eq!(merged.digests(), serial.digests());
    assert_eq!(merged.to_json_string(), serial.to_json_string());
    // The sweep really produced distinct workloads (no digest collisions).
    let mut unique = serial.digests();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), campaign.len());
}

#[test]
fn frozen_traces_reproduce_generated_campaign_digests() {
    // Background Poisson (with locality) + incast on the small Clos fabric:
    // the digest must survive generate → trace → replay.
    let original = fattree_locality_sweep(
        CcSpec::by_label("HPCC"),
        FatTreeParams::small(),
        0.3,
        Duration::from_ms(2),
        &[0.75],
        11,
    )
    .scenarios()[0]
        .clone()
        .with_workload(WorkloadSpec::incast(8, 100_000, 0.02));
    let frozen = original.freeze().unwrap();
    let a = Campaign::from_scenarios(vec![original]).run_serial();
    let b = Campaign::from_scenarios(vec![frozen]).run_serial();
    assert_eq!(a.digests(), b.digests());
}

#[test]
fn trace_files_on_disk_replay_to_the_same_digest_as_inline_records() {
    // Export a synthetic workload to a CSV file, then declare a
    // trace-replay scenario over that file (the cross-host workflow: the
    // trace is the artifact that ships).
    let spec = ScenarioSpec::new(
        "source",
        TopologyChoice::star(6, Bandwidth::from_gbps(25)),
        CcSpec::by_label("DCTCP"),
        Duration::from_ms(2),
    )
    .with_seed(21)
    .with_workload(WorkloadSpec::poisson(CdfSpec::FbHadoop, 0.25));
    let exp = spec.build();
    let trace = Trace::from_flows(exp.flows(), exp.topology().hosts()).unwrap();
    assert!(!trace.records.is_empty());

    let dir = std::env::temp_dir().join("hpcc_workload_pipeline_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("source_flows.csv");
    std::fs::write(&path, trace.to_csv()).unwrap();

    let replay_spec = trace_replay(
        "replayed",
        TopologyChoice::star(6, Bandwidth::from_gbps(25)),
        CcSpec::by_label("DCTCP"),
        path.to_string_lossy().into_owned(),
        Duration::from_ms(2),
        21,
    );
    // The file-driven scenario serializes (path form) and round-trips.
    let back = ScenarioSpec::from_json_str(&replay_spec.to_json_string()).unwrap();
    assert_eq!(back, replay_spec);

    // Identical per-flow tuples…
    let replayed = replay_spec.build();
    assert_eq!(replayed.flows(), exp.flows());
    // …and identical run digests. The scenarios differ only in `name` and
    // measurement options; digest covers the simulator output, which both
    // must reproduce. Align the measurement options first.
    let mut original = spec;
    original.trace = replay_spec.trace.clone();
    let a = Campaign::from_scenarios(vec![original]).run_serial();
    let b = Campaign::from_scenarios(vec![replay_spec]).run_serial();
    assert_eq!(a.digests(), b.digests());
}
