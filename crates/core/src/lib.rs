//! # hpcc-core
//!
//! The high-level experiment API of the HPCC reproduction. It glues the
//! substrates together — topologies (`hpcc-topology`), traffic
//! (`hpcc-workload`), the packet-level simulator (`hpcc-sim`), congestion
//! control (`hpcc-cc`) and metrics (`hpcc-stats`) — behind three things:
//!
//! * [`scenario`] — the declarative [`ScenarioSpec`]: scenarios as plain,
//!   serializable data (topology, scheme, workloads — including rack
//!   locality, heavy-hitter skew and trace replay — duration, seed,
//!   measurement options), with typed [`BuildError`]s from
//!   [`ScenarioSpec::try_build`] and trace-artifact export via
//!   [`ScenarioSpec::freeze`],
//! * [`campaign`] — the [`Campaign`] runner: execute batches of scenarios
//!   across OS threads with deterministic, bit-identical-to-serial results,
//!   and shard them across processes with [`ShardPlan`],
//! * [`wire`] — the JSONL wire format distributed campaigns stream their
//!   per-scenario results through, and the shard-stream merge,
//! * [`fabric`] — the elastic cross-host campaign fabric: a TCP
//!   coordinator serving scenario indices as a dynamic work queue
//!   (EWMA-sized leases, heartbeat failure detection, digest-deduped
//!   retries, JSONL checkpoint/resume) to [`fabric::join`] workers, with
//!   merged reports bit-identical to serial execution,
//! * [`Experiment`] / [`ExperimentResults`] — build (via
//!   [`experiment::ExperimentBuilder`]), run and analyse one simulation,
//! * [`presets`] — ready-made scenario builders for every figure in the
//!   paper's evaluation (§5.2–§5.4),
//! * [`analysis`] — a re-export shim over `hpcc_sim::fluid`, where the
//!   Appendix A fluid model now lives as a first-class simulation backend
//!   (select it per scenario with [`BackendSpec`]),
//! * [`validate`] — the cross-validation harness: run a scenario grid on
//!   both backends and report per-scenario FCT/utilization divergence with
//!   a digest-pinned canonical report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod campaign;
pub mod experiment;
pub mod fabric;
pub mod json;
pub mod presets;
pub mod report;
pub mod scenario;
pub mod timing;
pub mod validate;
pub mod wire;

pub use campaign::{Campaign, CampaignReport, FaultSummary, ScenarioResult, ShardPlan};
pub use experiment::{Experiment, ExperimentBuilder, ExperimentResults};
pub use fabric::{
    Coordinator, FabricConfig, FabricError, FabricReport, ResultLedger, WorkerConfig, WorkerSummary,
};
pub use presets::SCHEME_SET_FIG11;
pub use scenario::{
    BackendSpec, BuildError, CcSpec, CdfSpec, FaultSpec, FlowDecl, MeasurementSpec, QueueingSpec,
    ScenarioSpec, SchedulerSpec, TopologyChoice, WorkloadSpec,
};
pub use validate::{ValidationReport, ValidationRow};
