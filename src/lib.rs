//! # hpcc — High Precision Congestion Control, reproduced in Rust
//!
//! This is the umbrella crate of a from-scratch reproduction of
//! *"HPCC: High Precision Congestion Control"* (Li et al., SIGCOMM 2019).
//! It re-exports the workspace crates so applications can depend on a single
//! crate:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `hpcc-types` | simulated time, bandwidth, packets, the INT header |
//! | [`cc`] | `hpcc-cc` | HPCC (Algorithm 1) and the DCQCN / TIMELY / DCTCP baselines |
//! | [`sim`] | `hpcc-sim` | the packet-level discrete-event simulator (switches with PFC/ECN/INT, host NICs) |
//! | [`topology`] | `hpcc-topology` | star / dumbbell / testbed PoD / FatTree builders with ECMP routes |
//! | [`workload`] | `hpcc-workload` | WebSearch & FB_Hadoop CDFs, Poisson load, incast bursts, locality/skew pair samplers, flow-trace replay |
//! | [`stats`] | `hpcc-stats` | FCT slowdowns, queue CDFs, PFC summaries, fairness |
//! | [`core`] | `hpcc-core` | the experiment API, per-figure presets, reports, Appendix-A fluid model |
//!
//! ## Quick start
//!
//! Scenarios are declared as plain data ([`ScenarioSpec`]), built into
//! experiments, and run — one at a time or as a parallel [`Campaign`]:
//!
//! ```
//! use hpcc::prelude::*;
//!
//! // An 8-to-1 incast on a single switch, HPCC vs DCQCN, as a campaign.
//! let bw = Bandwidth::from_gbps(25);
//! let campaign = Campaign::from_scenarios(
//!     ["HPCC", "DCQCN"]
//!         .map(|label| hpcc::core::presets::incast_on_star(
//!             label, CcSpec::by_label(label), 8, 100_000, bw, Duration::from_ms(5)))
//!         .to_vec(),
//! );
//! let report = campaign.run(); // one OS thread per scenario
//! assert_eq!(report.results.len(), 2);
//! let hpcc_run = &report.results[0];
//! assert_eq!(hpcc_run.completion, 1.0);
//! assert_eq!(hpcc_run.pfc.pause_frames, 0);
//! // Bit-identical to a serial run of the same specs:
//! assert_eq!(campaign.run_serial().digests(), report.digests());
//! ```
//!
//! [`ScenarioSpec`]: crate::core::ScenarioSpec
//! [`Campaign`]: crate::core::Campaign

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hpcc_cc as cc;
pub use hpcc_core as core;
pub use hpcc_sim as sim;
pub use hpcc_stats as stats;
pub use hpcc_topology as topology;
pub use hpcc_types as types;
pub use hpcc_workload as workload;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use hpcc_cc::{
        CcAlgorithm, CongestionControl, DcqcnConfig, DctcpConfig, HpccConfig, HpccReactionMode,
        TimelyConfig,
    };
    pub use hpcc_core::{
        BuildError, Campaign, CampaignReport, CcSpec, CdfSpec, Coordinator, Experiment,
        ExperimentBuilder, ExperimentResults, FabricConfig, FabricError, FlowDecl, MeasurementSpec,
        ResultLedger, ScenarioResult, ScenarioSpec, ShardPlan, TopologyChoice, WorkerConfig,
        WorkloadSpec,
    };
    pub use hpcc_sim::{EcnConfig, FlowControlMode, SimConfig, SimOutput, Simulator};
    pub use hpcc_stats::{FctAnalyzer, Percentiles};
    pub use hpcc_topology::{
        dumbbell, fat_tree, leaf_spine, star, testbed_pod, FatTreeParams, TopologyBuilder,
        TopologySpec,
    };
    pub use hpcc_types::{Bandwidth, Duration, FlowId, FlowSpec, NodeId, Packet, SimTime};
    pub use hpcc_workload::{
        fb_hadoop, fixed_size, incast, websearch, IncastGenerator, LoadGenerator, LocalitySpec,
        PairSpec, SkewSpec, Trace, TraceRecord, TraceSpec,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_core_types() {
        use crate::prelude::*;
        let bw = Bandwidth::from_gbps(100);
        let cc = CcAlgorithm::hpcc_default();
        assert_eq!(cc.label(), "HPCC");
        assert_eq!(bw.as_gbps_f64(), 100.0);
        let topo = star(4, bw, Duration::from_us(1));
        assert_eq!(topo.hosts().len(), 4);
    }
}
