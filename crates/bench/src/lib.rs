//! # hpcc-bench
//!
//! The benchmark and figure-regeneration harness of the HPCC reproduction.
//!
//! * [`figures`] — one runner per table/figure of the paper's evaluation
//!   (§2.3, §3.4, §5.2–§5.4). Each runner builds the corresponding scenario
//!   from `hpcc-core` presets, runs it and renders the same rows/series the
//!   paper plots. The binaries in `src/bin/` (`fig01` … `fig14`,
//!   `tab_int_overhead`, `fluid_convergence`) are thin wrappers that print
//!   the runner's report.
//! * The `campaign` binary is the manifest runner and multi-process
//!   sharded-campaign coordinator; the `trace` binary exports workloads to
//!   flow-trace files, freezes manifests into trace-replay artifacts and
//!   inspects/verifies traces (see `hpcc_workload::trace`).
//! * The Criterion benches in `benches/` measure the engine itself
//!   (events/sec), the per-ACK cost of every CC algorithm, and miniature
//!   versions of the figure scenarios so that both performance and *shape*
//!   regressions are caught by `cargo bench`.
//!
//! Scale: by default every runner uses a laptop-sized configuration (small
//! fabric, tens of milliseconds). Pass larger durations / the paper fabric
//! via each runner's arguments (the binaries expose them as CLI arguments)
//! to approach the paper's scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;

/// Parse an optional CLI argument (`args[i]`) into `T`, falling back to a
/// default.
pub fn arg_or<T: std::str::FromStr>(args: &[String], i: usize, default: T) -> T {
    args.get(i).and_then(|s| s.parse().ok()).unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parsing_falls_back_to_default() {
        let args: Vec<String> = vec!["prog".into(), "7".into(), "oops".into()];
        assert_eq!(arg_or(&args, 1, 3u64), 7);
        assert_eq!(arg_or(&args, 2, 3u64), 3);
        assert_eq!(arg_or(&args, 9, 1.5f64), 1.5);
    }
}
