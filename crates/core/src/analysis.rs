//! The Appendix A fluid model (re-exported).
//!
//! The fluid recursion started life here as an analysis aid for
//! cross-checking packet-level results against the theory. It has since been
//! promoted into `hpcc-sim` as a full simulation backend
//! ([`hpcc_sim::fluid`], behind the [`hpcc_sim::Backend`] boundary), and the
//! implementation — the [`FluidNetwork`] recursion, the Appendix A.3
//! equilibrium forms and the lemma tests — lives there now. This module
//! re-exports the library surface so existing `hpcc_core::analysis` users
//! keep working.

pub use hpcc_sim::fluid::{ai_equilibrium_rate, ai_equilibrium_utilization, FluidNetwork};
