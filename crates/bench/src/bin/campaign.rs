//! Campaign wall-clock benchmark and manifest runner.
//!
//! With no arguments, builds the Figure 11 scheme set (six scenarios on the
//! scaled-down Clos fabric), runs it serially and then in parallel, verifies
//! the per-scenario digests are bit-identical, and reports the speedup.
//!
//! Usage:
//!   cargo run --release -p hpcc-bench --bin campaign [duration_ms] [load]
//!   cargo run --release -p hpcc-bench --bin campaign -- --manifest file.json
//!   cargo run --release -p hpcc-bench --bin campaign -- --dump-manifest [duration_ms] [load]
//!
//! `--manifest` runs a JSON campaign manifest (an array of ScenarioSpec
//! objects, see `hpcc_core::scenario`) instead of the built-in scheme set;
//! `--dump-manifest` prints the built-in campaign as such a manifest (a
//! starting point for hand-edited grids).

use hpcc_core::presets::fig11_campaign;
use hpcc_core::Campaign;
use hpcc_topology::FatTreeParams;
use hpcc_types::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--dump-manifest") {
        let positional: Vec<String> = args
            .iter()
            .filter(|a| !a.starts_with("--"))
            .cloned()
            .collect();
        let ms = hpcc_bench::arg_or(&positional, 1, 10u64);
        let load = hpcc_bench::arg_or(&positional, 2, 0.3f64);
        let campaign = fig11_campaign(
            FatTreeParams::small(),
            load,
            Duration::from_ms(ms),
            true,
            42,
        );
        println!("{}", campaign.to_json_string());
        return;
    }
    let campaign = if let Some(i) = args.iter().position(|a| a == "--manifest") {
        let path = args.get(i + 1).expect("--manifest needs a file path");
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        Campaign::from_json_str(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
    } else {
        let ms = hpcc_bench::arg_or(&args, 1, 10u64);
        let load = hpcc_bench::arg_or(&args, 2, 0.3f64);
        fig11_campaign(
            FatTreeParams::small(),
            load,
            Duration::from_ms(ms),
            true,
            42,
        )
    };

    println!(
        "campaign: {} scenarios ({} available cores)",
        campaign.len(),
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );

    let serial = campaign.run_serial();
    println!("\n== serial ==\n{}", serial.table());

    // One OS thread per scenario (not capped at the core count): on a
    // multi-core host this is the full fan-out; on a loaded or small host
    // the digests still prove determinism.
    let parallel = campaign.run_with_threads(campaign.len());
    println!("== parallel ==\n{}", parallel.table());

    assert_eq!(
        serial.digests(),
        parallel.digests(),
        "parallel execution must be bit-identical to serial"
    );
    let speedup = serial.wall.as_secs_f64() / parallel.wall.as_secs_f64().max(1e-9);
    println!(
        "digests identical across {} scenarios; speedup {:.2}x ({:.2} s serial -> {:.2} s on {} threads)",
        serial.results.len(),
        speedup,
        serial.wall.as_secs_f64(),
        parallel.wall.as_secs_f64(),
        parallel.threads
    );
    if parallel.threads > 1 && speedup <= 1.0 {
        println!("warning: no speedup observed (heavily loaded or single-core host?)");
    }
}
