//! Integration tests spanning the whole workspace: build experiments with
//! the high-level API and check the paper's qualitative claims end to end.

use hpcc::core::presets::{
    elephant_mice, incast_on_star, long_short, testbed_websearch, two_to_one,
};
use hpcc::prelude::*;
use hpcc::stats::series::{goodput_series_gbps, steady_state_gbps};

const BW100: Bandwidth = Bandwidth::from_gbps(100);

/// §5.2 "HPCC has lower network latency": mice flows crossing a link
/// saturated by elephants see far lower FCT with HPCC than with DCQCN,
/// because the standing queue is gone.
#[test]
fn mice_latency_is_much_lower_with_hpcc_than_dcqcn() {
    let run = |label: &str| {
        elephant_mice(
            CcSpec::by_label(label),
            BW100,
            Duration::from_us(100),
            Duration::from_ms(3),
        )
        .run()
    };
    let hpcc = run("HPCC");
    let dcqcn = run("DCQCN");
    let mice_fct = |res: &ExperimentResults| {
        let flows: Vec<f64> = res
            .out
            .flows
            .iter()
            .filter(|f| f.size == 1_000)
            .map(|f| f.fct().as_us_f64())
            .collect();
        assert!(flows.len() > 10, "need mice samples");
        hpcc::stats::Percentiles::of(&flows).unwrap()
    };
    let m_hpcc = mice_fct(&hpcc);
    let m_dcqcn = mice_fct(&dcqcn);
    assert!(
        m_dcqcn.p95 > 2.0 * m_hpcc.p95,
        "DCQCN mice 95p latency ({:.1} us) should far exceed HPCC's ({:.1} us)",
        m_dcqcn.p95,
        m_hpcc.p95
    );
    // HPCC mice latency stays within a few x of the base RTT.
    assert!(m_hpcc.p95 < 40.0, "HPCC mice p95 = {:.1} us", m_hpcc.p95);
}

/// §5.2 "HPCC has faster and better rate recovery" (Figure 9a/9b): after a
/// short flow leaves, the long flow is back near line rate almost
/// immediately with HPCC.
#[test]
fn long_flow_recovers_quickly_after_short_flow_leaves() {
    let exp = long_short(CcSpec::by_label("HPCC"), BW100, Duration::from_ms(3)).build();
    let bin = exp.config().flow_throughput_bin.unwrap();
    let res = exp.run();
    let series = goodput_series_gbps(&res.out.flow_goodput[&FlowId(1)], bin);
    // Steady state at the end of the run is back above 85 Gbps (eta = 95% of
    // 100 G minus header overheads).
    let tail = steady_state_gbps(&series, 0.2);
    assert!(tail > 80.0, "long flow only recovered to {tail:.1} Gbps");
    // And the short flow actually completed.
    assert!(res.out.flows.iter().any(|f| f.id == FlowId(2)));
}

/// §3.4 / Figure 6: the txRate signal converges without the oscillation that
/// the rxRate variant shows — measured as the variance of the bottleneck
/// queue after the initial transient.
#[test]
fn tx_rate_signal_is_more_stable_than_rx_rate() {
    let run = |use_rx: bool| {
        let exp = two_to_one(use_rx, BW100, 4_000_000, Duration::from_ms(2)).build();
        let port = hpcc::core::presets::star_egress_to(exp.topology(), exp.flows()[0].dst);
        let res = exp.run();
        let trace = &res.out.port_traces[&port];
        // Skip the first 200 us transient, look at the rest of the transfer.
        let tail: Vec<f64> = trace
            .iter()
            .filter(|(t, _)| *t > SimTime::from_us(200) && *t < SimTime::from_us(600))
            .map(|(_, q)| *q as f64)
            .collect();
        assert!(tail.len() > 100);
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        let var = tail.iter().map(|q| (q - mean) * (q - mean)).sum::<f64>() / tail.len() as f64;
        (mean, var.sqrt())
    };
    let (_mean_tx, std_tx) = run(false);
    let (_mean_rx, std_rx) = run(true);
    assert!(
        std_rx > std_tx,
        "rxRate should oscillate more (std {std_rx:.0} B) than txRate (std {std_tx:.0} B)"
    );
}

/// §5.3 / Figure 11b: under background load plus incast, DCQCN triggers PFC
/// pauses while HPCC (and even DCQCN once a window limits inflight bytes)
/// does not.
#[test]
fn incast_pfc_pauses_appear_with_dcqcn_but_not_hpcc_or_windowed() {
    let run = |label: &str| {
        // 24-to-1 incast on the PoD: most senders are in other racks, so the
        // burst funnels through the receiving ToR's single Agg-facing
        // ingress. DCQCN's unlimited inflight bytes push that ingress past
        // the 11%-of-free-buffer PFC threshold; HPCC's BDP-bounded windows
        // stay far below it.
        testbed_websearch(
            label,
            CcSpec::by_label(label),
            0.3,
            Duration::from_ms(15),
            Some(24),
            None,
            FlowControlMode::Lossless,
            11,
        )
        .with_buffer_bytes(16_000_000)
        .run()
    };
    let dcqcn = run("DCQCN");
    let dcqcn_win = run("DCQCN+win");
    let hpcc = run("HPCC");
    assert!(
        dcqcn.pfc_summary().pause_frames > 0,
        "DCQCN under incast should trigger PFC"
    );
    assert_eq!(
        hpcc.pfc_summary().pause_frames,
        0,
        "HPCC must not trigger PFC"
    );
    assert!(
        dcqcn_win.pfc_summary().pause_frames < dcqcn.pfc_summary().pause_frames / 2,
        "adding a window must cut PFC pauses drastically ({} vs {})",
        dcqcn_win.pfc_summary().pause_frames,
        dcqcn.pfc_summary().pause_frames
    );
    // HPCC finishes almost everything within the horizon; DCQCN, throttled
    // by CNPs and PFC pauses, finishes fewer but still makes progress.
    assert!(
        hpcc.completion_fraction() > 0.75,
        "HPCC {}",
        hpcc.completion_fraction()
    );
    for res in [&dcqcn, &dcqcn_win] {
        assert!(
            res.completion_fraction() > 0.5,
            "{} {}",
            res.label,
            res.completion_fraction()
        );
        assert!(
            hpcc.completion_fraction() >= res.completion_fraction() - 0.02,
            "HPCC should finish at least as large a fraction as {}",
            res.label
        );
    }
}

/// §5.2 / Figure 10: on the WebSearch testbed workload HPCC's switch queues
/// are far smaller than DCQCN's, and its short-flow tail slowdown does not
/// regress (at 30% load both are close to ideal; the large tail gaps of the
/// paper appear at 50% load and with incast, covered by the figure
/// harnesses).
#[test]
fn websearch_short_flow_tail_and_queues_favor_hpcc() {
    let run = |label: &str| {
        testbed_websearch(
            label,
            CcSpec::by_label(label),
            0.3,
            Duration::from_ms(15),
            None,
            None,
            FlowControlMode::Lossless,
            23,
        )
        .run()
    };
    let hpcc = run("HPCC");
    let dcqcn = run("DCQCN");
    // Short flows (≤ 30 KB) at the 95th percentile.
    let s_hpcc = hpcc.slowdown_for_sizes_up_to(30_000).unwrap();
    let s_dcqcn = dcqcn.slowdown_for_sizes_up_to(30_000).unwrap();
    assert!(
        s_hpcc.p95 < 2.0 * s_dcqcn.p95,
        "HPCC short-flow 95p slowdown {:.2} should stay in the same range as DCQCN's {:.2}",
        s_hpcc.p95,
        s_dcqcn.p95
    );
    assert!(
        s_hpcc.p50 < 2.5,
        "HPCC median short-flow slowdown {:.2}",
        s_hpcc.p50
    );
    // Time-average queue occupancy: DCQCN's standing queues (held near its
    // ECN threshold whenever flows share a link) dominate HPCC's.
    let mean_queue = |res: &ExperimentResults| {
        let total: u64 = res.out.queue_histogram.iter().sum();
        let weighted: f64 = res
            .out
            .queue_histogram
            .iter()
            .enumerate()
            .map(|(i, c)| i as f64 * res.out.queue_histogram_bin as f64 * *c as f64)
            .sum();
        weighted / total.max(1) as f64
    };
    let q_hpcc = mean_queue(&hpcc);
    let q_dcqcn = mean_queue(&dcqcn);
    assert!(
        q_dcqcn > 2.0 * q_hpcc.max(100.0),
        "queues: HPCC mean {q_hpcc:.0} B vs DCQCN mean {q_dcqcn:.0} B"
    );
    assert!(
        dcqcn.out.max_queue_bytes() > 50_000,
        "DCQCN should build a standing queue somewhere"
    );
    assert_eq!(hpcc.out.total_drops(), 0);
    assert_eq!(dcqcn.out.total_drops(), 0);
}

/// The declarative API end to end: the Figure 11 scheme set declared as a
/// campaign, serialized to a JSON manifest, parsed back, and run both
/// serially and in parallel — with bit-identical per-scenario results.
#[test]
fn campaign_of_six_schemes_is_deterministic_across_threads_and_serialization() {
    let scenarios: Vec<ScenarioSpec> = hpcc::core::SCHEME_SET_FIG11
        .iter()
        .map(|label| {
            incast_on_star(
                *label,
                CcSpec::by_label(*label),
                12,
                300_000,
                Bandwidth::from_gbps(25),
                Duration::from_ms(4),
            )
            .with_seed(9)
        })
        .collect();
    let campaign = Campaign::from_scenarios(scenarios);
    assert_eq!(campaign.len(), 6);

    // The manifest round-trips.
    let manifest = campaign.to_json_string();
    let parsed = Campaign::from_json_str(&manifest).expect("manifest parses");
    assert_eq!(parsed, campaign);

    // Parallel == serial == run-from-parsed-manifest, bit for bit.
    let serial = campaign.run_serial();
    let parallel = campaign.run_with_threads(6);
    let from_manifest = parsed.run();
    assert_eq!(serial.digests(), parallel.digests());
    assert_eq!(serial.digests(), from_manifest.digests());
    for r in &parallel.results {
        assert!(r.completion > 0.0, "{} made no progress", r.name);
    }
    // HPCC keeps the incast queue far below DCQCN's (§5.4).
    let by_name = |name: &str| {
        parallel
            .results
            .iter()
            .find(|r| r.name == name)
            .unwrap()
            .queue_p99
            .unwrap_or(0)
    };
    assert!(by_name("HPCC") < by_name("DCQCN"));
}

/// §3.3 / Figure 14: a too-large W_AI builds queues; the rule-of-thumb value
/// keeps them tiny while still sharing fairly.
#[test]
fn wai_rule_of_thumb_keeps_incast_queue_small() {
    let run = |wai: u64| {
        let cc = CcSpec::Hpcc(HpccConfig {
            wai,
            ..HpccConfig::default()
        });
        incast_on_star(
            format!("WAI={wai}"),
            cc,
            16,
            2_000_000,
            BW100,
            Duration::from_ms(3),
        )
        .run()
    };
    // Rule of thumb for 16 flows at 100 Gbps with the star's ~4-6 us RTT is
    // on the order of 100-200 bytes; 16 KB is far beyond it.
    let small = run(150);
    let huge = run(16_000);
    let q_small = small.queue_percentile(95.0).unwrap();
    let q_huge = huge.queue_percentile(95.0).unwrap();
    assert!(
        q_huge > q_small,
        "oversized WAI should increase the 95p queue ({q_huge} vs {q_small})"
    );
    assert_eq!(small.out.total_drops(), 0);
}
