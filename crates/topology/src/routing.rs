//! All-shortest-path ECMP route computation.
//!
//! For every destination host we run a breadth-first search over the
//! topology graph; a node's next-hop ports towards that destination are all
//! ports whose peer is one hop closer. The simulator picks among the
//! candidates with a per-flow hash (destination-based ECMP, as in the
//! paper's switch implementation, §4.1).

use crate::spec::PortDesc;
use hpcc_types::{NodeId, PortId};
use std::collections::{HashMap, VecDeque};

/// Compute `routes[node][dst_host] -> Vec<PortId>` for every node.
pub fn compute_routes(
    node_count: usize,
    ports: &[Vec<PortDesc>],
    hosts: &[NodeId],
) -> Vec<HashMap<NodeId, Vec<PortId>>> {
    let mut routes: Vec<HashMap<NodeId, Vec<PortId>>> = vec![HashMap::new(); node_count];
    for &dst in hosts {
        // BFS from the destination: dist[n] = hops from n to dst.
        let mut dist = vec![u32::MAX; node_count];
        dist[dst.index()] = 0;
        let mut q = VecDeque::new();
        q.push_back(dst);
        while let Some(n) = q.pop_front() {
            let d = dist[n.index()];
            for p in &ports[n.index()] {
                let m = p.peer_node;
                if dist[m.index()] == u32::MAX {
                    dist[m.index()] = d + 1;
                    q.push_back(m);
                }
            }
        }
        // Next hops: every port whose peer is strictly closer to dst.
        for n in 0..node_count {
            if n == dst.index() || dist[n] == u32::MAX {
                continue;
            }
            let mut candidates = Vec::new();
            for (pi, p) in ports[n].iter().enumerate() {
                if dist[p.peer_node.index()] + 1 == dist[n] {
                    candidates.push(PortId(pi as u32));
                }
            }
            if !candidates.is_empty() {
                routes[n].insert(dst, candidates);
            }
        }
    }
    routes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TopologyBuilder;
    use hpcc_types::{Bandwidth, Duration};

    /// Two ToR switches, two spines, two hosts per ToR: the classic ECMP
    /// diamond where cross-rack traffic has two equal-cost paths.
    fn leaf_spine_2x2() -> crate::spec::TopologySpec {
        let mut b = TopologyBuilder::new();
        let hosts = b.add_hosts(4);
        let tors = b.add_switches(2);
        let spines = b.add_switches(2);
        let bw = Bandwidth::from_gbps(100);
        let d = Duration::from_us(1);
        b.link(hosts[0], tors[0], bw, d);
        b.link(hosts[1], tors[0], bw, d);
        b.link(hosts[2], tors[1], bw, d);
        b.link(hosts[3], tors[1], bw, d);
        for &t in &tors {
            for &s in &spines {
                b.link(t, s, bw, d);
            }
        }
        b.build()
    }

    #[test]
    fn cross_rack_traffic_sees_two_equal_cost_paths() {
        let t = leaf_spine_2x2();
        let tor0 = NodeId(4);
        // From ToR0 towards host 2 (other rack): both spine uplinks qualify.
        let hops = t.next_hops(tor0, NodeId(2));
        assert_eq!(hops.len(), 2);
        // Towards a local host only the single host-facing port qualifies.
        let local = t.next_hops(tor0, NodeId(0));
        assert_eq!(local.len(), 1);
    }

    #[test]
    fn spine_routes_down_to_the_right_tor() {
        let t = leaf_spine_2x2();
        let spine0 = NodeId(6);
        let down = t.next_hops(spine0, NodeId(3));
        assert_eq!(down.len(), 1);
        // Following that port must land on ToR1 (node 5).
        let desc = t.ports(spine0)[down[0].index()];
        assert_eq!(desc.peer_node, NodeId(5));
    }

    #[test]
    fn hosts_route_via_their_single_uplink() {
        let t = leaf_spine_2x2();
        for src in 0..4u32 {
            for dst in 0..4u32 {
                if src == dst {
                    continue;
                }
                assert_eq!(
                    t.next_hops(NodeId(src), NodeId(dst)),
                    &[PortId(0)],
                    "host {src} to {dst}"
                );
            }
        }
    }

    #[test]
    fn path_hops_cross_vs_same_rack() {
        let t = leaf_spine_2x2();
        assert_eq!(t.path_hops(NodeId(0), NodeId(1)), Some(2));
        assert_eq!(t.path_hops(NodeId(0), NodeId(2)), Some(4));
    }

    #[test]
    fn disconnected_nodes_have_no_route() {
        let mut b = TopologyBuilder::new();
        let h0 = b.add_host();
        let h1 = b.add_host();
        let _lonely = b.add_host();
        let s = b.add_switch();
        b.link(h0, s, Bandwidth::from_gbps(10), Duration::from_us(1));
        b.link(h1, s, Bandwidth::from_gbps(10), Duration::from_us(1));
        let t = b.build();
        assert!(t.next_hops(NodeId(0), NodeId(2)).is_empty());
        assert_eq!(t.path_hops(NodeId(0), NodeId(2)), None);
    }
}
