//! Empirical flow-size distributions.
//!
//! The paper evaluates with two public traces "for reproductivity" (§2.3,
//! §5.1): the DCTCP **WebSearch** distribution and Facebook's **Hadoop**
//! distribution. We embed piecewise-linear CDFs whose knee points follow the
//! flow-size buckets the paper's figures use on their x-axes; absolute means
//! differ slightly from the original trace files but the shape (heavy tail
//! for WebSearch, mouse-dominated for FB_Hadoop with 90% of flows below
//! 120 KB) is preserved, which is what the FCT-slowdown comparisons depend
//! on.

use hpcc_types::rng::SplitMix64;

/// A piecewise-linear flow-size CDF that can be sampled.
#[derive(Clone, Debug, PartialEq)]
pub struct FlowSizeCdf {
    /// `(size_bytes, cumulative_probability)`, strictly increasing in both
    /// coordinates, ending at probability 1.0.
    points: Vec<(u64, f64)>,
    name: &'static str,
}

impl FlowSizeCdf {
    /// Build a CDF from `(size, probability)` knee points.
    ///
    /// # Panics
    /// Panics if the points are empty, not monotonically non-decreasing, or
    /// do not end at probability 1.0.
    pub fn new(name: &'static str, points: Vec<(u64, f64)>) -> Self {
        assert!(!points.is_empty(), "CDF needs at least one point");
        for w in points.windows(2) {
            assert!(w[0].0 <= w[1].0, "CDF sizes must be non-decreasing");
            assert!(w[0].1 <= w[1].1, "CDF probabilities must be non-decreasing");
        }
        let last = points.last().unwrap();
        assert!(
            (last.1 - 1.0).abs() < 1e-9,
            "CDF must end at probability 1.0, ends at {}",
            last.1
        );
        FlowSizeCdf { points, name }
    }

    /// Name of the distribution ("WebSearch", "FB_Hadoop", …).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The knee points of the CDF.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Inverse-transform sample: map a uniform `u` (clamped to `[0, 1]`) to
    /// a flow size.
    ///
    /// The first knee point is a *point mass*: every `u` at or below its
    /// probability returns the first knee's size. (Interpolating that mass
    /// from a phantom `(0 bytes, p = 0)` origin — the old behavior — bent
    /// fixed-size and trace distributions whose smallest size carries real
    /// probability towards zero.) Between later knee points the size is
    /// linearly interpolated. All returned sizes are clamped to ≥ 1 byte
    /// (the paper's "0-byte" bucket is a header-only RPC), so
    /// `quantile(0.0)` is the first knee's size (≥ 1 byte) and
    /// `quantile(1.0)` is the last knee's size.
    pub fn quantile(&self, u: f64) -> u64 {
        let u = u.clamp(0.0, 1.0);
        let mut prev = self.points[0];
        if u <= prev.1 {
            return prev.0.max(1);
        }
        for &(size, p) in &self.points[1..] {
            if u <= p {
                let span = (p - prev.1).max(f64::MIN_POSITIVE);
                let frac = (u - prev.1) / span;
                let lo = prev.0 as f64;
                let hi = size as f64;
                return ((lo + frac * (hi - lo)).round() as u64).max(1);
            }
            prev = (size, p);
        }
        self.points.last().unwrap().0.max(1)
    }

    /// Draw one flow size.
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        self.quantile(rng.next_f64())
    }

    /// Mean flow size implied by the CDF: the first knee's probability mass
    /// sits entirely at its size (a point mass, consistent with
    /// [`Self::quantile`]); each later segment contributes its trapezoid
    /// average.
    pub fn mean(&self) -> f64 {
        let mut prev = self.points[0];
        let mut mean = prev.1 * prev.0 as f64;
        for &(size, p) in &self.points[1..] {
            let dp = p - prev.1;
            mean += dp * (prev.0 as f64 + size as f64) / 2.0;
            prev = (size, p);
        }
        mean
    }

    /// The fraction of flows at or below `size` bytes. Sizes below the
    /// first knee have probability 0; the first knee's own point mass is
    /// included at its exact size.
    pub fn fraction_below(&self, size: u64) -> f64 {
        let mut prev = self.points[0];
        if size < prev.0 {
            return 0.0;
        }
        for &(s, p) in &self.points[1..] {
            if size <= s {
                let span = (s - prev.0).max(1) as f64;
                let frac = (size - prev.0) as f64 / span;
                return prev.1 + frac * (p - prev.1);
            }
            prev = (s, p);
        }
        1.0
    }
}

/// The DCTCP **WebSearch** distribution (heavy-tailed: ~60% of flows are
/// below 200 KB but most bytes live in multi-megabyte flows). Knee points
/// follow the buckets of Figures 2/3/10.
pub fn websearch() -> FlowSizeCdf {
    FlowSizeCdf::new(
        "WebSearch",
        vec![
            (1, 0.0),
            (6_700, 0.15),
            (20_000, 0.20),
            (30_000, 0.30),
            (50_000, 0.40),
            (73_000, 0.53),
            (200_000, 0.60),
            (1_000_000, 0.70),
            (2_000_000, 0.80),
            (5_000_000, 0.90),
            (10_000_000, 0.97),
            (30_000_000, 1.0),
        ],
    )
}

/// The **FB_Hadoop** distribution (mouse-dominated: "90% of the flows are
/// shorter than 120KB", §5.3). Knee points follow the buckets of Figure 11.
pub fn fb_hadoop() -> FlowSizeCdf {
    FlowSizeCdf::new(
        "FB_Hadoop",
        vec![
            (1, 0.0),
            (180, 0.10),
            (324, 0.20),
            (400, 0.30),
            (500, 0.45),
            (600, 0.55),
            (700, 0.65),
            (1_000, 0.72),
            (7_000, 0.80),
            (46_000, 0.85),
            (120_000, 0.90),
            (1_000_000, 0.96),
            (10_000_000, 1.0),
        ],
    )
}

/// A degenerate distribution where every flow has the same size (used by
/// micro-benchmarks and incasts).
pub fn fixed_size(size: u64) -> FlowSizeCdf {
    let s = size.max(1);
    FlowSizeCdf::new("Fixed", vec![(s, 0.0), (s, 1.0)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_interpolates_and_clamps() {
        let cdf = websearch();
        assert_eq!(cdf.quantile(0.0), 1);
        assert_eq!(cdf.quantile(1.0), 30_000_000);
        // Halfway between the 0.53 and 0.60 knees.
        let q = cdf.quantile(0.565);
        assert!(q > 73_000 && q < 200_000, "q = {q}");
        // Monotone in u.
        let mut prev = 0;
        for i in 0..=100 {
            let q = cdf.quantile(i as f64 / 100.0);
            assert!(q >= prev);
            prev = q;
        }
    }

    #[test]
    fn first_knee_point_mass_is_not_interpolated_from_zero() {
        // Half the flows are exactly 1000 B (mass on the first knee); the
        // rest interpolate up to 2000 B. The old phantom (0 bytes, p = 0)
        // origin bent the mass towards zero-size flows.
        let cdf = FlowSizeCdf::new("mass", vec![(1_000, 0.5), (2_000, 1.0)]);
        assert_eq!(cdf.quantile(0.0), 1_000);
        assert_eq!(cdf.quantile(0.25), 1_000);
        assert_eq!(cdf.quantile(0.5), 1_000);
        let q = cdf.quantile(0.75);
        assert!(q > 1_000 && q < 2_000, "q = {q}");
        assert_eq!(cdf.quantile(1.0), 2_000);
        // The mass shows up in the mean and in the CDF itself.
        let expected_mean = 0.5 * 1_000.0 + 0.5 * 1_500.0;
        assert!((cdf.mean() - expected_mean).abs() < 1e-9, "{}", cdf.mean());
        assert_eq!(cdf.fraction_below(999), 0.0);
        assert!((cdf.fraction_below(1_000) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn quantile_edges_are_pinned() {
        // u = 0 hits the first knee, u = 1 the last; out-of-range u clamps.
        assert_eq!(websearch().quantile(0.0), 1);
        assert_eq!(websearch().quantile(1.0), 30_000_000);
        assert_eq!(fb_hadoop().quantile(0.0), 1);
        assert_eq!(fb_hadoop().quantile(1.0), 10_000_000);
        let fixed = fixed_size(500_000);
        // Before the point-mass fix this returned 1 (phantom interpolation).
        assert_eq!(fixed.quantile(0.0), 500_000);
        assert_eq!(fixed.quantile(1.0), 500_000);
        assert_eq!(fixed.quantile(-3.0), 500_000);
        assert_eq!(fixed.quantile(7.0), 500_000);
        // A 0-byte knee clamps to the documented ≥ 1 byte floor.
        let zero = FlowSizeCdf::new("zero", vec![(0, 0.25), (10, 1.0)]);
        assert_eq!(zero.quantile(0.1), 1);
        assert_eq!(zero.quantile(0.0), 1);
    }

    #[test]
    fn websearch_is_heavy_tailed() {
        let cdf = websearch();
        // Most flows are small…
        assert!(cdf.fraction_below(200_000) >= 0.60 - 1e-9);
        // …but the mean is dominated by the multi-MB tail.
        let mean = cdf.mean();
        assert!(mean > 1_000_000.0, "mean = {mean}");
        assert!(mean < 5_000_000.0, "mean = {mean}");
    }

    #[test]
    fn fb_hadoop_matches_the_papers_90_percent_claim() {
        let cdf = fb_hadoop();
        let below_120k = cdf.fraction_below(120_000);
        assert!(
            (below_120k - 0.90).abs() < 0.02,
            "90% of FB_Hadoop flows should be below 120 KB, got {below_120k}"
        );
        assert!(cdf.mean() < websearch().mean());
    }

    #[test]
    fn sampling_matches_the_cdf_statistically() {
        let cdf = fb_hadoop();
        let mut rng = SplitMix64::new(7);
        let n = 50_000;
        let mut below_1k = 0;
        let mut sum = 0f64;
        for _ in 0..n {
            let s = cdf.sample(&mut rng);
            assert!(s >= 1);
            if s <= 1_000 {
                below_1k += 1;
            }
            sum += s as f64;
        }
        let frac = below_1k as f64 / n as f64;
        assert!(
            (frac - cdf.fraction_below(1_000)).abs() < 0.02,
            "frac = {frac}"
        );
        let mean = sum / n as f64;
        assert!(
            (mean - cdf.mean()).abs() / cdf.mean() < 0.1,
            "mean = {mean}"
        );
    }

    #[test]
    fn sampling_is_deterministic_for_a_seed() {
        let cdf = websearch();
        let draw = |seed: u64| {
            let mut rng = SplitMix64::new(seed);
            (0..1000)
                .map(|_| cdf.sample(&mut rng))
                .collect::<Vec<u64>>()
        };
        // The same seed reproduces the exact sample sequence…
        assert_eq!(draw(42), draw(42));
        // …and different seeds give different sequences.
        assert_ne!(draw(42), draw(43));
    }

    #[test]
    fn fixed_distribution_always_returns_its_size() {
        let cdf = fixed_size(500_000);
        let mut rng = SplitMix64::new(1);
        for _ in 0..10 {
            assert_eq!(cdf.sample(&mut rng), 500_000);
        }
        assert_eq!(cdf.name(), "Fixed");
    }

    #[test]
    #[should_panic(expected = "must end at probability 1.0")]
    fn cdf_must_end_at_one() {
        FlowSizeCdf::new("bad", vec![(10, 0.5)]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn cdf_must_be_monotone() {
        FlowSizeCdf::new("bad", vec![(10, 0.6), (20, 0.4), (30, 1.0)]);
    }
}
