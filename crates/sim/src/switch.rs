//! The switch model: shared buffer, per-priority egress queues behind a
//! pluggable scheduler, ECN/WRED marking, dynamic-threshold PFC, lossy
//! drops, destination-based ECMP and INT stamping at dequeue.
//!
//! The model follows the paper's deployment (§2.1, §4.1, §5.1):
//!
//! * class 0 of every egress port carries ACK/NACK/CNP/PFC control traffic
//!   (strict priority, never paused, never dropped); classes
//!   `1..=data_classes` carry data and are arbitrated by the configured
//!   egress scheduler (strict priority or DWRR — see [`crate::sched`]). The
//!   default single data class reproduces the paper's two-class deployment,
//! * one shared buffer per switch; PFC pauses an upstream sender when the
//!   bytes buffered from that ingress *in one data class* exceed a fraction
//!   of the free buffer, and resumes below a hysteresis (per-class pause
//!   frames; the control class is never paused),
//! * WRED-style ECN marking on the data classes at enqueue, against each
//!   class's (optionally scaled) thresholds,
//! * in lossy configurations, data packets are dropped when their class's
//!   egress queue exceeds the dynamic threshold (α = 1, footnote 6),
//! * INT: when a data packet starts transmission the switch appends
//!   `(B, ts, txBytes, qLen)` for that egress port (Figure 7); `qLen` is the
//!   port's total data occupancy across classes, which an HPCC sender reacts
//!   to regardless of which class queued the bytes.

use crate::config::SimConfig;
use crate::engine::{Effects, Event};
use crate::output::{PfcEvent, PortCounters};
use crate::rng::SplitMix64;
use crate::sched::{ClassLane, Scheduler};
use hpcc_topology::{PortDesc, TopologySpec};
use hpcc_types::{
    Bandwidth, Duration, IntHopRecord, NodeId, Packet, PacketKind, PortId, Priority, SimTime,
};
use std::collections::VecDeque;

/// The ECMP candidate index a flow hashes to at a node: deterministic per
/// (flow, node) so a flow never reorders, uniform across candidates. Shared
/// with the fluid backend so both engines route a flow over the same path.
pub(crate) fn ecmp_index(flow: u64, node: NodeId, candidates: usize) -> usize {
    let mut h = flow ^ (node.0 as u64).wrapping_mul(0x9E3779B97F4A7C15);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51afd7ed558ccd);
    h ^= h >> 33;
    (h % candidates as u64) as usize
}

/// A packet sitting in an egress queue, remembering the ingress it came from
/// (for PFC accounting) and its wire size. The packet stays in its pooled
/// box from arrival to departure, so queuing moves 24 bytes per entry.
#[derive(Debug)]
struct QueuedPacket {
    pkt: Box<Packet>,
    ingress: Option<PortId>,
    wire: u64,
}

/// Initial capacity of each data-class egress ring (a full ring holds about
/// one BDP of MTU packets; `VecDeque` grows beyond this without reallocating
/// on the common path).
const DATA_RING_CAPACITY: usize = 256;

/// Initial capacity of each control-class egress ring.
const CTRL_RING_CAPACITY: usize = 64;

/// One egress port of a switch.
#[derive(Debug)]
pub struct SwitchPort {
    /// Node on the other side of the link.
    pub peer_node: NodeId,
    /// Port index on the peer.
    pub peer_port: PortId,
    /// Link capacity.
    pub bandwidth: Bandwidth,
    /// One-way propagation delay.
    pub delay: Duration,
    queues: [VecDeque<QueuedPacket>; Priority::COUNT],
    queue_bytes: [u64; Priority::COUNT],
    busy: bool,
    paused: [bool; Priority::COUNT],
    pause_started: Option<SimTime>,
    tx_bytes_cum: u64,
    rx_enqueued_cum: u64,
    sched: Scheduler,
    /// Fault injection: link administratively down.
    fault_down: bool,
    /// Down-link semantics: drop (frames serialize and are lost) when true,
    /// pause-and-requeue (nothing serializes) when false.
    fault_drop: bool,
    /// Extra one-way latency while the link is degraded.
    fault_extra_delay: Duration,
    /// iid frame-loss probability while the link is degraded.
    fault_loss: f64,
    /// Wire bytes lost to fault injection at this egress.
    fault_dropped_bytes: u64,
    /// Packets lost to fault injection at this egress.
    fault_dropped_packets: u64,
    /// Accumulated statistics for this egress.
    pub counters: PortCounters,
}

impl SwitchPort {
    fn new(desc: &PortDesc, sched: Scheduler) -> Self {
        SwitchPort {
            peer_node: desc.peer_node,
            peer_port: desc.peer_port,
            bandwidth: desc.bandwidth,
            delay: desc.delay,
            // The control ring and the first data ring are pre-sized (the
            // classes every run uses); additional data classes start empty
            // and reach their high-water capacity on first use.
            queues: std::array::from_fn(|i| match i {
                0 => VecDeque::with_capacity(CTRL_RING_CAPACITY),
                1 => VecDeque::with_capacity(DATA_RING_CAPACITY),
                _ => VecDeque::new(),
            }),
            queue_bytes: [0; Priority::COUNT],
            busy: false,
            paused: [false; Priority::COUNT],
            pause_started: None,
            tx_bytes_cum: 0,
            rx_enqueued_cum: 0,
            sched,
            fault_down: false,
            fault_drop: false,
            fault_extra_delay: Duration::ZERO,
            fault_loss: 0.0,
            fault_dropped_bytes: 0,
            fault_dropped_packets: 0,
            counters: PortCounters::default(),
        }
    }

    /// Current data occupancy of this egress in bytes, summed over all data
    /// classes (with one data class: exactly that class's queue).
    pub fn data_queue_bytes(&self) -> u64 {
        self.queue_bytes[1..].iter().sum()
    }

    /// Current occupancy of one data class in bytes.
    pub fn class_queue_bytes(&self, class: u8) -> u64 {
        self.queue_bytes[Priority::data_class(class).index()]
    }

    /// Whether any data class of this egress is currently paused by PFC.
    pub fn is_paused(&self) -> bool {
        self.paused[1..].iter().any(|&p| p)
    }

    /// Whether one specific data class is paused.
    pub fn is_class_paused(&self, class: u8) -> bool {
        self.paused[Priority::data_class(class).index()]
    }

    fn any_data_paused(&self) -> bool {
        self.paused[1..].iter().any(|&p| p)
    }

    fn set_paused(&mut self, now: SimTime, class: Priority, pause: bool) {
        let idx = class.index();
        if self.paused[idx] == pause {
            return;
        }
        // Pause counters measure the interval during which *any* data class
        // is blocked (with a single data class: exactly the old per-class
        // accounting).
        let was_any = self.any_data_paused();
        self.paused[idx] = pause;
        if class.is_data() {
            let is_any = self.any_data_paused();
            if !was_any && is_any {
                self.pause_started = Some(now);
                self.counters.pause_events += 1;
            } else if was_any && !is_any {
                if let Some(start) = self.pause_started.take() {
                    self.counters.pause_duration += now.saturating_since(start);
                }
            }
        }
    }
}

/// A switch node.
#[derive(Debug)]
pub struct Switch {
    /// Node id of this switch.
    pub id: NodeId,
    /// 12-bit identifier XOR-ed into the INT `pathID` field.
    int_id: u16,
    ports: Vec<SwitchPort>,
    buffer_used: u64,
    /// Bytes currently buffered that arrived through each ingress port, per
    /// class (drives PFC).
    ingress_bytes: Vec<[u64; Priority::COUNT]>,
    /// Whether we have an outstanding PAUSE towards each ingress, per class.
    pause_sent: Vec<[bool; Priority::COUNT]>,
    rng: SplitMix64,
    /// Dedicated RNG stream for degraded-link iid loss; installed only when
    /// a fault config attaches loss to one of this switch's links, so the
    /// ECN-marking stream above is never perturbed by fault injection.
    fault_rng: Option<SplitMix64>,
}

impl Switch {
    /// Build a switch from its topology port descriptors; `cfg` supplies the
    /// RNG seed and the egress scheduling discipline.
    pub fn new(id: NodeId, ports: &[PortDesc], cfg: &SimConfig) -> Self {
        Switch {
            id,
            // 12-bit INT switch id; +1 so that the id is never zero and a
            // single-hop path always yields a non-trivial pathID.
            int_id: ((id.0 + 1) as u16) & 0x0fff,
            ports: ports
                .iter()
                .map(|p| SwitchPort::new(p, Scheduler::new(&cfg.queueing)))
                .collect(),
            buffer_used: 0,
            ingress_bytes: vec![[0; Priority::COUNT]; ports.len()],
            pause_sent: vec![[false; Priority::COUNT]; ports.len()],
            rng: SplitMix64::new(cfg.seed ^ (id.0 as u64).wrapping_mul(0x9E3779B97F4A7C15)),
            fault_rng: None,
        }
    }

    /// Apply or clear an administrative down state on one egress (fault
    /// injection). `drop_mode` selects drop semantics (frames serialize and
    /// are lost) over pause-and-requeue (nothing serializes).
    pub(crate) fn set_link_down(&mut self, port: PortId, down: bool, drop_mode: bool) {
        let p = &mut self.ports[port.index()];
        p.fault_down = down;
        p.fault_drop = drop_mode;
    }

    /// Apply or clear a degraded-link state on one egress (zero delay and
    /// zero loss restore the healthy link).
    pub(crate) fn set_link_degraded(&mut self, port: PortId, extra_delay: Duration, loss: f64) {
        let p = &mut self.ports[port.index()];
        p.fault_extra_delay = extra_delay;
        p.fault_loss = loss;
    }

    /// Install the dedicated fault-loss RNG stream (only called when a fault
    /// config attaches iid loss to one of this switch's links).
    pub(crate) fn set_fault_rng(&mut self, rng: SplitMix64) {
        self.fault_rng = Some(rng);
    }

    /// Total `(packets, bytes)` lost to fault injection at this switch.
    pub(crate) fn fault_drops(&self) -> (u64, u64) {
        self.ports.iter().fold((0, 0), |(p, b), port| {
            (p + port.fault_dropped_packets, b + port.fault_dropped_bytes)
        })
    }

    /// Access the egress ports (read-only, for statistics collection).
    pub fn ports(&self) -> &[SwitchPort] {
        &self.ports
    }

    /// Bytes currently held in the shared buffer.
    pub fn buffer_used(&self) -> u64 {
        self.buffer_used
    }

    /// The PFC pause threshold for one ingress class given the current free
    /// buffer: "PFC is triggered when an ingress queue consumes more than
    /// 11% of the free buffer" (§5.1).
    fn pause_threshold(&self, cfg: &SimConfig) -> u64 {
        let free = cfg.buffer_bytes.saturating_sub(self.buffer_used);
        (cfg.pfc_threshold_fraction * free as f64) as u64
    }

    /// ECMP selection: deterministic per (flow, switch) so a flow never
    /// reorders, uniform across candidates.
    fn ecmp_pick(&self, flow: u64, candidates: &[PortId]) -> PortId {
        candidates[ecmp_index(flow, self.id, candidates.len())]
    }

    /// Handle a packet arriving on `ingress`.
    pub(crate) fn handle_arrival(
        &mut self,
        now: SimTime,
        ingress: PortId,
        mut pkt: Box<Packet>,
        cfg: &SimConfig,
        topo: &TopologySpec,
        eff: &mut Effects,
    ) {
        // PFC frames are link-local: they pause/resume our egress on the
        // port they arrived on and are never forwarded.
        if let PacketKind::Pfc { class, pause } = pkt.kind {
            let port = &mut self.ports[ingress.index()];
            port.set_paused(now, class, pause);
            if !pause {
                eff.kicks.push((self.id, ingress));
            }
            eff.recycle(pkt);
            return;
        }

        // Destination-based forwarding: reverse-direction packets (ACK, NACK,
        // CNP) are routed towards the flow's source host.
        let dest = if pkt.is_reverse() { pkt.src } else { pkt.dst };
        let candidates = topo.next_hops(self.id, dest);
        if candidates.is_empty() {
            // No route (misconfigured experiment): count as a drop.
            let port = &mut self.ports[ingress.index()];
            port.counters.dropped_packets += 1;
            eff.recycle(pkt);
            return;
        }
        let egress = self.ecmp_pick(pkt.flow.raw(), candidates);
        let wire = pkt.wire_size(cfg.int_enabled);
        let class = pkt.priority;
        let is_data = pkt.is_data();

        // Lossy admission control on the data class: dynamic threshold α = 1
        // (one egress may consume up to the whole free buffer).
        if is_data && cfg.flow_control.lossy() {
            let egress_q = self.ports[egress.index()].queue_bytes[class.index()];
            let free = cfg.buffer_bytes.saturating_sub(self.buffer_used);
            if egress_q + wire > free {
                let port = &mut self.ports[egress.index()];
                port.counters.dropped_packets += 1;
                port.counters.dropped_bytes += wire;
                eff.recycle(pkt);
                return;
            }
        }
        // Hard cap: even control packets cannot exceed the physical buffer.
        if self.buffer_used + wire > cfg.buffer_bytes {
            let port = &mut self.ports[egress.index()];
            port.counters.dropped_packets += 1;
            port.counters.dropped_bytes += wire;
            eff.recycle(pkt);
            return;
        }

        // ECN marking at enqueue (data classes only), against the class's
        // own — optionally scaled — thresholds.
        if is_data {
            if let Some(base) = &cfg.ecn {
                let ecn = cfg.queueing.class_ecn(base, class.class().unwrap_or(0));
                let q = self.ports[egress.index()].queue_bytes[class.index()];
                let mark = if q >= ecn.kmax_bytes {
                    true
                } else if q > ecn.kmin_bytes {
                    let span = (ecn.kmax_bytes - ecn.kmin_bytes).max(1) as f64;
                    let p = ecn.pmax * (q - ecn.kmin_bytes) as f64 / span;
                    self.rng.next_f64() < p
                } else {
                    false
                };
                if mark {
                    pkt.ecn_ce = true;
                    self.ports[egress.index()].counters.ecn_marked += 1;
                }
            }
        }

        // Enqueue.
        {
            let port = &mut self.ports[egress.index()];
            port.queues[class.index()].push_back(QueuedPacket {
                pkt,
                ingress: Some(ingress),
                wire,
            });
            port.queue_bytes[class.index()] += wire;
            port.rx_enqueued_cum += wire;
            if class.is_data() {
                port.counters.max_queue_bytes =
                    port.counters.max_queue_bytes.max(port.data_queue_bytes());
            }
        }
        self.buffer_used += wire;
        self.ingress_bytes[ingress.index()][class.index()] += wire;

        // PFC: pause the upstream sender when this ingress class holds more
        // than the dynamic threshold.
        if cfg.flow_control.pfc_enabled() && class.is_data() {
            let threshold = self.pause_threshold(cfg);
            if self.ingress_bytes[ingress.index()][class.index()] > threshold
                && !self.pause_sent[ingress.index()][class.index()]
            {
                self.pause_sent[ingress.index()][class.index()] = true;
                self.send_pfc(now, ingress, class, true, eff);
            }
        }

        eff.kicks.push((self.id, egress));
    }

    /// Emit a PFC pause or resume frame out of `port`.
    fn send_pfc(
        &mut self,
        now: SimTime,
        port: PortId,
        class: Priority,
        pause: bool,
        eff: &mut Effects,
    ) {
        let frame = eff.alloc_packet(Packet::pfc(class, pause));
        let wire = frame.wire_size(false);
        let p = &mut self.ports[port.index()];
        p.queues[Priority::CONTROL.index()].push_back(QueuedPacket {
            pkt: frame,
            ingress: None,
            wire,
        });
        p.queue_bytes[Priority::CONTROL.index()] += wire;
        self.buffer_used += wire;
        if pause {
            p.counters.pause_frames_sent += 1;
            eff.pfc_events.push(PfcEvent {
                time: now,
                node: self.id,
                port,
            });
        }
        eff.kicks.push((self.id, port));
    }

    /// The port finished serializing its current packet.
    pub(crate) fn port_ready(&mut self, port: PortId) {
        self.ports[port.index()].busy = false;
    }

    /// Try to start transmitting the next packet on `port`.
    pub(crate) fn try_transmit(
        &mut self,
        now: SimTime,
        port_id: PortId,
        cfg: &SimConfig,
        eff: &mut Effects,
    ) {
        // Select the next packet: control always first (never paused), then
        // whichever data class the port's scheduler grants; paused classes
        // are skipped (strict priority) or retain their credit (DWRR).
        let (entry, class) = {
            let port = &mut self.ports[port_id.index()];
            if port.busy {
                return;
            }
            if port.fault_down && !port.fault_drop {
                // Pause-and-requeue outage semantics: the egress holds
                // everything (control included) until the up transition
                // kicks this port again.
                return;
            }
            let ctrl = Priority::CONTROL.index();
            if !port.queues[ctrl].is_empty() {
                (port.queues[ctrl].pop_front().unwrap(), Priority::CONTROL)
            } else {
                let n = cfg.queueing.data_classes as usize;
                let mut lanes = [ClassLane::default(); Priority::MAX_DATA_CLASSES];
                for (c, lane) in lanes.iter_mut().enumerate().take(n) {
                    let idx = c + 1;
                    lane.head_wire = port.queues[idx].front().map(|e| e.wire);
                    lane.paused = port.paused[idx];
                }
                match port.sched.pick(&lanes[..n]) {
                    Some(c) => (
                        port.queues[c + 1].pop_front().unwrap(),
                        Priority::data_class(c as u8),
                    ),
                    None => return,
                }
            }
        };
        let QueuedPacket {
            mut pkt,
            ingress,
            wire,
        } = entry;

        // Dequeue accounting.
        self.buffer_used = self.buffer_used.saturating_sub(wire);
        {
            let port = &mut self.ports[port_id.index()];
            port.queue_bytes[class.index()] -= wire;
            port.tx_bytes_cum += wire;
            port.counters.tx_bytes += wire;
        }
        if let Some(ing) = ingress {
            let bytes = &mut self.ingress_bytes[ing.index()][class.index()];
            *bytes = bytes.saturating_sub(wire);
            // PFC resume once the ingress class drains below the threshold
            // minus the hysteresis.
            if cfg.flow_control.pfc_enabled()
                && class.is_data()
                && self.pause_sent[ing.index()][class.index()]
            {
                let threshold = self.pause_threshold(cfg);
                let resume_below = threshold.saturating_sub(cfg.pfc_resume_hysteresis);
                if self.ingress_bytes[ing.index()][class.index()] <= resume_below {
                    self.pause_sent[ing.index()][class.index()] = false;
                    self.send_pfc(now, ing, class, false, eff);
                }
            }
        }

        // Fault injection at the wire: a down link in drop mode loses every
        // frame; a degraded link loses iid with `fault_loss`, drawn on the
        // dedicated fault RNG stream (never the ECN stream).
        let (f_down, f_loss, f_extra) = {
            let p = &self.ports[port_id.index()];
            (p.fault_down, p.fault_loss, p.fault_extra_delay)
        };
        let fault_lost = if f_down {
            true
        } else if f_loss > 0.0 {
            self.fault_rng
                .as_mut()
                .is_some_and(|rng| rng.next_f64() < f_loss)
        } else {
            false
        };

        // INT stamping at dequeue (Figure 7): data packets only.
        let port = &mut self.ports[port_id.index()];
        if cfg.int_enabled && pkt.is_data() && !fault_lost {
            pkt.int.push_hop(
                self.int_id,
                IntHopRecord {
                    bandwidth: port.bandwidth,
                    ts: now,
                    tx_bytes: port.tx_bytes_cum,
                    rx_bytes: port.rx_enqueued_cum,
                    qlen: port.data_queue_bytes(),
                },
            );
        }

        // Serialize onto the wire.
        port.busy = true;
        let tx_time = port.bandwidth.tx_time(wire);
        eff.events.push((
            now + tx_time,
            Event::PortReady {
                node: self.id,
                port: port_id,
            },
        ));
        if fault_lost {
            port.fault_dropped_packets += 1;
            port.fault_dropped_bytes += wire;
            eff.recycle(pkt);
        } else {
            eff.events.push((
                now + tx_time + port.delay + f_extra,
                Event::PacketArrive {
                    node: port.peer_node,
                    port: port.peer_port,
                    packet: pkt,
                },
            ));
        }
    }

    /// Close out pause-duration accounting at the end of the run.
    pub(crate) fn finalize(&mut self, now: SimTime) {
        for port in &mut self.ports {
            if let Some(start) = port.pause_started.take() {
                port.counters.pause_duration += now.saturating_since(start);
                for p in &mut port.paused[1..] {
                    *p = false;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlowControlMode;
    use hpcc_cc::CcAlgorithm;
    use hpcc_topology::TopologyBuilder;
    use hpcc_types::FlowId;

    const LINE: Bandwidth = Bandwidth::from_gbps(100);

    /// host0 -- switch -- host1, plus a second host2 on the switch.
    fn topo3() -> TopologySpec {
        let mut b = TopologyBuilder::new();
        let h0 = b.add_host();
        let h1 = b.add_host();
        let h2 = b.add_host();
        let s = b.add_switch();
        for h in [h0, h1, h2] {
            b.link(h, s, LINE, Duration::from_us(1));
        }
        b.build()
    }

    fn cfg() -> SimConfig {
        SimConfig::for_cc(CcAlgorithm::hpcc_default(), LINE, Duration::from_us(13))
    }

    fn data_packet(seq: u64) -> Packet {
        Packet::data(FlowId(7), NodeId(0), NodeId(1), seq, 1000, SimTime::ZERO)
    }

    fn new_switch(topo: &TopologySpec) -> Switch {
        let sw_id = topo.switches()[0];
        Switch::new(sw_id, topo.ports(sw_id), &cfg())
    }

    #[test]
    fn forwards_data_and_stamps_int() {
        let topo = topo3();
        let cfg = cfg();
        let mut sw = new_switch(&topo);
        let mut eff = Effects::default();
        // Arrives from host0 (switch port 0), destined to host1 (port 1).
        sw.handle_arrival(
            SimTime::from_us(5),
            PortId(0),
            Box::new(data_packet(0)),
            &cfg,
            &topo,
            &mut eff,
        );
        assert_eq!(eff.kicks, vec![(sw.id, PortId(1))]);
        let mut eff2 = Effects::default();
        sw.try_transmit(SimTime::from_us(5), PortId(1), &cfg, &mut eff2);
        assert_eq!(eff2.events.len(), 2);
        // The arrival event carries the INT-stamped packet towards host1.
        let arrival = eff2
            .events
            .iter()
            .find_map(|(t, e)| match e {
                Event::PacketArrive { node, packet, .. } => Some((*t, *node, **packet)),
                _ => None,
            })
            .unwrap();
        assert_eq!(arrival.1, NodeId(1));
        assert_eq!(arrival.2.int.n_hops, 1);
        let hop = arrival.2.int.hops()[0];
        assert_eq!(hop.bandwidth, LINE);
        assert_eq!(hop.qlen, 0, "queue drained by this dequeue");
        assert_eq!(hop.tx_bytes, arrival.2.wire_size(true));
        // Serialization time of a 1106-byte frame at 100 Gbps plus 1 us of
        // propagation.
        let expected = SimTime::from_us(5) + LINE.tx_time(1106) + Duration::from_us(1);
        assert_eq!(arrival.0, expected);
    }

    #[test]
    fn acks_route_back_to_the_flow_source() {
        let topo = topo3();
        let cfg = cfg();
        let mut sw = new_switch(&topo);
        let mut data = data_packet(0);
        data.int.push_hop(3, IntHopRecord::default());
        let ack = Packet::ack_for(&data, 1000, false);
        let mut eff = Effects::default();
        sw.handle_arrival(
            SimTime::from_us(1),
            PortId(1),
            Box::new(ack),
            &cfg,
            &topo,
            &mut eff,
        );
        // Destination of the ACK is the flow source host0 behind port 0.
        assert_eq!(eff.kicks, vec![(sw.id, PortId(0))]);
        let mut eff2 = Effects::default();
        sw.try_transmit(SimTime::from_us(1), PortId(0), &cfg, &mut eff2);
        let arrived_at = eff2.events.iter().find_map(|(_, e)| match e {
            Event::PacketArrive { node, .. } => Some(*node),
            _ => None,
        });
        assert_eq!(arrived_at, Some(NodeId(0)));
    }

    #[test]
    fn ecn_marks_above_kmax_and_never_below_kmin() {
        let topo = topo3();
        let mut cfg = cfg();
        cfg.ecn = Some(crate::config::EcnConfig {
            kmin_bytes: 3_000,
            kmax_bytes: 6_000,
            pmax: 1.0,
        });
        let mut sw = new_switch(&topo);
        let mut eff = Effects::default();
        // Fill the egress queue towards host1 without draining it (we never
        // call try_transmit).
        let mut marked = 0;
        for i in 0..12 {
            sw.handle_arrival(
                SimTime::from_us(1),
                PortId(0),
                Box::new(data_packet(i * 1000)),
                &cfg,
                &topo,
                &mut eff,
            );
        }
        // Count CE marks sitting in the queue via the counters.
        marked += sw.ports()[1].counters.ecn_marked;
        assert!(marked >= 5, "deep queue must mark packets, marked={marked}");
        // The first two packets (queue < kmin at enqueue) are never marked.
        assert!(sw.ports()[1].counters.ecn_marked <= 10);
        assert!(sw.ports()[1].data_queue_bytes() > 10_000);
        assert_eq!(
            sw.ports()[1].counters.max_queue_bytes,
            sw.ports()[1].data_queue_bytes()
        );
    }

    #[test]
    fn pfc_pause_emitted_when_ingress_exceeds_threshold() {
        let topo = topo3();
        let mut cfg = cfg();
        cfg.buffer_bytes = 100_000;
        cfg.pfc_threshold_fraction = 0.11;
        let mut sw = new_switch(&topo);
        let mut eff = Effects::default();
        // ~11 KB of free-buffer threshold: 12 packets of 1106 B exceed it.
        let mut pause_seen = false;
        for i in 0..15 {
            sw.handle_arrival(
                SimTime::from_us(1),
                PortId(0),
                Box::new(data_packet(i * 1000)),
                &cfg,
                &topo,
                &mut eff,
            );
        }
        pause_seen |= !eff.pfc_events.is_empty();
        assert!(pause_seen, "expected a PFC pause frame");
        assert_eq!(eff.pfc_events[0].node, sw.id);
        assert_eq!(
            eff.pfc_events[0].port,
            PortId(0),
            "pause goes to the congested ingress"
        );
        assert_eq!(sw.ports()[0].counters.pause_frames_sent, 1);
        // The pause frame sits in the control queue of port 0.
        let mut eff2 = Effects::default();
        sw.try_transmit(SimTime::from_us(2), PortId(0), &cfg, &mut eff2);
        let pfc_delivered = eff2.events.iter().any(|(_, e)| {
            matches!(
                e,
                Event::PacketArrive { packet, .. }
                    if matches!(packet.kind, PacketKind::Pfc { pause: true, .. })
            )
        });
        assert!(pfc_delivered);
    }

    #[test]
    fn pfc_pause_received_blocks_data_but_not_control() {
        let topo = topo3();
        let cfg = cfg();
        let mut sw = new_switch(&topo);
        let mut eff = Effects::default();
        sw.handle_arrival(
            SimTime::from_us(1),
            PortId(0),
            Box::new(data_packet(0)),
            &cfg,
            &topo,
            &mut eff,
        );
        // Peer on port 1 pauses us.
        sw.handle_arrival(
            SimTime::from_us(2),
            PortId(1),
            Box::new(Packet::pfc(Priority::DATA, true)),
            &cfg,
            &topo,
            &mut eff,
        );
        assert!(sw.ports()[1].is_paused());
        let mut eff2 = Effects::default();
        sw.try_transmit(SimTime::from_us(3), PortId(1), &cfg, &mut eff2);
        assert!(
            eff2.events.is_empty(),
            "paused data class must not transmit"
        );
        // Resume unblocks it.
        let mut eff3 = Effects::default();
        sw.handle_arrival(
            SimTime::from_us(10),
            PortId(1),
            Box::new(Packet::pfc(Priority::DATA, false)),
            &cfg,
            &topo,
            &mut eff3,
        );
        assert_eq!(eff3.kicks, vec![(sw.id, PortId(1))]);
        let mut eff4 = Effects::default();
        sw.try_transmit(SimTime::from_us(10), PortId(1), &cfg, &mut eff4);
        assert_eq!(eff4.events.len(), 2);
        // Pause duration was accounted on the data class.
        assert_eq!(sw.ports()[1].counters.pause_events, 1);
        assert_eq!(sw.ports()[1].counters.pause_duration, Duration::from_us(8));
    }

    #[test]
    fn lossy_mode_drops_when_buffer_exhausted_and_lossless_does_not() {
        let topo = topo3();
        let mut cfg = cfg();
        cfg.buffer_bytes = 20_000;
        cfg.flow_control = FlowControlMode::LossyGoBackN;
        let mut sw = new_switch(&topo);
        let mut eff = Effects::default();
        for i in 0..40 {
            sw.handle_arrival(
                SimTime::from_us(1),
                PortId(0),
                Box::new(data_packet(i * 1000)),
                &cfg,
                &topo,
                &mut eff,
            );
        }
        assert!(sw.ports()[1].counters.dropped_packets > 0);
        assert!(sw.buffer_used() <= cfg.buffer_bytes);

        // Same arrival pattern in lossless mode never drops data; it pauses.
        let mut cfg2 = cfg.clone();
        cfg2.flow_control = FlowControlMode::Lossless;
        cfg2.buffer_bytes = 200_000;
        let mut sw2 = new_switch(&topo);
        let mut eff2 = Effects::default();
        for i in 0..40 {
            sw2.handle_arrival(
                SimTime::from_us(1),
                PortId(0),
                Box::new(data_packet(i * 1000)),
                &cfg2,
                &topo,
                &mut eff2,
            );
        }
        assert_eq!(sw2.ports()[1].counters.dropped_packets, 0);
        assert!(!eff2.pfc_events.is_empty());
    }

    #[test]
    fn ecmp_is_deterministic_per_flow_and_spreads_flows() {
        let mut b = TopologyBuilder::new();
        let h0 = b.add_host();
        let h1 = b.add_host();
        let tor = b.add_switch();
        let s0 = b.add_switch();
        let s1 = b.add_switch();
        let tor2 = b.add_switch();
        b.link(h0, tor, LINE, Duration::from_us(1));
        b.link(tor, s0, LINE, Duration::from_us(1));
        b.link(tor, s1, LINE, Duration::from_us(1));
        b.link(s0, tor2, LINE, Duration::from_us(1));
        b.link(s1, tor2, LINE, Duration::from_us(1));
        b.link(h1, tor2, LINE, Duration::from_us(1));
        let topo = b.build();
        let sw = Switch::new(tor, topo.ports(tor), &cfg());
        let candidates = topo.next_hops(tor, h1);
        assert_eq!(candidates.len(), 2);
        let mut uses = [0u32; 2];
        for f in 0..256u64 {
            let p = sw.ecmp_pick(f, candidates);
            let again = sw.ecmp_pick(f, candidates);
            assert_eq!(p, again, "must be deterministic per flow");
            let slot = candidates.iter().position(|c| *c == p).unwrap();
            uses[slot] += 1;
        }
        assert!(
            uses[0] > 64 && uses[1] > 64,
            "ECMP should spread flows: {uses:?}"
        );
    }

    #[test]
    fn finalize_closes_open_pause_intervals() {
        let topo = topo3();
        let cfg = cfg();
        let mut sw = new_switch(&topo);
        let mut eff = Effects::default();
        sw.handle_arrival(
            SimTime::from_us(2),
            PortId(1),
            Box::new(Packet::pfc(Priority::DATA, true)),
            &cfg,
            &topo,
            &mut eff,
        );
        sw.finalize(SimTime::from_us(12));
        assert_eq!(sw.ports()[1].counters.pause_duration, Duration::from_us(10));
    }
}
