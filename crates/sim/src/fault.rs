//! Fault injection: deterministic timelines of link and host faults.
//!
//! A [`FaultConfig`] is plain data describing *what goes wrong and when*:
//! scheduled link outages (optionally flapping), degraded links (added
//! latency and/or iid loss), and straggler hosts (NIC rate reduced over an
//! interval). The simulator compiles it into a [`FaultTimeline`] — a
//! time-sorted list of state transitions — and applies each transition to
//! the affected switch port or host NIC as simulation time passes.
//!
//! Design invariants:
//!
//! * **Zero delta when absent.** A simulation whose `SimConfig::faults` is
//!   `None` allocates no timeline, schedules no events and draws from no
//!   extra RNG stream: its output is bit-identical to a build that predates
//!   this module.
//! * **Dedicated RNG stream.** The iid loss of a degraded link draws from a
//!   per-node `SplitMix64` seeded from the scenario seed on a separate
//!   stream constant, never from the switch's ECN-marking RNG, so enabling
//!   faults on one link perturbs no marking decision anywhere.
//! * **Static routing.** Routes are computed once from the healthy topology
//!   and never recomputed. A downed link on a multi-path Clos therefore
//!   creates an ECMP blackhole / imbalance — deliberately, because that is
//!   the production failure mode worth measuring.
//!
//! Link outage semantics, by [`LinkDownMode`]:
//!
//! * [`Drop`](LinkDownMode::Drop) — the link behaves like a wire that
//!   corrupts every frame: the egress keeps serializing at line rate, but
//!   each frame vanishes instead of arriving, counted as fault-drop bytes.
//!   Queues drain, and senders see silence (lossless mode) or loss recovery
//!   (lossy modes).
//! * [`Pause`](LinkDownMode::Pause) — the egress holds: nothing serializes
//!   while the link is down and queued packets wait in place (building
//!   queues and, in lossless mode, PFC backpressure). On the up transition
//!   both endpoint ports are kicked and transmission resumes.
//!
//! In both modes frames already on the wire at the down transition still
//! arrive: propagation is not interrupted, only (de)serialization.

use hpcc_types::{Duration, SimTime};

/// What happens to traffic at an administratively-down link.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum LinkDownMode {
    /// The egress keeps serializing but every frame is lost on the wire
    /// (counted as fault drops). Models a corrupting / black-holing link.
    Drop,
    /// The egress holds: nothing serializes while the link is down; queued
    /// packets wait and are retransmitted onto the wire after the up
    /// transition. Models an administratively drained port.
    #[default]
    Pause,
}

impl LinkDownMode {
    /// Stable wire label ("Drop" / "Pause").
    pub fn label(self) -> &'static str {
        match self {
            LinkDownMode::Drop => "Drop",
            LinkDownMode::Pause => "Pause",
        }
    }
}

/// One scheduled outage of a topology link, optionally flapping.
///
/// The link is identified by its index into `TopologySpec::links()`; both
/// directions of the link fail together. The outage starts at `at`, lasts
/// `down_for`, and when `flaps > 0` repeats `flaps` additional times at
/// `period` intervals (so `flaps = 2` yields three down/up cycles).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkFault {
    /// Index of the faulted link in `TopologySpec::links()`.
    pub link: usize,
    /// Time of the first down transition.
    pub at: Duration,
    /// Length of each outage; must be non-zero.
    pub down_for: Duration,
    /// Number of additional down/up cycles after the first.
    pub flaps: u32,
    /// Cycle period when `flaps > 0`; must exceed `down_for`.
    pub period: Duration,
    /// Drop or pause-and-requeue semantics while down.
    pub mode: LinkDownMode,
}

/// A degraded-link window: added one-way latency and/or iid frame loss on
/// both directions of a link over `[from, until)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegradedLink {
    /// Index of the degraded link in `TopologySpec::links()`.
    pub link: usize,
    /// Start of the degradation window.
    pub from: Duration,
    /// End of the degradation window; must exceed `from`.
    pub until: Duration,
    /// Extra one-way propagation delay added to every frame in the window.
    pub extra_delay: Duration,
    /// Probability in `[0, 1)` that a frame serialized in the window is
    /// lost (drawn on the dedicated fault RNG stream).
    pub loss: f64,
}

/// A straggler host: NIC serialization rate reduced to `rate_factor` of the
/// configured line rate over `[from, until)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StragglerHost {
    /// Index of the straggling host in `TopologySpec::hosts()`.
    pub host: usize,
    /// Start of the straggle window.
    pub from: Duration,
    /// End of the straggle window; must exceed `from`.
    pub until: Duration,
    /// NIC rate multiplier in `(0, 1)` while straggling.
    pub rate_factor: f64,
}

/// The full fault plan of one simulation run, as plain data.
///
/// Attach via `SimConfig::faults`; `None` (the default) means a healthy
/// network and a bit-identical legacy run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultConfig {
    /// Scheduled link outages / flaps.
    pub link_faults: Vec<LinkFault>,
    /// Degraded-link windows (added latency, iid loss).
    pub degraded_links: Vec<DegradedLink>,
    /// Straggler-host windows (reduced NIC rate).
    pub stragglers: Vec<StragglerHost>,
}

impl FaultConfig {
    /// True when no fault of any kind is configured.
    pub fn is_empty(&self) -> bool {
        self.link_faults.is_empty() && self.degraded_links.is_empty() && self.stragglers.is_empty()
    }

    /// Validate the plan against a topology with `links` links and `hosts`
    /// hosts. Returns a human-readable reason on failure; scenario
    /// resolution wraps this in a typed error so malformed manifests never
    /// panic.
    pub fn validate(&self, links: usize, hosts: usize) -> Result<(), String> {
        let mut outages: Vec<(usize, SimTime, SimTime)> = Vec::new();
        for f in &self.link_faults {
            if f.link >= links {
                return Err(format!(
                    "link fault references link {} but the topology has {links} links",
                    f.link
                ));
            }
            if f.down_for.as_ps() == 0 {
                return Err(format!(
                    "link {}: zero-length outage (down_for = 0)",
                    f.link
                ));
            }
            if f.flaps > 0 && f.period <= f.down_for {
                return Err(format!(
                    "link {}: flap period must exceed the outage length",
                    f.link
                ));
            }
            for cycle in 0..=f.flaps as u64 {
                let start = SimTime::ZERO + f.at + f.period * cycle;
                outages.push((f.link, start, start + f.down_for));
            }
        }
        outages.sort_by_key(|&(link, start, _)| (link, start.as_ps()));
        for w in outages.windows(2) {
            let (la, _, end_a) = w[0];
            let (lb, start_b, _) = w[1];
            if la == lb && start_b < end_a {
                return Err(format!("link {la}: overlapping outage intervals"));
            }
        }
        let mut degraded: Vec<(usize, Duration, Duration)> = Vec::new();
        for d in &self.degraded_links {
            if d.link >= links {
                return Err(format!(
                    "degraded link {} out of range: the topology has {links} links",
                    d.link
                ));
            }
            if d.until <= d.from {
                return Err(format!(
                    "degraded link {}: window end must exceed its start",
                    d.link
                ));
            }
            if !d.loss.is_finite() || d.loss < 0.0 || d.loss >= 1.0 {
                return Err(format!(
                    "degraded link {}: loss probability must be in [0, 1)",
                    d.link
                ));
            }
            degraded.push((d.link, d.from, d.until));
        }
        degraded.sort_by_key(|&(link, from, _)| (link, from.as_ps()));
        for w in degraded.windows(2) {
            if w[0].0 == w[1].0 && w[1].1 < w[0].2 {
                return Err(format!("link {}: overlapping degraded windows", w[0].0));
            }
        }
        let mut straggle: Vec<(usize, Duration, Duration)> = Vec::new();
        for s in &self.stragglers {
            if s.host >= hosts {
                return Err(format!(
                    "straggler host {} out of range: the topology has {hosts} hosts",
                    s.host
                ));
            }
            if s.until <= s.from {
                return Err(format!(
                    "straggler host {}: window end must exceed its start",
                    s.host
                ));
            }
            if !s.rate_factor.is_finite() || s.rate_factor <= 0.0 || s.rate_factor >= 1.0 {
                return Err(format!(
                    "straggler host {}: rate_factor must be in (0, 1)",
                    s.host
                ));
            }
            straggle.push((s.host, s.from, s.until));
        }
        straggle.sort_by_key(|&(host, from, _)| (host, from.as_ps()));
        for w in straggle.windows(2) {
            if w[0].0 == w[1].0 && w[1].1 < w[0].2 {
                return Err(format!("host {}: overlapping straggler windows", w[0].0));
            }
        }
        Ok(())
    }
}

/// One compiled fault-state transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transition {
    /// Link `link` goes administratively down in `mode`.
    LinkDown {
        /// Topology link index.
        link: usize,
        /// Outage semantics.
        mode: LinkDownMode,
    },
    /// Link `link` comes back up.
    LinkUp {
        /// Topology link index.
        link: usize,
    },
    /// Degradation window `idx` (index into `degraded_links`) starts.
    DegradeOn {
        /// Index into [`FaultConfig::degraded_links`].
        idx: usize,
    },
    /// Degradation window `idx` ends.
    DegradeOff {
        /// Index into [`FaultConfig::degraded_links`].
        idx: usize,
    },
    /// Straggler window `idx` (index into `stragglers`) starts.
    StraggleOn {
        /// Index into [`FaultConfig::stragglers`].
        idx: usize,
    },
    /// Straggler window `idx` ends.
    StraggleOff {
        /// Index into [`FaultConfig::stragglers`].
        idx: usize,
    },
}

/// The compiled, time-sorted transition schedule of a [`FaultConfig`].
///
/// Compilation is a pure function of the config: the same plan always
/// yields the same schedule, and ties at one instant are applied in spec
/// order (stable sort), so fault scenarios are deterministic.
#[derive(Clone, Debug)]
pub struct FaultTimeline {
    transitions: Vec<(SimTime, Transition)>,
    cursor: usize,
}

impl FaultTimeline {
    /// Compile the transition schedule of `cfg`.
    pub fn compile(cfg: &FaultConfig) -> FaultTimeline {
        let mut transitions: Vec<(SimTime, Transition)> = Vec::new();
        for f in &cfg.link_faults {
            for cycle in 0..=f.flaps as u64 {
                let down = SimTime::ZERO + f.at + f.period * cycle;
                transitions.push((
                    down,
                    Transition::LinkDown {
                        link: f.link,
                        mode: f.mode,
                    },
                ));
                transitions.push((down + f.down_for, Transition::LinkUp { link: f.link }));
            }
        }
        for (idx, d) in cfg.degraded_links.iter().enumerate() {
            transitions.push((SimTime::ZERO + d.from, Transition::DegradeOn { idx }));
            transitions.push((SimTime::ZERO + d.until, Transition::DegradeOff { idx }));
        }
        for (idx, s) in cfg.stragglers.iter().enumerate() {
            transitions.push((SimTime::ZERO + s.from, Transition::StraggleOn { idx }));
            transitions.push((SimTime::ZERO + s.until, Transition::StraggleOff { idx }));
        }
        transitions.sort_by_key(|&(t, _)| t.as_ps());
        FaultTimeline {
            transitions,
            cursor: 0,
        }
    }

    /// Time of the next unapplied transition, if any.
    pub fn next_time(&self) -> Option<SimTime> {
        self.transitions.get(self.cursor).map(|&(t, _)| t)
    }

    /// Pop every transition scheduled at or before `now`, in order.
    pub fn due(&mut self, now: SimTime) -> impl Iterator<Item = (SimTime, Transition)> + '_ {
        let start = self.cursor;
        while self.cursor < self.transitions.len() && self.transitions[self.cursor].0 <= now {
            self.cursor += 1;
        }
        self.transitions[start..self.cursor].iter().copied()
    }

    /// Total number of transitions in the schedule.
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// True when the schedule contains no transitions.
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }
}

/// Stream constant XORed into the scenario seed for the per-node fault-loss
/// RNG, keeping it disjoint from the ECN-marking stream.
pub const FAULT_RNG_STREAM: u64 = 0xFA17_5EED_0BAD_11FE;

#[cfg(test)]
mod tests {
    use super::*;

    fn flap(link: usize, at_us: u64, down_us: u64, flaps: u32, period_us: u64) -> LinkFault {
        LinkFault {
            link,
            at: Duration::from_us(at_us),
            down_for: Duration::from_us(down_us),
            flaps,
            period: Duration::from_us(period_us),
            mode: LinkDownMode::Pause,
        }
    }

    #[test]
    fn empty_config_is_empty_and_valid() {
        let cfg = FaultConfig::default();
        assert!(cfg.is_empty());
        cfg.validate(0, 0).unwrap();
        assert!(FaultTimeline::compile(&cfg).is_empty());
    }

    #[test]
    fn validation_rejects_malformed_plans() {
        let cases: Vec<(FaultConfig, &str)> = vec![
            (
                FaultConfig {
                    link_faults: vec![flap(9, 10, 5, 0, 0)],
                    ..Default::default()
                },
                "4 links",
            ),
            (
                FaultConfig {
                    link_faults: vec![flap(0, 10, 0, 0, 0)],
                    ..Default::default()
                },
                "zero-length",
            ),
            (
                FaultConfig {
                    link_faults: vec![flap(0, 10, 5, 2, 5)],
                    ..Default::default()
                },
                "period",
            ),
            (
                FaultConfig {
                    link_faults: vec![flap(0, 10, 5, 0, 0), flap(0, 12, 5, 0, 0)],
                    ..Default::default()
                },
                "overlapping outage",
            ),
            (
                FaultConfig {
                    degraded_links: vec![DegradedLink {
                        link: 12,
                        from: Duration::ZERO,
                        until: Duration::from_us(1),
                        extra_delay: Duration::ZERO,
                        loss: 0.0,
                    }],
                    ..Default::default()
                },
                "out of range",
            ),
            (
                FaultConfig {
                    degraded_links: vec![DegradedLink {
                        link: 0,
                        from: Duration::from_us(2),
                        until: Duration::from_us(2),
                        extra_delay: Duration::ZERO,
                        loss: 0.0,
                    }],
                    ..Default::default()
                },
                "window end",
            ),
            (
                FaultConfig {
                    degraded_links: vec![DegradedLink {
                        link: 0,
                        from: Duration::ZERO,
                        until: Duration::from_us(1),
                        extra_delay: Duration::ZERO,
                        loss: 1.0,
                    }],
                    ..Default::default()
                },
                "loss probability",
            ),
            (
                FaultConfig {
                    stragglers: vec![StragglerHost {
                        host: 4,
                        from: Duration::ZERO,
                        until: Duration::from_us(1),
                        rate_factor: 0.5,
                    }],
                    ..Default::default()
                },
                "4 hosts",
            ),
            (
                FaultConfig {
                    stragglers: vec![StragglerHost {
                        host: 0,
                        from: Duration::ZERO,
                        until: Duration::from_us(1),
                        rate_factor: 1.5,
                    }],
                    ..Default::default()
                },
                "rate_factor",
            ),
        ];
        for (cfg, needle) in cases {
            let err = cfg.validate(4, 4).expect_err(&format!("{cfg:?} must fail"));
            assert!(err.contains(needle), "{cfg:?} -> {err}");
        }
    }

    #[test]
    fn flaps_expand_into_alternating_transitions() {
        let cfg = FaultConfig {
            link_faults: vec![flap(1, 100, 10, 2, 50)],
            ..Default::default()
        };
        cfg.validate(2, 0).unwrap();
        let mut tl = FaultTimeline::compile(&cfg);
        assert_eq!(tl.len(), 6);
        let all: Vec<_> = tl.due(SimTime::from_ms(1)).collect();
        let times: Vec<u64> = all.iter().map(|&(t, _)| t.as_ps() / 1_000_000).collect();
        assert_eq!(times, vec![100, 110, 150, 160, 200, 210]);
        assert!(matches!(all[0].1, Transition::LinkDown { link: 1, .. }));
        assert!(matches!(all[1].1, Transition::LinkUp { link: 1 }));
        assert_eq!(tl.next_time(), None);
    }

    #[test]
    fn due_pops_incrementally_and_in_order() {
        let cfg = FaultConfig {
            link_faults: vec![flap(0, 10, 5, 0, 0)],
            stragglers: vec![StragglerHost {
                host: 0,
                from: Duration::from_us(12),
                until: Duration::from_us(20),
                rate_factor: 0.25,
            }],
            ..Default::default()
        };
        cfg.validate(1, 1).unwrap();
        let mut tl = FaultTimeline::compile(&cfg);
        assert_eq!(tl.next_time(), Some(SimTime::from_us(10)));
        let first: Vec<_> = tl.due(SimTime::from_us(10)).collect();
        assert_eq!(first.len(), 1);
        assert_eq!(tl.next_time(), Some(SimTime::from_us(12)));
        let rest: Vec<_> = tl.due(SimTime::from_ms(1)).collect();
        assert_eq!(rest.len(), 3);
        assert!(matches!(rest[0].1, Transition::StraggleOn { idx: 0 }));
        assert!(matches!(rest[1].1, Transition::LinkUp { link: 0 }));
        assert!(matches!(rest[2].1, Transition::StraggleOff { idx: 0 }));
    }
}
