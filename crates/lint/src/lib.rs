//! # hpcc-lint
//!
//! The in-tree determinism and wire-contract static-analysis pass of the
//! HPCC reproduction — the `simlint` binary CI gates on. Everything this
//! repository claims rests on bit-identical determinism (golden digests
//! over the event-wheel engine, the sharded merge, the fluid backend, the
//! canonical JSONL wire); these analyzers turn the conventions behind those
//! claims into machine-checked rules instead of remembered ones:
//!
//! * [`determinism`] — lexical lints over Rust source: hasher-ordered
//!   iteration feeding folds, wall-clock reads outside the timing modules,
//!   non-canonical formatting next to the wire encoder, missing
//!   `#![forbid(unsafe_code)]` / crate docs in crate roots.
//! * [`wirecheck`] — bidirectional key cross-check between
//!   `crates/core/src/wire.rs` and `docs/WIRE.md`, so the encoder and its
//!   normative spec can never diverge silently.
//! * [`manifests`] — static validation of every committed
//!   `manifests/*.json` (parse, `try_build`-level checking, canonical
//!   re-encoding fixed point) and `corpus/*` file (parse, round-trip,
//!   reachability) without running the engine.
//!
//! Findings print as `file:line rule message`. Vetted exceptions live
//! inline (`// simlint: sorted-fold — <why>` /
//! `// simlint: allow(<rule>) — <why>`, justification required) or in the
//! committed `simlint.allow` file (`<path> <rule>` per line); stale
//! allowlist entries are themselves findings, so the list cannot rot.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod determinism;
pub mod manifests;
pub mod scanner;
pub mod wirecheck;

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// One static-analysis finding, rendered as `file:line rule message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path (`/`-separated) of the offending file.
    pub file: String,
    /// 1-based line number the finding anchors to.
    pub line: usize,
    /// Stable rule identifier (e.g. `hash-iter`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// Construct a finding.
    pub fn new(
        file: impl Into<String>,
        line: usize,
        rule: &'static str,
        message: impl Into<String>,
    ) -> Self {
        Finding {
            file: file.into(),
            line,
            rule,
            message: message.into(),
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} {} {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// The committed allowlist (`simlint.allow`): one `<path> <rule>` pair per
/// line, `#` comments, suppressing whole-file/rule combinations that are
/// vetted exceptions.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<(String, String, usize)>,
}

impl Allowlist {
    /// Parse allowlist text. Malformed lines become findings against
    /// `label`.
    pub fn parse(label: &str, text: &str) -> (Self, Vec<Finding>) {
        let mut entries = Vec::new();
        let mut findings = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            match (parts.next(), parts.next(), parts.next()) {
                (Some(path), Some(rule), None) => {
                    entries.push((path.to_string(), rule.to_string(), i + 1))
                }
                _ => findings.push(Finding::new(
                    label,
                    i + 1,
                    "allowlist",
                    "malformed entry; the grammar is `<repo-relative-path> <rule>  # reason`",
                )),
            }
        }
        (Allowlist { entries }, findings)
    }

    /// Drop findings matched by an entry; report entries that matched
    /// nothing as stale (against `label`), so the allowlist cannot rot.
    pub fn apply(&self, label: &str, findings: Vec<Finding>) -> Vec<Finding> {
        let mut used = vec![false; self.entries.len()];
        let mut kept = Vec::new();
        for f in findings {
            let hit = self
                .entries
                .iter()
                .position(|(path, rule, _)| *path == f.file && *rule == f.rule);
            match hit {
                Some(i) => used[i] = true,
                None => kept.push(f),
            }
        }
        for (i, (path, rule, line)) in self.entries.iter().enumerate() {
            if !used[i] {
                kept.push(Finding::new(
                    label,
                    *line,
                    "allowlist",
                    format!("stale entry `{path} {rule}` matched no finding; remove it"),
                ));
            }
        }
        kept
    }
}

/// Recursively list the `.rs` files under `dir` (sorted, repo-relative to
/// `root`), skipping `target/`.
fn rust_files(root: &Path, dir: &Path, out: &mut Vec<(String, PathBuf)>) -> std::io::Result<()> {
    let mut children: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    children.sort();
    for path in children {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            rust_files(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((rel, path));
        }
    }
    Ok(())
}

/// Which analysis sections to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// Determinism lints over Rust source.
    Rust,
    /// Wire-contract drift check.
    Wire,
    /// Manifest and corpus validation.
    Manifests,
    /// Everything.
    All,
}

/// Run the requested sections over the repository at `root`; returns the
/// allowlist-filtered findings, sorted by file and line.
pub fn run(root: &Path, section: Section) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let want = |s: Section| section == Section::All || section == s;

    if want(Section::Rust) {
        // Library sources: every crate's src/ plus the umbrella crate root.
        let mut files = Vec::new();
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            let mut crate_roots: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
                .collect::<Result<Vec<_>, _>>()?
                .into_iter()
                .map(|e| e.path().join("src"))
                .filter(|p| p.is_dir())
                .collect();
            crate_roots.sort();
            for src in crate_roots {
                rust_files(root, &src, &mut files)?;
            }
        }
        let umbrella = root.join("src/lib.rs");
        if umbrella.is_file() {
            files.push(("src/lib.rs".to_string(), umbrella));
        }
        let sources: Vec<(String, String)> = files
            .iter()
            .map(|(rel, path)| Ok((rel.clone(), std::fs::read_to_string(path)?)))
            .collect::<std::io::Result<_>>()?;
        let registry = determinism::collect_pub_hash_fields(&sources);
        for (rel, text) in &sources {
            findings.extend(determinism::lint_rust_source(rel, text, &registry));
        }
    }

    if want(Section::Wire) {
        let wire_rs = root.join("crates/core/src/wire.rs");
        let wire_md = root.join("docs/WIRE.md");
        let source = std::fs::read_to_string(&wire_rs)?;
        let doc = std::fs::read_to_string(&wire_md)?;
        findings.extend(wirecheck::check_wire_contract(
            "crates/core/src/wire.rs",
            &source,
            "docs/WIRE.md",
            &doc,
        ));
    }

    if want(Section::Manifests) {
        for (dir, check) in [("manifests", true), ("corpus", false)] {
            let dir_path = root.join(dir);
            if !dir_path.is_dir() {
                continue;
            }
            let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir_path)?
                .collect::<Result<Vec<_>, _>>()?
                .into_iter()
                .map(|e| e.path())
                .filter(|p| p.is_file())
                .collect();
            entries.sort();
            for path in entries {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                let text = std::fs::read_to_string(&path)?;
                if check {
                    findings.extend(manifests::check_manifest(&rel, &text, root));
                } else {
                    findings.extend(manifests::check_corpus(&rel, &text));
                }
            }
        }
    }

    // Allowlist-filter (stale entries come back as findings).
    let allow_path = root.join("simlint.allow");
    let (allowlist, mut parse_findings) = if allow_path.is_file() {
        Allowlist::parse("simlint.allow", &std::fs::read_to_string(&allow_path)?)
    } else {
        (Allowlist::default(), Vec::new())
    };
    let mut findings = allowlist.apply("simlint.allow", findings);
    findings.append(&mut parse_findings);
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(findings)
}

/// The set of rule ids the pass can emit (for `--help` and tests).
pub fn rule_ids() -> BTreeSet<&'static str> {
    [
        determinism::HASH_ITER,
        determinism::WALL_CLOCK,
        determinism::WIRE_FMT,
        determinism::FORBID_UNSAFE,
        determinism::CRATE_DOCS,
        determinism::ANNOTATION,
        wirecheck::WIRE_DRIFT,
        manifests::MANIFEST,
        manifests::CORPUS,
        "allowlist",
    ]
    .into()
}
