//! The paper's "+win" variants (§5.1, Figure 11/12): a rate-based scheme
//! (DCQCN or TIMELY) wrapped with a static sending window of one
//! bandwidth-delay product, "same as we use for HPCC".
//!
//! §5.3's key observation is that *just adding this window* — i.e. limiting
//! inflight bytes — already eliminates almost all PFC pauses, even though the
//! rate control underneath is unchanged.

use crate::api::{AckEvent, CongestionControl, FlowRateState};
use hpcc_types::{Bandwidth, Duration, SimTime};

/// A rate-based congestion controller augmented with a fixed BDP window.
#[derive(Debug)]
pub struct Windowed<C: CongestionControl> {
    inner: C,
    window: u64,
    name: &'static str,
}

impl<C: CongestionControl> Windowed<C> {
    /// Wrap `inner` with a static window of `line_rate * base_rtt` (+1 MTU).
    pub fn new(
        inner: C,
        line_rate: Bandwidth,
        base_rtt: Duration,
        mtu: u64,
        name: &'static str,
    ) -> Self {
        Windowed {
            inner,
            window: line_rate.bdp_bytes(base_rtt) + mtu,
            name,
        }
    }

    /// The wrapped algorithm.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// The static window size in bytes.
    pub fn static_window(&self) -> u64 {
        self.window
    }
}

impl<C: CongestionControl> CongestionControl for Windowed<C> {
    fn on_ack(&mut self, ack: &AckEvent<'_>) {
        self.inner.on_ack(ack);
    }
    fn on_cnp(&mut self, now: SimTime) {
        self.inner.on_cnp(now);
    }
    fn on_loss(&mut self, now: SimTime) {
        self.inner.on_loss(now);
    }
    fn next_timer(&self) -> Option<SimTime> {
        self.inner.next_timer()
    }
    fn on_timer(&mut self, now: SimTime) {
        self.inner.on_timer(now);
    }
    fn state(&self) -> FlowRateState {
        FlowRateState {
            window: self.window,
            rate: self.inner.state().rate,
        }
    }
    fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcqcn::{Dcqcn, DcqcnConfig};
    use crate::timely::{Timely, TimelyConfig};
    use hpcc_types::IntHeader;

    const LINE: Bandwidth = Bandwidth::from_gbps(100);
    const RTT: Duration = Duration::from_us(13);

    #[test]
    fn dcqcn_win_limits_inflight_but_keeps_rate_control() {
        let inner = Dcqcn::new(DcqcnConfig::vendor_default(LINE), LINE);
        let mut w = Windowed::new(inner, LINE, RTT, 1000, "DCQCN+win");
        assert_eq!(w.state().window, LINE.bdp_bytes(RTT) + 1000);
        assert_eq!(w.state().rate, LINE);
        assert!(w.state().is_window_limited());
        // A CNP still cuts the rate but the window stays fixed.
        w.on_cnp(SimTime::from_us(5));
        assert_eq!(w.state().rate, LINE.mul_f64(0.5));
        assert_eq!(w.state().window, LINE.bdp_bytes(RTT) + 1000);
        assert_eq!(w.name(), "DCQCN+win");
    }

    #[test]
    fn timely_win_delegates_timers_and_acks() {
        let inner = Timely::new(TimelyConfig::recommended(LINE, RTT), LINE);
        let mut w = Windowed::new(inner, LINE, RTT, 1000, "TIMELY+win");
        assert!(w.next_timer().is_none());
        let int = IntHeader::new();
        let mk = |rtt_us: u64| AckEvent {
            now: SimTime::from_us(rtt_us),
            ack_seq: 0,
            snd_nxt: 0,
            newly_acked: 1000,
            ecn_echo: false,
            rtt: Duration::from_us(rtt_us),
            int: &int,
        };
        w.on_ack(&mk(100));
        w.on_ack(&mk(800));
        assert!(w.state().rate < LINE, "inner TIMELY should have decreased");
        assert_eq!(w.static_window(), LINE.bdp_bytes(RTT) + 1000);
        assert!(w.inner().decrease_events >= 1);
    }
}
