//! Poisson background-load generation — the assembled workload pipeline.
//!
//! The paper's end-to-end experiments drive the network with flows whose
//! sizes come from a trace CDF and whose arrivals form a Poisson process
//! tuned so that the *average host link load* equals a target (30% or 50%).
//!
//! [`LoadGenerator`] is the composition point of the pipeline's stages:
//!
//! * **arrival process** — exponential inter-arrival gaps at the rate the
//!   target load implies ([`LoadGenerator::arrival_rate_per_sec`]),
//! * **pair sampler** — which `(src, dst)` hosts each flow connects; uniform
//!   by default, rack-local or Zipf-skewed via
//!   [`LoadGenerator::with_pair_sampler`] (see [`crate::locality`]),
//! * **size sampler** — a [`FlowSizeCdf`] drawn per flow.
//!
//! Each stage consumes draws from one deterministic [`SplitMix64`] stream in
//! a fixed per-flow order (arrival, pair, size), so a generated workload is
//! a pure function of (hosts, parameters, seed) — and can be exported to a
//! [`crate::trace::Trace`] and replayed bit-identically.

use crate::cdf::FlowSizeCdf;
use crate::locality::PairSampler;
use crate::priority::PrioritySpec;
use hpcc_types::rng::SplitMix64;
use hpcc_types::{Bandwidth, Duration, FlowId, FlowSpec, NodeId, SimTime};

/// Generates background flows at a target average load.
#[derive(Clone, Debug)]
pub struct LoadGenerator {
    hosts: Vec<NodeId>,
    host_bandwidth: Bandwidth,
    cdf: FlowSizeCdf,
    load: f64,
    seed: u64,
    next_flow_id: u64,
    pairs: PairSampler,
    priority: PrioritySpec,
}

impl LoadGenerator {
    /// Create a generator over `hosts`, each with a NIC of `host_bandwidth`,
    /// targeting `load` (0.0–1.0) of the aggregate host capacity, drawing
    /// sizes from `cdf`. Pairs are sampled uniformly unless
    /// [`LoadGenerator::with_pair_sampler`] installs a different stage.
    ///
    /// # Panics
    /// Panics if fewer than two hosts are given or `load` is not in (0, 1].
    pub fn new(
        hosts: Vec<NodeId>,
        host_bandwidth: Bandwidth,
        load: f64,
        cdf: FlowSizeCdf,
        seed: u64,
    ) -> Self {
        assert!(hosts.len() >= 2, "need at least two hosts");
        assert!(
            load > 0.0 && load <= 1.0,
            "load must be in (0, 1], got {load}"
        );
        let n = hosts.len();
        LoadGenerator {
            hosts,
            host_bandwidth,
            cdf,
            load,
            seed,
            next_flow_id: 0,
            pairs: PairSampler::Uniform { n },
            priority: PrioritySpec::default(),
        }
    }

    /// Use flow identifiers starting at `first` (so that several generators
    /// can feed one simulation without collisions).
    pub fn with_first_flow_id(mut self, first: u64) -> Self {
        self.next_flow_id = first;
        self
    }

    /// Replace the pair-sampling stage (built from a
    /// [`crate::locality::PairSpec`] for this generator's host count and the
    /// topology's rack layout). The default is the uniform sampler, whose
    /// draw sequence is bit-compatible with the historical generator.
    pub fn with_pair_sampler(mut self, pairs: PairSampler) -> Self {
        self.pairs = pairs;
        self
    }

    /// Install a priority-assignment stage ([`PrioritySpec`]). Priorities
    /// are a pure function of each flow's size, assigned after generation,
    /// so the flow list itself (ids, endpoints, sizes, starts) is
    /// bit-identical to the untagged workload.
    pub fn with_priority(mut self, priority: PrioritySpec) -> Self {
        self.priority = priority;
        self
    }

    /// The flow arrival rate (flows per second) implied by the target load.
    ///
    /// Each flow's bytes leave one host NIC, so the aggregate offered load is
    /// `arrival_rate * mean_flow_size` bytes/s, which we set to
    /// `load * n_hosts * host_bandwidth / 8`.
    pub fn arrival_rate_per_sec(&self) -> f64 {
        let capacity_bytes_per_sec = self.hosts.len() as f64 * self.host_bandwidth.bytes_per_sec();
        self.load * capacity_bytes_per_sec / self.cdf.mean()
    }

    /// Generate all flows arriving within `[0, duration)`.
    pub fn generate(&mut self, duration: Duration) -> Vec<FlowSpec> {
        let mut rng = SplitMix64::new(self.seed);
        let lambda = self.arrival_rate_per_sec();
        let mut flows = Vec::new();
        let mut t = 0.0f64; // seconds
        let horizon = duration.as_secs_f64();
        loop {
            // Exponential inter-arrival.
            let u: f64 = rng.next_f64().max(1e-12);
            t += -u.ln() / lambda;
            if t >= horizon {
                break;
            }
            let (src_i, dst_i) = self.pairs.sample(&mut rng);
            let size = self.cdf.sample(&mut rng);
            let id = FlowId(self.next_flow_id);
            self.next_flow_id += 1;
            flows.push(FlowSpec::new(
                id,
                self.hosts[src_i],
                self.hosts[dst_i],
                size,
                SimTime::ZERO + Duration::from_secs_f64(t),
            ));
        }
        self.priority.assign(&mut flows);
        flows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdf::{fb_hadoop, fixed_size, websearch};

    fn hosts(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn offered_load_is_close_to_target() {
        let bw = Bandwidth::from_gbps(25);
        let mut g = LoadGenerator::new(hosts(16), bw, 0.3, websearch(), 42);
        let duration = Duration::from_ms(200);
        let flows = g.generate(duration);
        assert!(!flows.is_empty());
        let total_bytes: u64 = flows.iter().map(|f| f.size).sum();
        let offered = total_bytes as f64 * 8.0 / duration.as_secs_f64();
        let capacity = 16.0 * bw.as_bps() as f64;
        let achieved = offered / capacity;
        assert!(
            (achieved - 0.3).abs() < 0.06,
            "offered load {achieved:.3} should be near 0.30"
        );
    }

    #[test]
    fn arrivals_are_spread_over_the_duration_and_sorted_ids() {
        let mut g = LoadGenerator::new(hosts(8), Bandwidth::from_gbps(25), 0.5, fb_hadoop(), 1);
        let flows = g.generate(Duration::from_ms(50));
        assert!(flows.len() > 100);
        // Starts are within the horizon and non-decreasing (Poisson arrivals
        // generated in order).
        for w in flows.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
        assert!(flows.last().unwrap().start < SimTime::ZERO + Duration::from_ms(50));
        // Ids are unique and consecutive.
        for (i, f) in flows.iter().enumerate() {
            assert_eq!(f.id, FlowId(i as u64));
        }
        // Every flow has distinct endpoints from the host set.
        for f in &flows {
            assert_ne!(f.src, f.dst);
        }
    }

    #[test]
    fn higher_load_generates_more_bytes() {
        let bw = Bandwidth::from_gbps(25);
        let d = Duration::from_ms(100);
        let bytes = |load: f64| {
            let mut g = LoadGenerator::new(hosts(8), bw, load, fb_hadoop(), 9);
            g.generate(d).iter().map(|f| f.size).sum::<u64>()
        };
        let b30 = bytes(0.3);
        let b50 = bytes(0.5);
        assert!(b50 as f64 > 1.3 * b30 as f64, "b30={b30} b50={b50}");
    }

    #[test]
    fn poisson_inter_arrival_mean_matches_the_rate() {
        // With a fixed flow size the arrival rate is exactly
        // load * n * bw / (8 * size); the empirical mean inter-arrival gap
        // must match 1/lambda within a few percent over many arrivals.
        let bw = Bandwidth::from_gbps(25);
        let mut g = LoadGenerator::new(hosts(16), bw, 0.4, fixed_size(20_000), 5);
        let lambda = g.arrival_rate_per_sec();
        let expected_gap = 1.0 / lambda;
        let flows = g.generate(Duration::from_ms(400));
        assert!(
            flows.len() > 2_000,
            "need many arrivals, got {}",
            flows.len()
        );
        let gaps: Vec<f64> = flows
            .windows(2)
            .map(|w| (w[1].start - w[0].start).as_secs_f64())
            .collect();
        let mean_gap = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!(
            (mean_gap - expected_gap).abs() / expected_gap < 0.05,
            "mean gap {mean_gap:e} vs expected {expected_gap:e}"
        );
        // Exponential inter-arrivals: the standard deviation is close to the
        // mean (coefficient of variation ~ 1), unlike a periodic process.
        let var = gaps
            .iter()
            .map(|g| (g - mean_gap) * (g - mean_gap))
            .sum::<f64>()
            / gaps.len() as f64;
        let cv = var.sqrt() / mean_gap;
        assert!((cv - 1.0).abs() < 0.1, "coefficient of variation {cv}");
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let make = |seed: u64| {
            LoadGenerator::new(hosts(8), Bandwidth::from_gbps(25), 0.3, websearch(), seed)
                .generate(Duration::from_ms(20))
        };
        assert_eq!(make(11), make(11));
        assert_ne!(make(11), make(12));
    }

    #[test]
    fn flow_id_offset_is_respected() {
        let mut g =
            LoadGenerator::new(hosts(4), Bandwidth::from_gbps(25), 0.2, fixed_size(1000), 3)
                .with_first_flow_id(1_000_000);
        let flows = g.generate(Duration::from_ms(10));
        assert!(flows.iter().all(|f| f.id.raw() >= 1_000_000));
    }

    #[test]
    fn pair_sampler_stage_is_pluggable() {
        use crate::locality::{LocalitySpec, PairSpec};
        // Two racks of four hosts, all traffic intra-rack: every generated
        // flow must stay inside its source rack, and the rest of the
        // pipeline (arrivals, sizes, ids) keeps working.
        let rack_of: Vec<usize> = (0..8).map(|h| h / 4).collect();
        let sampler = PairSpec::Locality(LocalitySpec::IntraRack { fraction: 1.0 })
            .build(8, &rack_of, 3)
            .unwrap();
        let mut g = LoadGenerator::new(hosts(8), Bandwidth::from_gbps(25), 0.3, websearch(), 3)
            .with_pair_sampler(sampler);
        let flows = g.generate(Duration::from_ms(20));
        assert!(flows.len() > 50);
        for f in &flows {
            assert_ne!(f.src, f.dst);
            assert_eq!(
                rack_of[f.src.0 as usize], rack_of[f.dst.0 as usize],
                "flow {f:?} crossed racks"
            );
        }
    }

    #[test]
    fn priority_stage_tags_without_perturbing_the_flow_list() {
        use crate::priority::PrioritySpec;
        use hpcc_types::FlowPriority;
        let make = |prio: PrioritySpec| {
            LoadGenerator::new(hosts(8), Bandwidth::from_gbps(25), 0.3, websearch(), 7)
                .with_priority(prio)
                .generate(Duration::from_ms(20))
        };
        let plain = make(PrioritySpec::default());
        let tagged = make(PrioritySpec::ShortFlows { threshold: 30_000 });
        assert_eq!(plain.len(), tagged.len());
        let mut mice = 0;
        for (p, t) in plain.iter().zip(&tagged) {
            // Everything but the tag is bit-identical.
            assert_eq!(
                (p.id, p.src, p.dst, p.size, p.start),
                (t.id, t.src, t.dst, t.size, t.start)
            );
            let expect = if t.size < 30_000 {
                mice += 1;
                FlowPriority::LatencySensitive
            } else {
                FlowPriority::Normal
            };
            assert_eq!(t.priority, expect);
        }
        assert!(mice > 0, "WebSearch draws must contain mice");
    }

    #[test]
    #[should_panic(expected = "need at least two hosts")]
    fn rejects_single_host() {
        LoadGenerator::new(hosts(1), Bandwidth::from_gbps(25), 0.3, websearch(), 1);
    }

    #[test]
    #[should_panic(expected = "load must be in")]
    fn rejects_invalid_load() {
        LoadGenerator::new(hosts(4), Bandwidth::from_gbps(25), 1.5, websearch(), 1);
    }
}
