//! TIMELY — RTT-gradient based rate control (Mittal et al., SIGCOMM 2015),
//! the second RDMA baseline of the paper.
//!
//! On every acknowledgement the sender measures the RTT, maintains an EWMA of
//! the RTT difference, and:
//!
//! * below `t_low` it increases additively,
//! * above `t_high` it decreases multiplicatively towards `t_high / rtt`,
//! * otherwise it follows the normalized RTT gradient: non-positive gradient
//!   → additive increase (with hyper-active increase after `hai_threshold`
//!   consecutive rounds), positive gradient → multiplicative decrease.
//!
//! TIMELY is purely rate-based: it does not bound inflight bytes, which is
//! exactly the weakness the paper's "+win" variant (see
//! [`crate::windowed::Windowed`]) patches.

use crate::api::{clamp_rate, AckEvent, CongestionControl, FlowRateState};
use hpcc_types::{Bandwidth, Duration, SimTime};

/// TIMELY parameters, following the values used in the paper's simulations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimelyConfig {
    /// EWMA weight for the RTT-difference filter.
    pub ewma_alpha: f64,
    /// Additive increase step `delta`.
    pub delta: Bandwidth,
    /// Multiplicative decrease factor `beta`.
    pub beta: f64,
    /// Low RTT threshold: below this, always increase.
    pub t_low: Duration,
    /// High RTT threshold: above this, always decrease.
    pub t_high: Duration,
    /// Consecutive non-positive-gradient rounds before hyper-active increase.
    pub hai_threshold: u32,
    /// Minimum RTT used to normalize the gradient (the base network RTT).
    pub min_rtt: Duration,
    /// Minimum rate.
    pub min_rate: Bandwidth,
}

impl TimelyConfig {
    /// Defaults for a data-center network with base RTT `min_rtt`.
    pub fn recommended(line_rate: Bandwidth, min_rtt: Duration) -> Self {
        let scale = line_rate.as_bps() as f64 / 10e9;
        TimelyConfig {
            ewma_alpha: 0.875,
            delta: Bandwidth::from_mbps((10.0 * scale).max(1.0) as u64),
            beta: 0.8,
            t_low: Duration::from_us(50),
            t_high: Duration::from_us(500),
            hai_threshold: 5,
            min_rtt,
            min_rate: Bandwidth::from_mbps(100),
        }
    }
}

/// TIMELY rate control for one flow.
#[derive(Debug)]
pub struct Timely {
    cfg: TimelyConfig,
    line_rate: Bandwidth,
    rate: Bandwidth,
    prev_rtt: Option<Duration>,
    /// EWMA of consecutive RTT differences, in seconds (signed).
    rtt_diff_sec: f64,
    /// Consecutive completion events with non-positive gradient.
    neg_gradient_rounds: u32,
    /// Count of multiplicative decreases (exposed for tests / traces).
    pub decrease_events: u64,
    /// Count of additive/HAI increases.
    pub increase_events: u64,
}

impl Timely {
    /// Create a TIMELY instance starting at line rate.
    pub fn new(cfg: TimelyConfig, line_rate: Bandwidth) -> Self {
        Timely {
            cfg,
            line_rate,
            rate: line_rate,
            prev_rtt: None,
            rtt_diff_sec: 0.0,
            neg_gradient_rounds: 0,
            decrease_events: 0,
            increase_events: 0,
        }
    }

    /// The current normalized RTT gradient estimate.
    pub fn normalized_gradient(&self) -> f64 {
        self.rtt_diff_sec / self.cfg.min_rtt.as_secs_f64()
    }

    fn apply(&mut self, rate: Bandwidth) {
        self.rate = clamp_rate(rate, self.cfg.min_rate, self.line_rate);
    }
}

impl CongestionControl for Timely {
    fn on_ack(&mut self, ack: &AckEvent<'_>) {
        let new_rtt = ack.rtt;
        let prev = match self.prev_rtt.replace(new_rtt) {
            Some(p) => p,
            None => return,
        };
        let diff = new_rtt.as_secs_f64() - prev.as_secs_f64();
        let a = self.cfg.ewma_alpha;
        self.rtt_diff_sec = (1.0 - a) * self.rtt_diff_sec + a * diff;
        let gradient = self.normalized_gradient();

        if new_rtt < self.cfg.t_low {
            // Far from congestion: plain additive increase.
            self.neg_gradient_rounds = 0;
            self.apply(self.rate + self.cfg.delta);
            self.increase_events += 1;
        } else if new_rtt > self.cfg.t_high {
            // Severe congestion regardless of gradient.
            self.neg_gradient_rounds = 0;
            let factor =
                1.0 - self.cfg.beta * (1.0 - self.cfg.t_high.as_secs_f64() / new_rtt.as_secs_f64());
            self.apply(self.rate.mul_f64(factor.max(0.0)));
            self.decrease_events += 1;
        } else if gradient <= 0.0 {
            // Queue is stable or draining: additive increase, with HAI after
            // enough consecutive rounds.
            self.neg_gradient_rounds += 1;
            let n = if self.neg_gradient_rounds >= self.cfg.hai_threshold {
                5
            } else {
                1
            };
            self.apply(self.rate + Bandwidth::from_bps(self.cfg.delta.as_bps() * n));
            self.increase_events += 1;
        } else {
            // Queue growing: multiplicative decrease proportional to gradient.
            self.neg_gradient_rounds = 0;
            let factor = (1.0 - self.cfg.beta * gradient).max(0.0);
            self.apply(self.rate.mul_f64(factor));
            self.decrease_events += 1;
        }
    }

    fn on_loss(&mut self, _now: SimTime) {
        // Severe event: halve the rate (mirrors vendor firmware behaviour on
        // retransmission for RTT-based CC).
        self.apply(self.rate.mul_f64(0.5));
        self.decrease_events += 1;
    }

    fn state(&self) -> FlowRateState {
        FlowRateState {
            window: FlowRateState::UNLIMITED_WINDOW,
            rate: self.rate,
        }
    }

    fn name(&self) -> &'static str {
        "TIMELY"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcc_types::IntHeader;

    const LINE: Bandwidth = Bandwidth::from_gbps(25);
    const BASE_RTT: Duration = Duration::from_us(10);

    fn cfg() -> TimelyConfig {
        TimelyConfig::recommended(LINE, BASE_RTT)
    }

    fn ack_with_rtt(now_us: u64, rtt: Duration, int: &IntHeader) -> AckEvent<'_> {
        AckEvent {
            now: SimTime::from_us(now_us),
            ack_seq: 0,
            snd_nxt: 0,
            newly_acked: 1000,
            ecn_echo: false,
            rtt,
            int,
        }
    }

    #[test]
    fn starts_at_line_rate_unlimited() {
        let t = Timely::new(cfg(), LINE);
        assert_eq!(t.state().rate, LINE);
        assert!(!t.state().is_window_limited());
    }

    #[test]
    fn low_rtt_keeps_increasing() {
        let mut t = Timely::new(cfg(), LINE);
        // Pull the rate down first so increases are observable.
        t.on_loss(SimTime::ZERO);
        let start = t.state().rate;
        let int = IntHeader::new();
        for i in 0..10 {
            t.on_ack(&ack_with_rtt(i, Duration::from_us(12), &int));
        }
        assert!(t.state().rate > start);
        assert!(t.increase_events >= 9);
    }

    #[test]
    fn rtt_above_t_high_decreases() {
        let mut t = Timely::new(cfg(), LINE);
        let int = IntHeader::new();
        t.on_ack(&ack_with_rtt(0, Duration::from_us(100), &int));
        t.on_ack(&ack_with_rtt(1, Duration::from_us(800), &int));
        assert!(t.state().rate < LINE);
        assert!(t.decrease_events >= 1);
    }

    #[test]
    fn rising_rtt_gradient_decreases_rate() {
        let mut t = Timely::new(cfg(), LINE);
        let int = IntHeader::new();
        // Steadily rising RTT between t_low and t_high.
        for (i, rtt_us) in [60u64, 80, 110, 150, 200, 260].iter().enumerate() {
            t.on_ack(&ack_with_rtt(i as u64, Duration::from_us(*rtt_us), &int));
        }
        assert!(t.state().rate < LINE);
        assert!(t.normalized_gradient() > 0.0);
    }

    #[test]
    fn falling_rtt_gradient_increases_rate_with_hai() {
        let mut t = Timely::new(cfg(), LINE);
        t.on_loss(SimTime::ZERO);
        let start = t.state().rate;
        let int = IntHeader::new();
        // Falling RTTs in the stable band: gradient <= 0 → AI then HAI.
        let mut rtt = 400u64;
        for i in 0..12 {
            t.on_ack(&ack_with_rtt(i, Duration::from_us(rtt), &int));
            rtt = rtt.saturating_sub(20).max(60);
        }
        assert!(t.state().rate > start);
        assert!(t.neg_gradient_rounds >= 5 || t.state().rate == LINE);
    }

    #[test]
    fn loss_halves_rate() {
        let mut t = Timely::new(cfg(), LINE);
        t.on_loss(SimTime::ZERO);
        assert_eq!(t.state().rate, LINE.mul_f64(0.5));
    }

    #[test]
    fn rate_stays_bounded_under_noisy_rtts() {
        let mut t = Timely::new(cfg(), LINE);
        let int = IntHeader::new();
        let mut x: u64 = 0xdeadbeef;
        for i in 0..2000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let rtt_us = 10 + (x >> 40) % 900;
            t.on_ack(&ack_with_rtt(i, Duration::from_us(rtt_us), &int));
            let r = t.state().rate;
            assert!(r >= cfg().min_rate && r <= LINE);
            assert!(t.normalized_gradient().is_finite());
        }
    }

    #[test]
    fn delta_scales_with_line_rate() {
        assert_eq!(cfg().delta, Bandwidth::from_mbps(25));
        assert_eq!(
            TimelyConfig::recommended(Bandwidth::from_gbps(100), BASE_RTT).delta,
            Bandwidth::from_mbps(100)
        );
    }
}
