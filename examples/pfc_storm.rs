//! Reproduces the spirit of the paper's production incidents (§1 Case-1,
//! Figure 1): with DCQCN and repeated large incasts, PFC pauses spread
//! beyond the congested ToR and suppress innocent senders; with HPCC the
//! same workload triggers no pauses at all.
//!
//! ```bash
//! cargo run --release --example pfc_storm
//! ```

use hpcc::core::presets::{fattree_fb_hadoop, pfc_storm};
use hpcc::prelude::*;

fn main() {
    let duration = Duration::from_ms(20);

    // DCQCN on the testbed PoD with a small shared buffer and 16-to-1
    // incast bursts on top of 30% background load.
    let res = pfc_storm(0.3, 16, duration, 7).run();
    let pfc = res.pfc_summary();
    let spread = res.pfc_burst_spread(Duration::from_us(200));
    println!("== DCQCN + incast bursts on the PoD (small buffer) ==");
    println!("  pause frames sent      : {}", pfc.pause_frames);
    println!(
        "  ports ever paused      : {}/{}",
        pfc.paused_ports, pfc.total_ports
    );
    println!(
        "  pause time fraction    : {:.3}%",
        pfc.pause_time_fraction() * 100.0
    );
    if !spread.is_empty() {
        let max_spread = spread.iter().max().unwrap();
        let avg: f64 = spread.iter().sum::<usize>() as f64 / spread.len() as f64;
        println!(
            "  pause bursts           : {} (avg {:.1} switches per burst, worst {})",
            spread.len(),
            avg,
            max_spread
        );
    }
    println!(
        "  flows finished         : {}/{}",
        res.out.flows.len(),
        res.flow_count
    );

    // The same kind of workload with HPCC on a small Clos fabric: no pauses.
    let res = fattree_fb_hadoop(
        "HPCC",
        CcSpec::by_label("HPCC"),
        FatTreeParams::small(),
        0.3,
        duration,
        true,
        FlowControlMode::Lossless,
        7,
    )
    .run();
    let pfc = res.pfc_summary();
    println!("\n== HPCC + incast bursts on a small Clos fabric ==");
    println!("  pause frames sent      : {}", pfc.pause_frames);
    println!(
        "  pause time fraction    : {:.3}%",
        pfc.pause_time_fraction() * 100.0
    );
    println!(
        "  99p switch queue       : {:.1} KB",
        res.queue_percentile(99.0).unwrap_or(0) as f64 / 1000.0
    );
    println!(
        "  flows finished         : {}/{}",
        res.out.flows.len(),
        res.flow_count
    );

    println!(
        "\nBy limiting inflight bytes and reacting to INT before queues build,\n\
         HPCC avoids the PFC pauses that spread congestion to innocent senders."
    );
}
