//! The Appendix A fluid model.
//!
//! Appendix A.2 of the paper proves that the synchronous update
//!
//! ```text
//! Y(n)   = A · R(n)
//! R_j(n+1) = R_j(n) / max_i { Y_i(n) · A_ij / C_i }
//! ```
//!
//! (every path divides its rate by the utilization of its most-loaded
//! resource) reaches a *feasible* allocation after one step, never decreases
//! afterwards, and converges to a Pareto-optimal allocation (the paper's
//! induction removes each saturated resource *and its load* from the
//! network; on the unreduced recursion the remaining paths approach their
//! bottleneck geometrically, so we verify Pareto optimality within a small
//! tolerance rather than after exactly `I` steps). Appendix A.3 adds a small
//! additive increase `a`
//! and derives the equilibrium rate `R = a / (1 - U_target / U)` on the most
//! congested bottleneck.
//!
//! This module implements that fluid model so the packet-level results can
//! be cross-checked against the theory (and so the lemma itself is covered
//! by tests and properties).

/// A fluid network: `I` resources with capacities, `J` paths described by an
/// incidence matrix.
#[derive(Clone, Debug)]
pub struct FluidNetwork {
    /// `incidence[i][j] == true` iff resource `i` is used by path `j`.
    pub incidence: Vec<Vec<bool>>,
    /// Capacity of each resource.
    pub capacities: Vec<f64>,
}

impl FluidNetwork {
    /// Build a network from an incidence matrix and capacities.
    ///
    /// # Panics
    /// Panics if dimensions are inconsistent, a capacity is not positive, or
    /// some path uses no resource (the lemma requires every column of `A` to
    /// be non-zero).
    pub fn new(incidence: Vec<Vec<bool>>, capacities: Vec<f64>) -> Self {
        assert_eq!(incidence.len(), capacities.len(), "one row per resource");
        assert!(!incidence.is_empty(), "need at least one resource");
        let paths = incidence[0].len();
        assert!(paths > 0, "need at least one path");
        for row in &incidence {
            assert_eq!(row.len(), paths, "ragged incidence matrix");
        }
        for &c in &capacities {
            assert!(c > 0.0, "capacities must be positive");
        }
        for j in 0..paths {
            assert!(
                incidence.iter().any(|row| row[j]),
                "path {j} uses no resource"
            );
        }
        FluidNetwork {
            incidence,
            capacities,
        }
    }

    /// Number of resources `I`.
    pub fn resources(&self) -> usize {
        self.capacities.len()
    }

    /// Number of paths `J`.
    pub fn paths(&self) -> usize {
        self.incidence[0].len()
    }

    /// Load `Y = A · R` on every resource.
    pub fn loads(&self, rates: &[f64]) -> Vec<f64> {
        self.incidence
            .iter()
            .map(|row| {
                row.iter()
                    .zip(rates)
                    .filter(|(used, _)| **used)
                    .map(|(_, r)| *r)
                    .sum()
            })
            .collect()
    }

    /// True if no resource is loaded above its capacity (within `eps`).
    pub fn is_feasible(&self, rates: &[f64], eps: f64) -> bool {
        self.loads(rates)
            .iter()
            .zip(&self.capacities)
            .all(|(y, c)| *y <= c * (1.0 + eps))
    }

    /// One synchronous update of the Appendix A.2 recursion (equations 5–6).
    pub fn step(&self, rates: &[f64]) -> Vec<f64> {
        let loads = self.loads(rates);
        rates
            .iter()
            .enumerate()
            .map(|(j, r)| {
                let k = self
                    .incidence
                    .iter()
                    .enumerate()
                    .filter(|(_, row)| row[j])
                    .map(|(i, _)| loads[i] / self.capacities[i])
                    .fold(f64::MIN, f64::max);
                r / k.max(f64::MIN_POSITIVE)
            })
            .collect()
    }

    /// Iterate the recursion from `initial` until the rates stop changing
    /// (relative change below `tol`) or `max_steps` is reached. Returns the
    /// trajectory including the initial point.
    pub fn converge(&self, initial: &[f64], tol: f64, max_steps: usize) -> Vec<Vec<f64>> {
        let mut trajectory = vec![initial.to_vec()];
        for _ in 0..max_steps {
            let next = self.step(trajectory.last().unwrap());
            let prev = trajectory.last().unwrap();
            let changed = next
                .iter()
                .zip(prev)
                .any(|(a, b)| (a - b).abs() > tol * b.abs().max(1e-12));
            trajectory.push(next);
            if !changed {
                break;
            }
        }
        trajectory
    }

    /// True if the allocation is Pareto optimal: every path crosses at least
    /// one resource that is (nearly) saturated.
    pub fn is_pareto_optimal(&self, rates: &[f64], eps: f64) -> bool {
        let loads = self.loads(rates);
        (0..self.paths()).all(|j| {
            self.incidence
                .iter()
                .enumerate()
                .filter(|(_, row)| row[j])
                .any(|(i, _)| loads[i] >= self.capacities[i] * (1.0 - eps))
        })
    }
}

/// Appendix A.3: the equilibrium rate of a source whose most congested
/// bottleneck sits at utilization `u`, with target utilization `u_target`
/// and additive increase `a` per RTT: `R = a / (1 - u_target / u)`.
pub fn ai_equilibrium_rate(a: f64, u_target: f64, u: f64) -> f64 {
    assert!(u > u_target, "equilibrium requires U > U_target");
    a / (1.0 - u_target / u)
}

/// Appendix A.3 (inverted): the equilibrium utilization of the most
/// congested bottleneck when its flows settle at rate `r`:
/// `U = U_target / (1 - a / r)`.
pub fn ai_equilibrium_utilization(a: f64, u_target: f64, r: f64) -> f64 {
    assert!(r > a, "rate must exceed the additive increase");
    u_target / (1.0 - a / r)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic two-resource line network: path 0 uses both resources,
    /// paths 1 and 2 use one each.
    fn line_network() -> FluidNetwork {
        FluidNetwork::new(
            vec![vec![true, true, false], vec![true, false, true]],
            vec![10.0, 20.0],
        )
    }

    #[test]
    fn one_step_reaches_feasibility() {
        let net = line_network();
        let start = vec![50.0, 50.0, 50.0];
        assert!(!net.is_feasible(&start, 1e-9));
        let after = net.step(&start);
        assert!(
            net.is_feasible(&after, 1e-9),
            "lemma (i): feasible after one step"
        );
    }

    #[test]
    fn rates_never_decrease_after_the_first_step() {
        let net = line_network();
        let trajectory = net.converge(&[50.0, 50.0, 50.0], 1e-12, 20);
        for w in trajectory[1..].windows(2) {
            for (a, b) in w[0].iter().zip(&w[1]) {
                assert!(b + 1e-9 >= *a, "lemma (ii): rates are non-decreasing");
            }
        }
    }

    #[test]
    fn converges_to_pareto_optimum() {
        let net = line_network();
        // The most-utilized resource saturates after exactly one step
        // (lemma): resource 0 carries 10 = C_0 from then on.
        let after_one = net.step(&[50.0, 50.0, 50.0]);
        assert!((net.loads(&after_one)[0] - 10.0).abs() < 1e-9);
        let trajectory = net.converge(&[50.0, 50.0, 50.0], 1e-9, 100);
        let last = trajectory.last().unwrap();
        assert!(
            net.is_pareto_optimal(last, 1e-6),
            "lemma (iii): Pareto optimal"
        );
        // The expected fixed point: resource 0 saturates first (10 split
        // between paths 0 and 1), then path 2 grabs the slack on resource 1.
        assert!((last[0] - 5.0).abs() < 1e-6);
        assert!((last[1] - 5.0).abs() < 1e-6);
        assert!((last[2] - 15.0).abs() < 1e-4);
    }

    #[test]
    fn random_networks_satisfy_the_lemma() {
        // Deterministic pseudo-random sweep over many topologies.
        let mut x: u64 = 0xfeed_beef;
        let mut rand = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as f64 / (1u64 << 31) as f64
        };
        for case in 0..50 {
            let resources = 1 + (rand() * 5.0) as usize;
            let paths = 1 + (rand() * 6.0) as usize;
            let mut incidence = vec![vec![false; paths]; resources];
            for (j, _) in (0..paths).enumerate() {
                // Every path uses at least one resource.
                let forced = (rand() * resources as f64) as usize % resources;
                incidence[forced][j] = true;
                for row in incidence.iter_mut() {
                    if rand() < 0.3 {
                        row[j] = true;
                    }
                }
            }
            let capacities: Vec<f64> = (0..resources).map(|_| 1.0 + rand() * 99.0).collect();
            let net = FluidNetwork::new(incidence, capacities);
            let initial: Vec<f64> = (0..paths).map(|_| 0.1 + rand() * 200.0).collect();
            let after_one = net.step(&initial);
            assert!(
                net.is_feasible(&after_one, 1e-9),
                "case {case}: feasible after one step"
            );
            let trajectory = net.converge(&initial, 1e-10, 200);
            let last = trajectory.last().unwrap();
            assert!(
                net.is_pareto_optimal(last, 1e-3),
                "case {case}: Pareto optimal"
            );
            assert!(net.is_feasible(last, 1e-6), "case {case}: final feasible");
        }
    }

    #[test]
    fn ai_equilibrium_matches_the_papers_example() {
        // §A.3: with U_target = 95%, the utilization stays below 100% as long
        // as a < 5% of the flow rate.
        let a = 0.04;
        let r = 1.0;
        let u = ai_equilibrium_utilization(a, 0.95, r);
        assert!(u < 1.0, "u = {u}");
        let a_too_big = 0.06;
        let u2 = ai_equilibrium_utilization(a_too_big, 0.95, r);
        assert!(u2 > 1.0, "u2 = {u2}");
        // Round-trip between the two forms.
        let r_back = ai_equilibrium_rate(a, 0.95, u);
        assert!((r_back - r).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "path 1 uses no resource")]
    fn rejects_paths_without_resources() {
        FluidNetwork::new(vec![vec![true, false]], vec![10.0]);
    }
}
