//! Algorithm selection and construction.
//!
//! [`CcAlgorithm`] is the configuration-level description of "which CC runs
//! on the hosts" used by experiment configs, and [`build_cc`] turns it into a
//! boxed [`CongestionControl`] instance for one flow.

use crate::api::CongestionControl;
use crate::dcqcn::{Dcqcn, DcqcnConfig};
use crate::dctcp::{Dctcp, DctcpConfig};
use crate::hpcc::{Hpcc, HpccConfig};
use crate::timely::{Timely, TimelyConfig};
use crate::windowed::Windowed;
use hpcc_types::{Bandwidth, Duration};

/// Which congestion-control scheme the hosts run (the six schemes compared in
/// Figure 11, plus the HPCC ablations).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CcAlgorithm {
    /// HPCC (Algorithm 1) with the given parameters.
    Hpcc(HpccConfig),
    /// DCQCN, rate-based (no inflight limit).
    Dcqcn(DcqcnConfig),
    /// DCQCN wrapped with a static BDP window ("DCQCN+win").
    DcqcnWin(DcqcnConfig),
    /// TIMELY, rate-based (no inflight limit).
    Timely(TimelyConfig),
    /// TIMELY wrapped with a static BDP window ("TIMELY+win").
    TimelyWin(TimelyConfig),
    /// DCTCP (window-based, slow start removed).
    Dctcp(DctcpConfig),
}

impl CcAlgorithm {
    /// Default HPCC configuration (η = 95%, maxStage = 5, W_AI = 80 B).
    pub fn hpcc_default() -> Self {
        CcAlgorithm::Hpcc(HpccConfig::default())
    }

    /// Default DCQCN configuration for the given line rate.
    pub fn dcqcn_default(line_rate: Bandwidth) -> Self {
        CcAlgorithm::Dcqcn(DcqcnConfig::vendor_default(line_rate))
    }

    /// Short display name used in figures and reports.
    pub fn label(&self) -> &'static str {
        match self {
            CcAlgorithm::Hpcc(cfg) => match (cfg.mode, cfg.use_rx_rate) {
                (crate::hpcc::HpccReactionMode::Combined, false) => "HPCC",
                (crate::hpcc::HpccReactionMode::Combined, true) => "HPCC-rxRate",
                (crate::hpcc::HpccReactionMode::PerAck, _) => "HPCC-perACK",
                (crate::hpcc::HpccReactionMode::PerRtt, _) => "HPCC-perRTT",
            },
            CcAlgorithm::Dcqcn(_) => "DCQCN",
            CcAlgorithm::DcqcnWin(_) => "DCQCN+win",
            CcAlgorithm::Timely(_) => "TIMELY",
            CcAlgorithm::TimelyWin(_) => "TIMELY+win",
            CcAlgorithm::Dctcp(_) => "DCTCP",
        }
    }

    /// True if the scheme needs INT telemetry stamped by switches.
    pub fn needs_int(&self) -> bool {
        matches!(self, CcAlgorithm::Hpcc(_))
    }

    /// True if the scheme relies on receiver-generated CNPs (DCQCN family).
    pub fn needs_cnp(&self) -> bool {
        matches!(self, CcAlgorithm::Dcqcn(_) | CcAlgorithm::DcqcnWin(_))
    }

    /// True if the scheme relies on ECN marking at switches.
    pub fn needs_ecn(&self) -> bool {
        matches!(
            self,
            CcAlgorithm::Dcqcn(_) | CcAlgorithm::DcqcnWin(_) | CcAlgorithm::Dctcp(_)
        )
    }
}

/// Build one congestion-control instance for a flow on a NIC with
/// `line_rate`, in a network with base RTT `base_rtt` and MTU payload `mtu`.
pub fn build_cc(
    alg: &CcAlgorithm,
    line_rate: Bandwidth,
    base_rtt: Duration,
    mtu: u64,
) -> Box<dyn CongestionControl> {
    match alg {
        CcAlgorithm::Hpcc(cfg) => Box::new(Hpcc::new(*cfg, line_rate, base_rtt, mtu)),
        CcAlgorithm::Dcqcn(cfg) => Box::new(Dcqcn::new(*cfg, line_rate)),
        CcAlgorithm::DcqcnWin(cfg) => Box::new(Windowed::new(
            Dcqcn::new(*cfg, line_rate),
            line_rate,
            base_rtt,
            mtu,
            "DCQCN+win",
        )),
        CcAlgorithm::Timely(cfg) => Box::new(Timely::new(*cfg, line_rate)),
        CcAlgorithm::TimelyWin(cfg) => Box::new(Windowed::new(
            Timely::new(*cfg, line_rate),
            line_rate,
            base_rtt,
            mtu,
            "TIMELY+win",
        )),
        CcAlgorithm::Dctcp(cfg) => Box::new(Dctcp::new(*cfg, line_rate, base_rtt)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hpcc::HpccReactionMode;

    const LINE: Bandwidth = Bandwidth::from_gbps(100);
    const RTT: Duration = Duration::from_us(13);

    #[test]
    fn build_produces_expected_names_and_windows() {
        let cases: Vec<(CcAlgorithm, &str, bool)> = vec![
            (CcAlgorithm::hpcc_default(), "HPCC", true),
            (CcAlgorithm::dcqcn_default(LINE), "DCQCN", false),
            (
                CcAlgorithm::DcqcnWin(DcqcnConfig::vendor_default(LINE)),
                "DCQCN+win",
                true,
            ),
            (
                CcAlgorithm::Timely(TimelyConfig::recommended(LINE, RTT)),
                "TIMELY",
                false,
            ),
            (
                CcAlgorithm::TimelyWin(TimelyConfig::recommended(LINE, RTT)),
                "TIMELY+win",
                true,
            ),
            (CcAlgorithm::Dctcp(DctcpConfig::default()), "DCTCP", true),
        ];
        for (alg, name, windowed) in cases {
            let cc = build_cc(&alg, LINE, RTT, 1000);
            assert_eq!(cc.name(), name);
            assert_eq!(alg.label(), name);
            assert_eq!(cc.state().is_window_limited(), windowed, "{name}");
            assert_eq!(cc.state().rate, LINE, "{name} must start at line rate");
        }
    }

    #[test]
    fn feature_requirements() {
        assert!(CcAlgorithm::hpcc_default().needs_int());
        assert!(!CcAlgorithm::hpcc_default().needs_ecn());
        assert!(CcAlgorithm::dcqcn_default(LINE).needs_cnp());
        assert!(CcAlgorithm::dcqcn_default(LINE).needs_ecn());
        assert!(CcAlgorithm::Dctcp(DctcpConfig::default()).needs_ecn());
        assert!(!CcAlgorithm::Timely(TimelyConfig::recommended(LINE, RTT)).needs_ecn());
    }

    #[test]
    fn hpcc_variant_labels() {
        let per_ack = CcAlgorithm::Hpcc(HpccConfig {
            mode: HpccReactionMode::PerAck,
            ..HpccConfig::default()
        });
        assert_eq!(per_ack.label(), "HPCC-perACK");
        let rx = CcAlgorithm::Hpcc(HpccConfig {
            use_rx_rate: true,
            ..HpccConfig::default()
        });
        assert_eq!(rx.label(), "HPCC-rxRate");
    }
}
