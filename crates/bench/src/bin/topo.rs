//! Topology corpus inspector/converter.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p hpcc-bench --bin topo -- info <file>
//! cargo run --release -p hpcc-bench --bin topo -- convert <file> [out]
//! ```
//!
//! `info` parses a corpus file (edge list or the GraphML subset — the format
//! is sniffed, see `hpcc_topology::corpus`) and prints a structural summary:
//! node/link counts, rack grouping, aggregate host bandwidth and the
//! suggested base RTT. `convert` parses the same way and emits the canonical
//! edge list — the fixed-point format whose round-trip the tests pin — to
//! stdout or to `out`. Link indices printed by `info` are exactly the
//! indices `FaultSpec` link faults reference.

use hpcc_topology::corpus;

fn die(msg: impl AsRef<str>) -> ! {
    eprintln!("topo: {}", msg.as_ref());
    std::process::exit(2);
}

fn usage() -> ! {
    eprintln!("usage: topo info <file> | topo convert <file> [out]");
    std::process::exit(2);
}

fn load(path: &str) -> corpus::CorpusTopology {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(format!("cannot read {path}: {e}")));
    corpus::parse(&text).unwrap_or_else(|e| die(format!("{path}: {e}")))
}

fn info(path: &str) {
    let parsed = load(path);
    let topo = parsed.build();
    println!("{path}:");
    println!(
        "  nodes   {} ({} hosts, {} switches)",
        topo.node_count(),
        topo.hosts().len(),
        topo.switches().len()
    );
    let racks = topo
        .host_rack_ids()
        .iter()
        .max()
        .map(|m| m + 1)
        .unwrap_or(0);
    println!("  racks   {racks}");
    println!("  links   {}", topo.links().len());
    println!("  host bw {} total", topo.total_host_bandwidth());
    println!(
        "  base rtt {} (suggested, 1106 B wire MTU)",
        topo.suggested_base_rtt(1106)
    );
    for (i, &(a, b, bw, delay)) in parsed.links().iter().enumerate() {
        println!(
            "  link {i:>3}  {} -- {}  {bw}  {delay}",
            parsed.nodes()[a].0,
            parsed.nodes()[b].0
        );
    }
}

fn convert(path: &str, out: Option<&str>) {
    let canonical = load(path).to_edge_list();
    match out {
        Some(out_path) => {
            std::fs::write(out_path, &canonical)
                .unwrap_or_else(|e| die(format!("cannot write {out_path}: {e}")));
            eprintln!("wrote {out_path}");
        }
        None => print!("{canonical}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("info") => match args.get(2) {
            Some(path) if args.len() == 3 => info(path),
            _ => usage(),
        },
        Some("convert") => match args.get(2) {
            Some(path) if args.len() <= 4 => convert(path, args.get(3).map(String::as_str)),
            _ => usage(),
        },
        _ => usage(),
    }
}
