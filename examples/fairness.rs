//! Fairness micro-benchmark (the paper's Figure 9g/9h): four flows join a
//! 100 Gbps bottleneck one after another; with HPCC they converge to equal
//! shares, which we quantify with Jain's fairness index over time.
//!
//! ```bash
//! cargo run --release --example fairness
//! ```

use hpcc::core::presets::fairness;
use hpcc::prelude::*;
use hpcc::stats::series::{goodput_series_gbps, jain_fairness_index};

fn main() {
    let host_bw = Bandwidth::from_gbps(100);
    let join_interval = Duration::from_ms(1);
    let duration = Duration::from_ms(6);

    for label in ["HPCC", "DCQCN"] {
        let exp = fairness(CcSpec::by_label(label), host_bw, join_interval, duration).build();
        let bin = exp.config().flow_throughput_bin.unwrap();
        let res = exp.run();

        println!("== {label}: four flows join every {join_interval} ==");
        // Build per-flow Gbps series aligned on the same bins.
        let series: Vec<(u64, Vec<f64>)> = (1..=4u64)
            .map(|id| {
                let bins = res
                    .out
                    .flow_goodput
                    .get(&FlowId(id))
                    .cloned()
                    .unwrap_or_default();
                (id, goodput_series_gbps(&bins, bin))
            })
            .collect();
        let max_len = series.iter().map(|(_, s)| s.len()).max().unwrap_or(0);

        // Print the share of each flow and the fairness index at a few
        // sample points (after each join).
        println!(
            "{:>10} {:>8} {:>8} {:>8} {:>8} {:>9}",
            "time (ms)", "flow1", "flow2", "flow3", "flow4", "Jain"
        );
        for k in 1..=5u64 {
            let t = join_interval.mul_f64(k as f64 + 0.5);
            let idx = ((t.as_ps() / bin.as_ps()) as usize).min(max_len.saturating_sub(1));
            let rates: Vec<f64> = series
                .iter()
                .map(|(_, s)| s.get(idx).copied().unwrap_or(0.0))
                .collect();
            let active: Vec<f64> = rates.iter().copied().filter(|r| *r > 0.5).collect();
            let jain = jain_fairness_index(&active);
            println!(
                "{:>10.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>9.3}",
                t.as_us_f64() / 1000.0,
                rates[0],
                rates[1],
                rates[2],
                rates[3],
                jain
            );
        }
        println!();
    }

    println!(
        "HPCC separates efficiency (multiplicative adjustment towards eta) from\n\
         fairness (the small additive-increase term W_AI), so late-joining flows\n\
         converge to an equal share of the bottleneck."
    );
}
