//! Parallel-engine integration tests at the spec layer: the digest-identity
//! sweep (every committed preset scenario, threads 1–4, bit-identical to the
//! sequential packet engine), the typed `BuildError` for a zero-thread
//! backend, and the wire round-trip of the `{"parallel_packet": ...}` form.
//!
//! The identity sweep is the spec-level counterpart of the engine-level
//! tests in `hpcc_sim::parallel`: it goes through `ScenarioSpec::try_build`
//! and the `Backend` boundary exactly as a manifest would, so it also pins
//! the `BackendSpec -> BackendKind -> ParallelPacketBackend` plumbing.

use hpcc_core::campaign::digest_output;
use hpcc_core::presets::{fault_smoke, fig11_campaign, priority_mix};
use hpcc_core::{BackendSpec, CcSpec, ScenarioSpec, TopologyChoice, WorkloadSpec};
use hpcc_topology::FatTreeParams;
use hpcc_types::{Bandwidth, Duration};

/// Every committed preset scenario family, at a short horizon so the sweep
/// stays a fast test: the Figure 11 scheme set (six CC schemes with incast),
/// the fault smoke (link flap + straggler), and the priority mix (legacy,
/// strict-priority and DWRR queueing).
fn preset_specs() -> Vec<ScenarioSpec> {
    let params = FatTreeParams::small();
    let end = Duration::from_ms(1);
    let mut specs = Vec::new();
    specs.extend(fig11_campaign(params, 0.3, end, true, 42).specs().to_vec());
    specs.extend(fault_smoke(params, 0.3, end, 42).specs().to_vec());
    specs.extend(
        priority_mix(CcSpec::by_label("HPCC"), params, 0.3, end, 100_000, 3, 42)
            .specs()
            .to_vec(),
    );
    specs
}

#[test]
fn parallel_backend_is_bit_identical_to_packet_on_every_preset() {
    for spec in preset_specs() {
        let sequential = spec.try_build().expect(&spec.name).run();
        let reference = digest_output(&sequential.out);
        for threads in 1u32..=4 {
            let parallel = spec
                .clone()
                .with_backend(BackendSpec::ParallelPacket { threads })
                .try_build()
                .unwrap_or_else(|e| panic!("{} @ {threads} threads: {e}", spec.name))
                .run();
            assert_eq!(
                digest_output(&parallel.out),
                reference,
                "{} @ {threads} threads diverged from the sequential engine",
                spec.name
            );
        }
    }
}

#[test]
fn zero_threads_is_a_typed_build_error() {
    let spec = ScenarioSpec::new(
        "zero-threads",
        TopologyChoice::star(4, Bandwidth::from_gbps(25)),
        CcSpec::by_label("HPCC"),
        Duration::from_ms(1),
    )
    .with_workload(WorkloadSpec::poisson(hpcc_core::CdfSpec::WebSearch, 0.3))
    .with_backend(BackendSpec::ParallelPacket { threads: 0 });
    let err = match spec.try_build() {
        Err(e) => e,
        Ok(_) => panic!("threads: 0 must fail"),
    };
    let msg = format!("{err}");
    assert!(msg.contains("parallel_packet"), "{msg}");
    assert!(msg.contains("\"threads\": 0"), "{msg}");
    // One thread is valid (it collapses to the sequential engine).
    assert!(spec
        .with_backend(BackendSpec::ParallelPacket { threads: 1 })
        .try_build()
        .is_ok());
}

fn base_spec() -> ScenarioSpec {
    ScenarioSpec::new(
        "parallel-wire",
        TopologyChoice::star(4, Bandwidth::from_gbps(25)),
        CcSpec::by_label("HPCC"),
        Duration::from_ms(1),
    )
    .with_seed(7)
    .with_workload(WorkloadSpec::poisson(hpcc_core::CdfSpec::WebSearch, 0.3))
}

#[test]
fn parallel_backend_round_trips_through_the_wire_object_form() {
    let spec = base_spec().with_backend(BackendSpec::ParallelPacket { threads: 4 });
    let text = spec.to_json_string();
    assert!(
        text.contains("\"backend\":{\"parallel_packet\":{\"threads\":4}}"),
        "{text}"
    );
    let parsed = ScenarioSpec::from_json_str(&text).expect("parallel JSON parses");
    assert_eq!(parsed.backend, BackendSpec::ParallelPacket { threads: 4 });
    assert_eq!(parsed, spec);
}

#[test]
fn bare_parallel_packet_label_points_at_the_object_form() {
    let text = base_spec().to_json_string().replace(
        "\"name\":\"parallel-wire\"",
        "\"name\":\"x\",\"backend\":\"parallel_packet\"",
    );
    let err = ScenarioSpec::from_json_str(&text).expect_err("bare label must fail");
    let msg = format!("{err}");
    assert!(msg.contains("thread count"), "{msg}");
    assert!(
        msg.contains("{\"parallel_packet\": {\"threads\": N}}"),
        "{msg}"
    );
}

#[test]
fn conflicting_backend_object_keys_are_rejected() {
    let text = base_spec().to_json_string().replace(
        "\"name\":\"parallel-wire\"",
        "\"name\":\"x\",\"backend\":{\"parallel_packet\":{\"threads\":2},\"fluid\":{}}",
    );
    let err = ScenarioSpec::from_json_str(&text).expect_err("conflicting keys must fail");
    assert!(
        format!("{err}").contains("conflicting backend key"),
        "{err}"
    );
}
