//! Static validation of committed manifests and corpus files.
//!
//! Campaign manifests (`manifests/*.json`) and corpus topologies
//! (`corpus/*`) are inputs CI executes — a malformed or stale file fails a
//! smoke job minutes into a build. This analyzer front-loads those checks
//! without running the engine:
//!
//! * every manifest must **parse** as a campaign (a JSON array of
//!   `ScenarioSpec` objects),
//! * every scenario must pass [`hpcc_core::ScenarioSpec::try_build`]-level checking
//!   (topology instantiable, CDFs valid, fault references in range,
//!   backend combinations legal) — corpus paths resolve against the repo
//!   root, exactly as the CI smokes run them,
//! * the committed text must be a **canonical re-encoding fixed point**:
//!   `Campaign::from_json_str` → `to_json_string` + newline must reproduce
//!   the file byte-identically, so a hand-edited (or stale-format) manifest
//!   can never disagree with what `--dump-manifest` would emit,
//! * every corpus file must parse, build into a routed topology with at
//!   least two hosts, and **round-trip** through the canonical edge-list
//!   encoding (`parse(to_edge_list(t)) == t`, semantic identity — the
//!   committed files keep their human comments).

use crate::Finding;
use hpcc_core::scenario::TopologyChoice;
use hpcc_core::Campaign;
use hpcc_topology::corpus;
use std::path::Path;

/// Rule id for manifest findings.
pub const MANIFEST: &str = "manifest";
/// Rule id for corpus findings.
pub const CORPUS: &str = "corpus";

/// Validate one campaign manifest. `path` labels findings; `root` anchors
/// repo-relative corpus/trace paths inside the manifest.
pub fn check_manifest(path: &str, text: &str, root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    let campaign = match Campaign::from_json_str(text) {
        Ok(c) => c,
        Err(e) => {
            findings.push(Finding::new(
                path,
                1,
                MANIFEST,
                format!("manifest does not parse as a campaign: {e}"),
            ));
            return findings;
        }
    };
    // Canonical fixed point: committed bytes == re-encoding + "\n".
    let canonical = campaign.to_json_string() + "\n";
    if text != canonical {
        findings.push(Finding::new(
            path,
            1,
            MANIFEST,
            "manifest is not a canonical re-encoding fixed point; regenerate \
             it (parse + to_json_string + trailing newline) so the committed \
             bytes match what the campaign runner would emit",
        ));
    }
    for (i, spec) in campaign.scenarios().iter().enumerate() {
        let mut spec = spec.clone();
        anchor_paths(&mut spec, root);
        if let Err(e) = spec.try_build() {
            findings.push(Finding::new(
                path,
                1,
                MANIFEST,
                format!("scenario {i} ({:?}) fails to build: {e}", spec.name),
            ));
        }
    }
    findings
}

/// Rewrite the repo-relative file references of a spec (corpus topologies,
/// trace-file workloads) to absolute paths under `root`, mirroring how CI
/// runs the smokes from the repository root.
fn anchor_paths(spec: &mut hpcc_core::ScenarioSpec, root: &Path) {
    if let TopologyChoice::Corpus { path, .. } = &mut spec.topology {
        if !Path::new(path.as_str()).is_absolute() {
            *path = root.join(path.as_str()).to_string_lossy().into_owned();
        }
    }
    for w in &mut spec.workloads {
        if let hpcc_core::scenario::WorkloadSpec::Trace {
            trace: hpcc_workload::trace::TraceSpec::Path(path),
            ..
        } = w
        {
            if !Path::new(path.as_str()).is_absolute() {
                *path = root.join(path.as_str()).to_string_lossy().into_owned();
            }
        }
    }
}

/// Validate one corpus topology file.
pub fn check_corpus(path: &str, text: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let parsed = match corpus::parse(text) {
        Ok(p) => p,
        Err(e) => {
            findings.push(Finding::new(
                path,
                1,
                CORPUS,
                format!("corpus file does not parse: {e}"),
            ));
            return findings;
        }
    };
    if parsed.host_count() < 2 {
        findings.push(Finding::new(
            path,
            1,
            CORPUS,
            format!(
                "corpus topology declares {} host(s); campaigns need at least 2",
                parsed.host_count()
            ),
        ));
    }
    // Semantic round-trip through the canonical edge list.
    match corpus::parse_edge_list(&parsed.to_edge_list()) {
        Ok(back) if back == parsed => {}
        Ok(_) => findings.push(Finding::new(
            path,
            1,
            CORPUS,
            "corpus file does not survive the canonical edge-list round-trip \
             (parse → to_edge_list → parse changed the graph)",
        )),
        Err(e) => findings.push(Finding::new(
            path,
            1,
            CORPUS,
            format!("canonical re-encoding of this corpus file fails to parse: {e}"),
        )),
    }
    // The graph must route: every host pair reachable.
    let topo = parsed.build();
    let hosts = topo.hosts().to_vec();
    for &src in &hosts {
        for &dst in &hosts {
            if src != dst && topo.path_hops(src, dst).is_none() {
                findings.push(Finding::new(
                    path,
                    1,
                    CORPUS,
                    format!(
                        "host {src:?} cannot reach host {dst:?}; the corpus graph is partitioned"
                    ),
                ));
                return findings;
            }
        }
    }
    findings
}
