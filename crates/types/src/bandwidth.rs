//! Link and flow bandwidths.
//!
//! Bandwidth is stored in bits per second as a `u64`. Helper methods convert
//! between bytes and transmission time at that bandwidth using exact integer
//! arithmetic in picoseconds where possible.

use crate::time::Duration;
use std::fmt;
use std::ops::{Add, Sub};

/// A bandwidth (link capacity or flow rate) in bits per second.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// Zero bandwidth (used for a fully throttled flow).
    pub const ZERO: Bandwidth = Bandwidth(0);

    /// Construct from bits per second.
    #[inline]
    pub const fn from_bps(bps: u64) -> Self {
        Bandwidth(bps)
    }
    /// Construct from megabits per second.
    #[inline]
    pub const fn from_mbps(mbps: u64) -> Self {
        Bandwidth(mbps * 1_000_000)
    }
    /// Construct from gigabits per second.
    #[inline]
    pub const fn from_gbps(gbps: u64) -> Self {
        Bandwidth(gbps * 1_000_000_000)
    }
    /// Construct from a floating-point number of gigabits per second.
    #[inline]
    pub fn from_gbps_f64(gbps: f64) -> Self {
        Bandwidth((gbps * 1e9).round().max(0.0) as u64)
    }

    /// Bits per second.
    #[inline]
    pub const fn as_bps(self) -> u64 {
        self.0
    }
    /// Gigabits per second as a float.
    #[inline]
    pub fn as_gbps_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// Bytes per second as a float.
    #[inline]
    pub fn bytes_per_sec(self) -> f64 {
        self.0 as f64 / 8.0
    }
    /// True if the bandwidth is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Time to serialize `bytes` bytes at this bandwidth.
    ///
    /// Returns [`Duration::MAX`] for zero bandwidth so that callers can treat
    /// a throttled flow as "never ready" rather than dividing by zero.
    #[inline]
    pub fn tx_time(self, bytes: u64) -> Duration {
        if self.0 == 0 {
            return Duration::MAX;
        }
        // ps = bytes * 8 bits * 1e12 / bps. Use u128 to avoid overflow.
        let ps = (bytes as u128 * 8 * 1_000_000_000_000) / self.0 as u128;
        Duration::from_ps(ps.min(u64::MAX as u128) as u64)
    }

    /// Number of bytes transferred in `d` at this bandwidth (truncating).
    #[inline]
    pub fn bytes_in(self, d: Duration) -> u64 {
        let bits = self.0 as u128 * d.as_ps() as u128 / 1_000_000_000_000;
        (bits / 8) as u64
    }

    /// Bandwidth-delay product in bytes for base RTT `t`.
    #[inline]
    pub fn bdp_bytes(self, t: Duration) -> u64 {
        self.bytes_in(t)
    }

    /// Scale by a float factor (e.g. multiplicative decrease), rounding.
    #[inline]
    pub fn mul_f64(self, x: f64) -> Bandwidth {
        Bandwidth((self.0 as f64 * x).round().max(0.0) as u64)
    }

    /// The smaller of two bandwidths.
    #[inline]
    pub fn min(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.min(other.0))
    }
    /// The larger of two bandwidths.
    #[inline]
    pub fn max(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.max(other.0))
    }
    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.saturating_sub(other.0))
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    #[inline]
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}
impl Sub for Bandwidth {
    type Output = Bandwidth;
    #[inline]
    fn sub(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 - rhs.0)
    }
}

impl fmt::Debug for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}Gbps", self.as_gbps_f64())
    }
}
impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.1}Gbps", self.as_gbps_f64())
        } else {
            write!(f, "{:.1}Mbps", self.0 as f64 / 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_times_are_exact() {
        // 1 byte at 100 Gbps = 80 ps; a 1000 B packet = 80 ns.
        let b = Bandwidth::from_gbps(100);
        assert_eq!(b.tx_time(1).as_ps(), 80);
        assert_eq!(b.tx_time(1000).as_ns(), 80);
        // 25 Gbps: 1 byte = 320 ps.
        assert_eq!(Bandwidth::from_gbps(25).tx_time(1).as_ps(), 320);
        // 400 Gbps: 1 byte = 20 ps.
        assert_eq!(Bandwidth::from_gbps(400).tx_time(1).as_ps(), 20);
    }

    #[test]
    fn zero_bandwidth_never_ready() {
        assert_eq!(Bandwidth::ZERO.tx_time(100), Duration::MAX);
    }

    #[test]
    fn bdp_matches_paper_setup() {
        // 100 Gbps x 13 us base RTT ~= 162.5 KB, the simulation BDP in §5.1.
        let bdp = Bandwidth::from_gbps(100).bdp_bytes(Duration::from_us(13));
        assert_eq!(bdp, 162_500);
        // 25 Gbps x 9 us (testbed T) = 28.125 KB.
        assert_eq!(
            Bandwidth::from_gbps(25).bdp_bytes(Duration::from_us(9)),
            28_125
        );
    }

    #[test]
    fn bytes_in_inverts_tx_time() {
        let b = Bandwidth::from_gbps(40);
        let d = b.tx_time(9000);
        assert_eq!(b.bytes_in(d), 9000);
    }

    #[test]
    fn scaling_and_bounds() {
        let b = Bandwidth::from_gbps(100);
        assert_eq!(b.mul_f64(0.5), Bandwidth::from_gbps(50));
        assert_eq!(b.min(Bandwidth::from_gbps(25)), Bandwidth::from_gbps(25));
        assert_eq!(b.max(Bandwidth::from_gbps(25)), b);
        assert_eq!(Bandwidth::from_gbps(25).saturating_sub(b), Bandwidth::ZERO);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", Bandwidth::from_gbps(100)), "100.0Gbps");
        assert_eq!(format!("{}", Bandwidth::from_mbps(40)), "40.0Mbps");
    }
}
