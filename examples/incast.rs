//! Incast micro-benchmark (the paper's §5.4 / Figure 13 scenario): 16
//! senders burst into one receiver at the same instant. The example prints
//! the bottleneck queue over time and the total goodput for HPCC and for the
//! two ablated reaction strategies (per-ACK only, per-RTT only).
//!
//! ```bash
//! cargo run --release --example incast
//! ```

use hpcc::core::presets::{incast_on_star, star_egress_to};
use hpcc::prelude::*;
use hpcc::stats::series::goodput_series_gbps;

fn main() {
    let host_bw = Bandwidth::from_gbps(100);
    let duration = Duration::from_ms(1);
    let n_senders = 16;
    let flow_size = 500_000;

    println!("== {n_senders}-to-1 incast, {flow_size} B per sender ==\n");

    for (label, mode) in [
        ("HPCC", HpccReactionMode::Combined),
        ("per-ACK", HpccReactionMode::PerAck),
        ("per-RTT", HpccReactionMode::PerRtt),
    ] {
        let cc = CcSpec::Hpcc(HpccConfig {
            mode,
            ..HpccConfig::default()
        });
        let exp = incast_on_star(label, cc, n_senders, flow_size, host_bw, duration).build();
        let trace_port = star_egress_to(exp.topology(), exp.flows()[0].dst);
        let bin = exp.config().flow_throughput_bin.unwrap();
        let res = exp.run();

        // Peak queue and time to drain it.
        let trace = &res.out.port_traces[&trace_port];
        let peak = trace.iter().map(|(_, q)| *q).max().unwrap_or(0);
        let drained_at = trace
            .iter()
            .skip_while(|(_, q)| *q < peak / 2)
            .find(|(_, q)| *q < 10_000)
            .map(|(t, _)| t.as_us_f64());

        // Aggregate goodput over time.
        let mut total_bins = vec![0u64; 0];
        for series in res.out.flow_goodput.values() {
            if series.len() > total_bins.len() {
                total_bins.resize(series.len(), 0);
            }
            for (i, b) in series.iter().enumerate() {
                total_bins[i] += b;
            }
        }
        let gbps = goodput_series_gbps(&total_bins, bin);
        let peak_goodput = gbps.iter().cloned().fold(0.0, f64::max);
        let mean_goodput = gbps.iter().sum::<f64>() / gbps.len().max(1) as f64;

        println!(
            "{label:>8}: peak queue {:>7.1} KB, drained below 10 KB at {} us, \
             peak goodput {:>6.1} Gbps, mean goodput {:>6.1} Gbps, flows finished {}/{}",
            peak as f64 / 1000.0,
            drained_at.map_or("never".to_string(), |t| format!("{t:.0}")),
            peak_goodput,
            mean_goodput,
            res.out.flows.len(),
            n_senders,
        );
    }

    println!(
        "\nThe combined strategy reacts on every ACK against a per-RTT reference\n\
         window: it drains the initial burst as fast as per-ACK without the\n\
         throughput collapse, and much faster than the per-RTT-only strategy."
    );
}
