//! The discrete-event engine: the event vocabulary and a deterministic
//! time-ordered queue.
//!
//! # Ordering guarantee
//!
//! Events pop in `(time, insertion-seq)` order: earlier times first, and
//! events scheduled at the same instant in the order they were pushed. A run
//! is therefore fully determined by the topology, configuration and flow
//! list — the guarantee every campaign digest rests on.
//!
//! # The indexed event wheel
//!
//! [`EventQueue`] is a bucketed calendar queue, not a binary heap. Simulated
//! time (integer picoseconds) is divided into fixed-width buckets of
//! `2^BUCKET_SHIFT` ps; a ring of `NUM_BUCKETS` buckets covers a sliding
//! window of ~134 µs ahead of the cursor, which is enough for every hot
//! event class (serialization at 100 Gbps ≈ 88 ns/packet, propagation ≈ 1 µs,
//! queue sampling 1–5 µs, DCQCN timers ≈ 55 µs). Events beyond the window —
//! RTO checks and other far-future timers — go to a `BinaryHeap` overflow
//! level and migrate into the ring as the cursor reaches their bucket.
//!
//! Pushing appends to the target bucket in O(1). When the cursor first
//! enters a bucket, the bucket is sorted once by `(time, seq)`, which
//! restores the exact tie-break order of the original heap implementation;
//! events scheduled *into the current bucket* while it drains are placed by
//! binary search so the invariant holds mid-bucket too.

use hpcc_types::{FlowId, NodeId, Packet, PortId, SimTime};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Log2 of the bucket width in picoseconds: 2^17 ps ≈ 131 ns per bucket.
const BUCKET_SHIFT: u32 = 17;

/// Number of buckets in the ring; the window covers
/// `NUM_BUCKETS << BUCKET_SHIFT` ≈ 134 µs of simulated time.
const NUM_BUCKETS: usize = 1024;

/// Everything that can happen in the simulation.
///
/// `PacketArrive` carries its packet boxed: the box comes from (and returns
/// to) the `Effects` packet pool, so the hot path moves an 8-byte pointer
/// through the queue instead of a ~500-byte inline `Packet`, without paying
/// an allocation per hop.
#[derive(Clone, Debug)]
pub enum Event {
    /// A flow (by index into the simulator's flow table) becomes active at
    /// its source host.
    FlowStart(usize),
    /// A port finished serializing the packet it was transmitting and may
    /// start the next one.
    PortReady {
        /// Node owning the port.
        node: NodeId,
        /// Port index within the node.
        port: PortId,
    },
    /// A packet fully arrived at a node (serialization + propagation done).
    PacketArrive {
        /// Receiving node.
        node: NodeId,
        /// Ingress port on the receiving node.
        port: PortId,
        /// The packet itself (pooled; see `Effects::alloc_packet`).
        packet: Box<Packet>,
    },
    /// A host asked to be woken up (pacing gap elapsed).
    HostWake {
        /// The host to wake.
        node: NodeId,
    },
    /// A congestion-control timer (DCQCN rate-increase / alpha timers).
    CcTimer {
        /// Host owning the flow.
        node: NodeId,
        /// Dense index of the flow in the host's sender table.
        slot: u32,
    },
    /// Retransmission-timeout check for a flow (lossy modes).
    RtoCheck {
        /// Host owning the flow.
        node: NodeId,
        /// Dense index of the flow in the host's sender table.
        slot: u32,
    },
    /// Periodic queue sampling for statistics.
    Sample,
    /// Periodic sampling of explicitly traced ports.
    TraceSample,
    /// The next batch of fault-timeline transitions (link down/up, degraded
    /// windows, straggler windows) is due. Scheduled only when the run has a
    /// fault config, so fault-free runs never see it.
    FaultTransition,
}

/// Side effects produced while a node handles one event.
///
/// Node methods never touch the event queue or other nodes directly; they
/// append to this buffer and the simulator applies it, which keeps borrows
/// local and the control flow explicit.
///
/// The simulator owns **one** `Effects` arena for the whole run and clears
/// it between events instead of dropping it, so the per-event buffers reach
/// a high-water mark early and the steady-state event loop performs no
/// allocation. The arena also carries the packet pool: boxes that carried an
/// arrived packet are recycled into the next transmitted one.
#[derive(Default, Debug)]
pub(crate) struct Effects {
    /// Events to schedule.
    pub events: Vec<(SimTime, Event)>,
    /// Ports that may now be able to start a transmission.
    pub kicks: Vec<(NodeId, PortId)>,
    /// Flows that completed (recorded by the sending host).
    pub completions: Vec<crate::output::FlowRecord>,
    /// PFC pause frames emitted (for propagation analysis).
    pub pfc_events: Vec<crate::output::PfcEvent>,
    /// Newly acknowledged bytes per flow (for goodput time series).
    pub goodput: Vec<(FlowId, u64)>,
    /// Data packets handed to receivers during this event.
    pub packets_delivered: u64,
    /// Data packets transmitted by hosts during this event.
    pub packets_sent: u64,
    /// Recycled packet boxes, reused by [`Effects::alloc_packet`]. The boxes
    /// themselves are the resource being pooled (they move into `Event`s and
    /// back), so `Vec<Box<_>>` is the point, not an accident.
    #[allow(clippy::vec_box)]
    pool: Vec<Box<Packet>>,
}

/// Upper bound on pooled packet boxes (safety valve, never reached by a
/// well-behaved run: the pool holds at most one box per consumed packet that
/// has not yet been re-emitted).
const PACKET_POOL_CAP: usize = 8192;

impl Effects {
    /// Reset the per-event buffers, keeping their capacity and the packet
    /// pool (clear, don't drop).
    pub fn clear(&mut self) {
        self.events.clear();
        self.kicks.clear();
        self.completions.clear();
        self.pfc_events.clear();
        self.goodput.clear();
        self.packets_delivered = 0;
        self.packets_sent = 0;
    }

    /// Box a packet, reusing a pooled box when one is available.
    pub fn alloc_packet(&mut self, pkt: Packet) -> Box<Packet> {
        match self.pool.pop() {
            Some(mut b) => {
                *b = pkt;
                b
            }
            None => Box::new(pkt),
        }
    }

    /// Return a consumed packet's box to the pool.
    pub fn recycle(&mut self, b: Box<Packet>) {
        if self.pool.len() < PACKET_POOL_CAP {
            self.pool.push(b);
        }
    }
}

/// An event scheduled at a given time with a tie-breaking sequence number.
#[derive(Clone, Debug)]
struct Scheduled {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap and we want the earliest
        // (time, seq) first (used by the overflow level).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic time-ordered event queue: an indexed event wheel with a
/// binary-heap overflow level for far-future timers.
#[derive(Debug)]
pub struct EventQueue {
    /// Ring of FIFO buckets; bucket for absolute slot `s` is `s % NUM_BUCKETS`.
    buckets: Vec<VecDeque<Scheduled>>,
    /// Absolute slot index (`time >> BUCKET_SHIFT`) the cursor is on.
    cursor: u64,
    /// Whether the bucket at `cursor` has been overflow-merged and sorted.
    current_prepared: bool,
    /// Events currently stored in the ring.
    wheel_len: usize,
    /// Far-future events (beyond the ring window at push time).
    overflow: BinaryHeap<Scheduled>,
    next_seq: u64,
    scheduled: u64,
    peak_len: usize,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue {
            buckets: (0..NUM_BUCKETS).map(|_| VecDeque::new()).collect(),
            cursor: 0,
            current_prepared: false,
            wheel_len: 0,
            overflow: BinaryHeap::new(),
            next_seq: 0,
            scheduled: 0,
            peak_len: 0,
        }
    }
}

#[inline]
fn slot_of(time: SimTime) -> u64 {
    time.as_ps() >> BUCKET_SHIFT
}

impl EventQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        let s = Scheduled { time, seq, event };
        let slot = slot_of(time);
        if slot >= self.cursor + NUM_BUCKETS as u64 {
            self.overflow.push(s);
        } else {
            // Anything at or before the cursor's bucket (the simulator never
            // schedules into the past; this clamps defensively) lands in the
            // current bucket.
            let slot = slot.max(self.cursor);
            let bucket = &mut self.buckets[(slot % NUM_BUCKETS as u64) as usize];
            if slot == self.cursor && self.current_prepared {
                // The current bucket is sorted and partially drained: keep it
                // sorted. The new event has the largest seq, so it lands after
                // every pending event with the same time.
                let pos = bucket.partition_point(|x| (x.time, x.seq) < (s.time, s.seq));
                bucket.insert(pos, s);
            } else {
                bucket.push_back(s);
            }
            self.wheel_len += 1;
        }
        self.peak_len = self.peak_len.max(self.len());
    }

    /// Merge overflow events that belong to the cursor's bucket, then sort
    /// the bucket by `(time, seq)`.
    fn prepare_current(&mut self) {
        while let Some(top) = self.overflow.peek() {
            if slot_of(top.time) <= self.cursor {
                let s = self.overflow.pop().unwrap();
                self.buckets[(self.cursor % NUM_BUCKETS as u64) as usize].push_back(s);
                self.wheel_len += 1;
            } else {
                break;
            }
        }
        let bucket = &mut self.buckets[(self.cursor % NUM_BUCKETS as u64) as usize];
        bucket
            .make_contiguous()
            .sort_unstable_by_key(|s| (s.time, s.seq));
        self.current_prepared = true;
    }

    /// Move the cursor to the next slot that has work. Caller guarantees the
    /// queue is non-empty and the current bucket is drained.
    fn advance(&mut self) {
        self.current_prepared = false;
        let overflow_slot = self.overflow.peek().map(|s| slot_of(s.time));
        if self.wheel_len == 0 {
            // Jump straight to the earliest overflow bucket.
            self.cursor = overflow_slot.expect("advance called on an empty queue");
            return;
        }
        for d in 1..=NUM_BUCKETS as u64 {
            let slot = self.cursor + d;
            if let Some(os) = overflow_slot {
                if os <= slot {
                    self.cursor = os;
                    return;
                }
            }
            if !self.buckets[(slot % NUM_BUCKETS as u64) as usize].is_empty() {
                self.cursor = slot;
                return;
            }
        }
        unreachable!("ring events always live within NUM_BUCKETS of the cursor");
    }

    /// Pop the earliest event, if any.
    ///
    /// The queue does not count popped events as "processed": an event popped
    /// after the simulation horizon is discarded unhandled, so the simulator
    /// owns the processed counter.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        loop {
            if self.wheel_len == 0 && self.overflow.is_empty() {
                return None;
            }
            if !self.current_prepared {
                self.prepare_current();
            }
            let bucket = &mut self.buckets[(self.cursor % NUM_BUCKETS as u64) as usize];
            if let Some(s) = bucket.pop_front() {
                self.wheel_len -= 1;
                return Some((s.time, s.event));
            }
            self.advance();
        }
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        let mut best = self.overflow.peek().map(|s| s.time);
        if self.wheel_len > 0 {
            // The first non-empty bucket from the cursor holds the earliest
            // ring event (bucket slot is a monotone function of time).
            for d in 0..NUM_BUCKETS as u64 {
                let bucket = &self.buckets[((self.cursor + d) % NUM_BUCKETS as u64) as usize];
                if let Some(m) = bucket.iter().map(|s| s.time).min() {
                    best = Some(best.map_or(m, |b| b.min(m)));
                    break;
                }
            }
        }
        best
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events scheduled so far (for engine statistics).
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Largest number of simultaneously pending events seen so far.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_us(5), Event::Sample);
        q.push(SimTime::from_us(1), Event::HostWake { node: NodeId(0) });
        q.push(SimTime::from_us(3), Event::Sample);
        let t1 = q.pop().unwrap().0;
        let t2 = q.pop().unwrap().0;
        let t3 = q.pop().unwrap().0;
        assert!(t1 < t2 && t2 < t3);
        assert!(q.pop().is_none());
        assert_eq!(q.total_scheduled(), 3);
        assert_eq!(q.peak_len(), 3);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_us(7);
        q.push(t, Event::FlowStart(0));
        q.push(t, Event::FlowStart(1));
        q.push(t, Event::FlowStart(2));
        let mut order = Vec::new();
        while let Some((_, ev)) = q.pop() {
            if let Event::FlowStart(i) = ev {
                order.push(i);
            }
        }
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn ties_break_by_insertion_order_across_bucket_boundaries() {
        // Same-time ties exactly on a bucket boundary, plus ties in the
        // bucket before and after it, interleaved in push order.
        let mut q = EventQueue::new();
        let boundary = SimTime::from_ps(5 << BUCKET_SHIFT);
        let before = SimTime::from_ps((5 << BUCKET_SHIFT) - 1);
        let after = SimTime::from_ps((5 << BUCKET_SHIFT) + 1);
        q.push(boundary, Event::FlowStart(10));
        q.push(after, Event::FlowStart(20));
        q.push(before, Event::FlowStart(0));
        q.push(boundary, Event::FlowStart(11));
        q.push(after, Event::FlowStart(21));
        q.push(before, Event::FlowStart(1));
        q.push(boundary, Event::FlowStart(12));
        let mut order = Vec::new();
        while let Some((_, ev)) = q.pop() {
            if let Event::FlowStart(i) = ev {
                order.push(i);
            }
        }
        assert_eq!(order, vec![0, 1, 10, 11, 12, 20, 21]);
    }

    #[test]
    fn ties_break_by_insertion_order_across_ring_rollover() {
        // Events one full ring rotation apart share a ring index but must
        // still pop strictly by (time, seq); the far event starts out in the
        // overflow level and migrates when the cursor wraps to its slot.
        let mut q = EventQueue::new();
        let window = (NUM_BUCKETS as u64) << BUCKET_SHIFT;
        let near = SimTime::from_ps(3 << BUCKET_SHIFT);
        let far = SimTime::from_ps((3 << BUCKET_SHIFT) + 2 * window);
        q.push(far, Event::FlowStart(2));
        q.push(near, Event::FlowStart(0));
        q.push(far, Event::FlowStart(3));
        q.push(near, Event::FlowStart(1));
        let mut popped = Vec::new();
        while let Some((t, ev)) = q.pop() {
            if let Event::FlowStart(i) = ev {
                popped.push((t, i));
            }
        }
        assert_eq!(popped, vec![(near, 0), (near, 1), (far, 2), (far, 3)]);
    }

    #[test]
    fn push_into_the_draining_bucket_keeps_order() {
        // While the current bucket drains, schedule new events at the same
        // instant and slightly later within the same bucket: they must pop
        // after the already-pending same-time events (larger seq) and in
        // time order otherwise — exactly like the reference heap.
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(400);
        q.push(t, Event::FlowStart(0));
        q.push(t, Event::FlowStart(1));
        assert!(matches!(q.pop(), Some((_, Event::FlowStart(0)))));
        // The bucket is now prepared and half-drained; push same-time and
        // later-in-bucket events.
        q.push(t, Event::FlowStart(2));
        let later = t + hpcc_types::Duration::from_ns(1);
        q.push(later, Event::FlowStart(3));
        let mut order = Vec::new();
        while let Some((_, ev)) = q.pop() {
            if let Event::FlowStart(i) = ev {
                order.push(i);
            }
        }
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn peak_len_counts_ring_and_overflow_at_rollover() {
        // Regression: `peak_len` must report the max of the *combined*
        // occupancy (bucket ring + far-future overflow heap), sampled while
        // events straddle a bucket-boundary rollover — not just the ring
        // level. Five near events sit in the ring; five far events (beyond
        // the ring window) sit in the overflow heap at the same instant.
        let mut q = EventQueue::new();
        let window = (NUM_BUCKETS as u64) << BUCKET_SHIFT;
        let boundary = SimTime::from_ps(7 << BUCKET_SHIFT);
        for i in 0..5u64 {
            // In-ring: straddle the bucket boundary itself.
            q.push(SimTime::from_ps((7 << BUCKET_SHIFT) + i - 2), Event::Sample);
            // Overflow level: one full rotation later, same ring slot.
            q.push(
                SimTime::from_ps((7 << BUCKET_SHIFT) + i - 2 + 2 * window),
                Event::Sample,
            );
        }
        assert_eq!(q.len(), 10);
        assert_eq!(q.peak_len(), 10, "peak must count ring + overflow");
        // Drain through the rollover: far events migrate overflow -> ring as
        // the cursor wraps; the peak must not grow (no double counting) and
        // must survive the drain.
        let mut times = Vec::new();
        while let Some((t, _)) = q.pop() {
            times.push(t);
        }
        assert_eq!(times.len(), 10);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(times.contains(&boundary));
        assert_eq!(q.peak_len(), 10, "peak is a high-water mark across levels");
    }

    #[test]
    fn far_future_events_pass_through_the_overflow_level() {
        let mut q = EventQueue::new();
        // A sparse far-future timeline: every event is beyond the ring
        // window of its predecessor (RTO-like spacing).
        let times: Vec<SimTime> = (1..=5).map(|k| SimTime::from_ms(4 * k)).collect();
        for (i, &t) in times.iter().enumerate().rev() {
            q.push(t, Event::FlowStart(i));
        }
        assert_eq!(q.len(), 5);
        let mut popped = Vec::new();
        while let Some((t, ev)) = q.pop() {
            if let Event::FlowStart(i) = ev {
                popped.push((t, i));
            }
        }
        assert_eq!(
            popped,
            times
                .iter()
                .copied()
                .enumerate()
                .map(|(i, t)| (t, i))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::from_us(2), Event::Sample);
        assert_eq!(q.peek_time(), Some(SimTime::from_us(2)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.peek_time().is_none());
        // Peek also sees overflow-level events.
        q.push(SimTime::from_ms(500), Event::Sample);
        assert_eq!(q.peek_time(), Some(SimTime::from_ms(500)));
    }

    #[test]
    fn packet_pool_recycles_boxes() {
        let mut eff = Effects::default();
        let p = Packet::data(FlowId(1), NodeId(0), NodeId(1), 0, 1000, SimTime::ZERO);
        let b1 = eff.alloc_packet(p);
        let addr = std::ptr::addr_of!(*b1) as usize;
        eff.recycle(b1);
        let b2 = eff.alloc_packet(Packet::pfc(hpcc_types::Priority::DATA, true));
        assert_eq!(std::ptr::addr_of!(*b2) as usize, addr, "box was reused");
        assert!(matches!(
            b2.kind,
            hpcc_types::PacketKind::Pfc { pause: true, .. }
        ));
    }

    #[test]
    fn wheel_matches_reference_heap_on_a_randomized_schedule() {
        // Drive the wheel and a plain (time, seq)-ordered reference with an
        // identical randomized push/pop script covering in-window pushes,
        // overflow pushes, ties and pushes into the draining bucket.
        use hpcc_types::rng::SplitMix64;
        let mut rng = SplitMix64::new(0xE1E7);
        let mut q = EventQueue::new();
        let mut reference: Vec<(u64, u64)> = Vec::new(); // (time ps, seq)
        let mut seq = 0u64;
        let mut now = 0u64;
        for _ in 0..20_000 {
            if rng.next_below(3) > 0 || reference.is_empty() {
                // Push at now + jitter: mostly near, sometimes far future.
                let jitter = if rng.next_below(50) == 0 {
                    rng.next_below(1 << 30)
                } else {
                    rng.next_below(1 << 20)
                };
                let t = now + jitter;
                q.push(SimTime::from_ps(t), Event::FlowStart(seq as usize));
                reference.push((t, seq));
                seq += 1;
            } else {
                let (t, ev) = q.pop().unwrap();
                let min = *reference.iter().min().unwrap();
                reference.retain(|&x| x != min);
                assert_eq!(t.as_ps(), min.0);
                assert!(matches!(ev, Event::FlowStart(i) if i as u64 == min.1));
                now = min.0;
            }
        }
        while let Some((t, _)) = q.pop() {
            let min = *reference.iter().min().unwrap();
            reference.retain(|&x| x != min);
            assert_eq!(t.as_ps(), min.0);
        }
        assert!(reference.is_empty());
    }
}
