//! Golden-digest and end-to-end tests of the pluggable switch scheduling
//! subsystem.
//!
//! Three guarantees are pinned here:
//!
//! 1. **The default path is frozen.** Every preset family, built with
//!    `QueueingSpec` omitted *or* with the explicit legacy default, must
//!    reproduce the digests recorded immediately before the scheduling
//!    refactor landed (the values below were produced by the pre-refactor
//!    tree on the CI platform). The fig11 scheme set has its own golden
//!    table in `golden_digests.rs`; this one covers the remaining preset
//!    families (micro benches, testbed, locality, skew).
//! 2. **Multi-class scheduling is observable.** A PIAS sweep demonstrably
//!    changes the per-priority FCT percentiles versus the single-queue
//!    baseline, and reports per-class queue statistics.
//! 3. **Distribution is transparent.** A campaign sweeping `QueueingSpec`
//!    across shards merges bit-identically to `run_serial()`.

use hpcc_core::campaign::digest_output;
use hpcc_core::presets::{
    elephant_mice, fairness, fattree_fb_hadoop, fattree_locality_sweep, fattree_pias_sweep,
    fattree_skew_sweep, incast_on_star, long_short, pfc_storm, priority_mix, testbed_websearch,
    testbed_with_cdf, two_to_one,
};
use hpcc_core::{Campaign, CampaignReport, CcSpec, CdfSpec, QueueingSpec, ScenarioSpec, ShardPlan};
use hpcc_sim::FlowControlMode;
use hpcc_topology::FatTreeParams;
use hpcc_types::{Bandwidth, Duration};

/// The preset scenarios frozen by the pre-refactor tree, with their serial
/// `digest_output` values (recorded on x86_64 Linux, like
/// `golden_digests.rs`).
fn golden_presets() -> Vec<(ScenarioSpec, u64)> {
    let bw100 = Bandwidth::from_gbps(100);
    vec![
        (
            two_to_one(false, bw100, 1_000_000, Duration::from_ms(1)),
            7891864775278243175,
        ),
        (
            incast_on_star(
                "incast HPCC",
                CcSpec::by_label("HPCC"),
                8,
                200_000,
                bw100,
                Duration::from_ms(1),
            ),
            16254292367837583560,
        ),
        (
            long_short(CcSpec::by_label("HPCC"), bw100, Duration::from_ms(1)),
            12458247397712540602,
        ),
        (
            elephant_mice(
                CcSpec::by_label("DCQCN"),
                bw100,
                Duration::from_us(100),
                Duration::from_ms(1),
            ),
            18214183521361663693,
        ),
        (
            fairness(
                CcSpec::by_label("HPCC"),
                bw100,
                Duration::from_us(200),
                Duration::from_ms(1),
            ),
            14581969723833105154,
        ),
        (
            testbed_websearch(
                "testbed DCQCN",
                CcSpec::by_label("DCQCN"),
                0.3,
                Duration::from_ms(2),
                Some(8),
                None,
                FlowControlMode::Lossless,
                7,
            ),
            12433740699300978148,
        ),
        (
            fattree_fb_hadoop(
                "fattree HPCC",
                CcSpec::by_label("HPCC"),
                FatTreeParams::small(),
                0.3,
                Duration::from_ms(2),
                true,
                FlowControlMode::LossyIrn,
                9,
            ),
            9151915604825334824,
        ),
        (
            pfc_storm(0.3, 8, Duration::from_ms(2), 5),
            10565191147067536164,
        ),
        (
            testbed_with_cdf(
                "custom cdf",
                CcSpec::by_label("TIMELY"),
                CdfSpec::Fixed(50_000),
                0.2,
                Duration::from_ms(2),
                3,
            ),
            7882741137419735256,
        ),
        (
            fattree_locality_sweep(
                CcSpec::by_label("HPCC"),
                FatTreeParams::small(),
                0.3,
                Duration::from_ms(1),
                &[0.0],
                4,
            )
            .scenarios()[0]
                .clone(),
            3749215988329344226,
        ),
        (
            fattree_locality_sweep(
                CcSpec::by_label("HPCC"),
                FatTreeParams::small(),
                0.3,
                Duration::from_ms(1),
                &[0.8],
                4,
            )
            .scenarios()[0]
                .clone(),
            9652483951972977125,
        ),
        (
            fattree_skew_sweep(
                CcSpec::by_label("DCQCN"),
                FatTreeParams::small(),
                0.3,
                Duration::from_ms(1),
                &[1.2],
                4,
            )
            .scenarios()[0]
                .clone(),
            5941025657014320503,
        ),
    ]
}

#[test]
fn presets_with_queueing_omitted_or_explicit_legacy_match_pre_refactor_digests() {
    for (spec, golden) in golden_presets() {
        assert!(
            spec.queueing.is_none(),
            "{}: preset must default",
            spec.name
        );
        let omitted = digest_output(&spec.run().out);
        assert_eq!(
            omitted, golden,
            "{}: QueueingSpec omitted no longer reproduces the pre-refactor run",
            spec.name
        );
        let explicit = spec.clone().with_queueing(QueueingSpec::legacy());
        let explicit_digest = digest_output(&explicit.run().out);
        assert_eq!(
            explicit_digest, golden,
            "{}: the explicit legacy QueueingSpec diverges from omission",
            spec.name
        );
    }
}

/// The scheduler-comparison campaign used by the shard-merge and
/// PIAS-observability tests: small Clos fabric, short horizon, one scenario
/// per queueing discipline.
fn queueing_sweep() -> Campaign {
    let mut campaign = fattree_pias_sweep(
        CcSpec::by_label("HPCC"),
        FatTreeParams::small(),
        0.5,
        Duration::from_ms(2),
        &[vec![100_000], vec![30_000, 1_000_000]],
        11,
    );
    for s in priority_mix(
        CcSpec::by_label("HPCC"),
        FatTreeParams::small(),
        0.5,
        Duration::from_ms(2),
        30_000,
        3,
        11,
    )
    .scenarios()
    {
        campaign.push(s.clone());
    }
    campaign
}

#[test]
fn pias_sweep_changes_per_priority_fct_percentiles() {
    let campaign = fattree_pias_sweep(
        CcSpec::by_label("HPCC"),
        FatTreeParams::small(),
        0.5,
        Duration::from_ms(2),
        &[vec![100_000]],
        11,
    );
    let report = campaign.run_serial();
    let legacy = &report.results[0];
    let pias = &report.results[1];
    assert_eq!(legacy.name, "queueing SP-1 (legacy)");
    assert_eq!(pias.name, "queueing PIAS-2");
    // Both tag mice vs elephants, so both report per-priority breakdowns
    // (code 0 = normal/elephants, code 1 = latency-sensitive/mice).
    for r in [legacy, pias] {
        let codes: Vec<u8> = r.prio_slowdown.iter().map(|(c, _)| *c).collect();
        assert_eq!(codes, vec![0, 1], "{}: {codes:?}", r.name);
        assert!(r.prio_slowdown.iter().all(|(_, s)| s.is_some()));
    }
    // The runs themselves diverge...
    assert_ne!(legacy.digest, pias.digest, "PIAS must change the run");
    // ...and so do the per-priority FCT percentile summaries: demoting
    // elephants reshapes at least one group's distribution.
    assert_ne!(
        legacy.prio_slowdown, pias.prio_slowdown,
        "PIAS left every per-priority percentile untouched"
    );
    // Per-class queue stats exist exactly on the multi-class run.
    assert!(legacy.class_queue_p99.is_empty());
    assert_eq!(pias.class_queue_p99.len(), 2);
    assert!(pias.class_queue_p99.iter().any(|p| p.is_some()));
}

#[test]
fn queueing_sweep_merges_bit_identical_across_two_shards() {
    let campaign = queueing_sweep();
    assert!(campaign.len() >= 5);
    // The sweep survives the manifest round trip (queueing key included).
    let back = Campaign::from_json_str(&campaign.to_json_string()).unwrap();
    assert_eq!(back, campaign);
    let serial = campaign.run_serial();
    let mut streams = Vec::new();
    for shard in 0..2 {
        let mut buf = Vec::new();
        campaign
            .run_shard_streaming(ShardPlan::new(shard, 2), &mut buf)
            .unwrap();
        streams.push(String::from_utf8(buf).unwrap());
    }
    let merged = hpcc_core::wire::merge_shard_streams(
        streams.iter().map(String::as_str),
        Some(campaign.len()),
    )
    .unwrap();
    assert_eq!(merged.digests(), serial.digests());
    assert_eq!(
        merged.to_json_string(),
        serial.to_json_string(),
        "canonical JSON must be bit-identical serial vs 2-shard merge"
    );
    // The multi-class fields crossed the wire: a PIAS scenario decoded from
    // JSONL still carries its per-priority and per-class summaries.
    let pias = merged
        .results
        .iter()
        .find(|r| r.name == "queueing PIAS-2")
        .unwrap();
    assert_eq!(pias.prio_slowdown.len(), 2);
    assert_eq!(pias.class_queue_p99.len(), 2);
    // And decoding the canonical report re-encodes byte-identically.
    let decoded = CampaignReport::from_json_str(&serial.to_json_string()).unwrap();
    assert_eq!(decoded.to_json_string(), serial.to_json_string());
}

#[test]
fn schedulers_diverge_from_legacy_but_stay_deterministic() {
    let sweep = queueing_sweep();
    let report = sweep.run_serial();
    // Within each family ("queueing ...", "prio-mix ...") the legacy
    // baseline injects the bit-identical flow list as the multi-class
    // scenarios, so a digest difference is the scheduler's doing.
    for family in ["queueing", "prio-mix"] {
        let in_family: Vec<_> = report
            .results
            .iter()
            .filter(|r| r.name.starts_with(family))
            .collect();
        assert!(in_family.len() >= 2, "{family}: sweep too small");
        let legacy = in_family
            .iter()
            .find(|r| r.name.contains("legacy"))
            .unwrap_or_else(|| panic!("{family}: no legacy baseline"));
        for r in &in_family {
            if r.name.contains("legacy") {
                continue;
            }
            assert_ne!(
                r.digest, legacy.digest,
                "{}: multi-class scheduling changed nothing",
                r.name
            );
        }
    }
    // ...and everything is deterministic (digest equality on a re-run).
    let again = sweep.run_serial();
    assert_eq!(report.digests(), again.digests());
}
