//! # hpcc-workload
//!
//! Traffic generation for the HPCC reproduction:
//!
//! * [`FlowSizeCdf`] — empirical flow-size distributions with interpolated
//!   sampling, including the two public traces the paper uses
//!   ([`websearch`], [`fb_hadoop`], §5.1),
//! * [`LoadGenerator`] — Poisson flow arrivals between random host pairs at a
//!   target fraction of the network's host capacity (the "30% / 50% average
//!   link load" of the evaluation),
//! * [`incast`] / [`IncastGenerator`] — the N-to-1 bursts used throughout
//!   §5.2–§5.4 (e.g. 60-to-1 of 500 KB in Figure 11).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdf;
pub mod generator;
pub mod incast;

pub use cdf::{fb_hadoop, fixed_size, websearch, FlowSizeCdf};
pub use generator::LoadGenerator;
pub use incast::{incast, IncastGenerator};
