//! One runner per table / figure of the paper. Every runner returns the
//! rendered report as a `String`; the `fig*` binaries print it.
//!
//! The default scales are laptop-sized; see EXPERIMENTS.md for the mapping to the
//! paper's full-scale settings.

use hpcc_cc::{HpccConfig, HpccReactionMode};
use hpcc_core::presets::{
    elephant_mice, fairness, fattree_fb_hadoop, fig11_campaign, incast_on_star, long_short,
    pfc_storm, star_egress_to, testbed_websearch, two_to_one,
};
use hpcc_core::report;
use hpcc_core::{CcSpec, ExperimentResults};
use hpcc_sim::{fluid::FluidNetwork, EcnConfig, FlowControlMode};
use hpcc_stats::fct::{fb_hadoop_buckets, websearch_buckets};
use hpcc_stats::pfc::suppressed_bandwidth_fraction;
use hpcc_stats::series::{goodput_series_gbps, jain_fairness_index, steady_state_gbps};
use hpcc_topology::FatTreeParams;
use hpcc_types::{Bandwidth, Duration, FlowId, IntHeader, IntHopRecord, NodeId, Packet, SimTime};
use std::fmt::Write as _;

const BW100: Bandwidth = Bandwidth::from_gbps(100);

fn header(title: &str) -> String {
    format!("\n=== {title} ===\n")
}

/// Figure 1: PFC pause propagation and suppressed bandwidth, reproduced by
/// driving the PoD with DCQCN plus incast bursts (production telemetry
/// substituted by simulation).
pub fn fig01(duration_ms: u64) -> String {
    let mut s = header("Figure 1 — PFC pause propagation and suppressed bandwidth (simulated)");
    let exp = pfc_storm(0.3, 20, Duration::from_ms(duration_ms), 7).build();
    let topo_hosts: Vec<NodeId> = exp.topology().hosts().to_vec();
    let res = exp.run();
    let pfc = res.pfc_summary();
    let spread = res.pfc_burst_spread(Duration::from_us(200));
    writeln!(s, "pause frames sent      : {}", pfc.pause_frames).unwrap();
    writeln!(
        s,
        "ports ever paused      : {}/{}",
        pfc.paused_ports, pfc.total_ports
    )
    .unwrap();
    writeln!(
        s,
        "pause time fraction    : {:.3}%",
        pfc.pause_time_fraction() * 100.0
    )
    .unwrap();
    // (a) propagation: CDF of switches involved per pause burst.
    if !spread.is_empty() {
        let mut sorted = spread.clone();
        sorted.sort_unstable();
        writeln!(s, "\n(a) switches involved per pause burst (CDF):").unwrap();
        for pct in [50.0, 90.0, 99.0, 100.0] {
            let idx = ((pct / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            writeln!(s, "  p{pct:<5} {}", sorted[idx - 1]).unwrap();
        }
    } else {
        writeln!(s, "\n(a) no pause bursts observed").unwrap();
    }
    // (b) suppressed bandwidth: pause time on host-facing ports.
    let host_pauses: Vec<Duration> = topo_hosts
        .iter()
        .filter_map(|h| res.out.ports.get(&(*h, hpcc_types::PortId(0))))
        .map(|c| c.pause_duration)
        .collect();
    let suppressed = suppressed_bandwidth_fraction(&host_pauses, res.out.elapsed - SimTime::ZERO);
    writeln!(
        s,
        "\n(b) suppressed host bandwidth: {:.2}%",
        suppressed * 100.0
    )
    .unwrap();
    s
}

/// Figure 2: DCQCN rate-timer trade-off (Ti/Td) on WebSearch — (a) 95p FCT
/// slowdown without incast, (b) PFC pause time and short-flow latency with
/// incast.
pub fn fig02(duration_ms: u64, load: f64) -> String {
    let mut s = header("Figure 2 — DCQCN Ti/Td trade-off (WebSearch)");
    let dur = Duration::from_ms(duration_ms);
    let settings = [
        ("Ti=55,Td=50", Duration::from_us(55), Duration::from_us(50)),
        ("Ti=300,Td=4", Duration::from_us(300), Duration::from_us(4)),
        ("Ti=900,Td=4", Duration::from_us(900), Duration::from_us(4)),
    ];
    let build = |label: &str, ti, td, incast| {
        testbed_websearch(
            label,
            CcSpec::DcqcnTimers { ti, td },
            load,
            dur,
            incast,
            None,
            FlowControlMode::Lossless,
            42,
        )
    };
    let plain: Vec<ExperimentResults> = settings
        .iter()
        .map(|(l, ti, td)| build(l, *ti, *td, None).run())
        .collect();
    let refs: Vec<&ExperimentResults> = plain.iter().collect();
    writeln!(
        s,
        "(a) 95th-percentile FCT slowdown, {}% load:",
        (load * 100.0) as u32
    )
    .unwrap();
    s.push_str(&report::slowdown_table(&refs, &websearch_buckets(), 95.0));

    let with_incast: Vec<ExperimentResults> = settings
        .iter()
        .map(|(l, ti, td)| build(l, *ti, *td, Some(24)).run())
        .collect();
    let refs2: Vec<&ExperimentResults> = with_incast.iter().collect();
    writeln!(s, "\n(b) with 24-to-1 incast bursts (2% of capacity):").unwrap();
    s.push_str(&report::pfc_table(&refs2));
    for r in &with_incast {
        if let Some(p) = r.slowdown_for_sizes_up_to(30_000) {
            writeln!(s, "  {:<14} short-flow 95p slowdown {:.2}", r.label, p.p95).unwrap();
        }
    }
    s
}

/// Figure 3: DCQCN ECN-threshold trade-off on WebSearch at two loads.
pub fn fig03(duration_ms: u64) -> String {
    let mut s = header("Figure 3 — DCQCN ECN threshold trade-off (WebSearch)");
    let dur = Duration::from_ms(duration_ms);
    let thresholds = [
        ("Kmin=400,Kmax=1600", 400u64, 1600u64),
        ("Kmin=100,Kmax=400", 100, 400),
        ("Kmin=12,Kmax=50", 12, 50),
    ];
    for load in [0.3, 0.5] {
        let results: Vec<ExperimentResults> = thresholds
            .iter()
            .map(|(l, kmin, kmax)| {
                testbed_websearch(
                    *l,
                    CcSpec::by_label("DCQCN"),
                    load,
                    dur,
                    None,
                    Some(EcnConfig::thresholds_kb(*kmin, *kmax)),
                    FlowControlMode::Lossless,
                    42,
                )
                .run()
            })
            .collect();
        let refs: Vec<&ExperimentResults> = results.iter().collect();
        writeln!(
            s,
            "({}) {}% load — 95th-percentile FCT slowdown:",
            if load < 0.4 { "a" } else { "b" },
            (load * 100.0) as u32
        )
        .unwrap();
        s.push_str(&report::slowdown_table(&refs, &websearch_buckets(), 95.0));
        s.push('\n');
        s.push_str(&report::queue_table(&refs));
        s.push('\n');
    }
    s
}

/// Figure 6: txRate vs rxRate signal — bottleneck queue over time in a
/// 2-to-1 scenario.
pub fn fig06(duration_ms: u64) -> String {
    let mut s = header("Figure 6 — txRate vs rxRate congestion signal (2-to-1)");
    for use_rx in [false, true] {
        let exp = two_to_one(use_rx, BW100, 8_000_000, Duration::from_ms(duration_ms)).build();
        let port = star_egress_to(exp.topology(), exp.flows()[0].dst);
        let label = exp.label().to_string();
        let res = exp.run();
        let trace = &res.out.port_traces[&port];
        writeln!(s, "\n{label}:").unwrap();
        s.push_str(&report::queue_trace(trace, 30));
        let tail: Vec<f64> = trace
            .iter()
            .filter(|(t, _)| *t > SimTime::from_us(100))
            .map(|(_, q)| *q as f64)
            .collect();
        if !tail.is_empty() {
            let mean = tail.iter().sum::<f64>() / tail.len() as f64;
            let std = (tail.iter().map(|q| (q - mean) * (q - mean)).sum::<f64>()
                / tail.len() as f64)
                .sqrt();
            writeln!(
                s,
                "steady-state queue: mean {:.1} KB, std {:.1} KB",
                mean / 1000.0,
                std / 1000.0
            )
            .unwrap();
        }
    }
    s
}

/// Figure 9: the four testbed micro-benchmarks (rate recovery, incast
/// avoidance, elephant/mice latency, fairness), HPCC vs DCQCN.
pub fn fig09(duration_ms: u64) -> String {
    let mut s = header("Figure 9 — micro-benchmarks (HPCC vs DCQCN)");
    let dur = Duration::from_ms(duration_ms);
    let schemes = ["HPCC", "DCQCN"];

    // (a/b) Long-short rate recovery.
    writeln!(s, "(a/b) long flow recovery after a 1 MB short flow:").unwrap();
    for label in schemes {
        let exp = long_short(CcSpec::by_label(label), BW100, dur).build();
        let bin = exp.config().flow_throughput_bin.unwrap();
        let res = exp.run();
        let series = goodput_series_gbps(&res.out.flow_goodput[&FlowId(1)], bin);
        let tail = steady_state_gbps(&series, 0.2);
        let dip = series.iter().cloned().fold(f64::MAX, f64::min);
        writeln!(
            s,
            "  {label:<8} long-flow goodput: min {dip:>6.1} Gbps, final {tail:>6.1} Gbps"
        )
        .unwrap();
    }

    // (c/d) 8-to-1 incast into the receiver of a long flow.
    writeln!(
        s,
        "\n(c/d) 8-to-1 incast on top of a long flow (peak / 99p queue):"
    )
    .unwrap();
    for label in schemes {
        let res = incast_on_star(label, CcSpec::by_label(label), 8, 500_000, BW100, dur).run();
        writeln!(
            s,
            "  {label:<8} peak queue {:>8.1} KB, 99p queue {:>8.1} KB, pause frames {}",
            res.out.max_queue_bytes() as f64 / 1000.0,
            res.queue_percentile(99.0).unwrap_or(0) as f64 / 1000.0,
            res.pfc_summary().pause_frames
        )
        .unwrap();
    }

    // (e/f) Elephant + mice latency.
    writeln!(s, "\n(e/f) mice latency through a saturated link:").unwrap();
    for label in schemes {
        let res = elephant_mice(CcSpec::by_label(label), BW100, Duration::from_us(100), dur).run();
        let mice: Vec<f64> = res
            .out
            .flows
            .iter()
            .filter(|f| f.size == 1_000)
            .map(|f| f.fct().as_us_f64())
            .collect();
        if let Some(p) = hpcc_stats::Percentiles::of(&mice) {
            writeln!(
                s,
                "  {label:<8} mice FCT: p50 {:>6.1} us, p95 {:>6.1} us, p99 {:>6.1} us  (99p queue {:>7.1} KB)",
                p.p50,
                p.p95,
                p.p99,
                res.queue_percentile(99.0).unwrap_or(0) as f64 / 1000.0
            )
            .unwrap();
        }
    }

    // (g/h) Fairness of four staggered flows.
    writeln!(
        s,
        "\n(g/h) fairness of four flows joining every {} us:",
        dur.as_us_f64() / 8.0
    )
    .unwrap();
    for label in schemes {
        let exp = fairness(CcSpec::by_label(label), BW100, dur / 8, dur).build();
        let bin = exp.config().flow_throughput_bin.unwrap();
        let res = exp.run();
        // Fairness index while all four flows are active (just after the
        // last join).
        let idx = ((dur.mul_f64(0.55)).as_ps() / bin.as_ps()) as usize;
        let rates: Vec<f64> = (1..=4u64)
            .map(|id| {
                res.out
                    .flow_goodput
                    .get(&FlowId(id))
                    .and_then(|v| v.get(idx))
                    .map(|b| *b as f64)
                    .unwrap_or(0.0)
            })
            .collect();
        writeln!(
            s,
            "  {label:<8} Jain fairness index with 4 active flows: {:.3}",
            jain_fairness_index(&rates)
        )
        .unwrap();
    }
    s
}

/// Figure 10: WebSearch on the testbed PoD at 30% / 50% load — FCT slowdown
/// per size bucket (median/95/99) and queue CDF, HPCC vs DCQCN.
pub fn fig10(duration_ms: u64) -> String {
    let mut s = header("Figure 10 — WebSearch on the testbed PoD (HPCC vs DCQCN)");
    let dur = Duration::from_ms(duration_ms);
    for load in [0.3, 0.5] {
        let results: Vec<ExperimentResults> = ["HPCC", "DCQCN"]
            .iter()
            .map(|label| {
                testbed_websearch(
                    *label,
                    CcSpec::by_label(*label),
                    load,
                    dur,
                    None,
                    None,
                    FlowControlMode::Lossless,
                    42,
                )
                .run()
            })
            .collect();
        let refs: Vec<&ExperimentResults> = results.iter().collect();
        writeln!(s, "-- {}% average load --", (load * 100.0) as u32).unwrap();
        for pct in [50.0, 95.0, 99.0] {
            writeln!(s, "FCT slowdown at p{pct}:").unwrap();
            s.push_str(&report::slowdown_table(&refs, &websearch_buckets(), pct));
        }
        s.push_str(&report::queue_table(&refs));
        // The §5.2 headline claim: tail slowdown reduction for short flows.
        let short: Vec<Option<hpcc_stats::Percentiles>> = results
            .iter()
            .map(|r| r.slowdown_for_sizes_up_to(3_000))
            .collect();
        if let (Some(h), Some(d)) = (&short[0], &short[1]) {
            writeln!(
                s,
                "short (<3KB) flows 99p slowdown: HPCC {:.2} vs DCQCN {:.2}  ({:.0}% reduction)\n",
                h.p99,
                d.p99,
                (1.0 - h.p99 / d.p99) * 100.0
            )
            .unwrap();
        }
    }
    s
}

/// Figure 11: FB_Hadoop on the Clos fabric — 95p FCT slowdown per size
/// bucket for the six schemes, plus PFC pause time, with and without incast.
///
/// The six schemes are declared as one [`hpcc_core::Campaign`] and executed
/// in parallel (one OS thread per scheme, capped at the core count); the
/// results are bit-identical to a serial run under the same seed.
pub fn fig11(duration_ms: u64, load: f64, with_incast: bool, paper_scale: bool) -> String {
    let mut s = header("Figure 11 — FB_Hadoop on the Clos fabric (six schemes)");
    let params = if paper_scale {
        FatTreeParams::paper()
    } else {
        FatTreeParams::small()
    };
    let dur = Duration::from_ms(duration_ms);
    let campaign = fig11_campaign(params, load, dur, with_incast, 42);
    let report_out = campaign.run();
    let refs: Vec<&ExperimentResults> = report_out
        .results
        .iter()
        .map(|r| {
            r.results
                .as_ref()
                .expect("locally run campaigns carry full results")
        })
        .collect();
    writeln!(
        s,
        "{} hosts, {}% load{} ({} scenarios on {} threads in {:.1} s):",
        params.total_hosts(),
        (load * 100.0) as u32,
        if with_incast { " + 2% incast" } else { "" },
        report_out.results.len(),
        report_out.threads,
        report_out.wall.as_secs_f64()
    )
    .unwrap();
    writeln!(s, "95th-percentile FCT slowdown:").unwrap();
    s.push_str(&report::slowdown_table(&refs, &fb_hadoop_buckets(), 95.0));
    s.push('\n');
    s.push_str(&report::pfc_table(&refs));
    s.push('\n');
    s.push_str(&report::queue_table(&refs));
    s
}

/// Figure 12: flow-control choices (PFC, go-back-N, IRN) combined with
/// DCQCN and HPCC.
pub fn fig12(duration_ms: u64, load: f64) -> String {
    let mut s = header("Figure 12 — flow-control choices × congestion control");
    let params = FatTreeParams::small();
    let dur = Duration::from_ms(duration_ms);
    let modes = [
        FlowControlMode::Lossless,
        FlowControlMode::LossyGoBackN,
        FlowControlMode::LossyIrn,
    ];
    let mut results = Vec::new();
    for cc_label in ["DCQCN", "HPCC"] {
        for mode in modes {
            results.push(
                fattree_fb_hadoop(
                    format!("{cc_label}+{}", mode.label()),
                    CcSpec::by_label(cc_label),
                    params,
                    load,
                    dur,
                    true,
                    mode,
                    42,
                )
                .run(),
            );
        }
    }
    let refs: Vec<&ExperimentResults> = results.iter().collect();
    writeln!(
        s,
        "95th-percentile FCT slowdown ({}% load + incast):",
        (load * 100.0) as u32
    )
    .unwrap();
    s.push_str(&report::slowdown_table(&refs, &fb_hadoop_buckets(), 95.0));
    s.push('\n');
    s.push_str(&report::pfc_table(&refs));
    s
}

/// Figure 13: reacting per-ACK vs per-RTT vs the combined HPCC strategy in a
/// 16-to-1 incast — aggregate throughput and bottleneck queue over time.
pub fn fig13(duration_ms: u64) -> String {
    let mut s = header("Figure 13 — per-ACK vs per-RTT vs HPCC reaction (16-to-1 incast)");
    for (label, mode) in [
        ("per-ACK", HpccReactionMode::PerAck),
        ("per-RTT", HpccReactionMode::PerRtt),
        ("HPCC", HpccReactionMode::Combined),
    ] {
        let cc = CcSpec::Hpcc(HpccConfig {
            mode,
            ..HpccConfig::default()
        });
        let exp = incast_on_star(
            label,
            cc,
            16,
            500_000,
            BW100,
            Duration::from_ms(duration_ms),
        )
        .build();
        let port = star_egress_to(exp.topology(), exp.flows()[0].dst);
        let bin = exp.config().flow_throughput_bin.unwrap();
        let res = exp.run();
        // Aggregate goodput.
        let mut total = vec![0u64; 0];
        for series in res.out.flow_goodput.values() {
            if series.len() > total.len() {
                total.resize(series.len(), 0);
            }
            for (i, b) in series.iter().enumerate() {
                total[i] += b;
            }
        }
        let gbps = goodput_series_gbps(&total, bin);
        let mean = gbps.iter().sum::<f64>() / gbps.len().max(1) as f64;
        let min_after_start = gbps.iter().skip(5).cloned().fold(f64::MAX, f64::min);
        let trace = &res.out.port_traces[&port];
        let peak_q = trace.iter().map(|(_, q)| *q).max().unwrap_or(0);
        writeln!(
            s,
            "{label:<8} mean goodput {mean:>6.1} Gbps, min goodput {:>6.1} Gbps, peak queue {:>8.1} KB, flows finished {}/16",
            if min_after_start.is_finite() { min_after_start } else { 0.0 },
            peak_q as f64 / 1000.0,
            res.out.flows.len()
        )
        .unwrap();
        writeln!(s, "  (a) total throughput over time:").unwrap();
        s.push_str(&indent(&report::goodput_trace(&gbps, bin, 20), 4));
        writeln!(s, "  (b) bottleneck queue over time:").unwrap();
        s.push_str(&indent(&report::queue_trace(trace, 20), 4));
    }
    s
}

/// Figure 14: the W_AI sweep — fairness vs queue length in a 16-to-1 set of
/// long flows.
pub fn fig14(duration_ms: u64) -> String {
    let mut s = header("Figure 14 — W_AI sweep (16 long flows on one bottleneck)");
    for wai in [25u64, 80, 150, 300, 1600] {
        let cc = CcSpec::Hpcc(HpccConfig {
            wai,
            ..HpccConfig::default()
        });
        let label = format!("WAI={wai}B");
        let exp = incast_on_star(
            label.clone(),
            cc,
            16,
            10_000_000,
            BW100,
            Duration::from_ms(duration_ms),
        )
        .build();
        let bin = exp.config().flow_throughput_bin.unwrap();
        let res = exp.run();
        // Throughput of each flow near the end of the run → fairness.
        let idx_end =
            ((Duration::from_ms(duration_ms).mul_f64(0.9)).as_ps() / bin.as_ps()) as usize;
        let rates: Vec<f64> = res
            .out
            .flow_goodput
            .values()
            .map(|v| {
                let lo = idx_end.saturating_sub(10);
                v.iter().skip(lo).take(20).sum::<u64>() as f64
            })
            .collect();
        writeln!(
            s,
            "{label:<10} 95p queue {:>8.1} KB, 99p queue {:>8.1} KB, Jain fairness {:.3}",
            res.queue_percentile(95.0).unwrap_or(0) as f64 / 1000.0,
            res.queue_percentile(99.0).unwrap_or(0) as f64 / 1000.0,
            jain_fairness_index(&rates)
        )
        .unwrap();
    }
    writeln!(
        s,
        "\nRule of thumb (§3.3): WAI = Winit*(1-eta)/N; larger WAI converges to\n\
         fairness faster but builds a standing queue once N*WAI exceeds the\n\
         bandwidth headroom."
    )
    .unwrap();
    s
}

/// §4.1 / §5.1 INT overhead accounting (the paper's "42 bytes for 5 hops",
/// 4.2% of a 1 KB packet).
pub fn tab_int_overhead() -> String {
    let mut s = header("Table — INT header overhead (Figure 7 / §4.1)");
    writeln!(
        s,
        "{:>6} {:>12} {:>16}",
        "hops", "INT bytes", "% of 1KB packet"
    )
    .unwrap();
    for hops in 0..=8u16 {
        let mut h = IntHeader::new();
        for i in 0..hops {
            h.push_hop(i + 1, IntHopRecord::default());
        }
        let size = h.wire_size();
        writeln!(
            s,
            "{:>6} {:>12} {:>15.1}%",
            hops,
            size,
            size as f64 / 1000.0 * 100.0
        )
        .unwrap();
    }
    let p = Packet::data(FlowId(1), NodeId(0), NodeId(1), 0, 1000, SimTime::ZERO);
    writeln!(
        s,
        "\nworst-case budget charged per data packet: {} bytes ({}%)",
        p.int_budget_size(),
        p.int_budget_size() as f64 / 10.0
    )
    .unwrap();
    s
}

/// Appendix A.2 demonstration: the fluid recursion reaches feasibility in
/// one step and a Pareto-optimal allocation shortly after.
pub fn fluid_convergence() -> String {
    let mut s = header("Appendix A.2 — fluid-model convergence");
    let net = FluidNetwork::new(
        vec![
            vec![true, true, false, false],
            vec![true, false, true, false],
            vec![false, false, true, true],
        ],
        vec![100.0, 40.0, 60.0],
    );
    let trajectory = net.converge(&[80.0, 80.0, 80.0, 80.0], 1e-9, 30);
    writeln!(
        s,
        "{:>5} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "step", "R1", "R2", "R3", "R4", "feasible"
    )
    .unwrap();
    for (i, r) in trajectory.iter().enumerate() {
        writeln!(
            s,
            "{:>5} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10}",
            i,
            r[0],
            r[1],
            r[2],
            r[3],
            net.is_feasible(r, 1e-9)
        )
        .unwrap();
    }
    let last = trajectory.last().unwrap();
    writeln!(s, "\nconverged after {} steps", trajectory.len() - 1).unwrap();
    writeln!(
        s,
        "\nPareto optimal: {} (every path crosses a saturated resource)",
        net.is_pareto_optimal(last, 1e-3)
    )
    .unwrap();
    s
}

fn indent(text: &str, by: usize) -> String {
    let pad = " ".repeat(by);
    text.lines().map(|l| format!("{pad}{l}\n")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_overhead_table_reports_42_bytes_for_5_hops() {
        let t = tab_int_overhead();
        assert!(t.contains("     5           42"), "{t}");
        assert!(t.contains("42 bytes"));
    }

    #[test]
    fn fluid_convergence_report_shows_feasibility() {
        let t = fluid_convergence();
        assert!(t.contains("Pareto optimal: true"), "{t}");
    }

    #[test]
    fn fig06_runs_at_tiny_scale() {
        let t = fig06(1);
        assert!(t.contains("HPCC (txRate)"));
        assert!(t.contains("HPCC-rxRate"));
        assert!(t.contains("steady-state queue"));
    }

    #[test]
    fn fig13_runs_at_tiny_scale_and_shows_all_modes() {
        let t = fig13(1);
        for label in ["per-ACK", "per-RTT", "HPCC"] {
            assert!(t.contains(label), "missing {label} in:\n{t}");
        }
    }
}
