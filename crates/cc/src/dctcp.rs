//! DCTCP — ECN-fraction based window control (Alizadeh et al., SIGCOMM
//! 2010), used in the paper's simulations as the host-TCP comparison point
//! with slow start removed (§5.1 "We remove the slow start phase in DCTCP
//! for fair comparisons"), i.e. flows start at line rate with a BDP window.
//!
//! Per RTT the sender computes the fraction `F` of acknowledged bytes that
//! carried an ECN echo, maintains `alpha = (1-g) alpha + g F`, and if any
//! marks were seen cuts the window by `alpha/2`; otherwise it increases the
//! window by one MSS per RTT (congestion avoidance).

use crate::api::{clamp_rate, AckEvent, CongestionControl, FlowRateState};
use hpcc_types::{Bandwidth, Duration, SimTime};

/// DCTCP parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DctcpConfig {
    /// EWMA gain `g` for the marked fraction (paper default 1/16).
    pub g: f64,
    /// Maximum segment size in bytes, the additive-increase step per RTT.
    pub mss: u64,
    /// Minimum window in bytes (one MSS by default).
    pub min_window: u64,
    /// Minimum pacing rate.
    pub min_rate: Bandwidth,
}

impl Default for DctcpConfig {
    fn default() -> Self {
        DctcpConfig {
            g: 1.0 / 16.0,
            mss: 1000,
            min_window: 1000,
            min_rate: Bandwidth::from_mbps(100),
        }
    }
}

/// DCTCP window control for one flow.
#[derive(Debug)]
pub struct Dctcp {
    cfg: DctcpConfig,
    line_rate: Bandwidth,
    base_rtt: Duration,
    w_max: u64,
    window: f64,
    alpha: f64,
    /// Bytes acknowledged in the current observation window (one RTT).
    acked_bytes: u64,
    /// Of which carried an ECN echo.
    marked_bytes: u64,
    /// End of the current observation window: when `ack_seq` crosses this,
    /// the per-RTT update runs.
    window_end_seq: u64,
    rate: Bandwidth,
    /// Number of multiplicative decreases applied (for tests / traces).
    pub decrease_events: u64,
}

impl Dctcp {
    /// Create a DCTCP instance with an initial window of one BDP (no slow
    /// start, per the paper's comparison setup).
    pub fn new(cfg: DctcpConfig, line_rate: Bandwidth, base_rtt: Duration) -> Self {
        let w_init = line_rate.bdp_bytes(base_rtt) + cfg.mss;
        Dctcp {
            cfg,
            line_rate,
            base_rtt,
            // Allow the window to grow past one BDP (standing queue), but cap
            // it so an ECN-free path cannot accumulate unbounded inflight.
            w_max: w_init * 4,
            window: w_init as f64,
            alpha: 0.0,
            acked_bytes: 0,
            marked_bytes: 0,
            window_end_seq: 0,
            rate: line_rate,
            decrease_events: 0,
        }
    }

    /// Current `alpha` (EWMA of the marked fraction).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    fn sync_rate(&mut self) {
        self.window = self
            .window
            .clamp(self.cfg.min_window as f64, self.w_max as f64);
        let rate = Bandwidth::from_bps((self.window * 8.0 / self.base_rtt.as_secs_f64()) as u64);
        self.rate = clamp_rate(rate, self.cfg.min_rate, self.line_rate);
    }
}

impl CongestionControl for Dctcp {
    fn on_ack(&mut self, ack: &AckEvent<'_>) {
        self.acked_bytes += ack.newly_acked;
        if ack.ecn_echo {
            self.marked_bytes += ack.newly_acked;
        }
        if ack.ack_seq < self.window_end_seq {
            return;
        }
        // One observation window (≈ one RTT of data) has been acknowledged.
        self.window_end_seq = ack.snd_nxt;
        if self.acked_bytes == 0 {
            return;
        }
        let f = self.marked_bytes as f64 / self.acked_bytes as f64;
        self.alpha = (1.0 - self.cfg.g) * self.alpha + self.cfg.g * f;
        if self.marked_bytes > 0 {
            self.window *= 1.0 - self.alpha / 2.0;
            self.decrease_events += 1;
        } else {
            self.window += self.cfg.mss as f64;
        }
        self.acked_bytes = 0;
        self.marked_bytes = 0;
        self.sync_rate();
    }

    fn on_loss(&mut self, _now: SimTime) {
        // Standard TCP-style halving on loss.
        self.window /= 2.0;
        self.decrease_events += 1;
        self.sync_rate();
    }

    fn state(&self) -> FlowRateState {
        FlowRateState {
            window: self.window as u64,
            rate: self.rate,
        }
    }

    fn name(&self) -> &'static str {
        "DCTCP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcc_types::IntHeader;

    const LINE: Bandwidth = Bandwidth::from_gbps(100);
    const RTT: Duration = Duration::from_us(13);

    fn make() -> Dctcp {
        Dctcp::new(DctcpConfig::default(), LINE, RTT)
    }

    fn ack(seq: u64, snd_nxt: u64, bytes: u64, ecn: bool, int: &IntHeader) -> AckEvent<'_> {
        AckEvent {
            now: SimTime::from_us(seq / 1000),
            ack_seq: seq,
            snd_nxt,
            newly_acked: bytes,
            ecn_echo: ecn,
            rtt: RTT,
            int,
        }
    }

    #[test]
    fn starts_with_bdp_window_no_slow_start() {
        let d = make();
        assert_eq!(d.state().window, LINE.bdp_bytes(RTT) + 1000);
        assert_eq!(d.state().rate, LINE);
        assert!(d.state().is_window_limited());
    }

    #[test]
    fn unmarked_rtts_grow_window_by_one_mss() {
        let mut d = make();
        let int = IntHeader::new();
        let w0 = d.state().window;
        // First ACK closes the (empty) initial observation window.
        d.on_ack(&ack(1_000, 150_000, 1000, false, &int));
        let w1 = d.state().window;
        assert_eq!(w1, w0 + 1000);
        // ACKs within the next window do not change it.
        d.on_ack(&ack(50_000, 150_000, 1000, false, &int));
        assert_eq!(d.state().window, w1);
        // Crossing the window end grows it again.
        d.on_ack(&ack(151_000, 300_000, 1000, false, &int));
        assert_eq!(d.state().window, w1 + 1000);
    }

    #[test]
    fn fully_marked_traffic_converges_alpha_to_one_and_halves() {
        let mut d = make();
        let int = IntHeader::new();
        let w0 = d.state().window;
        let mut seq = 1_000;
        for _ in 0..80 {
            d.on_ack(&ack(seq, seq + 10_000, 1000, true, &int));
            seq += 10_001;
        }
        assert!(
            d.alpha() > 0.98,
            "alpha should approach 1, got {}",
            d.alpha()
        );
        assert!(d.state().window < w0 / 4);
        assert!(d.decrease_events > 50);
    }

    #[test]
    fn lightly_marked_traffic_keeps_high_window() {
        let mut d = make();
        let int = IntHeader::new();
        let mut seq = 1_000;
        // 1 marked RTT out of every 10.
        for i in 0..100u64 {
            d.on_ack(&ack(seq, seq + 10_000, 1000, i % 10 == 0, &int));
            seq += 10_001;
        }
        assert!(d.alpha() < 0.3);
        assert!(d.state().window > LINE.bdp_bytes(RTT) / 2);
    }

    #[test]
    fn loss_halves_window() {
        let mut d = make();
        let w0 = d.state().window;
        d.on_loss(SimTime::ZERO);
        assert!(d.state().window <= w0 / 2 + 1);
    }

    #[test]
    fn window_never_collapses_below_minimum() {
        let mut d = make();
        let int = IntHeader::new();
        let mut seq = 1_000;
        for _ in 0..500 {
            d.on_ack(&ack(seq, seq + 1_000, 1000, true, &int));
            seq += 1_001;
            d.on_loss(SimTime::ZERO);
            assert!(d.state().window >= DctcpConfig::default().min_window);
            assert!(d.state().rate >= DctcpConfig::default().min_rate);
        }
    }
}
