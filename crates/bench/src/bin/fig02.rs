//! Regenerate Figure 2 (DCQCN Ti/Td trade-off on WebSearch).
//! Usage: `cargo run --release -p hpcc-bench --bin fig02 [duration_ms] [load]`
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ms = hpcc_bench::arg_or(&args, 1, 20u64);
    let load = hpcc_bench::arg_or(&args, 2, 0.3f64);
    print!("{}", hpcc_bench::figures::fig02(ms, load));
}
