//! Regenerate Figure 1 (PFC pause propagation / suppressed bandwidth).
//! Usage: `cargo run --release -p hpcc-bench --bin fig01 [duration_ms]`
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ms = hpcc_bench::arg_or(&args, 1, 20u64);
    print!("{}", hpcc_bench::figures::fig01(ms));
}
