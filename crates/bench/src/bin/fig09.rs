//! Regenerate Figure 9 (testbed micro-benchmarks, HPCC vs DCQCN).
//! Usage: `cargo run --release -p hpcc-bench --bin fig09 [duration_ms]`
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ms = hpcc_bench::arg_or(&args, 1, 8u64);
    print!("{}", hpcc_bench::figures::fig09(ms));
}
