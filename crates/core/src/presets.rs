//! Ready-made scenario builders for every figure in the paper's evaluation
//! (§5.2–§5.4). Each builder takes explicit scale parameters (durations,
//! sizes, topology scale) so that the figure harnesses can run laptop-sized
//! versions by default and paper-sized versions on demand.
//!
//! Every preset returns a declarative [`ScenarioSpec`]: call
//! [`ScenarioSpec::build`] for the concrete [`crate::Experiment`],
//! [`ScenarioSpec::run`] to execute it directly, or queue specs into a
//! [`Campaign`] to run them in parallel.

use crate::campaign::Campaign;
use crate::scenario::{
    CcSpec, CdfSpec, FaultSpec, FlowDecl, QueueingSpec, ScenarioSpec, TopologyChoice, WorkloadSpec,
};
use hpcc_cc::{CcAlgorithm, DcqcnConfig, DctcpConfig, HpccConfig, TimelyConfig};
use hpcc_sim::{DegradedLink, EcnConfig, FlowControlMode, LinkDownMode, LinkFault, StragglerHost};
use hpcc_topology::{FatTreeParams, NodeKind, TopologySpec};
use hpcc_types::{Bandwidth, Duration, NodeId, PortId};
use hpcc_workload::{LocalitySpec, PairSpec, PrioritySpec, SkewSpec};

/// The six schemes compared in Figure 11, built for a given line rate and
/// base RTT.
pub const SCHEME_SET_FIG11: [&str; 6] = [
    "DCQCN",
    "TIMELY",
    "DCQCN+win",
    "TIMELY+win",
    "DCTCP",
    "HPCC",
];

/// Build one of the Figure 11 schemes by label.
pub fn scheme_by_label(label: &str, line_rate: Bandwidth, base_rtt: Duration) -> CcAlgorithm {
    match label {
        "DCQCN" => CcAlgorithm::Dcqcn(DcqcnConfig::vendor_default(line_rate)),
        "DCQCN+win" => CcAlgorithm::DcqcnWin(DcqcnConfig::vendor_default(line_rate)),
        "TIMELY" => CcAlgorithm::Timely(TimelyConfig::recommended(line_rate, base_rtt)),
        "TIMELY+win" => CcAlgorithm::TimelyWin(TimelyConfig::recommended(line_rate, base_rtt)),
        "DCTCP" => CcAlgorithm::Dctcp(DctcpConfig::default()),
        "HPCC" => CcAlgorithm::Hpcc(HpccConfig::default()),
        other => panic!("unknown scheme label {other}"),
    }
}

/// The bottleneck egress port of a star topology towards a given host (the
/// port traced in the micro-benchmarks).
pub fn star_egress_to(topo: &TopologySpec, host: NodeId) -> (NodeId, PortId) {
    let sw = topo.switches()[0];
    (sw, topo.next_hops(sw, host)[0])
}

/// Figure 6: 2-to-1 congestion on a star, tracing the bottleneck queue.
/// `use_rx_rate` selects the HPCC-rxRate ablation.
pub fn two_to_one(
    use_rx_rate: bool,
    host_bw: Bandwidth,
    flow_size: u64,
    end: Duration,
) -> ScenarioSpec {
    let label = if use_rx_rate {
        "HPCC-rxRate"
    } else {
        "HPCC (txRate)"
    };
    ScenarioSpec::new(
        label,
        TopologyChoice::star(3, host_bw),
        CcSpec::Hpcc(HpccConfig {
            use_rx_rate,
            ..HpccConfig::default()
        }),
        end,
    )
    .with_workload(WorkloadSpec::Explicit(vec![
        FlowDecl::new(1, 0, 2, flow_size, Duration::ZERO),
        FlowDecl::new(2, 1, 2, flow_size, Duration::ZERO),
    ]))
    .with_bottleneck_trace(2, Duration::from_us(1))
    .with_queue_sampling(Duration::from_us(1))
}

/// Figures 13/14 (and 9c/9d): an N-to-1 incast on a star topology, with the
/// bottleneck queue traced and per-flow goodput recorded.
pub fn incast_on_star(
    label: impl Into<String>,
    cc: impl Into<CcSpec>,
    n_senders: usize,
    flow_size: u64,
    host_bw: Bandwidth,
    end: Duration,
) -> ScenarioSpec {
    let flows = (0..n_senders)
        .map(|i| FlowDecl::new(1 + i as u64, i, n_senders, flow_size, Duration::ZERO))
        .collect();
    ScenarioSpec::new(label, TopologyChoice::star(n_senders + 1, host_bw), cc, end)
        .with_workload(WorkloadSpec::Explicit(flows))
        .with_bottleneck_trace(n_senders, Duration::from_us(1))
        .with_queue_sampling(Duration::from_us(1))
        .with_goodput_bin(Duration::from_us(10))
}

/// Figure 9a/9b: a long flow at line rate, a 1 MB short flow joins on the
/// same bottleneck and leaves; goodput of both is recorded.
pub fn long_short(cc: impl Into<CcSpec>, host_bw: Bandwidth, end: Duration) -> ScenarioSpec {
    let cc = cc.into();
    // The long flow occupies the whole run; the short 1 MB flow joins at 25%
    // of the horizon.
    let long_size = host_bw.bytes_in(end);
    ScenarioSpec::new(
        format!("long-short {}", cc.scheme_label()),
        TopologyChoice::star(3, host_bw),
        cc,
        end,
    )
    .with_workload(WorkloadSpec::Explicit(vec![
        FlowDecl::new(1, 0, 2, long_size, Duration::ZERO),
        FlowDecl::new(2, 1, 2, 1_000_000, end.mul_f64(0.25)),
    ]))
    .with_bottleneck_trace(2, Duration::from_us(2))
    .with_queue_sampling(Duration::from_us(2))
    .with_goodput_bin(Duration::from_us(20))
}

/// Figure 9e/9f: two elephant flows saturate a link while a third host sends
/// a stream of 1 KB mice through it; the mice FCTs give the latency CDF.
pub fn elephant_mice(
    cc: impl Into<CcSpec>,
    host_bw: Bandwidth,
    mice_interval: Duration,
    end: Duration,
) -> ScenarioSpec {
    let cc = cc.into();
    let elephant_size = host_bw.bytes_in(end);
    let mut flows = vec![
        FlowDecl::new(1, 0, 3, elephant_size, Duration::ZERO),
        FlowDecl::new(2, 1, 3, elephant_size, Duration::ZERO),
    ];
    let mut t = Duration::from_us(50);
    let mut id = 100;
    while t < end {
        flows.push(FlowDecl::new(id, 2, 3, 1_000, t));
        id += 1;
        t += mice_interval;
    }
    ScenarioSpec::new(
        format!("elephant-mice {}", cc.scheme_label()),
        TopologyChoice::star(4, host_bw),
        cc,
        end,
    )
    .with_workload(WorkloadSpec::Explicit(flows))
    .with_queue_sampling(Duration::from_us(1))
}

/// Figure 9g/9h: four flows join a bottleneck one after another; their
/// goodput over time shows (or fails to show) fair sharing.
pub fn fairness(
    cc: impl Into<CcSpec>,
    host_bw: Bandwidth,
    join_interval: Duration,
    end: Duration,
) -> ScenarioSpec {
    let cc = cc.into();
    let mut flows = Vec::new();
    for i in 0..4u64 {
        // Each flow is sized so that, under a fair share, it stays active
        // until roughly the end of the run.
        let start = join_interval * i;
        let active = end.saturating_sub(start);
        let size = (host_bw.bytes_in(active) as f64 * 0.4) as u64;
        flows.push(FlowDecl::new(
            i + 1,
            i as usize,
            4,
            size.max(1_000_000),
            start,
        ));
    }
    ScenarioSpec::new(
        format!("fairness {}", cc.scheme_label()),
        TopologyChoice::star(5, host_bw),
        cc,
        end,
    )
    .with_workload(WorkloadSpec::Explicit(flows))
    .with_queue_sampling(Duration::from_us(2))
    .with_goodput_bin(join_interval / 20)
}

/// Background + optional incast workload on the testbed PoD (§5.1/§5.2,
/// Figures 2, 3, 9, 10): 32 servers with 25 Gbps NICs behind 4 ToRs and one
/// Agg switch, driven by the WebSearch trace.
#[allow(clippy::too_many_arguments)]
pub fn testbed_websearch(
    label: impl Into<String>,
    cc: impl Into<CcSpec>,
    load: f64,
    end: Duration,
    incast_fan_in: Option<usize>,
    ecn_override: Option<EcnConfig>,
    flow_control: FlowControlMode,
    seed: u64,
) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(label, TopologyChoice::testbed_pod(), cc, end)
        .with_seed(seed)
        .with_flow_control(flow_control)
        .with_queue_sampling(Duration::from_us(5))
        .with_workload(WorkloadSpec::poisson(CdfSpec::WebSearch, load));
    if let Some(fan_in) = incast_fan_in {
        spec = spec.with_workload(WorkloadSpec::incast(fan_in, 500_000, 0.02));
    }
    if let Some(ecn) = ecn_override {
        spec = spec.with_ecn(ecn);
    }
    spec
}

/// Background + optional incast workload on the three-tier Clos fabric
/// (§5.3, Figures 11/12), driven by the FB_Hadoop trace.
#[allow(clippy::too_many_arguments)]
pub fn fattree_fb_hadoop(
    label: impl Into<String>,
    cc: impl Into<CcSpec>,
    params: FatTreeParams,
    load: f64,
    end: Duration,
    with_incast: bool,
    flow_control: FlowControlMode,
    seed: u64,
) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(label, TopologyChoice::FatTree(params), cc, end)
        .with_seed(seed)
        .with_flow_control(flow_control)
        .with_queue_sampling(Duration::from_us(5))
        .with_workload(WorkloadSpec::poisson(CdfSpec::FbHadoop, load));
    if with_incast {
        let fan_in = 60.min(params.total_hosts().saturating_sub(1));
        spec = spec.with_workload(WorkloadSpec::incast(fan_in, 500_000, 0.02));
    }
    spec
}

/// The Figure 11 comparison as a campaign: the six-scheme set on the Clos
/// fabric under FB_Hadoop background load (optionally plus 2% incast), one
/// scenario per scheme, sharing one seed. Run it with
/// [`Campaign::run`] for a parallel sweep or [`Campaign::run_serial`] for
/// the reference execution — the results are bit-identical.
pub fn fig11_campaign(
    params: FatTreeParams,
    load: f64,
    end: Duration,
    with_incast: bool,
    seed: u64,
) -> Campaign {
    Campaign::from_scenarios(
        SCHEME_SET_FIG11
            .iter()
            .map(|label| {
                fattree_fb_hadoop(
                    *label,
                    CcSpec::by_label(*label),
                    params,
                    load,
                    end,
                    with_incast,
                    FlowControlMode::Lossless,
                    seed,
                )
            })
            .collect(),
    )
}

/// Figure 1 (production PFC telemetry, reproduced in simulation): DCQCN on
/// the testbed PoD with a small buffer and repeated large incasts, so that
/// PFC pauses propagate from the ToRs towards hosts and the Agg switch.
pub fn pfc_storm(load: f64, fan_in: usize, end: Duration, seed: u64) -> ScenarioSpec {
    ScenarioSpec::new(
        "PFC storm (DCQCN)",
        TopologyChoice::testbed_pod(),
        CcSpec::by_label("DCQCN"),
        end,
    )
    .with_seed(seed)
    .with_buffer_bytes(4_000_000)
    .with_queue_sampling(Duration::from_us(5))
    .with_workload(WorkloadSpec::poisson(CdfSpec::WebSearch, load))
    .with_workload(WorkloadSpec::incast(fan_in, 500_000, 0.05))
}

/// A rack-locality sweep on the Clos fabric: one scenario per intra-rack
/// fraction, same scheme, seed and load throughout, so the only variable is
/// how much traffic stays inside the source rack. Sweeping from 0 (all
/// cross-rack) towards 1 (all intra-rack) moves load off the
/// oversubscribed ToR uplinks — exactly the realism axis the paper's
/// uniform workloads cannot express.
pub fn fattree_locality_sweep(
    cc: impl Into<CcSpec> + Clone,
    params: FatTreeParams,
    load: f64,
    end: Duration,
    intra_fractions: &[f64],
    seed: u64,
) -> Campaign {
    Campaign::from_scenarios(
        intra_fractions
            .iter()
            .map(|&fraction| {
                ScenarioSpec::new(
                    format!("locality intra={fraction:.2}"),
                    TopologyChoice::FatTree(params),
                    cc.clone(),
                    end,
                )
                .with_seed(seed)
                .with_queue_sampling(Duration::from_us(5))
                .with_workload(WorkloadSpec::poisson_with_pairs(
                    CdfSpec::FbHadoop,
                    load,
                    PairSpec::Locality(LocalitySpec::IntraRack { fraction }),
                ))
            })
            .collect(),
    )
}

/// A heavy-hitter skew sweep on the Clos fabric: one scenario per Zipf
/// exponent (0 = uniform endpoints, 1.0–1.5 = typical datacenter fits).
/// Which hosts are hot is a deterministic function of the seed.
pub fn fattree_skew_sweep(
    cc: impl Into<CcSpec> + Clone,
    params: FatTreeParams,
    load: f64,
    end: Duration,
    exponents: &[f64],
    seed: u64,
) -> Campaign {
    Campaign::from_scenarios(
        exponents
            .iter()
            .map(|&exponent| {
                ScenarioSpec::new(
                    format!("skew zipf={exponent:.2}"),
                    TopologyChoice::FatTree(params),
                    cc.clone(),
                    end,
                )
                .with_seed(seed)
                .with_queue_sampling(Duration::from_us(5))
                .with_workload(WorkloadSpec::poisson_with_pairs(
                    CdfSpec::FbHadoop,
                    load,
                    PairSpec::Skew(SkewSpec::new(exponent)),
                ))
            })
            .collect(),
    )
}

/// A PIAS sweep on the Clos fabric: the legacy single-queue baseline plus
/// one scenario per demotion-threshold set, everything else (scheme, seed,
/// load, trace) held fixed. PIAS tags packets at the sender by bytes already
/// sent — flows start in the top class and are demoted as they grow — so the
/// sweep isolates how multi-queue scheduling reshapes the per-priority and
/// short-flow FCT distributions under one congestion-control scheme.
pub fn fattree_pias_sweep(
    cc: impl Into<CcSpec> + Clone,
    params: FatTreeParams,
    load: f64,
    end: Duration,
    threshold_sets: &[Vec<u64>],
    seed: u64,
) -> Campaign {
    let base = |name: String| {
        ScenarioSpec::new(name, TopologyChoice::FatTree(params), cc.clone(), end)
            .with_seed(seed)
            .with_queue_sampling(Duration::from_us(5))
            // The mice/elephant tags don't steer PIAS (bytes-sent demotion
            // overrides static mapping); they key the per-priority FCT
            // breakdown so the sweep's effect on mice is directly readable.
            .with_workload(WorkloadSpec::poisson_with_prio(
                CdfSpec::FbHadoop,
                load,
                PrioritySpec::ShortFlows { threshold: 100_000 },
            ))
    };
    let mut scenarios = vec![base("queueing SP-1 (legacy)".into())];
    for thresholds in threshold_sets {
        let q = QueueingSpec::pias(thresholds.clone());
        scenarios.push(base(format!("queueing {}", q.label())).with_queueing(q));
    }
    Campaign::from_scenarios(scenarios)
}

/// The first switch–switch (fabric) link of a topology, by index into
/// [`TopologySpec::links`]. The fault presets flap or degrade this link so
/// the faulted element is a deterministic function of the topology alone —
/// on the Clos fabrics it is a ToR uplink, the oversubscribed tier where a
/// failure hurts the most.
pub fn first_fabric_link(topo: &TopologySpec) -> usize {
    topo.links()
        .iter()
        .position(|l| {
            matches!(topo.kind(l.a), NodeKind::Switch) && matches!(topo.kind(l.b), NodeKind::Switch)
        })
        .expect("topology has no switch-switch link")
}

/// A link-flap sweep on the Clos fabric: one scenario per flap count, with
/// the first fabric uplink (see [`first_fabric_link`]) going down for 4% of
/// the horizon starting at 20%, repeating every 10% of the horizon. Pause
/// mode holds frames at the egress while the link is down, so each outage is
/// a burst of head-of-line blocking — and, because routing stays static, the
/// ECMP paths crossing the link blackhole until it returns. Everything else
/// (scheme, seed, load, trace) is held fixed, so the sweep isolates how much
/// FCT/pause damage each additional flap inflicts.
pub fn fattree_linkflap_sweep(
    cc: impl Into<CcSpec> + Clone,
    params: FatTreeParams,
    load: f64,
    end: Duration,
    flap_counts: &[u32],
    seed: u64,
) -> Campaign {
    let link = first_fabric_link(&TopologyChoice::FatTree(params).build());
    Campaign::from_scenarios(
        flap_counts
            .iter()
            .map(|&flaps| {
                fattree_fb_hadoop(
                    format!("linkflap x{}", flaps as u64 + 1),
                    cc.clone(),
                    params,
                    load,
                    end,
                    false,
                    FlowControlMode::Lossless,
                    seed,
                )
                .with_faults(FaultSpec::new().with_link_fault(LinkFault {
                    link,
                    at: end.mul_f64(0.2),
                    down_for: end.mul_f64(0.04),
                    flaps,
                    period: end.mul_f64(0.1),
                    mode: LinkDownMode::Pause,
                }))
            })
            .collect(),
    )
}

/// The Figure 11 matrix under a degraded fabric link: the six-scheme set on
/// the Clos fabric, every scenario carrying one identical fault timeline —
/// the first fabric uplink gains 5 µs of extra latency and 1% iid loss over
/// the middle half of the run. The fabric runs IRN (lossy, selective
/// retransmission) so the loss is recovered rather than fatal, and the only
/// variable across scenarios is the congestion-control scheme: how each one
/// misreads fault loss/delay as congestion is exactly what separates them.
pub fn degraded_link_cc_matrix(
    params: FatTreeParams,
    load: f64,
    end: Duration,
    seed: u64,
) -> Campaign {
    let link = first_fabric_link(&TopologyChoice::FatTree(params).build());
    let faults = FaultSpec::new().with_degraded_link(DegradedLink {
        link,
        from: end.mul_f64(0.25),
        until: end.mul_f64(0.75),
        extra_delay: Duration::from_us(5),
        loss: 0.01,
    });
    Campaign::from_scenarios(
        SCHEME_SET_FIG11
            .iter()
            .map(|label| {
                fattree_fb_hadoop(
                    format!("degraded {label}"),
                    CcSpec::by_label(*label),
                    params,
                    load,
                    end,
                    false,
                    FlowControlMode::LossyIrn,
                    seed,
                )
                .with_faults(faults.clone())
            })
            .collect(),
    )
}

/// The CI fault smoke: a two-scenario campaign on the small Clos fabric —
/// one link flap (pause mode, one extra cycle) and one straggler host whose
/// NIC drops to 40% rate over the middle of the run. Small enough to run in
/// seconds, faulty enough to exercise every fault path end to end.
pub fn fault_smoke(params: FatTreeParams, load: f64, end: Duration, seed: u64) -> Campaign {
    let link = first_fabric_link(&TopologyChoice::FatTree(params).build());
    let base = |name: &str, faults: FaultSpec| {
        fattree_fb_hadoop(
            name,
            CcSpec::by_label("HPCC"),
            params,
            load,
            end,
            false,
            FlowControlMode::Lossless,
            seed,
        )
        .with_faults(faults)
    };
    Campaign::from_scenarios(vec![
        base(
            "smoke linkflap",
            FaultSpec::new().with_link_fault(LinkFault {
                link,
                at: end.mul_f64(0.2),
                down_for: end.mul_f64(0.05),
                flaps: 1,
                period: end.mul_f64(0.15),
                mode: LinkDownMode::Pause,
            }),
        ),
        base(
            "smoke straggler",
            FaultSpec::new().with_straggler(StragglerHost {
                host: 0,
                from: end.mul_f64(0.25),
                until: end.mul_f64(0.75),
                rate_factor: 0.4,
            }),
        ),
    ])
}

/// The CI fabric smoke: seeds {1, 2} × the six Figure-11 schemes under
/// WebSearch Poisson load on a 6-host star — twelve self-contained
/// scenarios (no corpus or trace files, so the manifest ships over the
/// fabric wire to workers with no shared filesystem). Sized so a
/// two-worker coordinator with one worker chaos-killed at 50% progress
/// still finishes in seconds while exercising lease reassignment.
pub fn fabric_smoke_campaign() -> Campaign {
    let host_bw = Bandwidth::from_gbps(25);
    let end = Duration::from_ms(10);
    Campaign::from_scenarios(
        [1u64, 2]
            .iter()
            .flat_map(|&seed| {
                SCHEME_SET_FIG11.iter().map(move |label| {
                    ScenarioSpec::new(
                        format!("fabric s{seed} {label}"),
                        TopologyChoice::star(6, host_bw),
                        CcSpec::by_label(*label),
                        end,
                    )
                    .with_seed(seed)
                    .with_queue_sampling(Duration::from_us(5))
                    .with_workload(WorkloadSpec::poisson(CdfSpec::WebSearch, 0.3))
                })
            })
            .collect(),
    )
}

/// A scheduler comparison under a mice/elephant priority mix: the same
/// FB_Hadoop background load, with flows below `mice_threshold` bytes tagged
/// latency-sensitive, run through (a) the legacy single queue, (b) strict
/// priority over `classes` data classes, and (c) DWRR with uniform weights.
/// The priority tags are a pure size function, so all three scenarios inject
/// the bit-identical flow list — only the switches schedule it differently.
pub fn priority_mix(
    cc: impl Into<CcSpec> + Clone,
    params: FatTreeParams,
    load: f64,
    end: Duration,
    mice_threshold: u64,
    classes: u8,
    seed: u64,
) -> Campaign {
    let base = |name: String| {
        ScenarioSpec::new(name, TopologyChoice::FatTree(params), cc.clone(), end)
            .with_seed(seed)
            .with_queue_sampling(Duration::from_us(5))
            .with_workload(WorkloadSpec::poisson_with_prio(
                CdfSpec::FbHadoop,
                load,
                PrioritySpec::ShortFlows {
                    threshold: mice_threshold,
                },
            ))
    };
    Campaign::from_scenarios(vec![
        base("prio-mix SP-1 (legacy)".into()),
        base(format!("prio-mix SP-{classes}"))
            .with_queueing(QueueingSpec::strict_priority(classes)),
        base(format!("prio-mix DWRR-{classes}"))
            .with_queueing(QueueingSpec::dwrr(vec![1; classes as usize])),
    ])
}

/// A trace-replay scenario: drive `topology` with the flows recorded in a
/// CSV/JSONL trace file (see `hpcc_workload::trace` for the formats). The
/// replay is deterministic, so two runs of the same file are bit-identical.
pub fn trace_replay(
    name: impl Into<String>,
    topology: TopologyChoice,
    cc: impl Into<CcSpec>,
    trace_path: impl Into<String>,
    end: Duration,
    seed: u64,
) -> ScenarioSpec {
    ScenarioSpec::new(name, topology, cc, end)
        .with_seed(seed)
        .with_queue_sampling(Duration::from_us(5))
        .with_workload(WorkloadSpec::trace_file(trace_path))
}

/// Custom flow-size distribution variant of [`testbed_websearch`] used by
/// sensitivity studies.
pub fn testbed_with_cdf(
    label: impl Into<String>,
    cc: impl Into<CcSpec>,
    cdf: CdfSpec,
    load: f64,
    end: Duration,
    seed: u64,
) -> ScenarioSpec {
    ScenarioSpec::new(label, TopologyChoice::testbed_pod(), cc, end)
        .with_seed(seed)
        .with_queue_sampling(Duration::from_us(5))
        .with_workload(WorkloadSpec::poisson(cdf, load))
}

/// The four schemes the fluid backend models with distinct steady states —
/// the overlap grid cross-validation runs on.
pub const SCHEME_SET_FLUID: [&str; 4] = ["DCQCN", "TIMELY", "DCTCP", "HPCC"];

/// The cross-validation grid: two small topologies (an 8-host star under
/// WebSearch and a 2×2 leaf-spine under FB_Hadoop) crossed with the four
/// fluid-supported schemes, all at 30% load with queue sampling on. Small
/// enough that the packet engine answers each cell in seconds, varied
/// enough that the fluid model's steady-state assumptions are actually
/// stressed (single bottleneck vs. multi-path fabric, mice-heavy vs.
/// elephant-heavy size mix).
///
/// Feed the scenarios to [`crate::ValidationReport::run`], or run them as a
/// plain [`Campaign`] on either backend.
pub fn validation_grid(end: Duration, seed: u64) -> Vec<ScenarioSpec> {
    let host_bw = Bandwidth::from_gbps(25);
    let leaf_spine = TopologyChoice::LeafSpine {
        leaves: 2,
        spines: 2,
        hosts_per_leaf: 4,
        host_bw,
        fabric_bw: Bandwidth::from_gbps(100),
        link_delay: Duration::from_us(1),
    };
    let mut specs = Vec::new();
    for label in SCHEME_SET_FLUID {
        specs.push(
            ScenarioSpec::new(
                format!("vgrid star {label}"),
                TopologyChoice::star(8, host_bw),
                CcSpec::by_label(label),
                end,
            )
            .with_seed(seed)
            .with_queue_sampling(Duration::from_us(5))
            .with_workload(WorkloadSpec::poisson(CdfSpec::WebSearch, 0.3)),
        );
    }
    for label in SCHEME_SET_FLUID {
        specs.push(
            ScenarioSpec::new(
                format!("vgrid leafspine {label}"),
                leaf_spine.clone(),
                CcSpec::by_label(label),
                end,
            )
            .with_seed(seed)
            .with_queue_sampling(Duration::from_us(5))
            .with_workload(WorkloadSpec::poisson(CdfSpec::FbHadoop, 0.3)),
        );
    }
    specs
}

/// The curated corpus topologies committed under `corpus/` at the repo
/// root, as repo-relative paths. Resolve them against the repo root (or
/// pass your own absolute paths to [`corpus_sweep`]) when the working
/// directory differs.
pub const CORPUS_FILES: [&str; 4] = [
    "corpus/abilene.edges",
    "corpus/dragonfly_9.edges",
    "corpus/jellyfish_12.edges",
    "corpus/rocketfuel_pop.edges",
];

/// One scenario shape swept across a set of corpus topology files (see
/// `corpus/` at the repo root and [`hpcc_topology::corpus`] for the
/// formats): the same scheme, load and seed on every imported graph, so the
/// only variable is the topology itself. `host_bw` is the reference NIC
/// rate declared for slowdown computation on heterogeneous graphs.
pub fn corpus_sweep(
    paths: &[&str],
    cc: impl Into<CcSpec> + Clone,
    host_bw: Bandwidth,
    load: f64,
    end: Duration,
    seed: u64,
) -> Campaign {
    Campaign::from_scenarios(
        paths
            .iter()
            .map(|path| {
                let stem = path
                    .rsplit('/')
                    .next()
                    .unwrap_or(path)
                    .trim_end_matches(".edges");
                ScenarioSpec::new(
                    format!("corpus {stem}"),
                    TopologyChoice::Corpus {
                        path: (*path).to_string(),
                        host_bw,
                    },
                    cc.clone(),
                    end,
                )
                .with_seed(seed)
                .with_queue_sampling(Duration::from_us(5))
                .with_workload(WorkloadSpec::poisson(CdfSpec::WebSearch, load))
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcc_types::FlowId;

    #[test]
    fn scheme_labels_round_trip() {
        let bw = Bandwidth::from_gbps(100);
        let rtt = Duration::from_us(13);
        for label in SCHEME_SET_FIG11 {
            let cc = scheme_by_label(label, bw, rtt);
            assert_eq!(cc.label(), label);
        }
    }

    #[test]
    #[should_panic(expected = "unknown scheme")]
    fn unknown_scheme_panics() {
        scheme_by_label("BBR", Bandwidth::from_gbps(100), Duration::from_us(13));
    }

    #[test]
    fn two_to_one_preset_shape() {
        let spec = two_to_one(
            false,
            Bandwidth::from_gbps(100),
            1_000_000,
            Duration::from_ms(1),
        );
        let e = spec.build();
        assert_eq!(e.flows().len(), 2);
        assert_eq!(e.topology().hosts().len(), 3);
        assert_eq!(e.config().trace_ports.len(), 1);
        assert!(e.config().int_enabled);
        let rx = two_to_one(
            true,
            Bandwidth::from_gbps(100),
            1_000_000,
            Duration::from_ms(1),
        );
        assert_eq!(rx.name, "HPCC-rxRate");
    }

    #[test]
    fn incast_preset_has_n_flows_to_one_receiver() {
        let e = incast_on_star(
            "HPCC",
            CcSpec::by_label("HPCC"),
            16,
            500_000,
            Bandwidth::from_gbps(100),
            Duration::from_ms(1),
        )
        .build();
        assert_eq!(e.flows().len(), 16);
        let recv = e.flows()[0].dst;
        assert!(e.flows().iter().all(|f| f.dst == recv));
        assert_eq!(e.flows()[0].id, FlowId(1));
    }

    #[test]
    fn testbed_preset_generates_background_and_incast() {
        let plain = testbed_websearch(
            "DCQCN",
            CcSpec::by_label("DCQCN"),
            0.3,
            Duration::from_ms(20),
            None,
            None,
            FlowControlMode::Lossless,
            7,
        )
        .build();
        assert!(plain.flows().len() > 10);
        let with_incast = testbed_websearch(
            "DCQCN+incast",
            CcSpec::by_label("DCQCN"),
            0.3,
            Duration::from_ms(20),
            Some(16),
            None,
            FlowControlMode::Lossless,
            7,
        )
        .build();
        assert!(with_incast.flows().len() > plain.flows().len());
        // The background workload is unchanged by adding the incast.
        let background = |e: &crate::Experiment| {
            e.flows()
                .iter()
                .filter(|f| f.id.raw() < 10_000_000)
                .copied()
                .collect::<Vec<_>>()
        };
        assert_eq!(background(&plain), background(&with_incast));
        // ECN thresholds can be swept (Figure 3).
        let swept = testbed_websearch(
            "DCQCN Kmin=12K",
            CcSpec::by_label("DCQCN"),
            0.3,
            Duration::from_ms(10),
            None,
            Some(EcnConfig::thresholds_kb(12, 50)),
            FlowControlMode::Lossless,
            7,
        )
        .build();
        assert_eq!(swept.config().ecn.unwrap().kmin_bytes, 12_000);
    }

    #[test]
    fn fattree_preset_small_scale() {
        let e = fattree_fb_hadoop(
            "HPCC",
            CcSpec::by_label("HPCC"),
            FatTreeParams::small(),
            0.3,
            Duration::from_ms(10),
            true,
            FlowControlMode::Lossless,
            3,
        )
        .build();
        assert_eq!(
            e.topology().hosts().len(),
            FatTreeParams::small().total_hosts()
        );
        assert!(e.flows().len() > 10);
        assert!(
            e.flows().iter().any(|f| f.size == 500_000),
            "incast flows present"
        );
    }

    #[test]
    fn fig11_campaign_covers_the_scheme_set() {
        let campaign = fig11_campaign(FatTreeParams::small(), 0.3, Duration::from_ms(1), true, 5);
        assert_eq!(campaign.len(), SCHEME_SET_FIG11.len());
        for (spec, label) in campaign.scenarios().iter().zip(SCHEME_SET_FIG11) {
            assert_eq!(spec.name, label);
            assert_eq!(spec.scheme_label(), label);
            assert_eq!(spec.seed, 5);
            assert_eq!(spec.workloads.len(), 2);
        }
    }

    #[test]
    fn locality_and_skew_sweeps_declare_one_scenario_per_point() {
        let sweep = fattree_locality_sweep(
            CcSpec::by_label("HPCC"),
            FatTreeParams::small(),
            0.3,
            Duration::from_ms(1),
            &[0.0, 0.5, 0.9],
            4,
        );
        assert_eq!(sweep.len(), 3);
        for (spec, frac) in sweep.scenarios().iter().zip([0.0, 0.5, 0.9]) {
            assert_eq!(spec.name, format!("locality intra={frac:.2}"));
            assert_eq!(spec.seed, 4);
            match &spec.workloads[0] {
                WorkloadSpec::Poisson { pairs, .. } => {
                    assert_eq!(
                        *pairs,
                        PairSpec::Locality(LocalitySpec::IntraRack { fraction: frac })
                    );
                }
                other => panic!("{other:?}"),
            }
            // Every point resolves into a runnable experiment.
            assert!(!spec.build().flows().is_empty());
        }
        let skew = fattree_skew_sweep(
            CcSpec::by_label("DCQCN"),
            FatTreeParams::small(),
            0.3,
            Duration::from_ms(1),
            &[0.0, 1.2],
            4,
        );
        assert_eq!(skew.len(), 2);
        assert_eq!(skew.scenarios()[1].name, "skew zipf=1.20");
        // The sweep serializes into a manifest and back.
        let back = Campaign::from_json_str(&skew.to_json_string()).unwrap();
        assert_eq!(back, skew);
    }

    #[test]
    fn fault_presets_declare_identical_timelines() {
        let params = FatTreeParams::small();
        let topo = TopologyChoice::FatTree(params).build();
        let link = first_fabric_link(&topo);
        assert!(matches!(topo.kind(topo.links()[link].a), NodeKind::Switch));
        assert!(matches!(topo.kind(topo.links()[link].b), NodeKind::Switch));

        let sweep = fattree_linkflap_sweep(
            CcSpec::by_label("HPCC"),
            params,
            0.3,
            Duration::from_ms(2),
            &[0, 2],
            9,
        );
        assert_eq!(sweep.len(), 2);
        assert_eq!(sweep.scenarios()[0].name, "linkflap x1");
        assert_eq!(sweep.scenarios()[1].name, "linkflap x3");
        for spec in sweep.scenarios() {
            let faults = spec.faults.as_ref().unwrap();
            assert_eq!(faults.link_faults[0].link, link);
            assert_eq!(faults.link_faults[0].mode, LinkDownMode::Pause);
            // Every point resolves into a runnable experiment.
            assert!(spec.try_build().is_ok());
        }

        let matrix = degraded_link_cc_matrix(params, 0.3, Duration::from_ms(2), 9);
        assert_eq!(matrix.len(), SCHEME_SET_FIG11.len());
        let reference = matrix.scenarios()[0].faults.clone().unwrap();
        for (spec, label) in matrix.scenarios().iter().zip(SCHEME_SET_FIG11) {
            assert_eq!(spec.scheme_label(), label);
            // The fault timeline is bit-identical across all six schemes.
            assert_eq!(spec.faults.as_ref(), Some(&reference));
            assert_eq!(spec.flow_control, FlowControlMode::LossyIrn);
        }

        let smoke = fault_smoke(params, 0.2, Duration::from_ms(1), 3);
        assert_eq!(smoke.len(), 2);
        assert!(!smoke.scenarios()[0]
            .faults
            .as_ref()
            .unwrap()
            .link_faults
            .is_empty());
        assert!(!smoke.scenarios()[1]
            .faults
            .as_ref()
            .unwrap()
            .stragglers
            .is_empty());
        // The campaign serializes into a manifest and back.
        let back = Campaign::from_json_str(&smoke.to_json_string()).unwrap();
        assert_eq!(back, smoke);
    }

    #[test]
    fn micro_benchmark_presets_build() {
        let bw = Bandwidth::from_gbps(100);
        let ls = long_short(CcSpec::by_label("HPCC"), bw, Duration::from_ms(2)).build();
        assert_eq!(ls.flows().len(), 2);
        assert!(ls.flows()[1].start > ls.flows()[0].start);
        let em = elephant_mice(
            CcSpec::by_label("HPCC"),
            bw,
            Duration::from_us(100),
            Duration::from_ms(1),
        )
        .build();
        assert!(em.flows().len() > 5);
        let fair = fairness(
            CcSpec::by_label("HPCC"),
            bw,
            Duration::from_ms(1),
            Duration::from_ms(5),
        )
        .build();
        assert_eq!(fair.flows().len(), 4);
        let storm = pfc_storm(0.3, 16, Duration::from_ms(5), 1).build();
        assert!(!storm.flows().is_empty());
        assert_eq!(storm.config().buffer_bytes, 4_000_000);
        let custom = testbed_with_cdf(
            "custom",
            CcSpec::by_label("HPCC"),
            CdfSpec::Fixed(10_000),
            0.2,
            Duration::from_ms(5),
            2,
        )
        .build();
        assert!(custom.flows().iter().all(|f| f.size == 10_000));
    }
}
