//! Regenerate Figure 6 (txRate vs rxRate congestion signal).
//! Usage: `cargo run --release -p hpcc-bench --bin fig06 [duration_ms]`
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ms = hpcc_bench::arg_or(&args, 1, 2u64);
    print!("{}", hpcc_bench::figures::fig06(ms));
}
