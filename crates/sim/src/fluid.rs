//! The Appendix A fluid model, promoted to a first-class backend.
//!
//! Two layers live here:
//!
//! * [`FluidNetwork`] — the paper's Appendix A.2 rate recursion over an
//!   explicit path×resource incidence matrix, together with the A.3
//!   additive-increase equilibrium forms. This is the library core the
//!   `fluid_convergence` figure and the lemma tests exercise directly.
//! * [`FluidBackend`] — a flow-level engine behind the
//!   [`crate::backend::Backend`] boundary: it builds the path×resource
//!   matrix from [`TopologySpec`] routing (using the *same* deterministic
//!   per-(flow, node) ECMP hash as the packet switches), models each CC
//!   scheme by its steady state, advances flows epoch by epoch with the A.2
//!   recursion re-solved at every flow arrival/completion, and synthesizes
//!   FCT / utilization / queue estimates into a [`SimOutput`].
//!
//! # The CC steady-state model
//!
//! The packet engine simulates the control law per ACK; the fluid backend
//! only keeps what survives at equilibrium:
//!
//! * **HPCC** — bottlenecks settle at the target utilization `η`, lifted by
//!   the Appendix A.3 additive-increase equilibrium
//!   `U = η / (1 − W_AI/(RTT·R))` (clamped to 1), and leave no standing
//!   queue.
//! * **DCQCN / DCTCP** — ECN keeps the link full (`U = 1`) with a standing
//!   queue between the marking thresholds (`(Kmin+Kmax)/2`; DCTCP's step
//!   marking makes that exactly `Kmin`).
//! * **TIMELY** — the RTT-gradient band keeps the link full with a standing
//!   delay inside `[T_low, T_high]` (modelled at the midpoint).
//!
//! Every flow's completion additionally pays the forward path delay, the
//! reverse (ACK) path delay and its bottleneck's standing-queue delay, so
//! short-flow FCTs stay latency-dominated exactly as in the packet engine.
//!
//! The whole run is pure `f64` arithmetic over a deterministic event order:
//! the same [`CompiledScenario`] produces the same `SimOutput` (and digest)
//! on every run and platform with IEEE-754 semantics.

use crate::backend::{Backend, CompiledScenario};
use crate::config::SimConfig;
use crate::output::{FlowRecord, SimOutput};
use crate::switch::ecmp_index;
use hpcc_cc::CcAlgorithm;
use hpcc_topology::{NodeKind, TopologySpec};
use hpcc_types::{Duration, FlowSpec, NodeId, PortId, SimTime};

/// A fluid network: `I` resources with capacities, `J` paths described by an
/// incidence matrix.
///
/// Appendix A.2 of the paper proves that the synchronous update
///
/// ```text
/// Y(n)     = A · R(n)
/// R_j(n+1) = R_j(n) / max_i { Y_i(n) · A_ij / C_i }
/// ```
///
/// (every path divides its rate by the utilization of its most-loaded
/// resource) reaches a *feasible* allocation after one step, never decreases
/// afterwards, and converges to a Pareto-optimal allocation (the paper's
/// induction removes each saturated resource *and its load* from the
/// network; on the unreduced recursion the remaining paths approach their
/// bottleneck geometrically, so Pareto optimality is verified within a small
/// tolerance rather than after exactly `I` steps).
#[derive(Clone, Debug)]
pub struct FluidNetwork {
    /// `incidence[i][j] == true` iff resource `i` is used by path `j`.
    pub incidence: Vec<Vec<bool>>,
    /// Capacity of each resource.
    pub capacities: Vec<f64>,
}

impl FluidNetwork {
    /// Build a network from an incidence matrix and capacities.
    ///
    /// # Panics
    /// Panics if dimensions are inconsistent, a capacity is not positive, or
    /// some path uses no resource (the lemma requires every column of `A` to
    /// be non-zero).
    pub fn new(incidence: Vec<Vec<bool>>, capacities: Vec<f64>) -> Self {
        assert_eq!(incidence.len(), capacities.len(), "one row per resource");
        assert!(!incidence.is_empty(), "need at least one resource");
        let paths = incidence[0].len();
        assert!(paths > 0, "need at least one path");
        for row in &incidence {
            assert_eq!(row.len(), paths, "ragged incidence matrix");
        }
        for &c in &capacities {
            assert!(c > 0.0, "capacities must be positive");
        }
        for j in 0..paths {
            assert!(
                incidence.iter().any(|row| row[j]),
                "path {j} uses no resource"
            );
        }
        FluidNetwork {
            incidence,
            capacities,
        }
    }

    /// Number of resources `I`.
    pub fn resources(&self) -> usize {
        self.capacities.len()
    }

    /// Number of paths `J`.
    pub fn paths(&self) -> usize {
        self.incidence[0].len()
    }

    /// Load `Y = A · R` on every resource.
    pub fn loads(&self, rates: &[f64]) -> Vec<f64> {
        self.incidence
            .iter()
            .map(|row| {
                row.iter()
                    .zip(rates)
                    .filter(|(used, _)| **used)
                    .map(|(_, r)| *r)
                    .sum()
            })
            .collect()
    }

    /// True if no resource is loaded above its capacity (within `eps`).
    pub fn is_feasible(&self, rates: &[f64], eps: f64) -> bool {
        self.loads(rates)
            .iter()
            .zip(&self.capacities)
            .all(|(y, c)| *y <= c * (1.0 + eps))
    }

    /// One synchronous update of the Appendix A.2 recursion (equations 5–6).
    pub fn step(&self, rates: &[f64]) -> Vec<f64> {
        let loads = self.loads(rates);
        rates
            .iter()
            .enumerate()
            .map(|(j, r)| {
                let k = self
                    .incidence
                    .iter()
                    .enumerate()
                    .filter(|(_, row)| row[j])
                    .map(|(i, _)| loads[i] / self.capacities[i])
                    .fold(f64::MIN, f64::max);
                r / k.max(f64::MIN_POSITIVE)
            })
            .collect()
    }

    /// Iterate the recursion from `initial` until the rates stop changing
    /// (relative change below `tol`) or `max_steps` is reached. Returns the
    /// trajectory including the initial point.
    pub fn converge(&self, initial: &[f64], tol: f64, max_steps: usize) -> Vec<Vec<f64>> {
        let mut trajectory = vec![initial.to_vec()];
        for _ in 0..max_steps {
            let next = self.step(trajectory.last().unwrap());
            let prev = trajectory.last().unwrap();
            let changed = next
                .iter()
                .zip(prev)
                .any(|(a, b)| (a - b).abs() > tol * b.abs().max(1e-12));
            trajectory.push(next);
            if !changed {
                break;
            }
        }
        trajectory
    }

    /// True if the allocation is Pareto optimal: every path crosses at least
    /// one resource that is (nearly) saturated.
    pub fn is_pareto_optimal(&self, rates: &[f64], eps: f64) -> bool {
        let loads = self.loads(rates);
        (0..self.paths()).all(|j| {
            self.incidence
                .iter()
                .enumerate()
                .filter(|(_, row)| row[j])
                .any(|(i, _)| loads[i] >= self.capacities[i] * (1.0 - eps))
        })
    }
}

/// Appendix A.3: the equilibrium rate of a source whose most congested
/// bottleneck sits at utilization `u`, with target utilization `u_target`
/// and additive increase `a` per RTT: `R = a / (1 - u_target / u)`.
pub fn ai_equilibrium_rate(a: f64, u_target: f64, u: f64) -> f64 {
    assert!(u > u_target, "equilibrium requires U > U_target");
    a / (1.0 - u_target / u)
}

/// Appendix A.3 (inverted): the equilibrium utilization of the most
/// congested bottleneck when its flows settle at rate `r`:
/// `U = U_target / (1 - a / r)`.
pub fn ai_equilibrium_utilization(a: f64, u_target: f64, r: f64) -> f64 {
    assert!(r > a, "rate must exceed the additive increase");
    u_target / (1.0 - a / r)
}

/// What survives of a CC scheme at steady state (see the module docs).
#[derive(Clone, Copy, Debug)]
struct SteadyState {
    /// Target bottleneck utilization (HPCC's `η`; 1.0 for the filling
    /// schemes).
    utilization: f64,
    /// Additive-increase rate in bit/s (`W_AI / base RTT`), feeding the A.3
    /// equilibrium lift. Zero for non-HPCC schemes.
    ai_rate_bps: f64,
    /// Standing bottleneck queue in bytes (ECN-governed schemes).
    queue_bytes: f64,
    /// Standing bottleneck delay (TIMELY's RTT-gradient band).
    queue_delay: Duration,
}

fn steady_state(cfg: &SimConfig) -> SteadyState {
    match &cfg.cc {
        CcAlgorithm::Hpcc(h) => SteadyState {
            utilization: h.eta.clamp(0.05, 1.0),
            ai_rate_bps: (h.wai as f64 * 8.0) / cfg.base_rtt.as_secs_f64().max(1e-12),
            queue_bytes: 0.0,
            queue_delay: Duration::ZERO,
        },
        CcAlgorithm::Dcqcn(_) | CcAlgorithm::DcqcnWin(_) | CcAlgorithm::Dctcp(_) => SteadyState {
            utilization: 1.0,
            ai_rate_bps: 0.0,
            queue_bytes: cfg
                .ecn
                .map(|e| (e.kmin_bytes + e.kmax_bytes) as f64 / 2.0)
                .unwrap_or(0.0),
            queue_delay: Duration::ZERO,
        },
        CcAlgorithm::Timely(t) | CcAlgorithm::TimelyWin(t) => SteadyState {
            utilization: 1.0,
            ai_rate_bps: 0.0,
            queue_bytes: 0.0,
            queue_delay: Duration::from_ps((t.t_low.as_ps() + t.t_high.as_ps()) / 2),
        },
    }
}

/// One egress link used by at least one flow — a row of the incidence
/// matrix, stored sparsely.
struct Resource {
    node: NodeId,
    port: PortId,
    /// Raw link capacity in bit/s (wire bits).
    cap_bps: f64,
    /// `cap_bps` scaled by the scheme's steady-state utilization for the
    /// current epoch (the HPCC A.3 lift depends on the active flow count).
    eff_cap: f64,
    load: f64,
    n_active: u32,
    is_switch: bool,
    saturated_now: bool,
    ever_saturated: bool,
    tx_bits: f64,
}

/// Per-flow fluid state.
struct FluidFlow {
    spec: FlowSpec,
    /// Resource indices along the routed path; empty means unroutable (the
    /// packet engine would drop every packet — the flow never finishes).
    path: Vec<u32>,
    /// Source NIC line rate (the recursion's initial rate, per the RDMA
    /// start-at-line-rate model).
    nic_bps: f64,
    /// Total wire bytes to move (payload + per-packet header/INT overhead).
    wire_bytes: f64,
    remaining: f64,
    rate: f64,
    /// Unconditional FCT padding: forward + reverse propagation delay.
    base_pad: Duration,
    /// Contention-only FCT padding: the steady-state standing queue the CC
    /// scheme holds at a *shared* bottleneck. A solo flow on an uncongested
    /// path sees no standing queue, so this is added only when the flow
    /// shared some path resource with another active flow — and a queue
    /// cannot have stood for longer than the sharing lasted, so the pad is
    /// capped by [`FluidFlow::contended_s`].
    queue_pad: Duration,
    /// Seconds during which some resource on the path carried ≥ 2 active
    /// flows while this flow was in flight.
    contended_s: f64,
    done: bool,
}

fn secs_to_simtime(s: f64) -> SimTime {
    SimTime::from_ps((s * 1e12).round().max(0.0) as u64)
}

/// Walk the routed path of one flow, interning each egress link in
/// `resources`. Uses the same per-(flow, node) ECMP hash as the packet
/// switches, so both backends put a flow on the same links. Returns `None`
/// when the topology has no route.
fn route_flow(
    topo: &TopologySpec,
    spec: &FlowSpec,
    resources: &mut Vec<Resource>,
    index: &mut std::collections::HashMap<(NodeId, PortId), u32>,
) -> Option<Vec<u32>> {
    let mut path = Vec::with_capacity(6);
    let mut node = spec.src;
    let mut hops = 0usize;
    while node != spec.dst {
        hops += 1;
        if hops > topo.node_count() {
            return None; // routing loop: treat as unroutable
        }
        let candidates = topo.next_hops(node, spec.dst);
        if candidates.is_empty() {
            return None;
        }
        let port = match topo.kind(node) {
            NodeKind::Host => candidates[0],
            NodeKind::Switch => candidates[ecmp_index(spec.id.raw(), node, candidates.len())],
        };
        let key = (node, port);
        let ri = *index.entry(key).or_insert_with(|| {
            let desc = &topo.ports(node)[port.index()];
            resources.push(Resource {
                node,
                port,
                cap_bps: desc.bandwidth.as_bps() as f64,
                eff_cap: desc.bandwidth.as_bps() as f64,
                load: 0.0,
                n_active: 0,
                is_switch: matches!(topo.kind(node), NodeKind::Switch),
                saturated_now: false,
                ever_saturated: false,
                tx_bits: 0.0,
            });
            (resources.len() - 1) as u32
        });
        let desc = &topo.ports(node)[port.index()];
        path.push(ri);
        node = desc.peer_node;
    }
    if path.is_empty() {
        None // src == dst: nothing to transmit over the fabric
    } else {
        Some(path)
    }
}

/// Re-solve the A.2 recursion for the current active set. Rates start at the
/// NIC line rate (the RDMA model) and converge geometrically onto the
/// Pareto-optimal allocation over the effective (steady-state-scaled)
/// capacities.
fn solve_rates(active: &[usize], flows: &mut [FluidFlow], res: &mut [Resource], ss: &SteadyState) {
    for r in res.iter_mut() {
        r.n_active = 0;
    }
    for &f in active {
        for &ri in &flows[f].path {
            res[ri as usize].n_active += 1;
        }
    }
    for r in res.iter_mut() {
        let mut u = ss.utilization;
        // Appendix A.3: W_AI > 0 lifts the equilibrium utilization above η.
        if ss.ai_rate_bps > 0.0 && r.n_active > 0 {
            let share = u * r.cap_bps / r.n_active as f64;
            u = if ss.ai_rate_bps >= share {
                1.0
            } else {
                (u / (1.0 - ss.ai_rate_bps / share)).min(1.0)
            };
        }
        r.eff_cap = r.cap_bps * u;
    }
    for &f in active {
        flows[f].rate = flows[f].nic_bps;
    }
    for _ in 0..64 {
        for r in res.iter_mut() {
            r.load = 0.0;
        }
        for &f in active {
            let rate = flows[f].rate;
            for &ri in &flows[f].path {
                res[ri as usize].load += rate;
            }
        }
        let mut changed = false;
        for &f in active {
            let fl = &mut flows[f];
            let mut k = f64::MIN;
            for &ri in &fl.path {
                let r = &res[ri as usize];
                k = k.max(r.load / r.eff_cap);
            }
            let next = fl.rate / k.max(f64::MIN_POSITIVE);
            if (next - fl.rate).abs() > 1e-9 * fl.rate.abs().max(1e-12) {
                changed = true;
            }
            fl.rate = next;
        }
        if !changed {
            break;
        }
    }
    for r in res.iter_mut() {
        r.load = 0.0;
        r.saturated_now = false;
    }
    for &f in active {
        let rate = flows[f].rate;
        for &ri in &flows[f].path {
            res[ri as usize].load += rate;
        }
    }
    for r in res.iter_mut() {
        if r.n_active > 0 && r.load >= 0.999 * r.eff_cap {
            r.saturated_now = true;
            r.ever_saturated = true;
        }
    }
}

/// The Appendix A.2 fluid-model engine behind the
/// [`crate::backend::Backend`] boundary.
///
/// Orders of magnitude faster than the packet engine (work scales with flow
/// arrivals/completions instead of packets), at the price of modelling CC as
/// its steady state: no per-ACK dynamics, no PFC, no loss, no multi-class
/// scheduling, no fault timelines. Scenario resolution rejects the
/// unsupported combinations up front.
pub struct FluidBackend;

impl Backend for FluidBackend {
    fn name(&self) -> &'static str {
        "fluid"
    }

    fn run(&self, scenario: CompiledScenario) -> SimOutput {
        fluid_run(scenario)
    }
}

fn fluid_run(scenario: CompiledScenario) -> SimOutput {
    let CompiledScenario { topo, cfg, flows } = scenario;
    let ss = steady_state(&cfg);
    let mut out = SimOutput::new(1024, cfg.flow_throughput_bin.unwrap_or(Duration::ZERO));
    let flow_count = flows.len();
    let header_wire = cfg.data_wire_size() - cfg.mtu_payload;
    let end_s = cfg.end_time.as_secs_f64();

    // Route every flow, interning the egress links it crosses.
    let mut resources: Vec<Resource> = Vec::new();
    let mut res_index = std::collections::HashMap::new();
    let mut fluid: Vec<FluidFlow> = flows
        .iter()
        .map(|spec| {
            let path = route_flow(&topo, spec, &mut resources, &mut res_index);
            let nic_bps = topo
                .ports(spec.src)
                .first()
                .map(|p| p.bandwidth.as_bps() as f64)
                .unwrap_or(0.0);
            let wire_bytes =
                spec.size as f64 + spec.packet_count(cfg.mtu_payload) as f64 * header_wire as f64;
            let (path, base_pad, queue_pad) = match path {
                Some(p) => {
                    let min_cap = p
                        .iter()
                        .map(|&ri| resources[ri as usize].cap_bps)
                        .fold(f64::MAX, f64::min);
                    let fwd = topo
                        .path_one_way_delay(spec.src, spec.dst, cfg.data_wire_size())
                        .unwrap_or(Duration::ZERO);
                    let rev = topo
                        .path_one_way_delay(spec.dst, spec.src, cfg.data_wire_size())
                        .unwrap_or(Duration::ZERO);
                    let standing = Duration::from_ps(
                        ((ss.queue_bytes * 8.0 / min_cap.max(1.0)) * 1e12).round() as u64,
                    ) + ss.queue_delay;
                    (p, fwd + rev, standing)
                }
                None => (Vec::new(), Duration::ZERO, Duration::ZERO),
            };
            FluidFlow {
                spec: *spec,
                path,
                nic_bps: nic_bps.max(1.0),
                wire_bytes,
                remaining: wire_bytes,
                rate: 0.0,
                base_pad,
                queue_pad,
                contended_s: 0.0,
                done: false,
            }
        })
        .collect();

    // Admission order: by start time, then id — the deterministic event order.
    let mut order: Vec<usize> = (0..fluid.len())
        .filter(|&i| !fluid[i].path.is_empty())
        .collect();
    order.sort_by(|&a, &b| {
        (fluid[a].spec.start, fluid[a].spec.id.raw())
            .cmp(&(fluid[b].spec.start, fluid[b].spec.id.raw()))
    });

    let switch_ports_total: usize = topo.switches().iter().map(|&s| topo.ports(s).len()).sum();
    let sample_interval_s = cfg.queue_sample_interval.map(|d| d.as_secs_f64());
    let mut next_sample_s = sample_interval_s.unwrap_or(f64::MAX);

    let mut records: Vec<FlowRecord> = Vec::new();
    let mut active: Vec<usize> = Vec::new();
    let mut admit = 0usize;
    let mut t = 0.0f64;
    let mut last_event_s = 0.0f64;
    let goodput_bin_s = cfg
        .flow_throughput_bin
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0);

    // Emit the queue samples due in (from, to]: every switch egress is
    // sampled, saturated fluid resources at their standing-queue estimate and
    // everything else at zero — mirroring the packet engine's all-ports
    // sampling cadence so queue CDFs stay comparable.
    macro_rules! emit_samples {
        ($to:expr, $resources:expr) => {
            if let Some(interval) = sample_interval_s {
                while next_sample_s <= $to && next_sample_s <= end_s {
                    let mut sampled = 0usize;
                    for r in $resources.iter() {
                        if !r.is_switch {
                            continue;
                        }
                        sampled += 1;
                        let q = if r.saturated_now {
                            (ss.queue_bytes + ss.queue_delay.as_secs_f64() * r.cap_bps / 8.0)
                                .round() as u64
                        } else {
                            0
                        };
                        out.record_queue_sample(q);
                    }
                    for _ in sampled..switch_ports_total {
                        out.record_queue_sample(0);
                    }
                    next_sample_s += interval;
                }
            }
        };
    }

    loop {
        if active.is_empty() {
            // Jump to the next arrival (or finish).
            match order.get(admit) {
                Some(&i) if fluid[i].spec.start.as_secs_f64() <= end_s => {
                    let start_s = fluid[i].spec.start.as_secs_f64();
                    // The network is idle while we jump: queues are drained.
                    for r in resources.iter_mut() {
                        r.saturated_now = false;
                    }
                    emit_samples!(start_s, resources);
                    t = start_s;
                    last_event_s = last_event_s.max(t);
                    while admit < order.len()
                        && fluid[order[admit]].spec.start.as_secs_f64() <= t + 1e-15
                    {
                        active.push(order[admit]);
                        admit += 1;
                    }
                }
                _ => break,
            }
        }

        solve_rates(&active, &mut fluid, &mut resources, &ss);
        out.events_processed += active.len() as u64 + 1;
        let shared: Vec<bool> = active
            .iter()
            .map(|&f| {
                fluid[f]
                    .path
                    .iter()
                    .any(|&ri| resources[ri as usize].n_active >= 2)
            })
            .collect();

        // Next event: the earliest of (next arrival, earliest completion,
        // horizon).
        let next_arrival = order
            .get(admit)
            .map(|&i| fluid[i].spec.start.as_secs_f64())
            .unwrap_or(f64::MAX);
        let mut t_event = next_arrival.min(end_s);
        for &f in &active {
            let fl = &fluid[f];
            let done_at = t + fl.remaining * 8.0 / fl.rate.max(1.0);
            t_event = t_event.min(done_at);
        }
        let dt = (t_event - t).max(0.0);

        // Integrate [t, t_event): drain bytes, accumulate link tx, spread
        // goodput, emit queue samples.
        emit_samples!(t_event, resources);
        for (k, &f) in active.iter().enumerate() {
            let fl = &mut fluid[f];
            if shared[k] {
                fl.contended_s += dt;
            }
            let drained = (fl.rate * dt / 8.0).min(fl.remaining);
            fl.remaining -= drained;
            if goodput_bin_s > 0.0 && drained > 0.0 {
                let app_ratio = fl.spec.size as f64 / fl.wire_bytes.max(1.0);
                // Split the drained bytes across the goodput bins the epoch
                // overlaps.
                let mut b0 = t;
                while b0 < t_event {
                    let bin_end = ((b0 / goodput_bin_s).floor() + 1.0) * goodput_bin_s;
                    let b1 = bin_end.min(t_event);
                    let share = drained * (b1 - b0) / dt.max(1e-18) * app_ratio;
                    out.record_goodput(
                        fl.spec.id,
                        secs_to_simtime((b0 + b1) / 2.0),
                        share.round() as u64,
                    );
                    b0 = b1;
                }
            }
        }
        for r in resources.iter_mut() {
            r.tx_bits += r.load * dt;
        }
        t = t_event;
        if t >= end_s {
            break;
        }

        // Completions at t.
        active.retain(|&f| {
            let fl = &mut fluid[f];
            if fl.remaining > 1e-3 {
                return true;
            }
            fl.done = true;
            let queue_pad_s = fl.queue_pad.as_secs_f64().min(fl.contended_s);
            let pad = fl.base_pad + Duration::from_ps((queue_pad_s * 1e12).round() as u64);
            let finish = secs_to_simtime(t) + pad;
            if finish.as_secs_f64() <= end_s {
                records.push(FlowRecord {
                    id: fl.spec.id,
                    src: fl.spec.src,
                    dst: fl.spec.dst,
                    size: fl.spec.size,
                    start: fl.spec.start,
                    finish,
                    prio: fl.spec.priority.wire_code(),
                });
                last_event_s = last_event_s.max(finish.as_secs_f64());
            }
            false
        });
        // Arrivals at t.
        while admit < order.len() && fluid[order[admit]].spec.start.as_secs_f64() <= t + 1e-15 {
            active.push(order[admit]);
            admit += 1;
            last_event_s = last_event_s.max(t);
        }
    }

    // Trailing queue samples up to the horizon (the packet engine's sampling
    // events keep firing on an idle network).
    for r in resources.iter_mut() {
        r.saturated_now = false;
    }
    emit_samples!(end_s, resources);

    records.sort_by_key(|r| (r.finish, r.id.raw()));
    for fl in &fluid {
        let app_done = (fl.wire_bytes - fl.remaining).max(0.0)
            * (fl.spec.size as f64 / fl.wire_bytes.max(1.0));
        let delivered = if fl.done {
            fl.spec.packet_count(cfg.mtu_payload)
        } else {
            (app_done / cfg.mtu_payload as f64).floor() as u64
        };
        out.packets_delivered += delivered;
        out.packets_sent += delivered;
    }
    out.unfinished_flows = flow_count - records.len();
    out.flows = records;
    for r in &resources {
        let counters = out.ports.entry((r.node, r.port)).or_default();
        counters.tx_bytes = (r.tx_bits / 8.0).round() as u64;
        counters.max_queue_bytes = if r.ever_saturated && r.is_switch {
            (ss.queue_bytes + ss.queue_delay.as_secs_f64() * r.cap_bps / 8.0).round() as u64
        } else {
            0
        };
    }
    // Mirror the packet engine's horizon semantics: periodic samplers keep
    // the clock running to the horizon; otherwise the run ends at its last
    // event.
    out.elapsed = if sample_interval_s.is_some() {
        cfg.end_time
    } else {
        secs_to_simtime(last_event_s.min(end_s))
    };
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{backend_for, BackendKind};
    use hpcc_topology::star;
    use hpcc_types::{Bandwidth, FlowId};

    fn star_scenario(cc: CcAlgorithm, flows: Vec<FlowSpec>) -> CompiledScenario {
        let bw = Bandwidth::from_gbps(25);
        let topo = star(4, bw, Duration::from_us(1));
        let mut cfg = SimConfig::for_cc(cc, bw, topo.suggested_base_rtt(1106));
        cfg.end_time = SimTime::from_ms(50);
        CompiledScenario { topo, cfg, flows }
    }

    /// The classic two-resource line network: path 0 uses both resources,
    /// paths 1 and 2 use one each.
    fn line_network() -> FluidNetwork {
        FluidNetwork::new(
            vec![vec![true, true, false], vec![true, false, true]],
            vec![10.0, 20.0],
        )
    }

    #[test]
    fn one_step_reaches_feasibility() {
        let net = line_network();
        let start = vec![50.0, 50.0, 50.0];
        assert!(!net.is_feasible(&start, 1e-9));
        let after = net.step(&start);
        assert!(
            net.is_feasible(&after, 1e-9),
            "lemma (i): feasible after one step"
        );
    }

    #[test]
    fn rates_never_decrease_after_the_first_step() {
        let net = line_network();
        let trajectory = net.converge(&[50.0, 50.0, 50.0], 1e-12, 20);
        for w in trajectory[1..].windows(2) {
            for (a, b) in w[0].iter().zip(&w[1]) {
                assert!(b + 1e-9 >= *a, "lemma (ii): rates are non-decreasing");
            }
        }
    }

    #[test]
    fn converges_to_pareto_optimum() {
        let net = line_network();
        // The most-utilized resource saturates after exactly one step
        // (lemma): resource 0 carries 10 = C_0 from then on.
        let after_one = net.step(&[50.0, 50.0, 50.0]);
        assert!((net.loads(&after_one)[0] - 10.0).abs() < 1e-9);
        let trajectory = net.converge(&[50.0, 50.0, 50.0], 1e-9, 100);
        let last = trajectory.last().unwrap();
        assert!(
            net.is_pareto_optimal(last, 1e-6),
            "lemma (iii): Pareto optimal"
        );
        // The expected fixed point: resource 0 saturates first (10 split
        // between paths 0 and 1), then path 2 grabs the slack on resource 1.
        assert!((last[0] - 5.0).abs() < 1e-6);
        assert!((last[1] - 5.0).abs() < 1e-6);
        assert!((last[2] - 15.0).abs() < 1e-4);
    }

    #[test]
    fn random_networks_satisfy_the_lemma() {
        // Deterministic pseudo-random sweep over many topologies.
        let mut x: u64 = 0xfeed_beef;
        let mut rand = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as f64 / (1u64 << 31) as f64
        };
        for case in 0..50 {
            let resources = 1 + (rand() * 5.0) as usize;
            let paths = 1 + (rand() * 6.0) as usize;
            let mut incidence = vec![vec![false; paths]; resources];
            for (j, _) in (0..paths).enumerate() {
                // Every path uses at least one resource.
                let forced = (rand() * resources as f64) as usize % resources;
                incidence[forced][j] = true;
                for row in incidence.iter_mut() {
                    if rand() < 0.3 {
                        row[j] = true;
                    }
                }
            }
            let capacities: Vec<f64> = (0..resources).map(|_| 1.0 + rand() * 99.0).collect();
            let net = FluidNetwork::new(incidence, capacities);
            let initial: Vec<f64> = (0..paths).map(|_| 0.1 + rand() * 200.0).collect();
            let after_one = net.step(&initial);
            assert!(
                net.is_feasible(&after_one, 1e-9),
                "case {case}: feasible after one step"
            );
            let trajectory = net.converge(&initial, 1e-10, 200);
            let last = trajectory.last().unwrap();
            assert!(
                net.is_pareto_optimal(last, 1e-3),
                "case {case}: Pareto optimal"
            );
            assert!(net.is_feasible(last, 1e-6), "case {case}: final feasible");
        }
    }

    #[test]
    fn ai_equilibrium_matches_the_papers_example() {
        // §A.3: with U_target = 95%, the utilization stays below 100% as long
        // as a < 5% of the flow rate.
        let a = 0.04;
        let r = 1.0;
        let u = ai_equilibrium_utilization(a, 0.95, r);
        assert!(u < 1.0, "u = {u}");
        let a_too_big = 0.06;
        let u2 = ai_equilibrium_utilization(a_too_big, 0.95, r);
        assert!(u2 > 1.0, "u2 = {u2}");
        // Round-trip between the two forms.
        let r_back = ai_equilibrium_rate(a, 0.95, u);
        assert!((r_back - r).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "path 1 uses no resource")]
    fn rejects_paths_without_resources() {
        FluidNetwork::new(vec![vec![true, false]], vec![10.0]);
    }

    #[test]
    fn two_senders_share_the_bottleneck_and_finish_together() {
        let hosts = star(4, Bandwidth::from_gbps(25), Duration::from_us(1))
            .hosts()
            .to_vec();
        let size = 10_000_000;
        let s = star_scenario(
            CcAlgorithm::hpcc_default(),
            vec![
                FlowSpec::new(FlowId(1), hosts[0], hosts[2], size, SimTime::ZERO),
                FlowSpec::new(FlowId(2), hosts[1], hosts[2], size, SimTime::ZERO),
            ],
        );
        let out = backend_for(BackendKind::Fluid).run(s);
        assert_eq!(out.flows.len(), 2);
        assert_eq!(out.unfinished_flows, 0);
        let fct0 = out.flows[0].fct().as_secs_f64();
        let fct1 = out.flows[1].fct().as_secs_f64();
        assert!((fct0 - fct1).abs() < 1e-6, "{fct0} vs {fct1}");
        // Two flows into one 25G (η-scaled) port: each gets ~η·C/2, so the
        // FCT is roughly 2 × size / (η·C).
        let expected = 2.0 * (size as f64 * 1.106 * 8.0) / (0.95 * 25e9);
        assert!(
            (fct0 - expected).abs() / expected < 0.1,
            "fct {fct0} vs expected {expected}"
        );
    }

    #[test]
    fn hpcc_eta_caps_a_single_flow_below_line_rate() {
        let hosts = star(4, Bandwidth::from_gbps(25), Duration::from_us(1))
            .hosts()
            .to_vec();
        let size = 25_000_000;
        let s = star_scenario(
            CcAlgorithm::hpcc_default(),
            vec![FlowSpec::new(
                FlowId(1),
                hosts[0],
                hosts[1],
                size,
                SimTime::ZERO,
            )],
        );
        let out = backend_for(BackendKind::Fluid).run(s);
        assert_eq!(out.flows.len(), 1);
        let fct = out.flows[0].fct().as_secs_f64();
        let at_line_rate = size as f64 * 1.106 * 8.0 / 25e9;
        // η = 0.95 (plus the small W_AI lift) keeps the flow under line rate.
        assert!(fct > at_line_rate, "fct {fct} vs line-rate {at_line_rate}");
        assert!(fct < at_line_rate / 0.90, "fct {fct} not wildly slower");
    }

    #[test]
    fn horizon_cuts_off_unfinished_flows() {
        let hosts = star(4, Bandwidth::from_gbps(25), Duration::from_us(1))
            .hosts()
            .to_vec();
        let mut s = star_scenario(
            CcAlgorithm::hpcc_default(),
            vec![
                FlowSpec::new(FlowId(1), hosts[0], hosts[1], 4_000, SimTime::ZERO),
                // Far too large to finish within the horizon.
                FlowSpec::new(
                    FlowId(2),
                    hosts[1],
                    hosts[2],
                    u32::MAX as u64,
                    SimTime::ZERO,
                ),
                // Starts after the horizon: never admitted.
                FlowSpec::new(FlowId(3), hosts[0], hosts[2], 1_000, SimTime::from_ms(100)),
            ],
        );
        s.cfg.end_time = SimTime::from_ms(1);
        let out = backend_for(BackendKind::Fluid).run(s);
        assert_eq!(out.flows.len(), 1);
        assert_eq!(out.flows[0].id, FlowId(1));
        assert_eq!(out.unfinished_flows, 2);
        assert_eq!(
            out.elapsed,
            secs_to_simtime(out.flows[0].finish.as_secs_f64())
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let hosts = star(6, Bandwidth::from_gbps(25), Duration::from_us(1))
            .hosts()
            .to_vec();
        let flows: Vec<FlowSpec> = (0..20)
            .map(|i| {
                FlowSpec::new(
                    FlowId(i),
                    hosts[(i % 5) as usize],
                    hosts[((i + 1) % 6) as usize],
                    10_000 + 7_000 * i,
                    SimTime::from_us(13 * i),
                )
            })
            .filter(|f| f.src != f.dst)
            .collect();
        let run = |flows: Vec<FlowSpec>| {
            let s = star_scenario(
                CcAlgorithm::Dcqcn(hpcc_cc::DcqcnConfig::vendor_default(Bandwidth::from_gbps(
                    25,
                ))),
                flows,
            );
            backend_for(BackendKind::Fluid).run(s)
        };
        let a = run(flows.clone());
        let b = run(flows);
        assert_eq!(a.flows, b.flows);
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.packets_delivered, b.packets_delivered);
    }

    #[test]
    fn ecn_schemes_pad_fct_with_the_standing_queue() {
        // Two senders converge on one receiver: the shared bottleneck holds
        // the scheme's steady-state standing queue for the whole transfer.
        let hosts = star(4, Bandwidth::from_gbps(25), Duration::from_us(1))
            .hosts()
            .to_vec();
        let flows = vec![
            FlowSpec::new(FlowId(1), hosts[0], hosts[2], 2_000_000, SimTime::ZERO),
            FlowSpec::new(FlowId(2), hosts[1], hosts[2], 2_000_000, SimTime::ZERO),
        ];
        let scenario = star_scenario(
            CcAlgorithm::Dcqcn(hpcc_cc::DcqcnConfig::vendor_default(Bandwidth::from_gbps(
                25,
            ))),
            flows,
        );
        let ecn = scenario.cfg.ecn.expect("DCQCN config carries ECN marking");
        let queue_pad_s = (ecn.kmin_bytes + ecn.kmax_bytes) as f64 / 2.0 * 8.0 / 25e9;
        let header = (scenario.cfg.data_wire_size() - scenario.cfg.mtu_payload) as f64;
        let wire = 2_000_000.0 + 2_000.0 * header;
        let out = backend_for(BackendKind::Fluid).run(scenario);
        // Each flow drains at the 12.5 Gbps fair share; the FCT must exceed
        // that ideal transfer time by (at least most of) the standing ECN
        // queue delay at the shared bottleneck.
        let fair_share_s = wire * 8.0 / 12.5e9;
        let fct = out.flows[0].fct().as_secs_f64();
        assert!(
            fct > fair_share_s + 0.5 * queue_pad_s,
            "fct {fct} should carry the standing queue above the ideal {fair_share_s} \
             (pad {queue_pad_s})"
        );
    }

    #[test]
    fn solo_flows_see_no_standing_queue() {
        // A lone DCQCN flow on an idle fabric never shares a resource, so
        // the fluid model adds no queue pad: FCT is ideal transfer time
        // plus propagation, same as HPCC's (modulo HPCC's eta rate cap).
        let hosts = star(4, Bandwidth::from_gbps(25), Duration::from_us(1))
            .hosts()
            .to_vec();
        let flows = vec![FlowSpec::new(
            FlowId(1),
            hosts[0],
            hosts[1],
            100_000,
            SimTime::ZERO,
        )];
        let dcqcn = backend_for(BackendKind::Fluid).run(star_scenario(
            CcAlgorithm::Dcqcn(hpcc_cc::DcqcnConfig::vendor_default(Bandwidth::from_gbps(
                25,
            ))),
            flows.clone(),
        ));
        let hpcc =
            backend_for(BackendKind::Fluid).run(star_scenario(CcAlgorithm::hpcc_default(), flows));
        // DCQCN drains at full line rate (no eta cap) with no queue pad, so
        // it can only be faster than HPCC here.
        assert!(dcqcn.flows[0].fct() <= hpcc.flows[0].fct());
    }
}
