//! Ready-made experiment builders for every scenario in the paper's
//! evaluation (§5.2–§5.4). Each builder takes explicit scale parameters
//! (durations, sizes, topology scale) so that the figure harnesses can run
//! laptop-sized versions by default and paper-sized versions on demand.

use crate::experiment::Experiment;
use hpcc_cc::{CcAlgorithm, DcqcnConfig, DctcpConfig, HpccConfig, TimelyConfig};
use hpcc_sim::{EcnConfig, FlowControlMode, SimConfig};
use hpcc_topology::{fat_tree, star, testbed_pod, FatTreeParams, TopologySpec};
use hpcc_workload::{fb_hadoop, websearch, FlowSizeCdf, IncastGenerator, LoadGenerator};
use hpcc_types::{Bandwidth, Duration, FlowId, FlowSpec, NodeId, PortId, SimTime};

/// The six schemes compared in Figure 11, built for a given line rate and
/// base RTT.
pub const SCHEME_SET_FIG11: [&str; 6] = [
    "DCQCN",
    "TIMELY",
    "DCQCN+win",
    "TIMELY+win",
    "DCTCP",
    "HPCC",
];

/// Build one of the Figure 11 schemes by label.
pub fn scheme_by_label(label: &str, line_rate: Bandwidth, base_rtt: Duration) -> CcAlgorithm {
    match label {
        "DCQCN" => CcAlgorithm::Dcqcn(DcqcnConfig::vendor_default(line_rate)),
        "DCQCN+win" => CcAlgorithm::DcqcnWin(DcqcnConfig::vendor_default(line_rate)),
        "TIMELY" => CcAlgorithm::Timely(TimelyConfig::recommended(line_rate, base_rtt)),
        "TIMELY+win" => CcAlgorithm::TimelyWin(TimelyConfig::recommended(line_rate, base_rtt)),
        "DCTCP" => CcAlgorithm::Dctcp(DctcpConfig::default()),
        "HPCC" => CcAlgorithm::Hpcc(HpccConfig::default()),
        other => panic!("unknown scheme label {other}"),
    }
}

/// A `SimConfig` with paper defaults for the given CC on a topology,
/// including the suggested base RTT.
fn base_config(cc: CcAlgorithm, topo: &TopologySpec, host_bw: Bandwidth, end: Duration) -> SimConfig {
    let base_rtt = topo.suggested_base_rtt(1106);
    let mut cfg = SimConfig::for_cc(cc, host_bw, base_rtt);
    cfg.end_time = SimTime::ZERO + end;
    cfg
}

/// The bottleneck egress port of a star topology towards a given host (the
/// port traced in the micro-benchmarks).
pub fn star_egress_to(topo: &TopologySpec, host: NodeId) -> (NodeId, PortId) {
    let sw = topo.switches()[0];
    (sw, topo.next_hops(sw, host)[0])
}

/// Figure 6: 2-to-1 congestion on a star, tracing the bottleneck queue.
/// `use_rx_rate` selects the HPCC-rxRate ablation.
pub fn two_to_one(use_rx_rate: bool, host_bw: Bandwidth, flow_size: u64, end: Duration) -> Experiment {
    let topo = star(3, host_bw, Duration::from_us(1));
    let hosts = topo.hosts().to_vec();
    let cc = CcAlgorithm::Hpcc(HpccConfig {
        use_rx_rate,
        ..HpccConfig::default()
    });
    let mut cfg = base_config(cc, &topo, host_bw, end);
    cfg.trace_ports = vec![star_egress_to(&topo, hosts[2])];
    cfg.trace_interval = Duration::from_us(1);
    cfg.queue_sample_interval = Some(Duration::from_us(1));
    let flows = vec![
        FlowSpec::new(FlowId(1), hosts[0], hosts[2], flow_size, SimTime::ZERO),
        FlowSpec::new(FlowId(2), hosts[1], hosts[2], flow_size, SimTime::ZERO),
    ];
    Experiment {
        label: if use_rx_rate { "HPCC-rxRate" } else { "HPCC (txRate)" }.to_string(),
        topo,
        cfg,
        flows,
        host_bw,
    }
}

/// Figures 13/14 (and 9c/9d): an N-to-1 incast on a star topology, with the
/// bottleneck queue traced and per-flow goodput recorded.
pub fn incast_on_star(
    label: &str,
    cc: CcAlgorithm,
    n_senders: usize,
    flow_size: u64,
    host_bw: Bandwidth,
    end: Duration,
) -> Experiment {
    let topo = star(n_senders + 1, host_bw, Duration::from_us(1));
    let hosts = topo.hosts().to_vec();
    let receiver = hosts[n_senders];
    let mut cfg = base_config(cc, &topo, host_bw, end);
    cfg.trace_ports = vec![star_egress_to(&topo, receiver)];
    cfg.trace_interval = Duration::from_us(1);
    cfg.queue_sample_interval = Some(Duration::from_us(1));
    cfg.flow_throughput_bin = Some(Duration::from_us(10));
    let flows = hpcc_workload::incast(&hosts[..n_senders], receiver, flow_size, SimTime::ZERO, 1);
    Experiment {
        label: label.to_string(),
        topo,
        cfg,
        flows,
        host_bw,
    }
}

/// Figure 9a/9b: a long flow at line rate, a 1 MB short flow joins on the
/// same bottleneck and leaves; goodput of both is recorded.
pub fn long_short(cc: CcAlgorithm, host_bw: Bandwidth, end: Duration) -> Experiment {
    let topo = star(3, host_bw, Duration::from_us(1));
    let hosts = topo.hosts().to_vec();
    let mut cfg = base_config(cc, &topo, host_bw, end);
    cfg.trace_ports = vec![star_egress_to(&topo, hosts[2])];
    cfg.trace_interval = Duration::from_us(2);
    cfg.flow_throughput_bin = Some(Duration::from_us(20));
    cfg.queue_sample_interval = Some(Duration::from_us(2));
    // The long flow occupies the whole run; the short 1 MB flow joins at 25%
    // of the horizon.
    let long_size = host_bw.bytes_in(end);
    let flows = vec![
        FlowSpec::new(FlowId(1), hosts[0], hosts[2], long_size, SimTime::ZERO),
        FlowSpec::new(
            FlowId(2),
            hosts[1],
            hosts[2],
            1_000_000,
            SimTime::ZERO + end.mul_f64(0.25),
        ),
    ];
    Experiment {
        label: format!("long-short {}", cc.label()),
        topo,
        cfg,
        flows,
        host_bw,
    }
}

/// Figure 9e/9f: two elephant flows saturate a link while a third host sends
/// a stream of 1 KB mice through it; the mice FCTs give the latency CDF.
pub fn elephant_mice(
    cc: CcAlgorithm,
    host_bw: Bandwidth,
    mice_interval: Duration,
    end: Duration,
) -> Experiment {
    let topo = star(4, host_bw, Duration::from_us(1));
    let hosts = topo.hosts().to_vec();
    let mut cfg = base_config(cc, &topo, host_bw, end);
    cfg.queue_sample_interval = Some(Duration::from_us(1));
    let elephant_size = host_bw.bytes_in(end);
    let mut flows = vec![
        FlowSpec::new(FlowId(1), hosts[0], hosts[3], elephant_size, SimTime::ZERO),
        FlowSpec::new(FlowId(2), hosts[1], hosts[3], elephant_size, SimTime::ZERO),
    ];
    let mut t = Duration::from_us(50);
    let mut id = 100;
    while t < end {
        flows.push(FlowSpec::new(
            FlowId(id),
            hosts[2],
            hosts[3],
            1_000,
            SimTime::ZERO + t,
        ));
        id += 1;
        t += mice_interval;
    }
    Experiment {
        label: format!("elephant-mice {}", cc.label()),
        topo,
        cfg,
        flows,
        host_bw,
    }
}

/// Figure 9g/9h: four flows join a bottleneck one after another; their
/// goodput over time shows (or fails to show) fair sharing.
pub fn fairness(
    cc: CcAlgorithm,
    host_bw: Bandwidth,
    join_interval: Duration,
    end: Duration,
) -> Experiment {
    let topo = star(5, host_bw, Duration::from_us(1));
    let hosts = topo.hosts().to_vec();
    let mut cfg = base_config(cc, &topo, host_bw, end);
    cfg.flow_throughput_bin = Some(join_interval / 20);
    cfg.queue_sample_interval = Some(Duration::from_us(2));
    let mut flows = Vec::new();
    for i in 0..4u64 {
        // Each flow is sized so that, under a fair share, it stays active
        // until roughly the end of the run.
        let start = join_interval * i;
        let active = end.saturating_sub(start);
        let size = (host_bw.bytes_in(active) as f64 * 0.4) as u64;
        flows.push(FlowSpec::new(
            FlowId(i + 1),
            hosts[i as usize],
            hosts[4],
            size.max(1_000_000),
            SimTime::ZERO + start,
        ));
    }
    Experiment {
        label: format!("fairness {}", cc.label()),
        topo,
        cfg,
        flows,
        host_bw,
    }
}

/// Background + optional incast workload on the testbed PoD (§5.1/§5.2,
/// Figures 2, 3, 9, 10): 32 servers with 25 Gbps NICs behind 4 ToRs and one
/// Agg switch, driven by the WebSearch trace.
#[allow(clippy::too_many_arguments)]
pub fn testbed_websearch(
    label: &str,
    cc: CcAlgorithm,
    load: f64,
    end: Duration,
    incast_fan_in: Option<usize>,
    ecn_override: Option<EcnConfig>,
    flow_control: FlowControlMode,
    seed: u64,
) -> Experiment {
    let host_bw = Bandwidth::from_gbps(25);
    let topo = testbed_pod(Duration::from_us(1));
    let hosts = topo.hosts().to_vec();
    let mut cfg = base_config(cc, &topo, host_bw, end);
    cfg.flow_control = flow_control;
    cfg.queue_sample_interval = Some(Duration::from_us(5));
    if let Some(ecn) = ecn_override {
        cfg.ecn = Some(ecn);
    }
    let mut flows = LoadGenerator::new(hosts.clone(), host_bw, load, websearch(), seed)
        .generate(end);
    if let Some(fan_in) = incast_fan_in {
        let inc = IncastGenerator::paper_default(hosts, host_bw, seed ^ 0xabcd)
            .with_fan_in(fan_in)
            .with_flow_size(500_000)
            .with_capacity_fraction(0.02);
        flows.extend(inc.generate(end));
    }
    Experiment {
        label: label.to_string(),
        topo,
        cfg,
        flows,
        host_bw,
    }
}

/// Background + optional incast workload on the three-tier Clos fabric
/// (§5.3, Figures 11/12), driven by the FB_Hadoop trace.
#[allow(clippy::too_many_arguments)]
pub fn fattree_fb_hadoop(
    label: &str,
    cc: CcAlgorithm,
    params: FatTreeParams,
    load: f64,
    end: Duration,
    with_incast: bool,
    flow_control: FlowControlMode,
    seed: u64,
) -> Experiment {
    let topo = fat_tree(params);
    let host_bw = params.host_bw;
    let hosts = topo.hosts().to_vec();
    let mut cfg = base_config(cc, &topo, host_bw, end);
    cfg.flow_control = flow_control;
    cfg.queue_sample_interval = Some(Duration::from_us(5));
    let mut flows =
        LoadGenerator::new(hosts.clone(), host_bw, load, fb_hadoop(), seed).generate(end);
    if with_incast {
        let fan_in = 60.min(hosts.len().saturating_sub(1));
        let inc = IncastGenerator::paper_default(hosts, host_bw, seed ^ 0x5151)
            .with_fan_in(fan_in)
            .with_flow_size(500_000)
            .with_capacity_fraction(0.02);
        flows.extend(inc.generate(end));
    }
    Experiment {
        label: label.to_string(),
        topo,
        cfg,
        flows,
        host_bw,
    }
}

/// Figure 1 (production PFC telemetry, reproduced in simulation): DCQCN on
/// the testbed PoD with a small buffer and repeated large incasts, so that
/// PFC pauses propagate from the ToRs towards hosts and the Agg switch.
pub fn pfc_storm(load: f64, fan_in: usize, end: Duration, seed: u64) -> Experiment {
    let host_bw = Bandwidth::from_gbps(25);
    let topo = testbed_pod(Duration::from_us(1));
    let hosts = topo.hosts().to_vec();
    let cc = CcAlgorithm::Dcqcn(DcqcnConfig::vendor_default(host_bw));
    let mut cfg = base_config(cc, &topo, host_bw, end);
    cfg.buffer_bytes = 4_000_000;
    cfg.queue_sample_interval = Some(Duration::from_us(5));
    let mut flows = LoadGenerator::new(hosts.clone(), host_bw, load, websearch(), seed)
        .generate(end);
    let inc = IncastGenerator::paper_default(hosts, host_bw, seed ^ 0x77)
        .with_fan_in(fan_in)
        .with_flow_size(500_000)
        .with_capacity_fraction(0.05);
    flows.extend(inc.generate(end));
    Experiment {
        label: "PFC storm (DCQCN)".to_string(),
        topo,
        cfg,
        flows,
        host_bw,
    }
}

/// Custom flow-size distribution variant of [`testbed_websearch`] used by
/// sensitivity studies.
pub fn testbed_with_cdf(
    label: &str,
    cc: CcAlgorithm,
    cdf: FlowSizeCdf,
    load: f64,
    end: Duration,
    seed: u64,
) -> Experiment {
    let host_bw = Bandwidth::from_gbps(25);
    let topo = testbed_pod(Duration::from_us(1));
    let hosts = topo.hosts().to_vec();
    let mut cfg = base_config(cc, &topo, host_bw, end);
    cfg.queue_sample_interval = Some(Duration::from_us(5));
    let flows = LoadGenerator::new(hosts, host_bw, load, cdf, seed).generate(end);
    Experiment {
        label: label.to_string(),
        topo,
        cfg,
        flows,
        host_bw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_labels_round_trip() {
        let bw = Bandwidth::from_gbps(100);
        let rtt = Duration::from_us(13);
        for label in SCHEME_SET_FIG11 {
            let cc = scheme_by_label(label, bw, rtt);
            assert_eq!(cc.label(), label);
        }
    }

    #[test]
    #[should_panic(expected = "unknown scheme")]
    fn unknown_scheme_panics() {
        scheme_by_label("BBR", Bandwidth::from_gbps(100), Duration::from_us(13));
    }

    #[test]
    fn two_to_one_preset_shape() {
        let e = two_to_one(false, Bandwidth::from_gbps(100), 1_000_000, Duration::from_ms(1));
        assert_eq!(e.flows.len(), 2);
        assert_eq!(e.topo.hosts().len(), 3);
        assert_eq!(e.cfg.trace_ports.len(), 1);
        assert!(e.cfg.int_enabled);
        let rx = two_to_one(true, Bandwidth::from_gbps(100), 1_000_000, Duration::from_ms(1));
        assert_eq!(rx.label, "HPCC-rxRate");
    }

    #[test]
    fn incast_preset_has_n_flows_to_one_receiver() {
        let e = incast_on_star(
            "HPCC",
            CcAlgorithm::hpcc_default(),
            16,
            500_000,
            Bandwidth::from_gbps(100),
            Duration::from_ms(1),
        );
        assert_eq!(e.flows.len(), 16);
        let recv = e.flows[0].dst;
        assert!(e.flows.iter().all(|f| f.dst == recv));
    }

    #[test]
    fn testbed_preset_generates_background_and_incast() {
        let plain = testbed_websearch(
            "DCQCN",
            scheme_by_label("DCQCN", Bandwidth::from_gbps(25), Duration::from_us(9)),
            0.3,
            Duration::from_ms(20),
            None,
            None,
            FlowControlMode::Lossless,
            7,
        );
        assert!(plain.flows.len() > 10);
        let with_incast = testbed_websearch(
            "DCQCN+incast",
            scheme_by_label("DCQCN", Bandwidth::from_gbps(25), Duration::from_us(9)),
            0.3,
            Duration::from_ms(20),
            Some(16),
            None,
            FlowControlMode::Lossless,
            7,
        );
        assert!(with_incast.flows.len() > plain.flows.len());
        // ECN thresholds can be swept (Figure 3).
        let swept = testbed_websearch(
            "DCQCN Kmin=12K",
            scheme_by_label("DCQCN", Bandwidth::from_gbps(25), Duration::from_us(9)),
            0.3,
            Duration::from_ms(10),
            None,
            Some(EcnConfig::thresholds_kb(12, 50)),
            FlowControlMode::Lossless,
            7,
        );
        assert_eq!(swept.cfg.ecn.unwrap().kmin_bytes, 12_000);
    }

    #[test]
    fn fattree_preset_small_scale() {
        let e = fattree_fb_hadoop(
            "HPCC",
            CcAlgorithm::hpcc_default(),
            FatTreeParams::small(),
            0.3,
            Duration::from_ms(10),
            true,
            FlowControlMode::Lossless,
            3,
        );
        assert_eq!(e.topo.hosts().len(), FatTreeParams::small().total_hosts());
        assert!(e.flows.len() > 10);
        assert!(e.flows.iter().any(|f| f.size == 500_000), "incast flows present");
    }

    #[test]
    fn micro_benchmark_presets_build() {
        let bw = Bandwidth::from_gbps(100);
        let ls = long_short(CcAlgorithm::hpcc_default(), bw, Duration::from_ms(2));
        assert_eq!(ls.flows.len(), 2);
        assert!(ls.flows[1].start > ls.flows[0].start);
        let em = elephant_mice(
            CcAlgorithm::hpcc_default(),
            bw,
            Duration::from_us(100),
            Duration::from_ms(1),
        );
        assert!(em.flows.len() > 5);
        let fair = fairness(CcAlgorithm::hpcc_default(), bw, Duration::from_ms(1), Duration::from_ms(5));
        assert_eq!(fair.flows.len(), 4);
        let storm = pfc_storm(0.3, 16, Duration::from_ms(5), 1);
        assert!(!storm.flows.is_empty());
        let custom = testbed_with_cdf(
            "custom",
            CcAlgorithm::hpcc_default(),
            hpcc_workload::fixed_size(10_000),
            0.2,
            Duration::from_ms(5),
            2,
        );
        assert!(custom.flows.iter().all(|f| f.size == 10_000));
    }
}
