//! Regenerate Figure 3 (DCQCN ECN threshold trade-off at 30% and 50% load).
//! Usage: `cargo run --release -p hpcc-bench --bin fig03 [duration_ms]`
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ms = hpcc_bench::arg_or(&args, 1, 20u64);
    print!("{}", hpcc_bench::figures::fig03(ms));
}
