//! Regenerate Figure 14 (W_AI sweep: fairness vs queue length).
//! Usage: `cargo run --release -p hpcc-bench --bin fig14 [duration_ms]`
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ms = hpcc_bench::arg_or(&args, 1, 10u64);
    print!("{}", hpcc_bench::figures::fig14(ms));
}
