//! Campaign wall-clock benchmark and manifest runner.
//!
//! With no arguments, builds the Figure 11 scheme set (six scenarios on the
//! scaled-down Clos fabric), runs it serially and then in parallel, verifies
//! the per-scenario digests are bit-identical, and reports the speedup.
//!
//! Usage:
//!   cargo run --release -p hpcc-bench --bin campaign [duration_ms] [load]
//!   cargo run --release -p hpcc-bench --bin campaign -- --manifest file.json
//!   cargo run --release -p hpcc-bench --bin campaign -- --dump-manifest [duration_ms] [load]
//!   cargo run --release -p hpcc-bench --bin campaign -- --events-per-sec [out.json]
//!
//! `--manifest` runs a JSON campaign manifest (an array of ScenarioSpec
//! objects, see `hpcc_core::scenario`) instead of the built-in scheme set;
//! `--dump-manifest` prints the built-in campaign as such a manifest (a
//! starting point for hand-edited grids); `--events-per-sec` runs the fixed
//! hot-path smoke scenario and writes engine-throughput numbers to
//! `BENCH_hotpath.json` (or the given path) so CI can track the perf
//! trajectory.

use hpcc_core::campaign::digest_output;
use hpcc_core::presets::{fattree_fb_hadoop, fig11_campaign};
use hpcc_core::{Campaign, CcSpec};
use hpcc_sim::FlowControlMode;
use hpcc_topology::FatTreeParams;
use hpcc_types::Duration;
use std::time::Instant;

/// Events/sec of the `BinaryHeap` event queue on the smoke scenario, measured
/// on the CI reference machine before the indexed-wheel engine landed. Kept
/// so every BENCH_hotpath.json records the speedup against the same baseline.
const BASELINE_BINARYHEAP_EVENTS_PER_SEC: f64 = 3_350_000.0;

/// Run the fixed hot-path smoke scenario and write throughput numbers as
/// JSON: events/sec, wall-clock, peak event-queue length.
///
/// The scenario is deliberately frozen (HPCC on the scaled-down Clos fabric,
/// 0.5 load plus incast, 5 ms, seed 42): the numbers are only comparable over
/// time if the workload never moves.
fn run_hotpath_smoke(out_path: &str) {
    let spec = fattree_fb_hadoop(
        "hotpath-smoke",
        CcSpec::by_label("HPCC"),
        FatTreeParams::small(),
        0.5,
        Duration::from_ms(5),
        true,
        FlowControlMode::Lossless,
        42,
    );
    // Untimed warm-up run (page cache, branch predictors, allocator pools).
    let warmup = spec.build().run();
    let started = Instant::now();
    let results = spec.build().run();
    let wall = started.elapsed();
    let out = &results.out;
    assert_eq!(
        digest_output(&warmup.out),
        digest_output(out),
        "smoke scenario must be deterministic"
    );
    let events_per_sec = out.events_processed as f64 / wall.as_secs_f64().max(1e-9);
    let speedup = if BASELINE_BINARYHEAP_EVENTS_PER_SEC > 0.0 {
        events_per_sec / BASELINE_BINARYHEAP_EVENTS_PER_SEC
    } else {
        0.0
    };
    let json = format!(
        "{{\n  \"bench\": \"hotpath-smoke\",\n  \"scenario\": \"fig11 HPCC, small Clos, load 0.5 + incast, 5 ms, seed 42\",\n  \"events_processed\": {},\n  \"wall_seconds\": {:.6},\n  \"events_per_sec\": {:.0},\n  \"peak_event_queue_len\": {},\n  \"flows_completed\": {},\n  \"digest\": \"{:016x}\",\n  \"baseline_binaryheap_events_per_sec\": {:.0},\n  \"baseline_note\": \"heap engine on the machine that recorded the baseline; speedup is only meaningful on comparable hardware\",\n  \"speedup_vs_baseline\": {:.3}\n}}\n",
        out.events_processed,
        wall.as_secs_f64(),
        events_per_sec,
        out.peak_event_queue,
        out.flows.len(),
        digest_output(out),
        BASELINE_BINARYHEAP_EVENTS_PER_SEC,
        speedup,
    );
    std::fs::write(out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("{json}");
    println!("wrote {out_path}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--events-per-sec") {
        let out_path = args
            .get(i + 1)
            .map(String::as_str)
            .unwrap_or("BENCH_hotpath.json");
        run_hotpath_smoke(out_path);
        return;
    }
    if args.iter().any(|a| a == "--dump-manifest") {
        let positional: Vec<String> = args
            .iter()
            .filter(|a| !a.starts_with("--"))
            .cloned()
            .collect();
        let ms = hpcc_bench::arg_or(&positional, 1, 10u64);
        let load = hpcc_bench::arg_or(&positional, 2, 0.3f64);
        let campaign = fig11_campaign(
            FatTreeParams::small(),
            load,
            Duration::from_ms(ms),
            true,
            42,
        );
        println!("{}", campaign.to_json_string());
        return;
    }
    let campaign = if let Some(i) = args.iter().position(|a| a == "--manifest") {
        let path = args.get(i + 1).expect("--manifest needs a file path");
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        Campaign::from_json_str(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
    } else {
        let ms = hpcc_bench::arg_or(&args, 1, 10u64);
        let load = hpcc_bench::arg_or(&args, 2, 0.3f64);
        fig11_campaign(
            FatTreeParams::small(),
            load,
            Duration::from_ms(ms),
            true,
            42,
        )
    };

    println!(
        "campaign: {} scenarios ({} available cores)",
        campaign.len(),
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );

    let serial = campaign.run_serial();
    println!("\n== serial ==\n{}", serial.table());

    // One OS thread per scenario (not capped at the core count): on a
    // multi-core host this is the full fan-out; on a loaded or small host
    // the digests still prove determinism.
    let parallel = campaign.run_with_threads(campaign.len());
    println!("== parallel ==\n{}", parallel.table());

    assert_eq!(
        serial.digests(),
        parallel.digests(),
        "parallel execution must be bit-identical to serial"
    );
    let speedup = serial.wall.as_secs_f64() / parallel.wall.as_secs_f64().max(1e-9);
    println!(
        "digests identical across {} scenarios; speedup {:.2}x ({:.2} s serial -> {:.2} s on {} threads)",
        serial.results.len(),
        speedup,
        serial.wall.as_secs_f64(),
        parallel.wall.as_secs_f64(),
        parallel.threads
    );
    if parallel.threads > 1 && speedup <= 1.0 {
        println!("warning: no speedup observed (heavily loaded or single-core host?)");
    }
}
