//! Time-series helpers: goodput curves and fairness.

use hpcc_types::Duration;

/// Convert a per-bin "newly acknowledged bytes" series (as produced by the
/// simulator's goodput tracing) into Gbps values.
pub fn goodput_series_gbps(bytes_per_bin: &[u64], bin: Duration) -> Vec<f64> {
    if bin.is_zero() {
        return Vec::new();
    }
    let sec = bin.as_secs_f64();
    bytes_per_bin
        .iter()
        .map(|b| (*b as f64 * 8.0) / sec / 1e9)
        .collect()
}

/// Jain's fairness index of a set of throughputs: `(Σx)² / (n·Σx²)`,
/// 1.0 = perfectly fair, 1/n = maximally unfair.
pub fn jain_fairness_index(throughputs: &[f64]) -> f64 {
    let n = throughputs.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = throughputs.iter().sum();
    let sum_sq: f64 = throughputs.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sum_sq)
}

/// Average the tail (last `fraction` of bins) of a goodput series — useful to
/// read a steady-state throughput out of a time series.
pub fn steady_state_gbps(series_gbps: &[f64], fraction: f64) -> f64 {
    if series_gbps.is_empty() {
        return 0.0;
    }
    let n = series_gbps.len();
    let start = ((1.0 - fraction.clamp(0.0, 1.0)) * n as f64) as usize;
    let tail = &series_gbps[start.min(n - 1)..];
    tail.iter().sum::<f64>() / tail.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goodput_conversion() {
        // 1.25 MB per 100 us bin = 100 Gbps.
        let s = goodput_series_gbps(&[1_250_000, 625_000, 0], Duration::from_us(100));
        assert!((s[0] - 100.0).abs() < 1e-9);
        assert!((s[1] - 50.0).abs() < 1e-9);
        assert_eq!(s[2], 0.0);
        assert!(goodput_series_gbps(&[1], Duration::ZERO).is_empty());
    }

    #[test]
    fn jain_index_bounds() {
        assert!((jain_fairness_index(&[10.0, 10.0, 10.0, 10.0]) - 1.0).abs() < 1e-12);
        let unfair = jain_fairness_index(&[40.0, 0.0, 0.0, 0.0]);
        assert!((unfair - 0.25).abs() < 1e-12);
        let mid = jain_fairness_index(&[30.0, 10.0]);
        assert!(mid > 0.5 && mid < 1.0);
        assert_eq!(jain_fairness_index(&[]), 1.0);
        assert_eq!(jain_fairness_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn steady_state_reads_the_tail() {
        let series = vec![0.0, 0.0, 0.0, 0.0, 0.0, 10.0, 10.0, 10.0, 10.0, 10.0];
        assert!((steady_state_gbps(&series, 0.5) - 10.0).abs() < 1e-9);
        assert_eq!(steady_state_gbps(&[], 0.5), 0.0);
    }
}
