//! Backend-boundary integration tests: `BackendSpec` wire behaviour, the
//! typed errors for fluid-incompatible features, the cross-validation
//! divergence bounds, and the corpus topology sweep.
//!
//! The pinned validation digest below follows the same platform contract as
//! `golden_digests.rs`: recorded on x86_64 Linux (the CI platform); if
//! another platform ever disagrees, record its digest in a `cfg`-gated
//! table rather than weakening the test.

use hpcc_core::presets::{corpus_sweep, validation_grid, CORPUS_FILES};
use hpcc_core::{
    BackendSpec, CcSpec, FaultSpec, QueueingSpec, ScenarioSpec, TopologyChoice, ValidationReport,
    WorkloadSpec,
};
use hpcc_sim::StragglerHost;
use hpcc_types::{Bandwidth, Duration};

fn base_spec() -> ScenarioSpec {
    ScenarioSpec::new(
        "backend-test",
        TopologyChoice::star(4, Bandwidth::from_gbps(25)),
        CcSpec::by_label("HPCC"),
        Duration::from_ms(1),
    )
    .with_seed(7)
    .with_workload(WorkloadSpec::poisson(hpcc_core::CdfSpec::WebSearch, 0.3))
}

#[test]
fn backend_key_round_trips_and_stays_canonical_when_omitted() {
    // Packet is the default: the canonical JSON must not mention the key at
    // all, and parsing JSON without the key must yield Packet.
    let packet = base_spec();
    let text = packet.to_json_string();
    assert!(
        !text.contains("\"backend\":"),
        "default backend must be wire-invisible: {text}"
    );
    let parsed = ScenarioSpec::from_json_str(&text).expect("canonical JSON parses");
    assert_eq!(parsed.backend, BackendSpec::Packet);
    assert_eq!(parsed, packet);

    // Fluid round-trips through the wire key.
    let fluid = base_spec().with_backend(BackendSpec::Fluid);
    let text = fluid.to_json_string();
    assert!(text.contains("\"backend\":\"fluid\""), "{text}");
    let parsed = ScenarioSpec::from_json_str(&text).expect("fluid JSON parses");
    assert_eq!(parsed.backend, BackendSpec::Fluid);
    assert_eq!(parsed, fluid);
}

#[test]
fn unknown_backend_labels_are_rejected() {
    let text = base_spec().to_json_string().replace(
        "\"name\":\"backend-test\"",
        "\"name\":\"x\",\"backend\":\"quantum\"",
    );
    let err = ScenarioSpec::from_json_str(&text).expect_err("unknown backend must fail");
    assert!(format!("{err}").contains("quantum"), "{err}");
}

#[test]
fn fluid_backend_rejects_faults_with_a_typed_error() {
    let spec =
        base_spec()
            .with_backend(BackendSpec::Fluid)
            .with_faults(FaultSpec::new().with_straggler(StragglerHost {
                host: 0,
                from: Duration::from_us(10),
                until: Duration::from_us(50),
                rate_factor: 0.5,
            }));
    let err = match spec.try_build() {
        Err(e) => e,
        Ok(_) => panic!("fluid + faults must fail"),
    };
    let msg = format!("{err}");
    assert!(msg.contains("fault injection"), "{msg}");
    assert!(msg.contains("\"backend\": \"packet\""), "{msg}");
    // The same spec on the packet backend builds fine.
    assert!(spec.with_backend(BackendSpec::Packet).try_build().is_ok());
}

#[test]
fn fluid_backend_rejects_multiclass_queueing_with_a_typed_error() {
    let spec = base_spec()
        .with_backend(BackendSpec::Fluid)
        .with_queueing(QueueingSpec::strict_priority(4));
    let err = match spec.try_build() {
        Err(e) => e,
        Ok(_) => panic!("fluid + PIAS/SP must fail"),
    };
    let msg = format!("{err}");
    assert!(msg.contains("queueing"), "{msg}");
    assert!(msg.contains("\"backend\": \"packet\""), "{msg}");
    assert!(spec.with_backend(BackendSpec::Packet).try_build().is_ok());
}

/// FNV-1a digest of the canonical cross-validation report on the 1 ms
/// validation grid, seed 42 (x86_64 Linux).
const VALIDATION_DIGEST: u64 = 13218648086296776333;

#[test]
fn validation_grid_divergence_is_bounded_and_digest_pinned() {
    let specs = validation_grid(Duration::from_ms(1), 42);
    assert_eq!(specs.len(), 8, "2 topologies x 4 fluid-supported schemes");
    let report = ValidationReport::run(&specs).expect("grid builds on both backends");
    assert_eq!(report.rows.len(), specs.len());
    for row in &report.rows {
        assert!(
            row.packet_completed > 0 && row.fluid_completed > 0,
            "{}: both backends must finish flows",
            row.name
        );
        assert_ne!(
            row.packet_digest, row.fluid_digest,
            "{}: the fluid output is a model, not a replay",
            row.name
        );
    }
    let slow = report.max_slowdown_divergence();
    let util = report.max_utilization_divergence();
    assert!(slow.is_finite() && slow < 0.5, "slowdown divergence {slow}");
    assert!(util < 0.1, "utilization divergence {util}");
    // Determinism: a second run reproduces the canonical report bit for bit.
    let again = ValidationReport::run(&specs).expect("grid builds again");
    assert_eq!(report.to_json_string(), again.to_json_string());
    assert_eq!(
        report.digest(),
        VALIDATION_DIGEST,
        "canonical report drifted"
    );
}

/// Corpus paths are committed repo-relative; tests run from `crates/core`.
fn corpus_path(rel: &str) -> String {
    format!("{}/../../{rel}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn corpus_sweep_builds_and_runs_on_every_committed_topology() {
    let paths: Vec<String> = CORPUS_FILES.iter().map(|p| corpus_path(p)).collect();
    let refs: Vec<&str> = paths.iter().map(String::as_str).collect();
    let campaign = corpus_sweep(
        &refs,
        CcSpec::by_label("HPCC"),
        Bandwidth::from_gbps(25),
        0.3,
        Duration::from_us(200),
        42,
    );
    assert_eq!(campaign.len(), CORPUS_FILES.len());
    for spec in campaign.specs() {
        let exp = spec
            .try_build()
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        assert!(exp.topology().hosts().len() >= 9, "{}", spec.name);
        // The same corpus file also drives the fluid backend.
        let fluid = spec
            .clone()
            .with_backend(BackendSpec::Fluid)
            .try_build()
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        let out = fluid.run();
        assert!(
            out.out.flows.is_empty() || out.out.flows.iter().all(|f| f.finish > f.start),
            "{}",
            spec.name
        );
    }
}

#[test]
fn corpus_topology_choice_round_trips_through_json() {
    let spec = ScenarioSpec::new(
        "corpus-wire",
        TopologyChoice::Corpus {
            path: "corpus/abilene.edges".into(),
            host_bw: Bandwidth::from_gbps(25),
        },
        CcSpec::by_label("DCQCN"),
        Duration::from_ms(1),
    );
    let text = spec.to_json_string();
    assert!(text.contains("abilene"), "{text}");
    let parsed = ScenarioSpec::from_json_str(&text).expect("corpus JSON parses");
    assert_eq!(parsed, spec);
}
