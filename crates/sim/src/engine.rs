//! The discrete-event engine: the event vocabulary and a deterministic
//! time-ordered queue.
//!
//! Ties are broken by insertion order, so a run is fully determined by the
//! topology, configuration and flow list.

use hpcc_types::{FlowId, NodeId, Packet, PortId, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Everything that can happen in the simulation.
///
/// `PacketArrive` carries its packet inline on purpose: events are created
/// and consumed on the hot path, and boxing the payload to shrink the enum
/// costs an allocation per packet hop.
#[derive(Clone, Debug)]
#[allow(clippy::large_enum_variant)]
pub enum Event {
    /// A flow (by index into the simulator's flow table) becomes active at
    /// its source host.
    FlowStart(usize),
    /// A port finished serializing the packet it was transmitting and may
    /// start the next one.
    PortReady {
        /// Node owning the port.
        node: NodeId,
        /// Port index within the node.
        port: PortId,
    },
    /// A packet fully arrived at a node (serialization + propagation done).
    PacketArrive {
        /// Receiving node.
        node: NodeId,
        /// Ingress port on the receiving node.
        port: PortId,
        /// The packet itself.
        packet: Packet,
    },
    /// A host asked to be woken up (pacing gap elapsed).
    HostWake {
        /// The host to wake.
        node: NodeId,
    },
    /// A congestion-control timer (DCQCN rate-increase / alpha timers).
    CcTimer {
        /// Host owning the flow.
        node: NodeId,
        /// Flow whose CC requested the timer.
        flow: FlowId,
    },
    /// Retransmission-timeout check for a flow (lossy modes).
    RtoCheck {
        /// Host owning the flow.
        node: NodeId,
        /// The flow to check.
        flow: FlowId,
    },
    /// Periodic queue sampling for statistics.
    Sample,
    /// Periodic sampling of explicitly traced ports.
    TraceSample,
}

/// Side effects produced while a node handles one event.
///
/// Node methods never touch the event queue or other nodes directly; they
/// append to this buffer and the simulator applies it, which keeps borrows
/// local and the control flow explicit.
#[derive(Default, Debug)]
pub(crate) struct Effects {
    /// Events to schedule.
    pub events: Vec<(SimTime, Event)>,
    /// Ports that may now be able to start a transmission.
    pub kicks: Vec<(NodeId, PortId)>,
    /// Flows that completed (recorded by the sending host).
    pub completions: Vec<crate::output::FlowRecord>,
    /// PFC pause frames emitted (for propagation analysis).
    pub pfc_events: Vec<crate::output::PfcEvent>,
    /// Newly acknowledged bytes per flow (for goodput time series).
    pub goodput: Vec<(FlowId, u64)>,
    /// Data packets handed to receivers during this event.
    pub packets_delivered: u64,
    /// Data packets transmitted by hosts during this event.
    pub packets_sent: u64,
}

/// An event scheduled at a given time with a tie-breaking sequence number.
#[derive(Clone, Debug)]
struct Scheduled {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap and we want the earliest
        // (time, seq) first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic time-ordered event queue.
#[derive(Default, Debug)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
    scheduled: u64,
    processed: u64,
}

impl EventQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|s| {
            self.processed += 1;
            (s.time, s.event)
        })
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events scheduled so far (for engine statistics).
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Total events processed so far.
    pub fn total_processed(&self) -> u64 {
        self.processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_us(5), Event::Sample);
        q.push(SimTime::from_us(1), Event::HostWake { node: NodeId(0) });
        q.push(SimTime::from_us(3), Event::Sample);
        let t1 = q.pop().unwrap().0;
        let t2 = q.pop().unwrap().0;
        let t3 = q.pop().unwrap().0;
        assert!(t1 < t2 && t2 < t3);
        assert!(q.pop().is_none());
        assert_eq!(q.total_scheduled(), 3);
        assert_eq!(q.total_processed(), 3);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_us(7);
        q.push(t, Event::FlowStart(0));
        q.push(t, Event::FlowStart(1));
        q.push(t, Event::FlowStart(2));
        let mut order = Vec::new();
        while let Some((_, ev)) = q.pop() {
            if let Event::FlowStart(i) = ev {
                order.push(i);
            }
        }
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::from_us(2), Event::Sample);
        assert_eq!(q.peek_time(), Some(SimTime::from_us(2)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.peek_time().is_none());
    }
}
