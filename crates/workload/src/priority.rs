//! The priority-assignment stage of the workload pipeline.
//!
//! Generators produce flows whose [`FlowPriority`] defaults to
//! [`FlowPriority::Normal`]; a [`PrioritySpec`] rewrites the tags after
//! generation. Assignment is a pure function of each flow's *size* (and the
//! spec), so it perturbs no RNG draw: plugging a priority stage into an
//! existing workload leaves the flow list — ids, endpoints, sizes, start
//! times — bit-identical and only changes the tags the switch scheduling
//! subsystem maps onto data classes.

use hpcc_types::{FlowPriority, FlowSpec};

/// How a generated workload tags its flows, as plain data (serializable in
/// campaign manifests through `hpcc-core`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PrioritySpec {
    /// Every flow keeps [`FlowPriority::Normal`] — the paper's single-class
    /// deployment and the default.
    #[default]
    Normal,
    /// Every flow gets the same explicit tag.
    Uniform(FlowPriority),
    /// Flows strictly smaller than `threshold` bytes are tagged
    /// latency-sensitive (the "mice"), the rest stay normal — the classic
    /// mice/elephant split driving SP/DWRR multi-queue studies.
    ShortFlows {
        /// Size in bytes below which a flow counts as a mouse.
        threshold: u64,
    },
}

impl PrioritySpec {
    /// True for the default (leave-everything-normal) spec.
    pub fn is_default(&self) -> bool {
        *self == PrioritySpec::Normal
    }

    /// The tag a flow of `size` bytes receives.
    pub fn tag(&self, size: u64) -> FlowPriority {
        match *self {
            PrioritySpec::Normal => FlowPriority::Normal,
            PrioritySpec::Uniform(p) => p,
            PrioritySpec::ShortFlows { threshold } => {
                if size < threshold {
                    FlowPriority::LatencySensitive
                } else {
                    FlowPriority::Normal
                }
            }
        }
    }

    /// Rewrite the priorities of a generated flow list in place.
    pub fn assign(&self, flows: &mut [FlowSpec]) {
        if self.is_default() {
            return;
        }
        for f in flows {
            f.priority = self.tag(f.size);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcc_types::{FlowId, NodeId, SimTime};

    fn flows(sizes: &[u64]) -> Vec<FlowSpec> {
        sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| FlowSpec::new(FlowId(i as u64), NodeId(0), NodeId(1), s, SimTime::ZERO))
            .collect()
    }

    #[test]
    fn default_leaves_flows_untouched() {
        let mut f = flows(&[100, 1_000_000]);
        let before = f.clone();
        PrioritySpec::default().assign(&mut f);
        assert_eq!(f, before);
        assert!(PrioritySpec::Normal.is_default());
    }

    #[test]
    fn uniform_tags_every_flow() {
        let mut f = flows(&[100, 1_000_000]);
        PrioritySpec::Uniform(FlowPriority::Class(2)).assign(&mut f);
        assert!(f.iter().all(|x| x.priority == FlowPriority::Class(2)));
    }

    #[test]
    fn short_flows_split_mice_from_elephants() {
        let mut f = flows(&[100, 29_999, 30_000, 1_000_000]);
        PrioritySpec::ShortFlows { threshold: 30_000 }.assign(&mut f);
        assert_eq!(f[0].priority, FlowPriority::LatencySensitive);
        assert_eq!(f[1].priority, FlowPriority::LatencySensitive);
        assert_eq!(f[2].priority, FlowPriority::Normal);
        assert_eq!(f[3].priority, FlowPriority::Normal);
        // Only the tags moved: sizes, ids, starts are untouched.
        assert_eq!(f[0].size, 100);
        assert_eq!(f[3].id, FlowId(3));
    }
}
