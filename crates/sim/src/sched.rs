//! Egress scheduling over the data classes of one switch port.
//!
//! A `Scheduler` decides, each time the port becomes free, which *data*
//! class transmits next (the control class is outside its jurisdiction: the
//! switch always serves control first). The two disciplines are
//!
//! * **strict priority** — the lowest-numbered non-empty, non-paused class
//!   wins; with a single data class this degenerates into the paper's FIFO
//!   and is the default,
//! * **deficit-weighted round robin** — each class accumulates credit in
//!   proportion to its weight and may transmit while its deficit covers the
//!   head packet's wire size; paused classes are skipped without losing
//!   their credit, emptied classes forfeit it (classic DWRR).
//!
//! PIAS is not a third discipline here: PIAS demotes flows at the *sender*
//! (bytes-sent thresholds in [`crate::config::QueueingConfig`], mirroring
//! the real system's end-host tagging) and its switches serve the classes in
//! strict priority.
//!
//! Everything is fixed-size (`[u64; MAX_DATA_CLASSES]` deficit counters, no
//! heap), so scheduling adds no allocation to the per-packet hot path, and
//! fully deterministic: the pick is a pure function of the scheduler state
//! and the class snapshot, independent of wall clock or hashing.

use crate::config::{QueueingConfig, SchedulerKind};
use hpcc_types::Priority;

/// What the scheduler may know about one data class of the port: the wire
/// size of the head-of-line packet (`None` when empty) and whether PFC has
/// paused the class.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct ClassLane {
    /// Wire size of the head packet, `None` for an empty queue.
    pub head_wire: Option<u64>,
    /// True while PFC pauses this class.
    pub paused: bool,
}

impl ClassLane {
    #[inline]
    fn eligible(&self) -> bool {
        self.head_wire.is_some() && !self.paused
    }
}

/// Bytes of credit one weight unit buys per DWRR round: comfortably one full
/// MTU frame (1106 B wire), so a weight-1 class earns at least one packet of
/// service per round.
const DWRR_QUANTUM_UNIT: u64 = 2048;

/// Defensive bound on DWRR credit-accumulation rounds per pick; with the
/// quantum at least one MTU the loop settles in one or two rounds, and the
/// fallback (serve the first eligible class) keeps even absurd weight/MTU
/// combinations deterministic and live.
const DWRR_MAX_ROUNDS: u32 = 64;

/// Per-egress-port scheduler state. Constructed once per port from the
/// run's [`QueueingConfig`]; strict priority carries no state at all.
#[derive(Clone, Debug)]
pub(crate) enum Scheduler {
    /// Strict priority (the default; also PIAS's switch-side discipline).
    StrictPriority,
    /// Deficit-weighted round robin.
    Dwrr {
        /// Credit each class earns per visit, `weight * DWRR_QUANTUM_UNIT`.
        quanta: [u64; Priority::MAX_DATA_CLASSES],
        /// Unspent credit per class.
        deficit: [u64; Priority::MAX_DATA_CLASSES],
        /// Class the round-robin pointer rests on.
        cursor: u8,
    },
}

impl Scheduler {
    /// Build the scheduler a port needs under `cfg`.
    pub fn new(cfg: &QueueingConfig) -> Self {
        match cfg.scheduler {
            SchedulerKind::StrictPriority => Scheduler::StrictPriority,
            SchedulerKind::Dwrr => {
                let mut quanta = [DWRR_QUANTUM_UNIT; Priority::MAX_DATA_CLASSES];
                for (c, q) in quanta.iter_mut().enumerate() {
                    *q = cfg.weight(c as u8) as u64 * DWRR_QUANTUM_UNIT;
                }
                Scheduler::Dwrr {
                    quanta,
                    deficit: [0; Priority::MAX_DATA_CLASSES],
                    cursor: 0,
                }
            }
        }
    }

    /// Choose the data class that transmits next, given the per-class
    /// snapshot. Returns `None` when every class is empty or paused.
    pub fn pick(&mut self, lanes: &[ClassLane]) -> Option<usize> {
        match self {
            Scheduler::StrictPriority => lanes.iter().position(ClassLane::eligible),
            Scheduler::Dwrr {
                quanta,
                deficit,
                cursor,
            } => {
                let n = lanes.len();
                if !lanes.iter().any(ClassLane::eligible) {
                    return None;
                }
                for _ in 0..DWRR_MAX_ROUNDS {
                    for _ in 0..n {
                        let c = *cursor as usize;
                        match lanes[c] {
                            ClassLane {
                                head_wire: None, ..
                            } => {
                                // Empty class forfeits its credit.
                                deficit[c] = 0;
                            }
                            ClassLane { paused: true, .. } => {
                                // Paused class keeps its credit for later.
                            }
                            ClassLane {
                                head_wire: Some(wire),
                                paused: false,
                            } => {
                                if deficit[c] >= wire {
                                    deficit[c] -= wire;
                                    // The pointer stays: the class keeps
                                    // transmitting while its credit lasts.
                                    return Some(c);
                                }
                                deficit[c] += quanta[c];
                            }
                        }
                        *cursor = ((c + 1) % n) as u8;
                    }
                }
                // Unreachable with sane quanta; stay live deterministically.
                lanes.iter().position(ClassLane::eligible)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lane(wire: Option<u64>, paused: bool) -> ClassLane {
        ClassLane {
            head_wire: wire,
            paused,
        }
    }

    fn dwrr(weights: &[u32]) -> Scheduler {
        Scheduler::new(&QueueingConfig {
            data_classes: weights.len() as u8,
            scheduler: SchedulerKind::Dwrr,
            weights: weights.to_vec(),
            ..QueueingConfig::legacy()
        })
    }

    #[test]
    fn strict_priority_picks_first_eligible() {
        let mut s = Scheduler::new(&QueueingConfig::legacy());
        assert_eq!(s.pick(&[lane(Some(1106), false)]), Some(0));
        assert_eq!(s.pick(&[lane(None, false)]), None);
        assert_eq!(s.pick(&[lane(Some(1106), true)]), None);
        let lanes = [
            lane(None, false),
            lane(Some(500), true),
            lane(Some(800), false),
        ];
        assert_eq!(s.pick(&lanes), Some(2));
    }

    #[test]
    fn dwrr_shares_by_weight_over_a_long_run() {
        // Two always-backlogged classes with weights 3:1 and equal packet
        // sizes must be served ~3:1.
        let mut s = dwrr(&[3, 1]);
        let lanes = [lane(Some(1106), false), lane(Some(1106), false)];
        let mut served = [0u32; 2];
        for _ in 0..4000 {
            let c = s.pick(&lanes).unwrap();
            served[c] += 1;
        }
        let ratio = served[0] as f64 / served[1] as f64;
        assert!(
            (ratio - 3.0).abs() < 0.2,
            "3:1 weights served {served:?} (ratio {ratio:.2})"
        );
    }

    #[test]
    fn dwrr_byte_share_is_weight_fair_with_unequal_packets() {
        // Class 0 sends small packets, class 1 large ones, equal weights:
        // DWRR is byte-fair, so class 0 gets ~4x as many *packets*.
        let mut s = dwrr(&[1, 1]);
        let lanes = [lane(Some(250), false), lane(Some(1000), false)];
        let mut bytes = [0u64; 2];
        for _ in 0..4000 {
            let c = s.pick(&lanes).unwrap();
            bytes[c] += lanes[c].head_wire.unwrap();
        }
        let ratio = bytes[0] as f64 / bytes[1] as f64;
        assert!(
            (ratio - 1.0).abs() < 0.1,
            "equal weights moved bytes {bytes:?} (ratio {ratio:.2})"
        );
    }

    #[test]
    fn dwrr_skips_paused_without_losing_credit_and_resets_empty() {
        let mut s = dwrr(&[1, 1]);
        // Only class 1 eligible while class 0 is paused.
        let paused0 = [lane(Some(1106), true), lane(Some(1106), false)];
        for _ in 0..5 {
            assert_eq!(s.pick(&paused0), Some(1));
        }
        // Resume: class 0 still gets served (kept or re-earns credit).
        let both = [lane(Some(1106), false), lane(Some(1106), false)];
        let mut served0 = 0;
        for _ in 0..10 {
            if s.pick(&both) == Some(0) {
                served0 += 1;
            }
        }
        assert!(served0 >= 4, "resumed class starved: {served0}/10");
        // All empty / all paused -> None.
        assert_eq!(s.pick(&[lane(None, false), lane(None, false)]), None);
        assert_eq!(s.pick(&[lane(Some(1), true), lane(Some(1), true)]), None);
    }

    #[test]
    fn dwrr_is_deterministic() {
        let run = || {
            let mut s = dwrr(&[2, 1, 1]);
            let lanes = [
                lane(Some(1106), false),
                lane(Some(560), false),
                lane(Some(1106), false),
            ];
            (0..100)
                .map(|_| s.pick(&lanes).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
