//! Criterion benchmarks of the simulation engine itself: how many simulated
//! packets and events per second the substrate sustains.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hpcc_cc::CcAlgorithm;
use hpcc_sim::{SimConfig, Simulator};
use hpcc_topology::{star, testbed_pod};
use hpcc_types::{Bandwidth, Duration, FlowId, FlowSpec, SimTime};

/// One 2 MB flow between two hosts on a star: measures raw packet-forwarding
/// throughput of the engine.
fn single_flow(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/single_flow");
    g.sample_size(10);
    let bw = Bandwidth::from_gbps(100);
    g.throughput(Throughput::Elements(2_000));
    g.bench_function("2MB_star", |b| {
        b.iter(|| {
            let topo = star(2, bw, Duration::from_us(1));
            let rtt = topo.suggested_base_rtt(1106);
            let mut cfg = SimConfig::for_cc(CcAlgorithm::hpcc_default(), bw, rtt);
            cfg.end_time = SimTime::from_ms(10);
            let hosts = topo.hosts().to_vec();
            let mut sim = Simulator::new(topo, cfg);
            sim.add_flow(FlowSpec::new(FlowId(1), hosts[0], hosts[1], 2_000_000, SimTime::ZERO));
            let out = sim.run();
            assert_eq!(out.flows.len(), 1);
            out.events_processed
        })
    });
    g.finish();
}

/// An 8-to-1 incast on the testbed PoD: stresses switch queueing, PFC
/// accounting and multi-hop forwarding.
fn incast_on_pod(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/incast_pod");
    g.sample_size(10);
    for &n in &[4usize, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let topo = testbed_pod(Duration::from_us(1));
                let bw = Bandwidth::from_gbps(25);
                let rtt = topo.suggested_base_rtt(1106);
                let mut cfg = SimConfig::for_cc(CcAlgorithm::hpcc_default(), bw, rtt);
                cfg.end_time = SimTime::from_ms(5);
                let hosts = topo.hosts().to_vec();
                let mut sim = Simulator::new(topo, cfg);
                for i in 0..n {
                    sim.add_flow(FlowSpec::new(
                        FlowId(i as u64 + 1),
                        hosts[8 + i],
                        hosts[0],
                        200_000,
                        SimTime::ZERO,
                    ));
                }
                sim.run().events_processed
            })
        });
    }
    g.finish();
}

criterion_group!(benches, single_flow, incast_on_pod);
criterion_main!(benches);
