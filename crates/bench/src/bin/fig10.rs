//! Regenerate Figure 10 (WebSearch on the testbed PoD at 30%/50% load).
//! Usage: `cargo run --release -p hpcc-bench --bin fig10 [duration_ms]`
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ms = hpcc_bench::arg_or(&args, 1, 20u64);
    print!("{}", hpcc_bench::figures::fig10(ms));
}
