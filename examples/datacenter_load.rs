//! A realistic data-center workload (the paper's §5.2 setup, scaled down):
//! the 32-server testbed PoD driven by the WebSearch trace at 30% average
//! load, comparing HPCC and DCQCN on FCT slowdown per flow-size bucket and
//! on switch queue occupancy.
//!
//! ```bash
//! cargo run --release --example datacenter_load            # 30% load, 20 ms
//! cargo run --release --example datacenter_load -- 0.5 40  # 50% load, 40 ms
//! ```

use hpcc::core::presets::testbed_websearch;
use hpcc::core::report;
use hpcc::prelude::*;
use hpcc::stats::fct::websearch_buckets;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let load: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.3);
    let millis: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(20);
    let duration = Duration::from_ms(millis);

    println!(
        "== testbed PoD (32 x 25G hosts, 4 ToR + 1 Agg), WebSearch at {:.0}% load, {} ms ==\n",
        load * 100.0,
        millis
    );

    let mut results = Vec::new();
    for label in ["HPCC", "DCQCN"] {
        let exp = testbed_websearch(
            label,
            CcSpec::by_label(label),
            load,
            duration,
            None,
            None,
            FlowControlMode::Lossless,
            42,
        )
        .build();
        let n_flows = exp.flows().len();
        let res = exp.run();
        println!(
            "{label:>8}: {}/{} flows finished, 99p queue {:.1} KB, PFC pause time {:.3}%",
            res.out.flows.len(),
            n_flows,
            res.queue_percentile(99.0).unwrap_or(0) as f64 / 1000.0,
            res.pfc_summary().pause_time_fraction() * 100.0,
        );
        results.push(res);
    }
    let refs: Vec<&ExperimentResults> = results.iter().collect();

    println!("\n-- 95th-percentile FCT slowdown per flow size (Figure 10a/10c shape) --");
    print!(
        "{}",
        report::slowdown_table(&refs, &websearch_buckets(), 95.0)
    );

    println!("\n-- switch queue occupancy (Figure 10b/10d shape) --");
    print!("{}", report::queue_table(&refs));

    println!("\n-- PFC / drops --");
    print!("{}", report::pfc_table(&refs));
}
