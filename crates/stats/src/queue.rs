//! Queue-length CDFs from sampled histograms.

/// Turn a sampled queue-length histogram (`bin_width`-byte bins) into CDF
/// points `(queue_bytes, cumulative_fraction)`, one per non-empty bin plus
/// the origin. Returns an empty vector when no samples were taken.
pub fn queue_cdf(histogram: &[u64], bin_width: u64) -> Vec<(u64, f64)> {
    let total: u64 = histogram.iter().sum();
    if total == 0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut acc = 0u64;
    for (i, &count) in histogram.iter().enumerate() {
        if count == 0 && i != 0 {
            continue;
        }
        acc += count;
        out.push((i as u64 * bin_width, acc as f64 / total as f64));
    }
    // The loop visits every occupied bin, so the final point already sits
    // on the last occupied bin's edge; if float rounding left its fraction
    // short of 1.0, clamp it there. (Never append a closing point at
    // `histogram.len() * bin_width`: trailing empty bins must not overstate
    // the maximum queue length.)
    if let Some(last) = out.last_mut() {
        if last.1 < 1.0 {
            last.1 = 1.0;
        }
    }
    out
}

/// The queue length at percentile `p` (0–100) of a histogram, or `None` when
/// empty.
pub fn queue_percentile(histogram: &[u64], bin_width: u64, p: f64) -> Option<u64> {
    let total: u64 = histogram.iter().sum();
    if total == 0 {
        return None;
    }
    let target = ((p.clamp(0.0, 100.0) / 100.0) * total as f64)
        .ceil()
        .max(1.0) as u64;
    let mut acc = 0u64;
    for (i, &count) in histogram.iter().enumerate() {
        acc += count;
        if acc >= target {
            return Some(i as u64 * bin_width);
        }
    }
    // Defensive fallback (float rounding pushed `target` past `total`):
    // report the last occupied bin, never the histogram's trailing edge —
    // trailing empty bins must not inflate the maximum.
    Some(histogram.iter().rposition(|&c| c != 0).unwrap_or(0) as u64 * bin_width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_from_histogram() {
        // 80 samples in bin 0, 15 in bin 10, 5 in bin 20.
        let mut h = vec![0u64; 21];
        h[0] = 80;
        h[10] = 15;
        h[20] = 5;
        let cdf = queue_cdf(&h, 1024);
        assert_eq!(cdf[0], (0, 0.80));
        assert_eq!(cdf[1], (10 * 1024, 0.95));
        assert_eq!(cdf[2], (20 * 1024, 1.0));
        assert!(queue_cdf(&[], 1024).is_empty());
    }

    #[test]
    fn percentiles_from_histogram() {
        let mut h = vec![0u64; 21];
        h[0] = 80;
        h[10] = 15;
        h[20] = 5;
        assert_eq!(queue_percentile(&h, 1024, 50.0), Some(0));
        assert_eq!(queue_percentile(&h, 1024, 90.0), Some(10 * 1024));
        assert_eq!(queue_percentile(&h, 1024, 99.0), Some(20 * 1024));
        assert_eq!(queue_percentile(&[], 1024, 50.0), None);
    }

    #[test]
    fn cdf_is_monotone() {
        let h = vec![3, 0, 0, 7, 1, 0, 9];
        let cdf = queue_cdf(&h, 100);
        for w in cdf.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn trailing_empty_bins_never_inflate_the_closing_point() {
        // Samples stop at bin 4; bins 5..=9 are empty tail (a histogram
        // shape hand-built analyses produce; the simulator's own histograms
        // only grow on occupancy). The CDF must close at bin 4's edge and
        // the 100th percentile must report bin 4 — a closing point of
        // `histogram.len() * bin_width` (bin 10) would overstate the
        // maximum queue by 6 bins.
        let mut h = vec![0u64; 10];
        h[0] = 5;
        h[4] = 5;
        let cdf = queue_cdf(&h, 1000);
        assert_eq!(cdf.last().unwrap().0, 4 * 1000, "{cdf:?}");
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        assert!(
            cdf.iter().all(|&(x, _)| x <= 4 * 1000),
            "no CDF point beyond the last occupied bin: {cdf:?}"
        );
        assert_eq!(queue_percentile(&h, 1000, 100.0), Some(4 * 1000));
        // Percentiles above the clamp behave like 100 (never the tail).
        assert_eq!(queue_percentile(&h, 1000, 250.0), Some(4 * 1000));
        // All-in-bin-0 with an empty tail closes at 0.
        let mut z = vec![0u64; 8];
        z[0] = 3;
        assert_eq!(queue_cdf(&z, 512), vec![(0, 1.0)]);
        assert_eq!(queue_percentile(&z, 512, 100.0), Some(0));
    }
}
