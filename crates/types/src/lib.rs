//! # hpcc-types
//!
//! Foundation types shared by every crate in the HPCC reproduction
//! ("HPCC: High Precision Congestion Control", Li et al., SIGCOMM 2019).
//!
//! The crate is deliberately dependency-free: it defines
//!
//! * [`SimTime`] / [`Duration`] — integer picosecond simulated time, so that
//!   packet serialization times at 25/100/400 Gbps are exact and the
//!   simulator stays deterministic,
//! * [`Bandwidth`] and byte-count helpers,
//! * identifier newtypes ([`NodeId`], [`PortId`], [`FlowId`], [`Priority`]),
//! * the on-wire model: [`Packet`], [`PacketKind`], and the INT header of the
//!   paper's Figure 7 ([`IntHeader`], [`IntHopRecord`]),
//! * flow descriptions ([`FlowSpec`]) used by workload generators and the
//!   simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bandwidth;
pub mod flow;
pub mod ids;
pub mod packet;
pub mod rng;
pub mod time;

pub use bandwidth::Bandwidth;
pub use flow::{FlowPriority, FlowSpec};
pub use ids::{FlowId, NodeId, PortId, Priority};
pub use packet::{
    AckFlags, IntHeader, IntHopRecord, Packet, PacketKind, ACK_BASE_SIZE, DATA_HEADER_SIZE,
    INT_HOP_SIZE, MAX_INT_HOPS, PFC_FRAME_SIZE,
};
pub use rng::SplitMix64;
pub use time::{Duration, SimTime};
