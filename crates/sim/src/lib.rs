//! # hpcc-sim
//!
//! A packet-level discrete-event network simulator purpose-built to
//! reproduce "HPCC: High Precision Congestion Control" (SIGCOMM 2019). It
//! plays the role ns-3 plays in the paper's evaluation:
//!
//! * **switches** with a shared buffer, multi-class egress queues behind a
//!   pluggable scheduler ([`sched`]: strict priority or DWRR; PIAS-style
//!   dynamic demotion tags at the sender), WRED/ECN marking with per-class
//!   thresholds, dynamic-threshold PFC (per-class pause/resume frames),
//!   dynamic drop thresholds for lossy configurations, destination-based
//!   ECMP and INT stamping at dequeue (§4.1),
//! * **host NICs** with per-flow rate pacing and window limiting driven by a
//!   pluggable congestion-control algorithm (`hpcc-cc`), per-packet ACKs
//!   echoing INT, CNP generation for DCQCN, go-back-N and IRN-style loss
//!   recovery (§4.2),
//! * a deterministic, seeded event engine in integer picoseconds.
//!
//! The top-level entry point is [`Simulator`]: build a topology with
//! `hpcc-topology`, describe the host behaviour with [`SimConfig`], add
//! flows, call [`Simulator::run`], and read the raw measurement records from
//! the returned [`SimOutput`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod config;
pub mod engine;
pub mod fault;
pub mod fluid;
pub mod host;
pub mod output;
pub mod parallel;
pub mod partition;
pub mod rng;
pub mod sched;
pub mod switch;

mod simulator;

pub use backend::{backend_for, Backend, BackendKind, CompiledScenario, PacketBackend};
pub use config::{EcnConfig, FlowControlMode, QueueingConfig, SchedulerKind, SimConfig};
pub use engine::Event;
pub use fault::{DegradedLink, FaultConfig, FaultTimeline, LinkDownMode, LinkFault, StragglerHost};
pub use fluid::{ai_equilibrium_rate, ai_equilibrium_utilization, FluidBackend, FluidNetwork};
pub use output::{FlowRecord, PortKey, SimOutput};
pub use parallel::{run_parallel, ParallelPacketBackend};
pub use partition::{plan_shards, ShardLayout};
pub use simulator::Simulator;
