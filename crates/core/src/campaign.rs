//! Batch execution of scenarios across OS threads and processes.
//!
//! A [`Campaign`] is an ordered list of [`ScenarioSpec`]s. [`Campaign::run`]
//! executes them across a pool of OS threads (scenarios are embarrassingly
//! parallel: each builds its own topology and simulator from plain data) and
//! collects a [`CampaignReport`] with one [`ScenarioResult`] per scenario,
//! *in scenario order*.
//!
//! Beyond one process, a [`ShardPlan`] deterministically partitions the
//! campaign into `k` round-robin shards. A worker process executes one shard
//! with [`Campaign::run_shard_streaming`], emitting each result as a JSONL
//! line (see [`crate::wire`]) the moment it completes; a coordinator merges
//! the shard streams back into one report with
//! [`crate::wire::merge_shard_streams`]. The `campaign` binary in
//! `hpcc-bench` wires these into `--shards N` / `--worker-shard i/N` /
//! `--merge` CLI modes.
//!
//! Determinism is a hard guarantee: every scenario derives all randomness
//! from its own seed, so the per-scenario results — summarised metrics *and*
//! the [`ScenarioResult::digest`] over the raw simulator output — are
//! bit-identical whether the campaign runs serially, on 2 threads, on 64,
//! or sharded across processes on several hosts.

use crate::experiment::ExperimentResults;
use crate::report::truncate;
use crate::scenario::{CdfSpec, ScenarioSpec, WorkloadSpec};
use hpcc_sim::SimOutput;
use hpcc_stats::fct::{fb_hadoop_buckets, websearch_buckets, SizeBucketStats};
use hpcc_stats::pfc::PfcSummary;
use hpcc_stats::Percentiles;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// An ordered batch of scenarios to execute.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Campaign {
    scenarios: Vec<ScenarioSpec>,
}

impl Campaign {
    /// An empty campaign.
    pub fn new() -> Self {
        Campaign::default()
    }

    /// A campaign over the given scenarios.
    pub fn from_scenarios(scenarios: Vec<ScenarioSpec>) -> Self {
        Campaign { scenarios }
    }

    /// Append a scenario (builder style).
    pub fn with(mut self, spec: ScenarioSpec) -> Self {
        self.scenarios.push(spec);
        self
    }

    /// Append a scenario.
    pub fn push(&mut self, spec: ScenarioSpec) {
        self.scenarios.push(spec);
    }

    /// The scenarios, in execution-report order.
    pub fn scenarios(&self) -> &[ScenarioSpec] {
        &self.scenarios
    }

    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// True if the campaign holds no scenarios.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// The scenarios, in campaign order (e.g. to feed a manifest into the
    /// cross-validation harness, [`crate::ValidationReport::run`]).
    pub fn specs(&self) -> &[ScenarioSpec] {
        &self.scenarios
    }

    /// Run every scenario on the calling thread, in order.
    pub fn run_serial(&self) -> CampaignReport {
        let start = Instant::now();
        let results = self.scenarios.iter().map(run_one).collect();
        CampaignReport {
            results,
            wall: start.elapsed(),
            threads: 1,
        }
    }

    /// Run the scenarios across `threads` OS threads (clamped to the
    /// scenario count; `<= 1` falls back to serial execution).
    ///
    /// Work is handed out through an atomic cursor, so long scenarios do not
    /// serialize behind short ones. Results land in scenario order.
    pub fn run_with_threads(&self, threads: usize) -> CampaignReport {
        let n = self.scenarios.len();
        // The clamp also covers the empty campaign: no worker threads are
        // spawned and the serial path returns a well-formed empty report
        // with `threads: 1` (the calling thread did all — zero — work).
        let threads = threads.min(n);
        if threads <= 1 {
            return self.run_serial();
        }
        let start = Instant::now();
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<ScenarioResult>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let result = run_one(&self.scenarios[i]);
                    *slots[i].lock().unwrap() = Some(result);
                });
            }
        });
        let results = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap()
                    .expect("every slot is filled before the scope ends")
            })
            .collect();
        CampaignReport {
            results,
            wall: start.elapsed(),
            threads,
        }
    }

    /// Run with one thread per available core (capped at the scenario
    /// count).
    pub fn run(&self) -> CampaignReport {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.run_with_threads(cores)
    }

    /// Run the scenarios owned by `plan` on the calling thread, in campaign
    /// order, writing each [`ScenarioResult`] as one JSONL line (see
    /// [`crate::wire`]) into `out` the moment it completes. The sink is
    /// flushed after every line so a coordinator reading a pipe sees
    /// results as they land. Returns the number of scenarios executed.
    ///
    /// Per-scenario seeds and digests depend only on the scenario, never on
    /// the shard layout, so any `k` shard streams merge back into a report
    /// bit-identical to [`Campaign::run_serial`].
    pub fn run_shard_streaming<W: std::io::Write>(
        &self,
        plan: ShardPlan,
        out: &mut W,
    ) -> std::io::Result<usize> {
        let mut executed = 0;
        for i in plan.indices(self.len()) {
            let result = run_one(&self.scenarios[i]);
            writeln!(out, "{}", crate::wire::encode_result_line(i, &result))?;
            out.flush()?;
            executed += 1;
        }
        Ok(executed)
    }

    /// Run the single scenario at `index` on the calling thread — the
    /// fabric's unit of leased work. Seeds and digests depend only on the
    /// scenario spec, so `run_index` on any host reproduces the scenario's
    /// serial result bit-identically.
    ///
    /// # Panics
    /// Panics when `index` is out of range.
    pub fn run_index(&self, index: usize) -> ScenarioResult {
        run_one(&self.scenarios[index])
    }

    /// The manifest as a JSON array value (for embedding in larger
    /// documents, e.g. the fabric's manifest message).
    pub fn to_json(&self) -> crate::json::JsonValue {
        crate::json::JsonValue::Array(self.scenarios.iter().map(|s| s.to_json()).collect())
    }

    /// Serialize every scenario into a JSON array (a campaign manifest).
    pub fn to_json_string(&self) -> String {
        self.to_json().render()
    }

    /// Parse a campaign out of a JSON array value (the inverse of
    /// [`Campaign::to_json`]).
    pub fn from_json(doc: &crate::json::JsonValue) -> Result<Self, crate::json::JsonError> {
        let mut scenarios = Vec::new();
        for item in doc.as_array()? {
            scenarios.push(ScenarioSpec::from_json(item)?);
        }
        Ok(Campaign { scenarios })
    }

    /// Parse a campaign manifest (a JSON array of scenarios).
    pub fn from_json_str(text: &str) -> Result<Self, crate::json::JsonError> {
        Campaign::from_json(&crate::json::JsonValue::parse(text)?)
    }
}

/// A deterministic partition of a campaign into `of` round-robin shards.
///
/// Shard `s` of `k` owns every scenario whose index `i` satisfies
/// `i % k == s`. Round-robin (rather than contiguous ranges) keeps the
/// shards balanced when a campaign is ordered by scheme or by load, and —
/// because ownership is a pure function of the scenario *index* — leaves
/// every per-scenario seed and digest untouched: sharding never changes
/// what a scenario computes, only where it runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    shard: usize,
    of: usize,
}

impl ShardPlan {
    /// Plan for shard `shard` out of `of` total shards.
    ///
    /// # Panics
    /// Panics if `of == 0` or `shard >= of`.
    pub fn new(shard: usize, of: usize) -> Self {
        assert!(of >= 1, "a shard plan needs at least one shard");
        assert!(
            shard < of,
            "shard index {shard} out of range for {of} shards"
        );
        ShardPlan { shard, of }
    }

    /// Parse the `i/N` notation of the `--worker-shard` CLI flag
    /// (0-based: `"0/2"` and `"1/2"` are the two shards of a 2-way split).
    pub fn parse(text: &str) -> Result<Self, String> {
        let (shard, of) = text
            .split_once('/')
            .ok_or_else(|| format!("shard spec {text:?} is not of the form i/N"))?;
        let shard: usize = shard
            .trim()
            .parse()
            .map_err(|_| format!("bad shard index in {text:?}"))?;
        let of: usize = of
            .trim()
            .parse()
            .map_err(|_| format!("bad shard count in {text:?}"))?;
        if of == 0 {
            return Err(format!("shard count must be >= 1 in {text:?}"));
        }
        if shard >= of {
            return Err(format!(
                "shard index {shard} out of range for {of} shards (0-based) in {text:?}"
            ));
        }
        Ok(ShardPlan { shard, of })
    }

    /// This plan's 0-based shard index.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Total number of shards in the split.
    pub fn of(&self) -> usize {
        self.of
    }

    /// True if this shard owns scenario index `index`.
    pub fn owns(&self, index: usize) -> bool {
        index % self.of == self.shard
    }

    /// The scenario indices this shard owns in a campaign of `len`
    /// scenarios, in ascending order.
    pub fn indices(&self, len: usize) -> impl Iterator<Item = usize> {
        (self.shard..len).step_by(self.of)
    }
}

fn run_one(spec: &ScenarioSpec) -> ScenarioResult {
    let started = Instant::now();
    let results = spec.build().run();
    let wall = started.elapsed();
    let buckets = match bucket_choice(spec) {
        BucketChoice::FbHadoop => fb_hadoop_buckets(),
        BucketChoice::WebSearch => websearch_buckets(),
    };
    // Multi-class extensions: recorded only when the run actually carried
    // priorities or data classes, so legacy results (and their canonical
    // JSON) are byte-identical to the single-class era.
    let prio_slowdown = if results.out.flows.iter().any(|f| f.prio != 0) {
        results.slowdown_by_priority()
    } else {
        Vec::new()
    };
    let class_queue_p99 = (0..results.out.class_queue_histograms.len())
        .map(|c| results.class_queue_percentile(c, 99.0))
        .collect();
    let faults = (results.out.fault_events > 0).then(|| FaultSummary {
        events: results.out.fault_events,
        link_downtime_ps: results
            .out
            .link_downtime
            .iter()
            .map(|&(_, d)| d.as_ps())
            .sum(),
        dropped_bytes: results.out.fault_dropped_bytes,
        dropped_packets: results.out.fault_dropped_packets,
        goodput_during_faults: results.out.goodput_during_faults,
        utilization_while_up: results.utilization_while_up(spec.topology.host_bw()),
    });
    ScenarioResult {
        name: spec.name.clone(),
        scheme: spec.scheme_label(),
        slowdown: results.slowdown_overall(),
        short_flow_slowdown: results.slowdown_for_sizes_up_to(30_000),
        slowdown_buckets: results.slowdown_buckets(&buckets),
        queue_p50: results.queue_percentile(50.0),
        queue_p95: results.queue_percentile(95.0),
        queue_p99: results.queue_percentile(99.0),
        max_queue_bytes: results.out.max_queue_bytes(),
        pfc: results.pfc_summary(),
        drops: results.out.total_drops(),
        completion: results.completion_fraction(),
        flows_completed: results.out.flows.len(),
        prio_slowdown,
        class_queue_p99,
        faults,
        backend: spec.backend,
        digest: digest_output(&results.out),
        wall,
        results: Some(results),
    }
}

enum BucketChoice {
    WebSearch,
    FbHadoop,
}

/// Pick the slowdown bucket set that matches the scenario's background
/// trace (FB_Hadoop buckets for FB_Hadoop traffic, WebSearch buckets
/// otherwise — the paper's figure convention).
///
/// The wire format decodes buckets against these same tables
/// (`wire::known_bucket`): adding a bucket set here requires extending
/// that lookup, or merges of distributed runs will reject the new labels.
fn bucket_choice(spec: &ScenarioSpec) -> BucketChoice {
    for w in &spec.workloads {
        if let WorkloadSpec::Poisson {
            cdf: CdfSpec::FbHadoop,
            ..
        } = w
        {
            return BucketChoice::FbHadoop;
        }
    }
    BucketChoice::WebSearch
}

/// Everything measured for one scenario of a campaign.
///
/// The summary fields and `digest` are derived purely from the simulator's
/// deterministic output; only `wall` depends on the host machine. The
/// summary (everything except `wall` and `results`) is what crosses process
/// boundaries through the [`crate::wire`] JSONL format.
pub struct ScenarioResult {
    /// Scenario name (copied from the spec).
    pub name: String,
    /// Congestion-control scheme label.
    pub scheme: String,
    /// Overall FCT-slowdown percentiles (None when no flow completed).
    pub slowdown: Option<Percentiles>,
    /// FCT-slowdown percentiles of flows ≤ 30 KB.
    pub short_flow_slowdown: Option<Percentiles>,
    /// FCT slowdown per flow-size bucket (buckets chosen to match the
    /// scenario's background trace).
    pub slowdown_buckets: Vec<SizeBucketStats>,
    /// Median sampled queue length in bytes.
    pub queue_p50: Option<u64>,
    /// 95th-percentile sampled queue length in bytes.
    pub queue_p95: Option<u64>,
    /// 99th-percentile sampled queue length in bytes.
    pub queue_p99: Option<u64>,
    /// Largest queue occupancy seen anywhere.
    pub max_queue_bytes: u64,
    /// PFC pause summary.
    pub pfc: PfcSummary,
    /// Total dropped data packets.
    pub drops: u64,
    /// Fraction of injected flows that completed.
    pub completion: f64,
    /// Number of flows that completed.
    pub flows_completed: usize,
    /// FCT-slowdown percentiles per flow priority (keyed by the
    /// [`hpcc_types::FlowPriority`] wire code, ascending). Empty when no
    /// flow carried a non-default priority — legacy results are unchanged.
    pub prio_slowdown: Vec<(u8, Option<Percentiles>)>,
    /// 99th-percentile sampled queue length per data class, in class order.
    /// Empty on the legacy single-class path.
    pub class_queue_p99: Vec<Option<u64>>,
    /// Fault-injection summary (`None` on fault-free runs, so legacy
    /// results — and their canonical wire lines — are byte-identical to the
    /// pre-fault era).
    pub faults: Option<FaultSummary>,
    /// The engine that produced this result. Wire-encoded only when not the
    /// packet default, so legacy result lines are byte-identical to the
    /// pre-boundary era.
    pub backend: crate::BackendSpec,
    /// FNV-1a digest over the raw simulator output (flows, counters,
    /// histograms, traces) — equal digests mean bit-identical runs.
    pub digest: u64,
    /// Wall-clock time this scenario took to build and run (for results
    /// decoded from the wire format, the wall time the *worker* measured).
    pub wall: std::time::Duration,
    /// The full analysis wrapper, for figure-grade post-processing.
    /// `Some` for scenarios executed in this process; `None` for results
    /// decoded from the JSONL wire format (the raw simulator output never
    /// crosses process boundaries — only the summary and digest do).
    pub results: Option<ExperimentResults>,
}

/// Per-scenario fault-injection observability: what the configured fault
/// timeline actually did to the run. Attached to a [`ScenarioResult`] only
/// when at least one fault transition was applied.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSummary {
    /// Number of fault-timeline transitions applied.
    pub events: u64,
    /// Total administratively-down link time, summed over faulted links.
    pub link_downtime_ps: u64,
    /// Wire bytes lost to fault injection (down links in drop mode plus iid
    /// losses on degraded links).
    pub dropped_bytes: u64,
    /// Packets lost to fault injection.
    pub dropped_packets: u64,
    /// Bytes newly acknowledged while at least one fault window was active
    /// (goodput during the fault window).
    pub goodput_during_faults: u64,
    /// Average utilization over the host-seconds the NICs were up (see
    /// [`ExperimentResults::utilization_while_up`]).
    pub utilization_while_up: f64,
}

/// The outcome of one campaign: per-scenario results in scenario order.
pub struct CampaignReport {
    /// One entry per scenario, in the campaign's order.
    pub results: Vec<ScenarioResult>,
    /// Wall-clock time of the whole campaign (zero for reports merged from
    /// wire streams whose files were produced elsewhere).
    pub wall: std::time::Duration,
    /// Number of OS threads used (for reports merged from shard streams,
    /// the number of streams).
    pub threads: usize,
}

impl CampaignReport {
    /// The per-scenario digests, in scenario order.
    pub fn digests(&self) -> Vec<u64> {
        self.results.iter().map(|r| r.digest).collect()
    }

    /// Sum of per-scenario wall times (the serial cost the campaign would
    /// have had).
    pub fn total_scenario_wall(&self) -> std::time::Duration {
        self.results.iter().map(|r| r.wall).sum()
    }

    /// Render a per-scenario summary table.
    pub fn table(&self) -> String {
        let mut s = String::new();
        writeln!(
            s,
            "{:<26} {:>9} {:>9} {:>9} {:>10} {:>8} {:>7} {:>9} {:>9}",
            "scenario",
            "slow p50",
            "slow p95",
            "slow p99",
            "q p99 (KB)",
            "pauses",
            "drops",
            "done %",
            "wall (s)"
        )
        .unwrap();
        for r in &self.results {
            let (p50, p95, p99) = match &r.slowdown {
                Some(p) => (
                    format!("{:.2}", p.p50),
                    format!("{:.2}", p.p95),
                    format!("{:.2}", p.p99),
                ),
                None => ("-".into(), "-".into(), "-".into()),
            };
            writeln!(
                s,
                "{:<26} {:>9} {:>9} {:>9} {:>10.1} {:>8} {:>7} {:>9.1} {:>9.2}",
                truncate(&r.name, 26),
                p50,
                p95,
                p99,
                r.queue_p99.unwrap_or(0) as f64 / 1000.0,
                r.pfc.pause_frames,
                r.drops,
                r.completion * 100.0,
                r.wall.as_secs_f64()
            )
            .unwrap();
        }
        writeln!(
            s,
            "campaign: {} scenarios on {} thread(s) in {:.2} s (sum of scenario walls {:.2} s)",
            self.results.len(),
            self.threads,
            self.wall.as_secs_f64(),
            self.total_scenario_wall().as_secs_f64()
        )
        .unwrap();
        s
    }
}

/// FNV-1a digest over everything deterministic in a [`SimOutput`].
///
/// HashMap-backed fields are folded in sorted-key order, so the digest is a
/// pure function of the simulation, not of hasher state. This contract is
/// machine-checked: the `hash-iter` rule of `simlint` (crates/lint) flags
/// any HashMap/HashSet iteration in sim/stats/core/topology that neither
/// feeds a sort (as the folds below do) nor carries a justified
/// `// simlint: sorted-fold` annotation.
pub fn digest_output(out: &SimOutput) -> u64 {
    let mut d = Fnv::new();
    let mut flows = out.flows.clone();
    flows.sort_by_key(|f| f.id);
    for f in &flows {
        d.write(f.id.raw());
        d.write(f.src.0 as u64);
        d.write(f.dst.0 as u64);
        d.write(f.size);
        d.write(f.start.as_ps());
        d.write(f.finish.as_ps());
    }
    d.write(out.unfinished_flows as u64);
    let mut port_keys: Vec<_> = out.ports.keys().copied().collect();
    port_keys.sort();
    for key in port_keys {
        let c = &out.ports[&key];
        d.write(key.0 .0 as u64);
        d.write(key.1 .0 as u64);
        d.write(c.tx_bytes);
        d.write(c.dropped_bytes);
        d.write(c.dropped_packets);
        d.write(c.ecn_marked);
        d.write(c.pause_duration.as_ps());
        d.write(c.pause_events);
        d.write(c.pause_frames_sent);
        d.write(c.max_queue_bytes);
    }
    d.write(out.queue_histogram_bin);
    for &count in &out.queue_histogram {
        d.write(count);
    }
    let mut trace_keys: Vec<_> = out.port_traces.keys().copied().collect();
    trace_keys.sort();
    for key in trace_keys {
        d.write(key.0 .0 as u64);
        d.write(key.1 .0 as u64);
        for &(t, q) in &out.port_traces[&key] {
            d.write(t.as_ps());
            d.write(q);
        }
    }
    let mut goodput_keys: Vec<_> = out.flow_goodput.keys().copied().collect();
    goodput_keys.sort();
    for key in goodput_keys {
        d.write(key.raw());
        for &bytes in &out.flow_goodput[&key] {
            d.write(bytes);
        }
    }
    d.write(out.flow_goodput_bin.as_ps());
    for e in &out.pfc_events {
        d.write(e.time.as_ps());
        d.write(e.node.0 as u64);
        d.write(e.port.0 as u64);
    }
    d.write(out.pfc_events_truncated as u64);
    d.write(out.elapsed.as_ps());
    d.write(out.events_processed);
    d.write(out.packets_delivered);
    d.write(out.packets_sent);
    // Multi-class extensions, folded only when present: a legacy
    // single-class run (all priorities 0, no per-class histograms) hashes
    // exactly the historical byte stream, so pre-refactor digests hold.
    if flows.iter().any(|f| f.prio != 0) {
        d.write(0x7072696f); // section marker: "prio"
        for f in &flows {
            d.write(f.prio as u64);
        }
    }
    if !out.class_queue_histograms.is_empty() {
        d.write(0x636c6173); // section marker: "clas"
        d.write(out.class_queue_histograms.len() as u64);
        for hist in &out.class_queue_histograms {
            d.write(hist.len() as u64);
            for &count in hist {
                d.write(count);
            }
        }
    }
    if out.fault_events > 0 {
        d.write(0x6661756c); // section marker: "faul"
        d.write(out.fault_events);
        for &(link, downtime) in &out.link_downtime {
            d.write(link as u64);
            d.write(downtime.as_ps());
        }
        d.write(out.fault_dropped_bytes);
        d.write(out.fault_dropped_packets);
        d.write(out.goodput_during_faults);
        d.write(out.host_nic_downtime.as_ps());
    }
    d.finish()
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }

    fn write(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::fig11_campaign;
    use crate::scenario::{CcSpec, TopologyChoice};
    use hpcc_topology::FatTreeParams;
    use hpcc_types::{Bandwidth, Duration};

    fn small_campaign() -> Campaign {
        // The Figure 11 scheme set (six schemes) on the scaled-down Clos
        // fabric — small enough for a unit test, large enough to exercise
        // real queueing and PFC.
        fig11_campaign(FatTreeParams::small(), 0.3, Duration::from_ms(3), true, 42)
    }

    #[test]
    fn parallel_execution_is_bit_identical_to_serial() {
        let campaign = small_campaign();
        assert!(campaign.len() >= 6);
        let serial = campaign.run_serial();
        let parallel = campaign.run_with_threads(campaign.len());
        assert_eq!(serial.threads, 1);
        assert!(parallel.threads > 1);
        assert_eq!(serial.digests(), parallel.digests());
        for (s, p) in serial.results.iter().zip(&parallel.results) {
            assert_eq!(s.name, p.name);
            assert_eq!(s.scheme, p.scheme);
            assert_eq!(s.slowdown, p.slowdown);
            assert_eq!(s.queue_p99, p.queue_p99);
            assert_eq!(s.pfc, p.pfc);
            assert_eq!(s.drops, p.drops);
            assert_eq!(s.flows_completed, p.flows_completed);
            let (s_out, p_out) = (
                &s.results.as_ref().unwrap().out,
                &p.results.as_ref().unwrap().out,
            );
            assert_eq!(s_out.events_processed, p_out.events_processed);
        }
        // The table renders every scenario.
        let table = parallel.table();
        for r in &parallel.results {
            assert!(table.contains(&truncate(&r.name, 26)), "{table}");
        }
    }

    #[test]
    fn digest_distinguishes_different_runs() {
        let campaign = small_campaign();
        let report = campaign.run_with_threads(3);
        let digests = report.digests();
        // Six different schemes on the same workload must not collide.
        let mut unique = digests.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), digests.len(), "digest collision: {digests:?}");
    }

    #[test]
    fn campaign_manifest_round_trips() {
        let campaign = small_campaign();
        let manifest = campaign.to_json_string();
        let back = Campaign::from_json_str(&manifest).unwrap();
        assert_eq!(back, campaign);
    }

    #[test]
    fn empty_campaign_yields_a_well_formed_empty_report() {
        let empty = Campaign::new();
        assert!(empty.is_empty());
        // Every execution path must return an empty report without spawning
        // worker threads, recording `threads: 1` (the calling thread).
        for report in [empty.run_serial(), empty.run_with_threads(8), empty.run()] {
            assert!(report.results.is_empty());
            assert_eq!(report.threads, 1);
            assert!(report.digests().is_empty());
            assert_eq!(report.total_scenario_wall(), std::time::Duration::ZERO);
            assert!(report
                .table()
                .contains("campaign: 0 scenarios on 1 thread(s)"));
        }
        // The wire round trip of the empty report is well-formed too.
        let text = empty.run_serial().to_json_string();
        assert_eq!(text, "[]");
        let back = CampaignReport::from_json_str(&text).unwrap();
        assert!(back.results.is_empty());
        // Sharding an empty campaign streams nothing and merges to empty.
        let mut buf = Vec::new();
        assert_eq!(
            empty
                .run_shard_streaming(ShardPlan::new(0, 2), &mut buf)
                .unwrap(),
            0
        );
        assert!(buf.is_empty());
        let merged = crate::wire::merge_shard_streams([""], Some(0)).unwrap();
        assert!(merged.results.is_empty());
    }

    #[test]
    fn shard_plans_partition_round_robin() {
        // 2 shards of 5 scenarios: even and odd indices.
        let a = ShardPlan::new(0, 2);
        let b = ShardPlan::new(1, 2);
        assert_eq!(a.indices(5).collect::<Vec<_>>(), vec![0, 2, 4]);
        assert_eq!(b.indices(5).collect::<Vec<_>>(), vec![1, 3]);
        // Every index is owned by exactly one shard, for several k.
        for k in [1, 2, 3, 7] {
            for i in 0..20 {
                let owners = (0..k).filter(|s| ShardPlan::new(*s, k).owns(i)).count();
                assert_eq!(owners, 1, "index {i} with {k} shards");
            }
        }
        // More shards than scenarios: the excess shards are empty.
        assert_eq!(ShardPlan::new(6, 7).indices(3).count(), 0);
        // The i/N CLI notation round-trips; malformed specs are rejected.
        assert_eq!(ShardPlan::parse("1/2"), Ok(ShardPlan::new(1, 2)));
        assert_eq!(ShardPlan::parse("0/1"), Ok(ShardPlan::new(0, 1)));
        for bad in ["", "1", "2/2", "3/2", "1/0", "x/2", "1/y", "-1/2"] {
            assert!(ShardPlan::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn run_caps_threads_at_scenario_count() {
        let one = Campaign::new().with(crate::scenario::ScenarioSpec::new(
            "solo",
            TopologyChoice::star(3, Bandwidth::from_gbps(25)),
            CcSpec::by_label("HPCC"),
            Duration::from_us(100),
        ));
        let report = one.run();
        assert_eq!(report.threads, 1);
        assert_eq!(report.results.len(), 1);
    }
}
