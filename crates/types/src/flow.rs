//! Flow descriptions produced by workload generators and consumed by the
//! simulator and the statistics crate.

use crate::ids::{FlowId, NodeId};
use crate::time::SimTime;

/// Application-level priority of a flow.
///
/// The switch scheduling subsystem maps this tag onto a switch data class
/// (see [`FlowPriority::initial_class`]): latency-sensitive flows go to the
/// highest-priority data class, normal flows one class below (when one
/// exists), and [`FlowPriority::Class`] pins an explicit class. All paper
/// experiments use a single data class, where every tag collapses to class 0.
///
/// On the wire (trace files, manifests) the tag is a small integer code:
/// `0` = normal, `1` = latency-sensitive, `2 + c` = explicit data class `c`
/// (see [`FlowPriority::wire_code`] / [`FlowPriority::from_wire_code`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FlowPriority {
    /// Regular data flow.
    #[default]
    Normal,
    /// Latency-sensitive flow (e.g. the "mice" of Figure 9e/9f).
    LatencySensitive,
    /// An explicit switch data class (0-based, highest priority first).
    Class(u8),
}

impl FlowPriority {
    /// The integer code this priority uses in trace files and manifests.
    /// Explicit classes above 253 saturate at 255 (far beyond
    /// `Priority::MAX_DATA_CLASSES`, so no valid class is affected).
    pub fn wire_code(self) -> u8 {
        match self {
            FlowPriority::Normal => 0,
            FlowPriority::LatencySensitive => 1,
            FlowPriority::Class(c) => c.saturating_add(2),
        }
    }

    /// Decode a wire code (total: every `u8` maps to a priority).
    pub fn from_wire_code(code: u8) -> FlowPriority {
        match code {
            0 => FlowPriority::Normal,
            1 => FlowPriority::LatencySensitive,
            c => FlowPriority::Class(c - 2),
        }
    }

    /// The switch data class this flow starts in when `n_classes` data
    /// classes are configured (static mapping; PIAS tagging overrides it).
    ///
    /// With a single class everything maps to class 0 — the paper's
    /// deployment. With more classes, latency-sensitive flows take class 0,
    /// normal flows class 1, and explicit classes are clamped into range.
    pub fn initial_class(self, n_classes: u8) -> u8 {
        let last = n_classes.saturating_sub(1);
        match self {
            FlowPriority::LatencySensitive => 0,
            FlowPriority::Normal => 1.min(last),
            FlowPriority::Class(c) => c.min(last),
        }
    }
}

/// A single flow to be injected into the simulation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlowSpec {
    /// Unique identifier.
    pub id: FlowId,
    /// Sending host.
    pub src: NodeId,
    /// Receiving host.
    pub dst: NodeId,
    /// Flow size in bytes. A size of zero models the paper's "0 byte" RPC
    /// bucket and is carried as a single header-only packet.
    pub size: u64,
    /// Time at which the sender learns about the flow and starts transmitting
    /// (at line rate, per the RDMA model).
    pub start: SimTime,
    /// Application priority tag.
    pub priority: FlowPriority,
}

impl FlowSpec {
    /// Construct a flow spec with [`FlowPriority::Normal`].
    pub fn new(id: FlowId, src: NodeId, dst: NodeId, size: u64, start: SimTime) -> Self {
        FlowSpec {
            id,
            src,
            dst,
            size,
            start,
            priority: FlowPriority::Normal,
        }
    }

    /// Number of data packets this flow needs with the given MTU payload.
    pub fn packet_count(&self, mtu_payload: u64) -> u64 {
        if self.size == 0 {
            1
        } else {
            self.size.div_ceil(mtu_payload)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_count_rounds_up_and_handles_zero() {
        let f = FlowSpec::new(FlowId(1), NodeId(0), NodeId(1), 2500, SimTime::ZERO);
        assert_eq!(f.packet_count(1000), 3);
        let exact = FlowSpec::new(FlowId(2), NodeId(0), NodeId(1), 3000, SimTime::ZERO);
        assert_eq!(exact.packet_count(1000), 3);
        let zero = FlowSpec::new(FlowId(3), NodeId(0), NodeId(1), 0, SimTime::ZERO);
        assert_eq!(zero.packet_count(1000), 1);
    }

    #[test]
    fn default_priority_is_normal() {
        let f = FlowSpec::new(FlowId(1), NodeId(0), NodeId(1), 100, SimTime::ZERO);
        assert_eq!(f.priority, FlowPriority::Normal);
    }

    #[test]
    fn wire_codes_round_trip() {
        for p in [
            FlowPriority::Normal,
            FlowPriority::LatencySensitive,
            FlowPriority::Class(0),
            FlowPriority::Class(3),
        ] {
            assert_eq!(FlowPriority::from_wire_code(p.wire_code()), p);
        }
        assert_eq!(FlowPriority::Normal.wire_code(), 0);
        assert_eq!(FlowPriority::LatencySensitive.wire_code(), 1);
        assert_eq!(FlowPriority::Class(1).wire_code(), 3);
    }

    #[test]
    fn initial_class_collapses_to_zero_for_one_class() {
        for p in [
            FlowPriority::Normal,
            FlowPriority::LatencySensitive,
            FlowPriority::Class(3),
        ] {
            assert_eq!(p.initial_class(1), 0, "{p:?}");
        }
        // With four classes: mice first, normal second, explicit clamped.
        assert_eq!(FlowPriority::LatencySensitive.initial_class(4), 0);
        assert_eq!(FlowPriority::Normal.initial_class(4), 1);
        assert_eq!(FlowPriority::Class(2).initial_class(4), 2);
        assert_eq!(FlowPriority::Class(9).initial_class(4), 3);
    }
}
