//! The host NIC model (§4.2 of the paper).
//!
//! Each host has one NIC port. On the send side a per-flow scheduler mirrors
//! the paper's credit-based flow scheduler: it round-robins over flows whose
//! pacing gap has elapsed and whose sending window has room, and transmits
//! one packet at a time at line rate. ACK/NACK/CNP control packets always
//! take precedence over data. On the receive side, every data packet is
//! acknowledged (echoing the INT records and the ECN mark), DCQCN CNPs are
//! generated at most once per `cnp_interval`, and loss recovery is either
//! go-back-N (NACK with the expected byte) or IRN-style selective repeat.
//!
//! Congestion control is a per-flow plug-in (`hpcc-cc`); the host feeds it
//! ACK/CNP/loss/timer events and reads back `(window, rate)`.

use crate::config::SimConfig;
use crate::engine::{Effects, Event};
use crate::output::{FlowRecord, PortCounters};
use crate::rng::SplitMix64;
use hpcc_cc::{build_cc, AckEvent, CongestionControl};
use hpcc_topology::PortDesc;
use hpcc_types::{
    Bandwidth, Duration, FlowId, FlowSpec, NodeId, Packet, PacketKind, PortId, Priority, SimTime,
};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Cold (per-event, not per-scan) sender-side state of one flow.
///
/// Everything the round-robin scheduler scan does *not* touch lives here, so
/// the hot arrays in [`SenderFlows`] stay dense.
struct SenderFlowCold {
    spec: FlowSpec,
    /// Dense slot of this flow in the receiver's table (stamped on every
    /// data packet so the receiver indexes without a hash lookup).
    dst_slot: u32,
    cc: Box<dyn CongestionControl>,
    /// IRN: packet offsets queued for retransmission.
    rtx_queue: BTreeSet<u64>,
    /// IRN: packet offsets known to have been received out of order.
    sacked: BTreeSet<u64>,
    /// Last time a go-back-N rollback was performed (NACK dedup).
    last_rollback: Option<SimTime>,
    /// Last time `snd_una` advanced (RTO reference).
    last_progress: SimTime,
    /// Pending CC timer event time (to avoid duplicate chains).
    timer_at: Option<SimTime>,
    /// Whether an RTO check chain is running.
    rto_armed: bool,
}

/// Sender-side flow table in struct-of-arrays layout.
///
/// The per-ACK path and the round-robin `pick_flow` scan read a handful of
/// small fields per flow (`finished`/window/pacing state); keeping those in
/// parallel dense arrays means a scan over thousands of flows touches a few
/// contiguous cache lines instead of striding over ~200-byte AoS records
/// (the CC trait object, two `BTreeSet`s and the spec live in
/// [`SenderFlowCold`], off the scan path).
#[derive(Default)]
struct SenderFlows {
    /// Flow id (per-ACK identity check).
    id: Vec<FlowId>,
    /// Flow size in bytes (mirror of `spec.size`).
    size: Vec<u64>,
    /// Cached CC window output.
    window: Vec<u64>,
    /// Cached CC rate output.
    rate: Vec<Bandwidth>,
    /// Cumulatively acknowledged bytes.
    snd_una: Vec<u64>,
    /// Next new byte to transmit.
    snd_nxt: Vec<u64>,
    /// Earliest time the pacer allows the next packet of this flow.
    next_avail: Vec<SimTime>,
    finished: Vec<bool>,
    /// Mirror of `cold[i].rtx_queue.is_empty()` (kept in sync at every
    /// retransmission-queue mutation so the scheduler scan stays hot).
    rtx_empty: Vec<bool>,
    cold: Vec<SenderFlowCold>,
}

impl SenderFlows {
    fn len(&self) -> usize {
        self.cold.len()
    }
    fn push(
        &mut self,
        now: SimTime,
        spec: FlowSpec,
        dst_slot: u32,
        cc: Box<dyn CongestionControl>,
    ) {
        self.id.push(spec.id);
        self.size.push(spec.size);
        self.window.push(0);
        self.rate.push(Bandwidth::ZERO);
        self.snd_una.push(0);
        self.snd_nxt.push(0);
        self.next_avail.push(now);
        self.finished.push(false);
        self.rtx_empty.push(true);
        self.cold.push(SenderFlowCold {
            spec,
            dst_slot,
            cc,
            rtx_queue: BTreeSet::new(),
            sacked: BTreeSet::new(),
            last_rollback: None,
            last_progress: now,
            timer_at: None,
            rto_armed: false,
        });
    }
    fn inflight(&self, i: usize) -> u64 {
        self.snd_nxt[i].saturating_sub(self.snd_una[i])
    }
    fn has_data_to_send(&self, i: usize) -> bool {
        !self.rtx_empty[i] || self.snd_nxt[i] < self.size[i]
    }
    fn window_open(&self, i: usize) -> bool {
        self.inflight(i) < self.window[i]
    }
    fn refresh_cc(&mut self, i: usize) {
        let s = self.cold[i].cc.state();
        self.window[i] = s.window;
        self.rate[i] = s.rate;
    }
    /// Re-sync the `rtx_empty` mirror after a retransmission-queue mutation.
    fn sync_rtx(&mut self, i: usize) {
        self.rtx_empty[i] = self.cold[i].rtx_queue.is_empty();
    }
}

/// Receiver-side state of one flow.
#[derive(Default)]
struct ReceiverFlow {
    /// Next in-order byte expected.
    expected: u64,
    /// IRN: out-of-order byte ranges received (`start -> end`).
    ooo: BTreeMap<u64, u64>,
    last_cnp: Option<SimTime>,
    last_nack: Option<SimTime>,
    /// In-order packets since the last ACK was emitted (ACK coalescing).
    unacked_packets: u64,
}

/// A host with a single NIC port.
pub struct Host {
    /// Node id of this host.
    pub id: NodeId,
    peer_node: NodeId,
    peer_port: PortId,
    /// NIC line rate.
    pub bandwidth: Bandwidth,
    delay: Duration,
    ctrl_queue: VecDeque<Box<Packet>>,
    busy: bool,
    /// Per-data-class PFC pause state (legacy runs only ever toggle class 0).
    paused_classes: [bool; Priority::MAX_DATA_CLASSES],
    pause_started: Option<SimTime>,
    /// NIC port counters (tx bytes, pause time, …).
    pub counters: PortCounters,
    flows: SenderFlows,
    rr_cursor: usize,
    /// Receiver-side flow state, indexed by the packet's `dst_slot` (dense
    /// per-host slots assigned by the simulator at flow registration).
    recv: Vec<ReceiverFlow>,
    wake_at: Option<SimTime>,
    /// Fault injection: NIC link administratively down.
    fault_down: bool,
    /// Down-link semantics: drop (frames serialize and are lost) when true,
    /// pause-and-requeue when false.
    fault_drop: bool,
    /// Extra one-way latency while the NIC link is degraded.
    fault_extra_delay: Duration,
    /// iid frame-loss probability while the NIC link is degraded.
    fault_loss: f64,
    /// Effective NIC rate while straggling (`None` = configured line rate).
    fault_rate: Option<Bandwidth>,
    /// Dedicated RNG stream for degraded-link iid loss (installed only when
    /// a fault config attaches loss to this host's link).
    fault_rng: Option<SplitMix64>,
    /// Wire bytes lost to fault injection at this NIC.
    fault_dropped_bytes: u64,
    /// Packets lost to fault injection at this NIC.
    fault_dropped_packets: u64,
}

impl std::fmt::Debug for Host {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Host")
            .field("id", &self.id)
            .field("flows", &self.flows.len())
            .field("busy", &self.busy)
            .finish()
    }
}

impl Host {
    /// Build a host from its (single) topology port descriptor.
    pub fn new(id: NodeId, ports: &[PortDesc]) -> Self {
        assert_eq!(
            ports.len(),
            1,
            "the host model supports exactly one NIC port (host {id} has {})",
            ports.len()
        );
        let p = ports[0];
        Host {
            id,
            peer_node: p.peer_node,
            peer_port: p.peer_port,
            bandwidth: p.bandwidth,
            delay: p.delay,
            ctrl_queue: VecDeque::with_capacity(16),
            busy: false,
            paused_classes: [false; Priority::MAX_DATA_CLASSES],
            pause_started: None,
            counters: PortCounters::default(),
            flows: SenderFlows::default(),
            rr_cursor: 0,
            recv: Vec::new(),
            wake_at: None,
            fault_down: false,
            fault_drop: false,
            fault_extra_delay: Duration::ZERO,
            fault_loss: 0.0,
            fault_rate: None,
            fault_rng: None,
            fault_dropped_bytes: 0,
            fault_dropped_packets: 0,
        }
    }

    /// Apply or clear an administrative down state on the NIC link (fault
    /// injection; see [`crate::fault`] for the semantics of `drop_mode`).
    pub(crate) fn set_link_down(&mut self, down: bool, drop_mode: bool) {
        self.fault_down = down;
        self.fault_drop = drop_mode;
    }

    /// Apply or clear a degraded-link state on the NIC link.
    pub(crate) fn set_link_degraded(&mut self, extra_delay: Duration, loss: f64) {
        self.fault_extra_delay = extra_delay;
        self.fault_loss = loss;
    }

    /// Set or clear the straggler NIC rate (`None` restores line rate).
    pub(crate) fn set_straggle(&mut self, rate: Option<Bandwidth>) {
        self.fault_rate = rate;
    }

    /// Install the dedicated fault-loss RNG stream.
    pub(crate) fn set_fault_rng(&mut self, rng: SplitMix64) {
        self.fault_rng = Some(rng);
    }

    /// Total `(packets, bytes)` lost to fault injection at this NIC.
    pub(crate) fn fault_drops(&self) -> (u64, u64) {
        (self.fault_dropped_packets, self.fault_dropped_bytes)
    }

    /// Number of unfinished sender flows.
    pub fn active_flows(&self) -> usize {
        self.flows.finished.iter().filter(|&&f| !f).count()
    }

    fn any_data_paused(&self) -> bool {
        self.paused_classes.iter().any(|&p| p)
    }

    /// True when every configured data class is paused (with one class this
    /// is exactly the historical single `data_paused` flag).
    fn all_data_paused(&self, cfg: &SimConfig) -> bool {
        self.paused_classes[..cfg.queueing.data_classes as usize]
            .iter()
            .all(|&p| p)
    }

    /// The data class of the next packet flow `idx` would emit (its head
    /// retransmission, or the next new byte).
    fn next_packet_class(flows: &SenderFlows, idx: usize, cfg: &SimConfig) -> u8 {
        let c = &flows.cold[idx];
        let seq = c
            .rtx_queue
            .iter()
            .next()
            .copied()
            .unwrap_or(flows.snd_nxt[idx]);
        cfg.queueing.tag_class(c.spec.priority, seq)
    }

    /// The current (window, rate) of a flow, if it exists (for tracing).
    ///
    /// Cold path (tracing/tests only), so a linear scan over the flow table
    /// replaces the hash map the hot path no longer needs.
    pub fn flow_state(&self, flow: FlowId) -> Option<(u64, Bandwidth)> {
        let i = self.flows.id.iter().position(|&id| id == flow)?;
        Some((self.flows.window[i], self.flows.rate[i]))
    }

    /// Register a new flow at its start time and try to transmit.
    pub(crate) fn flow_start(
        &mut self,
        now: SimTime,
        spec: FlowSpec,
        dst_slot: u32,
        cfg: &SimConfig,
        eff: &mut Effects,
    ) {
        if spec.src == spec.dst || spec.size == 0 {
            // Degenerate flows complete immediately (the workload generator
            // never produces them, but stay robust).
            eff.completions.push(FlowRecord {
                id: spec.id,
                src: spec.src,
                dst: spec.dst,
                size: spec.size,
                start: now,
                finish: now,
                prio: spec.priority.wire_code(),
            });
            return;
        }
        let cc = build_cc(&cfg.cc, self.bandwidth, cfg.base_rtt, cfg.mtu_payload);
        let idx = self.flows.len();
        self.flows.push(now, spec, dst_slot, cc);
        self.flows.refresh_cc(idx);
        self.ensure_cc_timer(idx, now, eff);
        eff.kicks.push((self.id, PortId(0)));
    }

    /// Ensure a CC timer event chain exists if the algorithm wants one.
    fn ensure_cc_timer(&mut self, idx: usize, now: SimTime, eff: &mut Effects) {
        if self.flows.finished[idx] {
            return;
        }
        let cold = &mut self.flows.cold[idx];
        if let Some(t) = cold.cc.next_timer() {
            let t = t.max(now + Duration::from_ns(1));
            let need = match cold.timer_at {
                None => true,
                Some(cur) => cur <= now || t < cur,
            };
            if need {
                cold.timer_at = Some(t);
                eff.events.push((
                    t,
                    Event::CcTimer {
                        node: self.id,
                        slot: idx as u32,
                    },
                ));
            }
        }
    }

    /// A previously scheduled CC timer fired.
    pub(crate) fn handle_cc_timer(
        &mut self,
        now: SimTime,
        slot: u32,
        _cfg: &SimConfig,
        eff: &mut Effects,
    ) {
        let idx = slot as usize;
        if idx >= self.flows.len() {
            return;
        }
        {
            if self.flows.finished[idx] {
                return;
            }
            let cold = &mut self.flows.cold[idx];
            if cold.timer_at.is_some_and(|t| t <= now) {
                cold.timer_at = None;
            }
            if cold.cc.next_timer().is_some_and(|t| t <= now) {
                cold.cc.on_timer(now);
                self.flows.refresh_cc(idx);
            }
        }
        self.ensure_cc_timer(idx, now, eff);
        eff.kicks.push((self.id, PortId(0)));
    }

    /// Retransmission-timeout check (lossy modes).
    pub(crate) fn handle_rto(
        &mut self,
        now: SimTime,
        slot: u32,
        cfg: &SimConfig,
        eff: &mut Effects,
    ) {
        let idx = slot as usize;
        if idx >= self.flows.len() {
            return;
        }
        let flows = &mut self.flows;
        if flows.finished[idx] {
            flows.cold[idx].rto_armed = false;
            return;
        }
        if now.saturating_since(flows.cold[idx].last_progress) >= cfg.rto && flows.inflight(idx) > 0
        {
            // Timeout: go back to the last acknowledged byte.
            flows.snd_nxt[idx] = flows.snd_una[idx];
            let cold = &mut flows.cold[idx];
            cold.rtx_queue.clear();
            cold.sacked.clear();
            cold.cc.on_loss(now);
            cold.last_progress = now;
            flows.sync_rtx(idx);
            flows.refresh_cc(idx);
            flows.next_avail[idx] = now;
        }
        if flows.inflight(idx) > 0 || flows.has_data_to_send(idx) {
            eff.events.push((
                now + cfg.rto,
                Event::RtoCheck {
                    node: self.id,
                    slot,
                },
            ));
        } else {
            flows.cold[idx].rto_armed = false;
        }
        eff.kicks.push((self.id, PortId(0)));
    }

    /// The host asked to be woken (pacing gap elapsed).
    pub(crate) fn handle_wake(&mut self, now: SimTime, eff: &mut Effects) {
        if self.wake_at.is_some_and(|t| t <= now) {
            self.wake_at = None;
        }
        eff.kicks.push((self.id, PortId(0)));
    }

    /// The NIC finished serializing its current packet.
    pub(crate) fn port_ready(&mut self) {
        self.busy = false;
    }

    fn enqueue_ctrl(&mut self, pkt: Box<Packet>, eff: &mut Effects) {
        self.ctrl_queue.push_back(pkt);
        eff.kicks.push((self.id, PortId(0)));
    }

    /// Handle a packet arriving at the NIC. The packet's box is consumed
    /// here and recycled into the arena's pool.
    pub(crate) fn handle_arrival(
        &mut self,
        now: SimTime,
        _port: PortId,
        pkt: Box<Packet>,
        cfg: &SimConfig,
        eff: &mut Effects,
    ) {
        match pkt.kind {
            PacketKind::Pfc { class, pause } => {
                if let Some(c) = class.class() {
                    let c = c as usize;
                    if self.paused_classes[c] != pause {
                        // Pause counters cover the interval during which any
                        // data class is blocked (identical to the historical
                        // accounting when only class 0 exists).
                        let was_any = self.any_data_paused();
                        self.paused_classes[c] = pause;
                        let is_any = self.any_data_paused();
                        if !was_any && is_any {
                            self.pause_started = Some(now);
                            self.counters.pause_events += 1;
                        } else if was_any && !is_any {
                            if let Some(start) = self.pause_started.take() {
                                self.counters.pause_duration += now.saturating_since(start);
                            }
                        }
                    }
                    if !pause {
                        eff.kicks.push((self.id, PortId(0)));
                    }
                }
            }
            PacketKind::Data => self.receive_data(now, &pkt, cfg, eff),
            PacketKind::Ack | PacketKind::Nack | PacketKind::SackNack | PacketKind::Cnp => {
                self.receive_control(now, &pkt, cfg, eff)
            }
        }
        eff.recycle(pkt);
    }

    /// Receiver role: handle an arriving data packet.
    fn receive_data(&mut self, now: SimTime, pkt: &Packet, cfg: &SimConfig, eff: &mut Effects) {
        eff.packets_delivered += 1;
        let slot = pkt.dst_slot as usize;
        if self.recv.len() <= slot {
            self.recv.resize_with(slot + 1, ReceiverFlow::default);
        }
        // A data packet produces at most one reply (ACK / NACK / SACK-NACK)
        // plus at most one CNP; building them as stack values keeps the
        // borrow of the receiver slot short and the path allocation-free.
        let mut reply: Option<Packet> = None;
        let mut send_cnp = false;
        {
            let r = &mut self.recv[slot];
            let seq_end = pkt.seq + pkt.payload;
            if cfg.flow_control.selective_repeat() {
                // IRN-style selective repeat: keep out-of-order data.
                if pkt.seq <= r.expected {
                    r.expected = r.expected.max(seq_end);
                    // Absorb any stored blocks now contiguous with `expected`.
                    while let Some((&s, &e)) = r.ooo.range(..=r.expected).next_back() {
                        r.ooo.remove(&s);
                        if e > r.expected {
                            r.expected = e;
                        }
                    }
                    let finished = pkt.ack_flags.flow_finished && r.expected >= seq_end;
                    reply = Some(Packet::ack_for(pkt, r.expected, finished));
                } else {
                    r.ooo.insert(pkt.seq, seq_end);
                    reply = Some(Packet::sack_nack_for(pkt, r.expected, pkt.seq, pkt.payload));
                }
            } else {
                // Go-back-N: out-of-order data is dropped and NACKed.
                if pkt.seq == r.expected {
                    r.expected = seq_end;
                    r.unacked_packets += 1;
                    let finished = pkt.ack_flags.flow_finished;
                    if r.unacked_packets >= cfg.ack_interval || finished || pkt.ecn_ce {
                        r.unacked_packets = 0;
                        reply = Some(Packet::ack_for(pkt, r.expected, finished));
                    }
                } else if pkt.seq < r.expected {
                    // Duplicate (e.g. retransmission overlap): re-ACK.
                    reply = Some(Packet::ack_for(pkt, r.expected, false));
                } else {
                    // Gap: request go-back-N, rate-limited.
                    let due = r
                        .last_nack
                        .is_none_or(|t| now.saturating_since(t) >= cfg.nack_interval);
                    if due {
                        r.last_nack = Some(now);
                        reply = Some(Packet::nack_for(pkt, r.expected));
                    }
                }
            }
            // DCQCN notification point: CNP on ECN-marked arrivals, at most
            // one per cnp_interval.
            if cfg.cnp_enabled && pkt.ecn_ce {
                let due = r
                    .last_cnp
                    .is_none_or(|t| now.saturating_since(t) >= cfg.cnp_interval);
                if due {
                    r.last_cnp = Some(now);
                    send_cnp = true;
                }
            }
        }
        if let Some(p) = reply {
            let boxed = eff.alloc_packet(p);
            self.enqueue_ctrl(boxed, eff);
        }
        if send_cnp {
            let mut cnp = Packet::cnp(pkt.flow, pkt.src, pkt.dst);
            cnp.src_slot = pkt.src_slot;
            cnp.dst_slot = pkt.dst_slot;
            let boxed = eff.alloc_packet(cnp);
            self.enqueue_ctrl(boxed, eff);
        }
    }

    /// Sender role: handle ACK / NACK / SACK-NACK / CNP for one of our flows.
    fn receive_control(&mut self, now: SimTime, pkt: &Packet, cfg: &SimConfig, eff: &mut Effects) {
        // The control packet echoes the sender-side slot the data packet was
        // stamped with; the id check preserves the old hash-miss semantics
        // for packets that do not belong to any of our flows.
        let idx = pkt.src_slot as usize;
        if idx >= self.flows.len() || self.flows.id[idx] != pkt.flow {
            return;
        }
        let mtu = cfg.mtu_payload;
        {
            let flows = &mut self.flows;
            if flows.finished[idx] {
                return;
            }
            match pkt.kind {
                PacketKind::Ack => {
                    let newly = pkt.seq.saturating_sub(flows.snd_una[idx]);
                    if newly > 0 {
                        flows.snd_una[idx] = pkt.seq;
                        let cold = &mut flows.cold[idx];
                        cold.last_progress = now;
                        eff.goodput.push((cold.spec.id, newly));
                        // Drop retransmission bookkeeping below the new left
                        // edge.
                        cold.rtx_queue = cold.rtx_queue.split_off(&pkt.seq);
                        cold.sacked = cold.sacked.split_off(&pkt.seq);
                        flows.sync_rtx(idx);
                        if flows.snd_nxt[idx] < flows.snd_una[idx] {
                            flows.snd_nxt[idx] = flows.snd_una[idx];
                        }
                    }
                    let rtt = now.saturating_since(pkt.ts_sent);
                    let ev = AckEvent {
                        now,
                        ack_seq: pkt.seq,
                        snd_nxt: flows.snd_nxt[idx],
                        newly_acked: newly,
                        ecn_echo: pkt.ack_flags.ecn_echo,
                        rtt,
                        int: &pkt.int,
                    };
                    flows.cold[idx].cc.on_ack(&ev);
                    flows.refresh_cc(idx);
                    if flows.snd_una[idx] >= flows.size[idx] {
                        flows.finished[idx] = true;
                        let spec = &flows.cold[idx].spec;
                        eff.completions.push(FlowRecord {
                            id: spec.id,
                            src: spec.src,
                            dst: spec.dst,
                            size: spec.size,
                            start: spec.start,
                            finish: now,
                            prio: spec.priority.wire_code(),
                        });
                    }
                }
                PacketKind::Nack => {
                    // Go-back-N: everything before `pkt.seq` is received.
                    if pkt.seq > flows.snd_una[idx] {
                        flows.snd_una[idx] = pkt.seq;
                        flows.cold[idx].last_progress = now;
                        eff.goodput.push((flows.id[idx], 0));
                    }
                    let rollback_due = flows.cold[idx]
                        .last_rollback
                        .is_none_or(|t| now.saturating_since(t) >= cfg.nack_interval);
                    if rollback_due && flows.snd_nxt[idx] > flows.snd_una[idx] {
                        flows.snd_nxt[idx] = flows.snd_una[idx];
                        flows.next_avail[idx] = now;
                        let cold = &mut flows.cold[idx];
                        cold.last_rollback = Some(now);
                        cold.cc.on_loss(now);
                        flows.refresh_cc(idx);
                    }
                }
                PacketKind::SackNack => {
                    // IRN: bytes before `pkt.seq` received in order, the block
                    // `[sack_start, sack_start+sack_len)` received out of
                    // order; everything in between is missing.
                    if pkt.seq > flows.snd_una[idx] {
                        flows.snd_una[idx] = pkt.seq;
                        flows.cold[idx].last_progress = now;
                    }
                    let snd_una = flows.snd_una[idx];
                    let snd_nxt = flows.snd_nxt[idx];
                    let cold = &mut flows.cold[idx];
                    cold.sacked.insert(pkt.sack_start);
                    // Queue the missing packets between snd_una and the
                    // sacked block for retransmission (blocks below earlier
                    // sacks were already queued when those sacks arrived;
                    // the `sacked.contains` check below skips them).
                    let mut off = snd_una;
                    while off < pkt.sack_start {
                        if !cold.sacked.contains(&off) && off < snd_nxt {
                            cold.rtx_queue.insert(off);
                        }
                        off += mtu;
                    }
                    let loss_due = cold
                        .last_rollback
                        .is_none_or(|t| now.saturating_since(t) >= cfg.nack_interval);
                    if loss_due && !cold.rtx_queue.is_empty() {
                        cold.last_rollback = Some(now);
                        cold.cc.on_loss(now);
                    }
                    flows.sync_rtx(idx);
                    if loss_due && !flows.rtx_empty[idx] {
                        flows.refresh_cc(idx);
                    }
                }
                PacketKind::Cnp => {
                    flows.cold[idx].cc.on_cnp(now);
                    flows.refresh_cc(idx);
                }
                _ => {}
            }
        }
        self.ensure_cc_timer(idx, now, eff);
        eff.kicks.push((self.id, PortId(0)));
    }

    /// Round-robin pick of a flow that may transmit right now. A flow whose
    /// next packet's data class is PFC-paused is skipped (moot on the legacy
    /// path, where an all-classes pause returns before the pick).
    fn pick_flow(&mut self, now: SimTime, cfg: &SimConfig) -> Option<usize> {
        let n = self.flows.len();
        if n == 0 {
            return None;
        }
        let any_paused = self.any_data_paused();
        for k in 0..n {
            let idx = (self.rr_cursor + k) % n;
            let f = &self.flows;
            if f.finished[idx]
                || !f.has_data_to_send(idx)
                || !f.window_open(idx)
                || f.next_avail[idx] > now
            {
                continue;
            }
            if any_paused
                && self.paused_classes[Self::next_packet_class(&self.flows, idx, cfg) as usize]
            {
                continue;
            }
            self.rr_cursor = (idx + 1) % n;
            return Some(idx);
        }
        None
    }

    /// Earliest pacing instant among flows that are blocked only by pacing.
    fn earliest_wake(&self, now: SimTime) -> Option<SimTime> {
        let f = &self.flows;
        (0..f.len())
            .filter(|&i| {
                !f.finished[i] && f.has_data_to_send(i) && f.window_open(i) && f.next_avail[i] > now
            })
            .map(|i| f.next_avail[i])
            .min()
    }

    /// Try to start transmitting the next packet on the NIC.
    pub(crate) fn try_transmit(&mut self, now: SimTime, cfg: &SimConfig, eff: &mut Effects) {
        if self.busy {
            return;
        }
        if self.fault_down && !self.fault_drop {
            // Pause-and-requeue outage semantics: the NIC holds everything
            // until the up transition kicks it again.
            return;
        }
        // Control traffic (ACK/NACK/CNP) always goes first.
        if let Some(pkt) = self.ctrl_queue.pop_front() {
            self.start_wire(now, pkt, cfg, eff);
            return;
        }
        if self.all_data_paused(cfg) {
            return;
        }
        let Some(idx) = self.pick_flow(now, cfg) else {
            // Nothing ready: if a flow is only waiting for its pacer, ask to
            // be woken at that instant.
            if let Some(t) = self.earliest_wake(now) {
                let need = match self.wake_at {
                    None => true,
                    Some(cur) => cur <= now || t < cur,
                };
                if need {
                    self.wake_at = Some(t);
                    eff.events.push((t, Event::HostWake { node: self.id }));
                }
            }
            return;
        };
        // Build the next data packet of the chosen flow.
        let (pkt, rto_needed) = {
            let flows = &mut self.flows;
            let cold = &mut flows.cold[idx];
            let seq = if let Some(&s) = cold.rtx_queue.iter().next() {
                cold.rtx_queue.remove(&s);
                flows.rtx_empty[idx] = cold.rtx_queue.is_empty();
                s
            } else {
                flows.snd_nxt[idx]
            };
            let payload = (cold.spec.size - seq).min(cfg.mtu_payload);
            let mut pkt = Packet::data(
                cold.spec.id,
                cold.spec.src,
                cold.spec.dst,
                seq,
                payload,
                now,
            );
            // Stamp the data class: PIAS bytes-sent demotion or the static
            // FlowPriority mapping (class 0 — Priority::DATA — on the
            // legacy single-class path, which Packet::data already set).
            pkt.priority = Priority::data_class(cfg.queueing.tag_class(cold.spec.priority, seq));
            pkt.src_slot = idx as u32;
            pkt.dst_slot = cold.dst_slot;
            if seq + payload >= cold.spec.size {
                pkt.ack_flags.flow_finished = true;
            }
            if seq == flows.snd_nxt[idx] {
                flows.snd_nxt[idx] = seq + payload;
            }
            // Pace the next packet of this flow at its CC rate.
            let wire = pkt.wire_size(cfg.int_enabled);
            flows.next_avail[idx] = now + flows.rate[idx].tx_time(wire);
            let rto_needed = cfg.flow_control.lossy() && !cold.rto_armed;
            if rto_needed {
                cold.rto_armed = true;
            }
            (pkt, rto_needed)
        };
        if rto_needed {
            eff.events.push((
                now + cfg.rto,
                Event::RtoCheck {
                    node: self.id,
                    slot: idx as u32,
                },
            ));
        }
        eff.packets_sent += 1;
        let boxed = eff.alloc_packet(pkt);
        self.start_wire(now, boxed, cfg, eff);
    }

    /// Put one packet on the wire: occupy the NIC for its serialization time
    /// and schedule its arrival at the peer.
    fn start_wire(&mut self, now: SimTime, pkt: Box<Packet>, cfg: &SimConfig, eff: &mut Effects) {
        let wire = pkt.wire_size(cfg.int_enabled);
        self.busy = true;
        self.counters.tx_bytes += wire;
        // Straggler: serialize at the reduced NIC rate while the window is
        // active; fault-free runs take `self.bandwidth` untouched.
        let bw = self.fault_rate.unwrap_or(self.bandwidth);
        let tx_time = bw.tx_time(wire);
        eff.events.push((
            now + tx_time,
            Event::PortReady {
                node: self.id,
                port: PortId(0),
            },
        ));
        // Down link in drop mode loses every frame; a degraded link loses
        // iid on the dedicated fault RNG stream.
        let fault_lost = if self.fault_down {
            true
        } else if self.fault_loss > 0.0 {
            let loss = self.fault_loss;
            self.fault_rng
                .as_mut()
                .is_some_and(|rng| rng.next_f64() < loss)
        } else {
            false
        };
        if fault_lost {
            self.fault_dropped_packets += 1;
            self.fault_dropped_bytes += wire;
            eff.recycle(pkt);
        } else {
            eff.events.push((
                now + tx_time + self.delay + self.fault_extra_delay,
                Event::PacketArrive {
                    node: self.peer_node,
                    port: self.peer_port,
                    packet: pkt,
                },
            ));
        }
    }

    /// Close out pause accounting at the end of the run.
    pub(crate) fn finalize(&mut self, now: SimTime) -> usize {
        if let Some(start) = self.pause_started.take() {
            self.counters.pause_duration += now.saturating_since(start);
        }
        self.flows.finished.iter().filter(|&&f| !f).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlowControlMode;
    use hpcc_cc::{CcAlgorithm, DcqcnConfig};
    use hpcc_topology::TopologyBuilder;
    use hpcc_types::IntHeader;

    const LINE: Bandwidth = Bandwidth::from_gbps(100);
    const RTT: Duration = Duration::from_us(13);

    fn build_host(id: u32) -> Host {
        let mut b = TopologyBuilder::new();
        let h0 = b.add_host();
        let h1 = b.add_host();
        let s = b.add_switch();
        b.link(h0, s, LINE, Duration::from_us(1));
        b.link(h1, s, LINE, Duration::from_us(1));
        let topo = b.build();
        Host::new(NodeId(id), topo.ports(NodeId(id)))
    }

    fn hpcc_cfg() -> SimConfig {
        SimConfig::for_cc(CcAlgorithm::hpcc_default(), LINE, RTT)
    }

    fn flow(id: u64, size: u64) -> FlowSpec {
        FlowSpec::new(FlowId(id), NodeId(0), NodeId(1), size, SimTime::ZERO)
    }

    #[test]
    fn flow_start_sends_at_line_rate_until_window_fills() {
        let cfg = hpcc_cfg();
        let mut h = build_host(0);
        let mut eff = Effects::default();
        h.flow_start(SimTime::ZERO, flow(1, 10_000_000), 0, &cfg, &mut eff);
        assert_eq!(h.active_flows(), 1);
        // Drive the NIC: kick → transmit → port ready → transmit …
        let mut now = SimTime::ZERO;
        let mut sent = 0;
        for _ in 0..1000 {
            let mut e = Effects::default();
            h.try_transmit(now, &cfg, &mut e);
            if e.packets_sent == 0 {
                break;
            }
            sent += 1;
            // Find the PortReady event to advance time and free the NIC.
            let ready_at = e
                .events
                .iter()
                .find_map(|(t, ev)| matches!(ev, Event::PortReady { .. }).then_some(*t))
                .unwrap();
            now = ready_at;
            h.port_ready();
        }
        // The HPCC window is one BDP + MTU ≈ 163.5 KB → ~148 packets of 1106 B
        // wire (1000 B payload) before the window closes.
        let winit = LINE.bdp_bytes(RTT) + 1000;
        let expected = winit / 1000;
        assert!(
            (sent as i64 - expected as i64).unsigned_abs() <= 2,
            "sent {sent}, expected about {expected}"
        );
        // While the window is closed nothing more is sent even when paced.
        let mut e = Effects::default();
        h.try_transmit(now, &cfg, &mut e);
        assert_eq!(e.packets_sent, 0);
    }

    #[test]
    fn ack_opens_window_and_completes_flow() {
        let cfg = hpcc_cfg();
        let mut h = build_host(0);
        let mut eff = Effects::default();
        h.flow_start(SimTime::ZERO, flow(1, 2_000), 0, &cfg, &mut eff);
        // Send both packets.
        let mut e = Effects::default();
        h.try_transmit(SimTime::ZERO, &cfg, &mut e);
        h.port_ready();
        h.try_transmit(SimTime::from_ns(100), &cfg, &mut e);
        h.port_ready();
        assert_eq!(e.packets_sent + 1, 3); // 2 data packets total (1 in first eff)
                                           // ACK the full flow.
        let mut data = Packet::data(FlowId(1), NodeId(0), NodeId(1), 1000, 1000, SimTime::ZERO);
        data.ack_flags.flow_finished = true;
        let ack = Packet::ack_for(&data, 2000, true);
        let mut e2 = Effects::default();
        h.handle_arrival(
            SimTime::from_us(10),
            PortId(0),
            Box::new(ack),
            &cfg,
            &mut e2,
        );
        assert_eq!(e2.completions.len(), 1);
        let rec = e2.completions[0];
        assert_eq!(rec.size, 2000);
        assert_eq!(rec.finish, SimTime::from_us(10));
        assert_eq!(h.active_flows(), 0);
    }

    #[test]
    fn receiver_acks_in_order_data_and_echoes_int_and_ecn() {
        let cfg = hpcc_cfg();
        let mut h = build_host(1);
        let mut pkt = Packet::data(
            FlowId(9),
            NodeId(0),
            NodeId(1),
            0,
            1000,
            SimTime::from_us(1),
        );
        pkt.ecn_ce = true;
        pkt.int.push_hop(
            4,
            hpcc_types::IntHopRecord {
                bandwidth: LINE,
                ts: SimTime::from_us(2),
                tx_bytes: 5000,
                rx_bytes: 5000,
                qlen: 777,
            },
        );
        let mut eff = Effects::default();
        h.handle_arrival(
            SimTime::from_us(3),
            PortId(0),
            Box::new(pkt),
            &cfg,
            &mut eff,
        );
        assert_eq!(eff.packets_delivered, 1);
        assert_eq!(h.ctrl_queue.len(), 1);
        let ack = &h.ctrl_queue[0];
        assert_eq!(ack.kind, PacketKind::Ack);
        assert_eq!(ack.seq, 1000);
        assert!(ack.ack_flags.ecn_echo);
        assert_eq!(ack.int.n_hops, 1);
        assert_eq!(ack.int.hops()[0].qlen, 777);
        // The ACK goes out before any data when the port is kicked.
        let mut e2 = Effects::default();
        h.try_transmit(SimTime::from_us(3), &cfg, &mut e2);
        let went_out = e2.events.iter().any(|(_, ev)| {
            matches!(ev, Event::PacketArrive { packet, .. } if packet.kind == PacketKind::Ack)
        });
        assert!(went_out);
    }

    #[test]
    fn receiver_nacks_gaps_in_gbn_mode_and_sender_rolls_back() {
        let cfg = hpcc_cfg();
        let mut h = build_host(1);
        // Packet 0 arrives, then packet 2 (gap at 1000..2000).
        let p0 = Packet::data(FlowId(9), NodeId(0), NodeId(1), 0, 1000, SimTime::ZERO);
        let p2 = Packet::data(FlowId(9), NodeId(0), NodeId(1), 2000, 1000, SimTime::ZERO);
        let mut eff = Effects::default();
        h.handle_arrival(SimTime::from_us(1), PortId(0), Box::new(p0), &cfg, &mut eff);
        h.handle_arrival(SimTime::from_us(2), PortId(0), Box::new(p2), &cfg, &mut eff);
        let kinds: Vec<PacketKind> = h.ctrl_queue.iter().map(|p| p.kind).collect();
        assert_eq!(kinds, vec![PacketKind::Ack, PacketKind::Nack]);
        assert_eq!(h.ctrl_queue[1].seq, 1000, "NACK carries the expected byte");
        // A second out-of-order packet within the NACK interval does not
        // produce another NACK.
        let p3 = Packet::data(FlowId(9), NodeId(0), NodeId(1), 3000, 1000, SimTime::ZERO);
        h.handle_arrival(SimTime::from_us(3), PortId(0), Box::new(p3), &cfg, &mut eff);
        assert_eq!(h.ctrl_queue.len(), 2);

        // Sender side: a NACK rolls snd_nxt back and notifies CC.
        let mut sender = build_host(0);
        let mut e = Effects::default();
        sender.flow_start(SimTime::ZERO, flow(9, 100_000), 0, &cfg, &mut e);
        // Transmit a few packets.
        let mut now = SimTime::ZERO;
        for _ in 0..5 {
            let mut e2 = Effects::default();
            sender.try_transmit(now, &cfg, &mut e2);
            now += Duration::from_ns(100);
            sender.port_ready();
        }
        let nack = {
            let d = Packet::data(FlowId(9), NodeId(0), NodeId(1), 0, 1000, SimTime::ZERO);
            Packet::nack_for(&d, 1000)
        };
        let mut e3 = Effects::default();
        sender.handle_arrival(
            SimTime::from_us(5),
            PortId(0),
            Box::new(nack),
            &cfg,
            &mut e3,
        );
        let f = &sender.flows;
        assert_eq!(f.snd_una[0], 1000);
        assert_eq!(
            f.snd_nxt[0], 1000,
            "go-back-N rolls back to the expected byte"
        );
    }

    #[test]
    fn irn_receiver_keeps_out_of_order_data() {
        let mut cfg = hpcc_cfg();
        cfg.flow_control = FlowControlMode::LossyIrn;
        let mut h = build_host(1);
        let p0 = Packet::data(FlowId(9), NodeId(0), NodeId(1), 0, 1000, SimTime::ZERO);
        let p2 = Packet::data(FlowId(9), NodeId(0), NodeId(1), 2000, 1000, SimTime::ZERO);
        let p1 = Packet::data(FlowId(9), NodeId(0), NodeId(1), 1000, 1000, SimTime::ZERO);
        let mut eff = Effects::default();
        h.handle_arrival(SimTime::from_us(1), PortId(0), Box::new(p0), &cfg, &mut eff);
        h.handle_arrival(SimTime::from_us(2), PortId(0), Box::new(p2), &cfg, &mut eff);
        h.handle_arrival(SimTime::from_us(3), PortId(0), Box::new(p1), &cfg, &mut eff);
        let kinds: Vec<PacketKind> = h.ctrl_queue.iter().map(|p| p.kind).collect();
        assert_eq!(
            kinds,
            vec![PacketKind::Ack, PacketKind::SackNack, PacketKind::Ack]
        );
        // Final cumulative ACK covers all three packets: the stored
        // out-of-order block was absorbed.
        assert_eq!(h.ctrl_queue[2].seq, 3000);
    }

    #[test]
    fn irn_sender_retransmits_only_the_missing_packet() {
        let mut cfg = hpcc_cfg();
        cfg.flow_control = FlowControlMode::LossyIrn;
        let mut sender = build_host(0);
        let mut e = Effects::default();
        sender.flow_start(SimTime::ZERO, flow(9, 10_000), 0, &cfg, &mut e);
        let mut now = SimTime::ZERO;
        for _ in 0..4 {
            let mut e2 = Effects::default();
            sender.try_transmit(now, &cfg, &mut e2);
            now += Duration::from_ns(200);
            sender.port_ready();
        }
        assert_eq!(sender.flows.snd_nxt[0], 4000);
        // Receiver reports: expected 1000 (packet at 1000 missing), block
        // [2000, 3000) received out of order.
        let d = Packet::data(FlowId(9), NodeId(0), NodeId(1), 2000, 1000, SimTime::ZERO);
        let sack = Packet::sack_nack_for(&d, 1000, 2000, 1000);
        let mut e3 = Effects::default();
        sender.handle_arrival(
            SimTime::from_us(5),
            PortId(0),
            Box::new(sack),
            &cfg,
            &mut e3,
        );
        assert_eq!(sender.flows.snd_una[0], 1000);
        assert!(sender.flows.cold[0].rtx_queue.contains(&1000));
        assert_eq!(sender.flows.cold[0].rtx_queue.len(), 1);
        assert!(!sender.flows.rtx_empty[0], "rtx mirror tracks the queue");
        // The retransmission goes out before new data.
        let mut e4 = Effects::default();
        sender.try_transmit(SimTime::from_us(6), &cfg, &mut e4);
        let seq = e4
            .events
            .iter()
            .find_map(|(_, ev)| match ev {
                Event::PacketArrive { packet, .. } if packet.is_data() => Some(packet.seq),
                _ => None,
            })
            .unwrap();
        assert_eq!(seq, 1000);
    }

    #[test]
    fn cnp_generation_is_rate_limited_and_reaches_dcqcn() {
        let cfg = SimConfig::for_cc(
            CcAlgorithm::Dcqcn(DcqcnConfig::vendor_default(LINE)),
            LINE,
            RTT,
        );
        assert!(cfg.cnp_enabled);
        let mut rx = build_host(1);
        let mut eff = Effects::default();
        for i in 0..5u64 {
            let mut p = Packet::data(
                FlowId(9),
                NodeId(0),
                NodeId(1),
                i * 1000,
                1000,
                SimTime::ZERO,
            );
            p.ecn_ce = true;
            rx.handle_arrival(
                SimTime::from_us(1 + i),
                PortId(0),
                Box::new(p),
                &cfg,
                &mut eff,
            );
        }
        let cnps = rx
            .ctrl_queue
            .iter()
            .filter(|p| p.kind == PacketKind::Cnp)
            .count();
        assert_eq!(cnps, 1, "only one CNP within the 50 us interval");
        // After the interval a new CNP is allowed.
        let mut p = Packet::data(FlowId(9), NodeId(0), NodeId(1), 9000, 1000, SimTime::ZERO);
        p.ecn_ce = true;
        rx.handle_arrival(SimTime::from_us(60), PortId(0), Box::new(p), &cfg, &mut eff);
        let cnps = rx
            .ctrl_queue
            .iter()
            .filter(|p| p.kind == PacketKind::Cnp)
            .count();
        assert_eq!(cnps, 2);

        // Sender side: the CNP halves the DCQCN rate.
        let mut tx = build_host(0);
        let mut e = Effects::default();
        tx.flow_start(SimTime::ZERO, flow(9, 1_000_000), 0, &cfg, &mut e);
        let before = tx.flow_state(FlowId(9)).unwrap().1;
        let cnp = Packet::cnp(FlowId(9), NodeId(0), NodeId(1));
        let mut e2 = Effects::default();
        tx.handle_arrival(
            SimTime::from_us(100),
            PortId(0),
            Box::new(cnp),
            &cfg,
            &mut e2,
        );
        let after = tx.flow_state(FlowId(9)).unwrap().1;
        assert_eq!(after, before.mul_f64(0.5));
    }

    #[test]
    fn dcqcn_flows_get_a_cc_timer_chain() {
        let cfg = SimConfig::for_cc(
            CcAlgorithm::Dcqcn(DcqcnConfig::vendor_default(LINE)),
            LINE,
            RTT,
        );
        let mut h = build_host(0);
        let mut eff = Effects::default();
        h.flow_start(SimTime::ZERO, flow(1, 1_000_000), 0, &cfg, &mut eff);
        let timer = eff
            .events
            .iter()
            .find(|(_, e)| matches!(e, Event::CcTimer { .. }));
        assert!(timer.is_some(), "DCQCN needs its rate/alpha timers");
        // HPCC flows do not need one.
        let cfg2 = hpcc_cfg();
        let mut h2 = build_host(0);
        let mut eff2 = Effects::default();
        h2.flow_start(SimTime::ZERO, flow(2, 1_000_000), 0, &cfg2, &mut eff2);
        assert!(!eff2
            .events
            .iter()
            .any(|(_, e)| matches!(e, Event::CcTimer { .. })));
    }

    #[test]
    fn pfc_pause_stops_data_but_not_acks() {
        let cfg = hpcc_cfg();
        let mut h = build_host(0);
        let mut eff = Effects::default();
        h.flow_start(SimTime::ZERO, flow(1, 1_000_000), 0, &cfg, &mut eff);
        // Pause the data class.
        h.handle_arrival(
            SimTime::from_us(1),
            PortId(0),
            Box::new(Packet::pfc(Priority::DATA, true)),
            &cfg,
            &mut eff,
        );
        let mut e = Effects::default();
        h.try_transmit(SimTime::from_us(2), &cfg, &mut e);
        assert_eq!(e.packets_sent, 0, "data is paused");
        // But a queued ACK still goes out.
        let data = Packet::data(FlowId(5), NodeId(1), NodeId(0), 0, 1000, SimTime::ZERO);
        h.handle_arrival(SimTime::from_us(3), PortId(0), Box::new(data), &cfg, &mut e);
        let mut e2 = Effects::default();
        h.try_transmit(SimTime::from_us(3), &cfg, &mut e2);
        assert!(e2
            .events
            .iter()
            .any(|(_, ev)| matches!(ev, Event::PacketArrive { packet, .. } if packet.kind == PacketKind::Ack)));
        // Resume restores data transmission and accounts the pause time.
        let mut e3 = Effects::default();
        h.handle_arrival(
            SimTime::from_us(11),
            PortId(0),
            Box::new(Packet::pfc(Priority::DATA, false)),
            &cfg,
            &mut e3,
        );
        assert_eq!(h.counters.pause_duration, Duration::from_us(10));
        h.port_ready();
        let mut e4 = Effects::default();
        h.try_transmit(SimTime::from_us(12), &cfg, &mut e4);
        assert_eq!(e4.packets_sent, 1);
    }

    #[test]
    fn pacing_schedules_a_wake_when_rate_limited() {
        // Use DCQCN whose rate we can drag far below line rate, so pacing
        // (not the window) is the binding constraint.
        let cfg = SimConfig::for_cc(
            CcAlgorithm::Dcqcn(DcqcnConfig::vendor_default(LINE)),
            LINE,
            RTT,
        );
        let mut h = build_host(0);
        let mut eff = Effects::default();
        h.flow_start(SimTime::ZERO, flow(1, 1_000_000), 0, &cfg, &mut eff);
        // Cut the rate hard with several CNPs.
        for k in 0..6u64 {
            let cnp = Packet::cnp(FlowId(1), NodeId(0), NodeId(1));
            let mut e = Effects::default();
            h.handle_arrival(
                SimTime::from_us(10 * k),
                PortId(0),
                Box::new(cnp),
                &cfg,
                &mut e,
            );
        }
        // First packet goes out immediately…
        let mut e = Effects::default();
        h.try_transmit(SimTime::from_us(100), &cfg, &mut e);
        assert_eq!(e.packets_sent, 1);
        h.port_ready();
        // …the second is pacing-blocked, so the host asks for a wake-up.
        let mut e2 = Effects::default();
        h.try_transmit(SimTime::from_us(101), &cfg, &mut e2);
        assert_eq!(e2.packets_sent, 0);
        let wake = e2
            .events
            .iter()
            .find_map(|(t, ev)| matches!(ev, Event::HostWake { .. }).then_some(*t));
        assert!(wake.is_some());
        assert!(wake.unwrap() > SimTime::from_us(101));
    }

    #[test]
    fn rto_fires_in_lossy_mode_and_rolls_back() {
        let mut cfg = hpcc_cfg();
        cfg.flow_control = FlowControlMode::LossyGoBackN;
        cfg.rto = Duration::from_us(100);
        let mut h = build_host(0);
        let mut eff = Effects::default();
        h.flow_start(SimTime::ZERO, flow(1, 10_000), 0, &cfg, &mut eff);
        let mut e = Effects::default();
        h.try_transmit(SimTime::ZERO, &cfg, &mut e);
        let rto_ev = e
            .events
            .iter()
            .find(|(_, ev)| matches!(ev, Event::RtoCheck { .. }));
        assert!(rto_ev.is_some(), "lossy mode arms an RTO");
        h.port_ready();
        assert_eq!(h.flows.snd_nxt[0], 1000);
        // Nothing is acknowledged; the RTO check at +100 us rolls back.
        let mut e2 = Effects::default();
        h.handle_rto(SimTime::from_us(200), 0, &cfg, &mut e2);
        assert_eq!(h.flows.snd_nxt[0], 0);
        // And it re-arms itself.
        assert!(e2
            .events
            .iter()
            .any(|(_, ev)| matches!(ev, Event::RtoCheck { .. })));
    }

    #[test]
    fn zero_size_and_self_flows_complete_immediately() {
        let cfg = hpcc_cfg();
        let mut h = build_host(0);
        let mut eff = Effects::default();
        h.flow_start(
            SimTime::from_us(4),
            FlowSpec::new(FlowId(1), NodeId(0), NodeId(0), 1000, SimTime::from_us(4)),
            0,
            &cfg,
            &mut eff,
        );
        h.flow_start(
            SimTime::from_us(4),
            FlowSpec::new(FlowId(2), NodeId(0), NodeId(1), 0, SimTime::from_us(4)),
            0,
            &cfg,
            &mut eff,
        );
        assert_eq!(eff.completions.len(), 2);
        assert_eq!(h.active_flows(), 0);
    }

    #[test]
    fn int_disabled_acks_do_not_confuse_sender() {
        let mut cfg = hpcc_cfg();
        cfg.int_enabled = false;
        let mut h = build_host(0);
        let mut eff = Effects::default();
        h.flow_start(SimTime::ZERO, flow(1, 100_000), 0, &cfg, &mut eff);
        let before = h.flow_state(FlowId(1)).unwrap();
        let d = Packet::data(FlowId(1), NodeId(0), NodeId(1), 0, 1000, SimTime::ZERO);
        let ack = Packet::ack_for(&d, 1000, false);
        assert_eq!(ack.int, IntHeader::new());
        let mut e = Effects::default();
        h.handle_arrival(SimTime::from_us(10), PortId(0), Box::new(ack), &cfg, &mut e);
        let after = h.flow_state(FlowId(1)).unwrap();
        assert_eq!(before, after, "no INT → HPCC holds its state");
    }
}
