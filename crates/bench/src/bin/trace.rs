//! Flow-trace tooling: export synthetic workloads to trace files, freeze
//! manifests into trace-replay artifacts, inspect and verify traces.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p hpcc-bench --bin trace -- export \
//!     --manifest grid.json [--index I] [--jsonl] --out flows.csv
//! cargo run --release -p hpcc-bench --bin trace -- freeze \
//!     --manifest grid.json --out frozen.json
//! cargo run --release -p hpcc-bench --bin trace -- info flows.csv
//! cargo run --release -p hpcc-bench --bin trace -- roundtrip \
//!     --manifest grid.json [--index I]
//! ```
//!
//! * `export` — build scenario `I` of the manifest (default 0) and write
//!   every generated flow as one trace line (`start_ns,src,dst,bytes[,prio]`
//!   CSV by default, JSONL with `--jsonl`). The exported file replays
//!   deterministically: it is the reproducible artifact of the run.
//! * `freeze` — rewrite a whole manifest with every generated workload
//!   (Poisson, incast) replaced by its inline trace records. The frozen
//!   manifest produces bit-identical campaign digests but no longer depends
//!   on generator code or seeds-to-flows mappings.
//! * `info` — parse a trace file and print record count, host span, byte
//!   volume and time horizon. Malformed files report the offending line.
//! * `roundtrip` — self-check: export scenario `I`'s flows to text, parse
//!   the text back, replay, and verify the per-flow tuples are identical.
//!
//! Trace format and error semantics: see `hpcc_workload::trace` and
//! `docs/ARCHITECTURE.md`.

use hpcc_core::{Campaign, ScenarioSpec};
use hpcc_workload::Trace;

fn die(msg: impl AsRef<str>) -> ! {
    eprintln!("trace: {}", msg.as_ref());
    std::process::exit(2);
}

#[derive(Default)]
struct Cli {
    command: String,
    manifest: Option<String>,
    index: usize,
    out: Option<String>,
    jsonl: bool,
    positional: Vec<String>,
}

impl Cli {
    fn parse(args: &[String]) -> Cli {
        let mut cli = Cli::default();
        let value = |i: usize, flag: &str| -> String {
            match args.get(i + 1) {
                Some(next) if !next.starts_with("--") => next.clone(),
                _ => die(format!("{flag} needs a value")),
            }
        };
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--manifest" => {
                    cli.manifest = Some(value(i, "--manifest"));
                    i += 2;
                }
                "--index" => {
                    let n = value(i, "--index");
                    cli.index = n
                        .parse()
                        .unwrap_or_else(|_| die(format!("bad scenario index {n:?}")));
                    i += 2;
                }
                "--out" => {
                    cli.out = Some(value(i, "--out"));
                    i += 2;
                }
                "--jsonl" => {
                    cli.jsonl = true;
                    i += 1;
                }
                flag if flag.starts_with("--") => die(format!("unknown flag {flag}")),
                other => {
                    if cli.command.is_empty() {
                        cli.command = other.to_string();
                    } else {
                        cli.positional.push(other.to_string());
                    }
                    i += 1;
                }
            }
        }
        cli
    }

    fn load_campaign(&self) -> Campaign {
        let path = self
            .manifest
            .as_ref()
            .unwrap_or_else(|| die("--manifest is required"));
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(format!("cannot read {path}: {e}")));
        Campaign::from_json_str(&text).unwrap_or_else(|e| die(format!("cannot parse {path}: {e}")))
    }

    fn pick_scenario(&self) -> ScenarioSpec {
        let campaign = self.load_campaign();
        campaign
            .scenarios()
            .get(self.index)
            .unwrap_or_else(|| {
                die(format!(
                    "scenario index {} out of range ({} scenarios)",
                    self.index,
                    campaign.len()
                ))
            })
            .clone()
    }
}

fn scenario_trace(spec: &ScenarioSpec) -> Trace {
    let exp = spec
        .try_build()
        .unwrap_or_else(|e| die(format!("building {:?}: {e}", spec.name)));
    Trace::from_flows(exp.flows(), exp.topology().hosts())
        .unwrap_or_else(|e| die(format!("exporting {:?}: {e}", spec.name)))
}

fn run_export(cli: &Cli) {
    let spec = cli.pick_scenario();
    let trace = scenario_trace(&spec);
    let text = if cli.jsonl {
        trace.to_jsonl()
    } else {
        trace.to_csv()
    };
    match &cli.out {
        Some(path) => {
            std::fs::write(path, &text)
                .unwrap_or_else(|e| die(format!("cannot write {path}: {e}")));
            eprintln!(
                "exported {} flows of scenario {} ({:?}) to {path}",
                trace.records.len(),
                cli.index,
                spec.name
            );
        }
        None => print!("{text}"),
    }
}

fn run_freeze(cli: &Cli) {
    let campaign = cli.load_campaign();
    let frozen: Vec<ScenarioSpec> = campaign
        .scenarios()
        .iter()
        .map(|s| {
            s.freeze()
                .unwrap_or_else(|e| die(format!("freezing {:?}: {e}", s.name)))
        })
        .collect();
    let manifest = Campaign::from_scenarios(frozen).to_json_string();
    match &cli.out {
        Some(path) => {
            std::fs::write(path, manifest + "\n")
                .unwrap_or_else(|e| die(format!("cannot write {path}: {e}")));
            eprintln!(
                "froze {} scenario(s) into trace-replay form: {path}",
                campaign.len()
            );
        }
        None => println!("{manifest}"),
    }
}

/// Human label of a priority wire code (see `FlowPriority::wire_code`).
fn prio_label(code: u8) -> String {
    match hpcc_types::FlowPriority::from_wire_code(code) {
        hpcc_types::FlowPriority::Normal => "normal".to_string(),
        hpcc_types::FlowPriority::LatencySensitive => "latency-sensitive".to_string(),
        hpcc_types::FlowPriority::Class(c) => format!("class {c}"),
    }
}

fn run_info(cli: &Cli) {
    let path = cli
        .positional
        .first()
        .unwrap_or_else(|| die("info needs a trace file argument"));
    let trace = Trace::from_file(path).unwrap_or_else(|e| die(format!("{path}: {e}")));
    let max_host = trace
        .records
        .iter()
        .map(|r| r.src.max(r.dst))
        .max()
        .map(|m| m + 1)
        .unwrap_or(0);
    println!(
        "{path}: {} records, {} hosts referenced, {} total bytes, horizon {}",
        trace.records.len(),
        max_host,
        trace.total_bytes(),
        trace.horizon()
    );
    // Per-priority breakdown of the parsed `prio` column: flow count and
    // byte volume per tag, ascending by wire code.
    let mut codes: Vec<u8> = trace.records.iter().map(|r| r.prio.wire_code()).collect();
    codes.sort_unstable();
    codes.dedup();
    for code in codes {
        let (mut count, mut bytes) = (0u64, 0u64);
        for r in &trace.records {
            if r.prio.wire_code() == code {
                count += 1;
                bytes += r.bytes;
            }
        }
        println!(
            "  prio {code} ({}): {count} flows, {bytes} bytes",
            prio_label(code)
        );
    }
}

fn run_roundtrip(cli: &Cli) {
    let spec = cli.pick_scenario();
    let exp = spec
        .try_build()
        .unwrap_or_else(|e| die(format!("building {:?}: {e}", spec.name)));
    let hosts = exp.topology().hosts();
    let trace = Trace::from_flows(exp.flows(), hosts)
        .unwrap_or_else(|e| die(format!("exporting {:?}: {e}", spec.name)));
    for (label, text) in [("csv", trace.to_csv()), ("jsonl", trace.to_jsonl())] {
        let back = Trace::parse(&text).unwrap_or_else(|e| die(format!("re-parsing {label}: {e}")));
        if back != trace {
            die(format!("{label} round trip changed the records"));
        }
        let replayed = back
            .replay(hosts, exp.flows().first().map_or(0, |f| f.id.raw()))
            .unwrap_or_else(|e| die(format!("replaying {label}: {e}")));
        let tuples = |flows: &[hpcc_types::FlowSpec]| {
            flows
                .iter()
                .map(|f| (f.src, f.dst, f.size, f.start, f.priority))
                .collect::<Vec<_>>()
        };
        if tuples(&replayed) != tuples(exp.flows()) {
            die(format!("{label} replay changed the per-flow tuples"));
        }
    }
    println!(
        "roundtrip ok: {} flows of scenario {} ({:?}) survive export -> parse -> replay in both formats",
        exp.flows().len(),
        cli.index,
        spec.name
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cli = Cli::parse(&args);
    match cli.command.as_str() {
        "export" => run_export(&cli),
        "freeze" => run_freeze(&cli),
        "info" => run_info(&cli),
        "roundtrip" => run_roundtrip(&cli),
        "" => die("usage: trace <export|freeze|info|roundtrip> [--manifest f] [--index I] [--out f] [--jsonl]"),
        other => die(format!("unknown command {other:?}")),
    }
}
