//! The JSONL wire format of distributed campaigns.
//!
//! A sharded campaign ships per-scenario results between processes (and
//! hosts) as JSON Lines: one self-contained object per completed scenario,
//! written by [`crate::Campaign::run_shard_streaming`] the moment the
//! scenario finishes and folded back into a single [`CampaignReport`] by
//! [`merge_shard_streams`]. Everything rides on the in-tree [`crate::json`]
//! module — no external serde.
//!
//! # Line schema
//!
//! ```json
//! {"index": 3, "wall_ns": 412007831, "result": { ... }}
//! ```
//!
//! * `index` — the scenario's position in the campaign, so a coordinator
//!   can reassemble streams that arrive in any order.
//! * `wall_ns` — the wall-clock time the worker spent on the scenario (the
//!   only host-dependent field; it lives in the envelope, *outside* the
//!   canonical result object).
//! * `result` — the canonical [`ScenarioResult`] object produced by
//!   [`ScenarioResult::to_json`]: name, scheme, slowdown percentiles
//!   (overall / short-flow / per-size-bucket), queue percentiles, PFC
//!   summary, drops, completion, and the FNV digest over the raw simulator
//!   output. Unsigned integers (digests, byte counts, picosecond durations)
//!   are emitted as exact JSON integers; floats use shortest-round-trip
//!   formatting, so decoding and re-encoding is byte-identical.
//!
//! # Determinism contract
//!
//! [`ScenarioResult::to_json`] contains *only* deterministic fields — no
//! wall-clock, no thread counts. Consequently
//! [`CampaignReport::to_json_string`] (a JSON array of canonical results in
//! scenario order) is a pure function of the campaign: a report merged from
//! any number of worker processes on any mix of hosts renders the
//! byte-identical string as [`crate::Campaign::run_serial`]. Equal strings
//! (or equal [`CampaignReport::digests`]) mean bit-identical runs.

use crate::campaign::{Campaign, CampaignReport, FaultSummary, ScenarioResult};
use crate::json::{obj, JsonError, JsonValue};
use crate::scenario::BackendSpec;
use hpcc_stats::fct::{fb_hadoop_buckets, websearch_buckets, FctBucket, SizeBucketStats};
use hpcc_stats::pfc::PfcSummary;
use hpcc_stats::Percentiles;
use hpcc_types::Duration;

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

fn percentiles_to_json(p: &Percentiles) -> JsonValue {
    obj(vec![
        ("count", JsonValue::UInt(p.count as u64)),
        ("p50", JsonValue::Float(p.p50)),
        ("p95", JsonValue::Float(p.p95)),
        ("p99", JsonValue::Float(p.p99)),
        ("mean", JsonValue::Float(p.mean)),
        ("max", JsonValue::Float(p.max)),
    ])
}

fn percentiles_from_json(v: &JsonValue) -> Result<Percentiles, JsonError> {
    Ok(Percentiles {
        count: v.require("count")?.as_usize()?,
        p50: v.require("p50")?.as_f64()?,
        p95: v.require("p95")?.as_f64()?,
        p99: v.require("p99")?.as_f64()?,
        mean: v.require("mean")?.as_f64()?,
        max: v.require("max")?.as_f64()?,
    })
}

fn opt_percentiles_to_json(p: &Option<Percentiles>) -> JsonValue {
    match p {
        Some(p) => percentiles_to_json(p),
        None => JsonValue::Null,
    }
}

fn opt_percentiles_from_json(v: &JsonValue) -> Result<Option<Percentiles>, JsonError> {
    match v {
        JsonValue::Null => Ok(None),
        other => Ok(Some(percentiles_from_json(other)?)),
    }
}

fn opt_u64_to_json(n: &Option<u64>) -> JsonValue {
    match n {
        Some(n) => JsonValue::UInt(*n),
        None => JsonValue::Null,
    }
}

fn opt_u64_from_json(v: &JsonValue) -> Result<Option<u64>, JsonError> {
    match v {
        JsonValue::Null => Ok(None),
        other => Ok(Some(other.as_u64()?)),
    }
}

/// Canonical JSON for a backend choice, shared by scenario specs and
/// result lines. `None` for the default packet engine — its canonical form
/// is an *omitted* `"backend"` key, keeping pre-existing manifests
/// bit-identical. The fluid engine stays the bare label string; the
/// parallel engine carries its thread count as a nested object:
/// `{"parallel_packet": {"threads": 4}}`.
pub fn backend_to_json(backend: BackendSpec) -> Option<JsonValue> {
    match backend {
        BackendSpec::Packet => None,
        BackendSpec::Fluid => Some(JsonValue::Str(backend.label().to_string())),
        BackendSpec::ParallelPacket { threads } => Some(obj(vec![(
            "parallel_packet",
            obj(vec![("threads", JsonValue::UInt(threads as u64))]),
        )])),
    }
}

/// Decode a `"backend"` value: either a bare label string (resolved via
/// [`BackendSpec::from_label`]) or the single-key object form holding the
/// parallel engine's thread count. Extra keys alongside `"parallel_packet"`
/// are conflicting backend selections and rejected.
pub fn backend_from_json(v: &JsonValue) -> Result<BackendSpec, JsonError> {
    if let JsonValue::Str(label) = v {
        return BackendSpec::from_label(label);
    }
    let pairs = match v {
        JsonValue::Object(pairs) => pairs,
        other => return err(format!("expected backend label or object, got {other:?}")),
    };
    if let Some((key, _)) = pairs.iter().find(|(k, _)| k != "parallel_packet") {
        return err(format!("conflicting backend key {key:?}"));
    }
    let p = v
        .get("parallel_packet")
        .ok_or_else(|| JsonError("backend object missing \"parallel_packet\"".into()))?;
    let threads = p.require("threads")?.as_u64()?;
    if threads > u32::MAX as u64 {
        return err(format!("parallel_packet threads {threads} out of range"));
    }
    Ok(BackendSpec::ParallelPacket {
        threads: threads as u32,
    })
}

/// Recover the `&'static` bucket from the known bucket tables. Campaign
/// results only ever use the paper's WebSearch / FB_Hadoop bucket sets, so
/// decoding resolves labels against those instead of leaking strings.
fn known_bucket(max_size: u64, label: &str) -> Option<FctBucket> {
    websearch_buckets()
        .into_iter()
        .chain(fb_hadoop_buckets())
        .find(|b| b.max_size == max_size && b.label == label)
}

fn bucket_stats_to_json(b: &SizeBucketStats) -> JsonValue {
    obj(vec![
        ("max_size", JsonValue::UInt(b.bucket.max_size)),
        ("label", JsonValue::Str(b.bucket.label.to_string())),
        ("stats", opt_percentiles_to_json(&b.stats)),
    ])
}

fn bucket_stats_from_json(v: &JsonValue) -> Result<SizeBucketStats, JsonError> {
    let max_size = v.require("max_size")?.as_u64()?;
    let label = v.require("label")?.as_str()?;
    let bucket = known_bucket(max_size, label).ok_or_else(|| {
        JsonError(format!(
            "unknown flow-size bucket ({max_size}, {label:?}); \
             not in the WebSearch or FB_Hadoop tables"
        ))
    })?;
    Ok(SizeBucketStats {
        bucket,
        stats: opt_percentiles_from_json(v.require("stats")?)?,
    })
}

fn pfc_to_json(p: &PfcSummary) -> JsonValue {
    obj(vec![
        ("total_pause_ps", JsonValue::UInt(p.total_pause.as_ps())),
        ("paused_ports", JsonValue::UInt(p.paused_ports as u64)),
        ("total_ports", JsonValue::UInt(p.total_ports as u64)),
        ("elapsed_ps", JsonValue::UInt(p.elapsed.as_ps())),
        ("pause_frames", JsonValue::UInt(p.pause_frames)),
    ])
}

fn pfc_from_json(v: &JsonValue) -> Result<PfcSummary, JsonError> {
    Ok(PfcSummary {
        total_pause: Duration::from_ps(v.require("total_pause_ps")?.as_u64()?),
        paused_ports: v.require("paused_ports")?.as_usize()?,
        total_ports: v.require("total_ports")?.as_usize()?,
        elapsed: Duration::from_ps(v.require("elapsed_ps")?.as_u64()?),
        pause_frames: v.require("pause_frames")?.as_u64()?,
    })
}

impl ScenarioResult {
    /// The canonical JSON object of this result: every deterministic field
    /// (summary metrics and digest), and nothing host-dependent — no wall
    /// time, no raw simulator output. See the [module docs](self) for the
    /// determinism contract this buys.
    pub fn to_json(&self) -> JsonValue {
        let mut fields = vec![
            ("name", JsonValue::Str(self.name.clone())),
            ("scheme", JsonValue::Str(self.scheme.clone())),
            ("slowdown", opt_percentiles_to_json(&self.slowdown)),
            (
                "short_flow_slowdown",
                opt_percentiles_to_json(&self.short_flow_slowdown),
            ),
            (
                "slowdown_buckets",
                JsonValue::Array(
                    self.slowdown_buckets
                        .iter()
                        .map(bucket_stats_to_json)
                        .collect(),
                ),
            ),
            ("queue_p50", opt_u64_to_json(&self.queue_p50)),
            ("queue_p95", opt_u64_to_json(&self.queue_p95)),
            ("queue_p99", opt_u64_to_json(&self.queue_p99)),
            ("max_queue_bytes", JsonValue::UInt(self.max_queue_bytes)),
            ("pfc", pfc_to_json(&self.pfc)),
            ("drops", JsonValue::UInt(self.drops)),
            ("completion", JsonValue::Float(self.completion)),
            (
                "flows_completed",
                JsonValue::UInt(self.flows_completed as u64),
            ),
        ];
        // Multi-class scheduling extensions (additive, optional): emitted
        // only when populated, so single-class results render byte-identical
        // to the pre-scheduling wire format and old decoders keep working.
        if !self.prio_slowdown.is_empty() {
            fields.push((
                "prio_slowdown",
                JsonValue::Array(
                    self.prio_slowdown
                        .iter()
                        .map(|(code, stats)| {
                            obj(vec![
                                ("prio", JsonValue::UInt(*code as u64)),
                                ("stats", opt_percentiles_to_json(stats)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        if !self.class_queue_p99.is_empty() {
            fields.push((
                "class_queue_p99",
                JsonValue::Array(self.class_queue_p99.iter().map(opt_u64_to_json).collect()),
            ));
        }
        // Fault-injection summary (additive, optional): present only when a
        // fault timeline actually fired, so fault-free results render
        // byte-identical to the pre-fault wire format.
        if let Some(f) = &self.faults {
            fields.push((
                "faults",
                obj(vec![
                    ("events", JsonValue::UInt(f.events)),
                    ("link_downtime_ps", JsonValue::UInt(f.link_downtime_ps)),
                    ("dropped_bytes", JsonValue::UInt(f.dropped_bytes)),
                    ("dropped_packets", JsonValue::UInt(f.dropped_packets)),
                    (
                        "goodput_during_faults",
                        JsonValue::UInt(f.goodput_during_faults),
                    ),
                    (
                        "utilization_while_up",
                        JsonValue::Float(f.utilization_while_up),
                    ),
                ]),
            ));
        }
        // Backend marker (additive, optional): present only when the result
        // came from a non-default engine, so packet results render
        // byte-identical to the pre-boundary wire format.
        if let Some(b) = backend_to_json(self.backend) {
            fields.push(("backend", b));
        }
        fields.push(("digest", JsonValue::UInt(self.digest)));
        obj(fields)
    }

    /// Decode a canonical result object. The decoded result carries no raw
    /// simulator output (`results: None`) and no wall time (`wall` is zero
    /// until an envelope supplies the worker's measurement).
    pub fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        let mut buckets = Vec::new();
        for b in v.require("slowdown_buckets")?.as_array()? {
            buckets.push(bucket_stats_from_json(b)?);
        }
        // Optional multi-class fields: absent on (and before) the
        // single-class wire format, which must keep decoding.
        let mut prio_slowdown = Vec::new();
        if let Some(rows) = v.get("prio_slowdown") {
            for row in rows.as_array()? {
                let code = row.require("prio")?.as_u64()?;
                if code > u8::MAX as u64 {
                    return Err(JsonError(format!("priority code {code} out of range")));
                }
                prio_slowdown.push((
                    code as u8,
                    opt_percentiles_from_json(row.require("stats")?)?,
                ));
            }
        }
        let mut class_queue_p99 = Vec::new();
        if let Some(rows) = v.get("class_queue_p99") {
            for row in rows.as_array()? {
                class_queue_p99.push(opt_u64_from_json(row)?);
            }
        }
        let faults = match v.get("faults") {
            Some(f) => Some(FaultSummary {
                events: f.require("events")?.as_u64()?,
                link_downtime_ps: f.require("link_downtime_ps")?.as_u64()?,
                dropped_bytes: f.require("dropped_bytes")?.as_u64()?,
                dropped_packets: f.require("dropped_packets")?.as_u64()?,
                goodput_during_faults: f.require("goodput_during_faults")?.as_u64()?,
                utilization_while_up: f.require("utilization_while_up")?.as_f64()?,
            }),
            None => None,
        };
        Ok(ScenarioResult {
            name: v.require("name")?.as_str()?.to_string(),
            scheme: v.require("scheme")?.as_str()?.to_string(),
            slowdown: opt_percentiles_from_json(v.require("slowdown")?)?,
            short_flow_slowdown: opt_percentiles_from_json(v.require("short_flow_slowdown")?)?,
            slowdown_buckets: buckets,
            queue_p50: opt_u64_from_json(v.require("queue_p50")?)?,
            queue_p95: opt_u64_from_json(v.require("queue_p95")?)?,
            queue_p99: opt_u64_from_json(v.require("queue_p99")?)?,
            max_queue_bytes: v.require("max_queue_bytes")?.as_u64()?,
            pfc: pfc_from_json(v.require("pfc")?)?,
            drops: v.require("drops")?.as_u64()?,
            completion: v.require("completion")?.as_f64()?,
            flows_completed: v.require("flows_completed")?.as_usize()?,
            prio_slowdown,
            class_queue_p99,
            faults,
            backend: match v.get("backend") {
                Some(b) => backend_from_json(b)?,
                None => BackendSpec::Packet,
            },
            digest: v.require("digest")?.as_u64()?,
            wall: std::time::Duration::ZERO,
            results: None,
        })
    }
}

impl CampaignReport {
    /// The canonical JSON of the whole report: a JSON array of canonical
    /// per-scenario objects in scenario order. Wall times and thread counts
    /// are deliberately excluded, so equal strings ⇔ bit-identical campaign
    /// outcomes, no matter how (or where) the campaign ran.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Array(self.results.iter().map(|r| r.to_json()).collect())
    }

    /// [`CampaignReport::to_json`], rendered to a compact string.
    pub fn to_json_string(&self) -> String {
        self.to_json().render()
    }

    /// Decode a canonical report (the output of
    /// [`CampaignReport::to_json_string`]). Wall times are zero and
    /// `threads` is recorded as 1 — neither crosses the wire.
    pub fn from_json_str(text: &str) -> Result<Self, JsonError> {
        let doc = JsonValue::parse(text)?;
        let mut results = Vec::new();
        for item in doc.as_array()? {
            results.push(ScenarioResult::from_json(item)?);
        }
        Ok(CampaignReport {
            results,
            wall: std::time::Duration::ZERO,
            threads: 1,
        })
    }
}

/// Encode one completed scenario as a JSONL line (without the trailing
/// newline): the envelope carries the scenario `index` and the worker's
/// `wall_ns`; the canonical result object rides in `result`.
pub fn encode_result_line(index: usize, result: &ScenarioResult) -> String {
    obj(vec![
        ("index", JsonValue::UInt(index as u64)),
        (
            "wall_ns",
            JsonValue::UInt(result.wall.as_nanos().min(u64::MAX as u128) as u64),
        ),
        ("result", result.to_json()),
    ])
    .render()
}

/// Decode one JSONL line into `(scenario index, result)`. The envelope's
/// `wall_ns` is restored onto the result.
pub fn decode_result_line(line: &str) -> Result<(usize, ScenarioResult), JsonError> {
    let v = JsonValue::parse(line)?;
    let index = v.require("index")?.as_usize()?;
    let mut result = ScenarioResult::from_json(v.require("result")?)?;
    result.wall = std::time::Duration::from_nanos(v.require("wall_ns")?.as_u64()?);
    Ok((index, result))
}

/// A typed error from the stream decode / merge paths, so callers (and
/// humans reading CI logs) can tell a corrupt line from a killed-mid-write
/// tail from an incomplete partition.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// A complete (newline-terminated) line failed to decode.
    Line {
        /// 1-based position of the stream among the merge inputs.
        stream: usize,
        /// 1-based line number within that stream.
        line: usize,
        /// The underlying JSON decode error.
        error: JsonError,
    },
    /// The final line of a stream is unterminated *and* undecodable — the
    /// signature of a producer killed mid-write. Strict consumers (the
    /// merge) report it; lenient ones ([`decode_stream_lines`]) keep every
    /// record before it.
    Truncated {
        /// 1-based position of the stream among the merge inputs.
        stream: usize,
        /// 1-based line number of the partial record.
        line: usize,
    },
    /// The union of the streams is not a complete `0..n` partition of the
    /// campaign (gap, duplicate, or wrong total).
    Partition(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Line {
                stream,
                line,
                error,
            } => {
                write!(f, "stream {stream}, line {line}: {error}")
            }
            WireError::Truncated { stream, line } => write!(
                f,
                "stream {stream}: line {line} is a truncated trailing record \
                 (producer killed mid-write?); every record before it is intact"
            ),
            WireError::Partition(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for WireError {}

/// The truncated trailing record of a stream, as located by
/// [`decode_stream_lines`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TruncatedTail {
    /// 1-based line number of the partial record.
    pub line: usize,
    /// Byte offset where the partial record starts: everything before it is
    /// intact, so truncating a checkpoint file to this length repairs it in
    /// place.
    pub byte_offset: usize,
}

/// What [`decode_stream_lines`] recovers from one stream: the decoded
/// `(index, result)` entries, plus the located truncated tail, if any.
pub type DecodedStream = (Vec<(usize, ScenarioResult)>, Option<TruncatedTail>);

/// Decode every result line of one stream, tolerating a truncated tail.
///
/// Complete (newline-terminated) lines must decode — a garbage line in the
/// middle of a stream is a [`WireError::Line`] naming the stream and line
/// number. A *final* line that is unterminated **and** fails to decode is
/// returned as a [`TruncatedTail`] instead of an error, so a checkpoint or
/// shard file cut mid-write by a dying process loses exactly the partial
/// record and nothing else. (A final unterminated line that *does* decode
/// is accepted as complete.) `stream` is the 1-based label used in errors.
pub fn decode_stream_lines(text: &str, stream: usize) -> Result<DecodedStream, WireError> {
    let mut entries = Vec::new();
    let mut offset = 0usize;
    for (index, segment) in text.split_inclusive('\n').enumerate() {
        let number = index + 1;
        let start = offset;
        offset += segment.len();
        let terminated = segment.ends_with('\n');
        let line = segment.trim();
        if line.is_empty() {
            continue;
        }
        match decode_result_line(line) {
            Ok(entry) => entries.push(entry),
            // Only the last segment of a stream can be unterminated.
            Err(_) if !terminated => {
                return Ok((
                    entries,
                    Some(TruncatedTail {
                        line: number,
                        byte_offset: start,
                    }),
                ));
            }
            Err(error) => {
                return Err(WireError::Line {
                    stream,
                    line: number,
                    error,
                });
            }
        }
    }
    Ok((entries, None))
}

/// Merge shard streams (the concatenated JSONL output of one or more
/// workers, blank lines ignored) into a single [`CampaignReport`] ordered
/// by scenario index.
///
/// When `expected_len` is `Some(n)` the merged indices must be exactly
/// `0..n` — a lost or truncated shard cannot silently produce a shorter
/// report. With `None` the indices must still be contiguous from 0 (gaps
/// and duplicates are errors), but missing *trailing* scenarios are
/// undetectable; pass `Some` whenever the campaign size is known. The
/// merge is strict: a stream whose final record was cut mid-write is a
/// [`WireError::Truncated`] naming the line (use [`decode_stream_lines`]
/// to salvage the intact prefix instead). The report's `threads` field
/// records the number of streams; `wall` is zero (the caller may overwrite
/// it with the coordinator's measurement).
pub fn merge_shard_streams<'a>(
    streams: impl IntoIterator<Item = &'a str>,
    expected_len: Option<usize>,
) -> Result<CampaignReport, WireError> {
    let mut entries: Vec<(usize, ScenarioResult)> = Vec::new();
    let mut n_streams = 0usize;
    for text in streams {
        n_streams += 1;
        let (mut decoded, tail) = decode_stream_lines(text, n_streams)?;
        if let Some(tail) = tail {
            return Err(WireError::Truncated {
                stream: n_streams,
                line: tail.line,
            });
        }
        entries.append(&mut decoded);
    }
    entries.sort_by_key(|(index, _)| *index);
    if let Some(n) = expected_len {
        if entries.len() != n {
            return Err(WireError::Partition(format!(
                "shard streams carry {} results, campaign has {n} scenarios",
                entries.len()
            )));
        }
    }
    for (expected, (index, _)) in entries.iter().enumerate() {
        if *index != expected {
            return Err(WireError::Partition(format!(
                "shard streams are not a complete partition: expected \
                 scenario index {expected}, found {index} (duplicate or \
                 missing shard?)"
            )));
        }
    }
    Ok(CampaignReport {
        results: entries.into_iter().map(|(_, r)| r).collect(),
        wall: std::time::Duration::ZERO,
        threads: n_streams.max(1),
    })
}

/// One message of the campaign-fabric TCP protocol (see [`crate::fabric`]
/// and the "Fabric messages" section of `docs/WIRE.md`).
///
/// Messages travel length-framed over the stream ([`write_frame`] /
/// [`read_frame`]): a decimal byte-length line, then exactly that many
/// bytes of one canonical JSON object, then a newline. The object's `type`
/// member selects the variant.
pub enum FabricMsg {
    /// Worker → coordinator: the first message on every connection, naming
    /// the worker (diagnostics only — names never reach canonical output).
    Hello {
        /// The worker's display name.
        worker: String,
    },
    /// Coordinator → worker: the campaign manifest, shipped over the wire
    /// in canonical form so workers need no local manifest file and
    /// rebuild byte-identical scenario specs (hence identical digests).
    Manifest {
        /// The campaign to execute.
        campaign: Campaign,
    },
    /// Coordinator → worker: scenario indices to execute, in order.
    Lease {
        /// Ascending scenario indices of this lease.
        indices: Vec<usize>,
    },
    /// Worker → coordinator: one completed scenario, using the standard
    /// result-line envelope members plus the `type` tag.
    Result {
        /// The scenario's position in the campaign.
        index: usize,
        /// The completed result (its `wall` rides the envelope's
        /// `wall_ns`, outside the canonical object).
        result: Box<ScenarioResult>,
    },
    /// Worker → coordinator: liveness signal between results.
    Heartbeat {
        /// Scenarios this worker has completed so far.
        executed: u64,
    },
    /// Graceful end of the conversation (either direction).
    Bye,
}

impl FabricMsg {
    /// The canonical JSON object of this message.
    pub fn to_json(&self) -> JsonValue {
        match self {
            FabricMsg::Hello { worker } => obj(vec![
                ("type", JsonValue::Str("hello".to_string())),
                ("worker", JsonValue::Str(worker.clone())),
            ]),
            FabricMsg::Manifest { campaign } => obj(vec![
                ("type", JsonValue::Str("manifest".to_string())),
                ("campaign", campaign.to_json()),
            ]),
            FabricMsg::Lease { indices } => obj(vec![
                ("type", JsonValue::Str("lease".to_string())),
                (
                    "indices",
                    JsonValue::Array(indices.iter().map(|&i| JsonValue::UInt(i as u64)).collect()),
                ),
            ]),
            FabricMsg::Result { index, result } => obj(vec![
                ("type", JsonValue::Str("result".to_string())),
                ("index", JsonValue::UInt(*index as u64)),
                (
                    "wall_ns",
                    JsonValue::UInt(result.wall.as_nanos().min(u64::MAX as u128) as u64),
                ),
                ("result", result.to_json()),
            ]),
            FabricMsg::Heartbeat { executed } => obj(vec![
                ("type", JsonValue::Str("heartbeat".to_string())),
                ("executed", JsonValue::UInt(*executed)),
            ]),
            FabricMsg::Bye => obj(vec![("type", JsonValue::Str("bye".to_string()))]),
        }
    }

    /// Decode a fabric message object (the inverse of
    /// [`FabricMsg::to_json`]).
    pub fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        match v.require("type")?.as_str()? {
            "hello" => Ok(FabricMsg::Hello {
                worker: v.require("worker")?.as_str()?.to_string(),
            }),
            "manifest" => Ok(FabricMsg::Manifest {
                campaign: Campaign::from_json(v.require("campaign")?)?,
            }),
            "lease" => {
                let mut indices = Vec::new();
                for item in v.require("indices")?.as_array()? {
                    indices.push(item.as_usize()?);
                }
                Ok(FabricMsg::Lease { indices })
            }
            "result" => {
                let index = v.require("index")?.as_usize()?;
                let mut result = ScenarioResult::from_json(v.require("result")?)?;
                result.wall = std::time::Duration::from_nanos(v.require("wall_ns")?.as_u64()?);
                Ok(FabricMsg::Result {
                    index,
                    result: Box::new(result),
                })
            }
            "heartbeat" => Ok(FabricMsg::Heartbeat {
                executed: v.require("executed")?.as_u64()?,
            }),
            "bye" => Ok(FabricMsg::Bye),
            other => err(format!("unknown fabric message type {other}")),
        }
    }
}

/// Write one length-framed fabric message and flush it, so the peer sees
/// the frame immediately: a decimal byte-length line, the message's
/// canonical JSON, a newline.
pub fn write_frame<W: std::io::Write>(w: &mut W, msg: &FabricMsg) -> std::io::Result<()> {
    let payload = msg.to_json().render();
    writeln!(w, "{}", payload.len())?;
    writeln!(w, "{payload}")?;
    w.flush()
}

/// Read one length-framed fabric message. Returns `Ok(None)` on a clean
/// EOF at a frame boundary; EOF inside a frame, a malformed length header,
/// or an undecodable payload are `InvalidData` errors.
pub fn read_frame<R: std::io::BufRead>(r: &mut R) -> std::io::Result<Option<FabricMsg>> {
    let mut header = String::new();
    if r.read_line(&mut header)? == 0 {
        return Ok(None);
    }
    let len: usize = header
        .trim()
        .parse()
        .map_err(|_| bad_frame(format!("malformed frame header {}", header.trim())))?;
    let mut payload = vec![0u8; len + 1];
    r.read_exact(&mut payload)?;
    if payload.pop() != Some(b'\n') {
        return Err(bad_frame("frame payload is not newline-terminated"));
    }
    let text =
        std::str::from_utf8(&payload).map_err(|_| bad_frame("frame payload is not UTF-8"))?;
    let doc = JsonValue::parse(text).map_err(|e| bad_frame(format!("frame payload: {e}")))?;
    match FabricMsg::from_json(&doc) {
        Ok(msg) => Ok(Some(msg)),
        Err(e) => Err(bad_frame(format!("fabric message: {e}"))),
    }
}

fn bad_frame(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built result exercising every field shape: present and absent
    /// percentiles, both bucket tables, extreme integers.
    fn synthetic(name: &str, digest: u64) -> ScenarioResult {
        ScenarioResult {
            name: name.to_string(),
            scheme: "HPCC".to_string(),
            slowdown: Percentiles::of(&[1.0, 2.5, 40.0]),
            short_flow_slowdown: None,
            slowdown_buckets: vec![
                SizeBucketStats {
                    bucket: websearch_buckets()[0],
                    stats: Percentiles::of(&[1.5, 1.5, 9.75]),
                },
                SizeBucketStats {
                    bucket: *fb_hadoop_buckets().last().unwrap(),
                    stats: None,
                },
            ],
            queue_p50: Some(1_000),
            queue_p95: None,
            queue_p99: Some(u64::MAX),
            max_queue_bytes: 5,
            pfc: PfcSummary::new(
                &[Duration::from_us(3), Duration::ZERO],
                2,
                Duration::from_ms(1),
            ),
            drops: 7,
            completion: 0.975,
            flows_completed: 39,
            prio_slowdown: vec![
                (0, Percentiles::of(&[1.0, 2.0])),
                (1, None),
                (4, Percentiles::of(&[3.5])),
            ],
            class_queue_p99: vec![Some(12_288), None, Some(0)],
            faults: Some(FaultSummary {
                events: 6,
                link_downtime_ps: 400_000_000,
                dropped_bytes: 88_512,
                dropped_packets: 80,
                goodput_during_faults: 1_234_567,
                utilization_while_up: 0.625,
            }),
            backend: BackendSpec::Fluid,
            digest,
            wall: std::time::Duration::from_millis(12),
            results: None,
        }
    }

    #[test]
    fn result_lines_round_trip_every_field() {
        let original = synthetic("fig11 HPCC", u64::MAX - 3);
        let line = encode_result_line(4, &original);
        let (index, back) = decode_result_line(&line).unwrap();
        assert_eq!(index, 4);
        // The canonical object survives byte-identically…
        assert_eq!(back.to_json().render(), original.to_json().render());
        // …and the envelope restored the worker's wall time.
        assert_eq!(back.wall, original.wall);
        assert!(back.results.is_none());
        // Spot-check decoded fields (not just the re-render).
        assert_eq!(back.digest, u64::MAX - 3);
        assert_eq!(back.queue_p99, Some(u64::MAX));
        assert_eq!(back.queue_p95, None);
        assert_eq!(back.slowdown.unwrap(), original.slowdown.unwrap());
        assert_eq!(back.pfc, original.pfc);
        assert_eq!(back.slowdown_buckets[0].bucket.label, "<3K");
        assert_eq!(back.slowdown_buckets[1].bucket.label, "10M");
        assert_eq!(back.prio_slowdown, original.prio_slowdown);
        assert_eq!(back.class_queue_p99, original.class_queue_p99);
        assert_eq!(back.faults, original.faults);
    }

    #[test]
    fn single_class_results_omit_the_multi_class_keys_and_old_lines_decode() {
        let mut legacy = synthetic("legacy", 5);
        legacy.prio_slowdown.clear();
        legacy.class_queue_p99.clear();
        legacy.faults = None;
        legacy.backend = BackendSpec::Packet;
        let text = legacy.to_json().render();
        // The canonical single-class, fault-free, packet-backend object is
        // byte-identical to the pre-scheduling / pre-fault / pre-boundary
        // wire format: no optional keys at all.
        assert!(!text.contains("prio_slowdown"), "{text}");
        assert!(!text.contains("class_queue_p99"), "{text}");
        assert!(!text.contains("faults"), "{text}");
        assert!(!text.contains("backend"), "{text}");
        // And a line without those keys (an "old" producer) decodes to the
        // empty defaults.
        let back =
            ScenarioResult::from_json(&crate::json::JsonValue::parse(&text).unwrap()).unwrap();
        assert!(back.prio_slowdown.is_empty());
        assert!(back.class_queue_p99.is_empty());
        assert!(back.faults.is_none());
        assert_eq!(
            back.to_json().render(),
            text,
            "decode -> re-encode is byte-stable"
        );
    }

    #[test]
    fn merge_reorders_and_validates_streams() {
        let lines = |items: &[(usize, u64)]| -> String {
            items
                .iter()
                .map(|(i, d)| encode_result_line(*i, &synthetic(&format!("s{i}"), *d)) + "\n")
                .collect()
        };
        // Two out-of-order streams (plus a blank line) merge into scenario
        // order, with `threads` recording the stream count.
        let a = lines(&[(2, 20), (0, 10)]) + "\n";
        let b = lines(&[(3, 30), (1, 11)]);
        let report = merge_shard_streams([a.as_str(), b.as_str()], Some(4)).unwrap();
        assert_eq!(report.digests(), vec![10, 11, 20, 30]);
        assert_eq!(report.threads, 2);
        assert_eq!(
            report
                .results
                .iter()
                .map(|r| r.name.clone())
                .collect::<Vec<_>>(),
            vec!["s0", "s1", "s2", "s3"]
        );
        // A missing scenario is an error, not a silently shorter report…
        let gap = lines(&[(0, 10), (2, 20)]);
        assert!(merge_shard_streams([gap.as_str()], Some(3)).is_err());
        assert!(merge_shard_streams([gap.as_str()], None).is_err());
        // …and so are duplicates and wrong totals.
        let dup = lines(&[(0, 10), (0, 10), (1, 11)]);
        assert!(merge_shard_streams([dup.as_str()], None).is_err());
        assert!(merge_shard_streams([a.as_str()], Some(4)).is_err());
        // Garbage lines surface as parse errors.
        assert!(merge_shard_streams(["not json"], None).is_err());
    }

    #[test]
    fn every_producible_bucket_survives_the_wire() {
        // `bucket_choice` in campaign.rs can only emit these two tables;
        // whoever adds a third set there must extend `known_bucket` (and
        // this test) or distributed merges break while local runs pass.
        for bucket in websearch_buckets().into_iter().chain(fb_hadoop_buckets()) {
            for stats in [None, Percentiles::of(&[1.0, 4.0])] {
                let row = SizeBucketStats { bucket, stats };
                let back = bucket_stats_from_json(&bucket_stats_to_json(&row)).unwrap();
                assert_eq!(back.bucket, bucket);
                assert_eq!(back.stats, stats);
            }
        }
    }

    #[test]
    fn campaign_report_json_round_trips() {
        let report = CampaignReport {
            results: vec![synthetic("a", 1), synthetic("b", 2)],
            wall: std::time::Duration::from_secs(9),
            threads: 4,
        };
        let text = report.to_json_string();
        let back = CampaignReport::from_json_str(&text).unwrap();
        // Canonical JSON is idempotent: decode → re-encode is byte-equal.
        assert_eq!(back.to_json_string(), text);
        assert_eq!(back.digests(), report.digests());
        // The canonical form excludes the host-dependent fields.
        assert!(!text.contains("wall"));
        assert!(!text.contains("threads"));
    }

    #[test]
    fn truncated_tail_is_a_typed_error_naming_the_line() {
        let whole = encode_result_line(0, &synthetic("a", 1)) + "\n";
        let second = encode_result_line(1, &synthetic("b", 2));
        let cut = &second[..second.len() / 2];
        let text = format!("{whole}{cut}");

        // Strict merge: a typed Truncated error carrying stream and line.
        match merge_shard_streams([text.as_str()], Some(2)) {
            Err(WireError::Truncated { stream: 1, line: 2 }) => {}
            Err(other) => panic!("expected Truncated stream 1 line 2, got {other}"),
            Ok(_) => panic!("expected Truncated stream 1 line 2, got Ok"),
        }
        // The rendered message names the line number for CI logs.
        let msg = match merge_shard_streams([text.as_str()], Some(2)) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("expected an error"),
        };
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("truncated"), "{msg}");

        // Lenient decode: the intact prefix survives, the tail is located
        // exactly (line number and byte offset of the partial record).
        let (entries, tail) = decode_stream_lines(&text, 1).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].0, 0);
        let tail = tail.unwrap();
        assert_eq!(tail.line, 2);
        assert_eq!(tail.byte_offset, whole.len());
        // Truncating to the byte offset repairs the stream in place.
        let repaired = &text[..tail.byte_offset];
        let (entries, tail) = decode_stream_lines(repaired, 1).unwrap();
        assert_eq!(entries.len(), 1);
        assert!(tail.is_none());

        // A garbage line in the *middle* (newline-terminated) is a Line
        // error, not a truncation.
        let garbage = format!("{whole}not json\n{second}\n");
        match merge_shard_streams([garbage.as_str()], Some(2)) {
            Err(WireError::Line {
                stream: 1, line: 2, ..
            }) => {}
            Err(other) => panic!("expected Line error at line 2, got {other}"),
            Ok(_) => panic!("expected Line error at line 2, got Ok"),
        }

        // A final unterminated line that *does* decode is accepted.
        let unterminated = format!("{whole}{second}");
        let report = merge_shard_streams([unterminated.as_str()], Some(2)).unwrap();
        assert_eq!(report.digests(), vec![1, 2]);
    }

    #[test]
    fn fabric_messages_round_trip_and_frame() {
        use crate::presets::incast_on_star;
        use crate::scenario::CcSpec;
        use hpcc_types::Bandwidth;

        let campaign = Campaign::from_scenarios(vec![
            incast_on_star(
                "a",
                CcSpec::by_label("HPCC"),
                2,
                10_000,
                Bandwidth::from_gbps(25),
                Duration::from_us(50),
            ),
            incast_on_star(
                "b",
                CcSpec::by_label("DCQCN"),
                3,
                20_000,
                Bandwidth::from_gbps(25),
                Duration::from_us(50),
            ),
        ]);
        let msgs = vec![
            FabricMsg::Hello {
                worker: "w0".to_string(),
            },
            FabricMsg::Manifest {
                campaign: campaign.clone(),
            },
            FabricMsg::Lease {
                indices: vec![0, 1],
            },
            FabricMsg::Result {
                index: 1,
                result: Box::new(synthetic("b", 42)),
            },
            FabricMsg::Heartbeat { executed: 7 },
            FabricMsg::Bye,
        ];
        // Frame every message into one buffer, then read them all back.
        let mut buf = Vec::new();
        for msg in &msgs {
            write_frame(&mut buf, msg).unwrap();
        }
        let mut reader = std::io::BufReader::new(buf.as_slice());
        for msg in &msgs {
            let back = read_frame(&mut reader).unwrap().expect("frame present");
            assert_eq!(back.to_json().render(), msg.to_json().render());
            // The shipped manifest reconstructs the campaign canonically —
            // the property the fabric's digest identity rests on.
            if let (FabricMsg::Manifest { campaign: orig }, FabricMsg::Manifest { campaign: got }) =
                (msg, &back)
            {
                assert_eq!(got.to_json_string(), orig.to_json_string());
            }
            // The result envelope restores the worker's wall time.
            if let FabricMsg::Result { index, result } = &back {
                assert_eq!(*index, 1);
                assert_eq!(result.wall, synthetic("b", 42).wall);
                assert_eq!(result.digest, 42);
            }
        }
        assert!(read_frame(&mut reader).unwrap().is_none(), "clean EOF");

        // EOF mid-frame, malformed headers, and garbage payloads are typed
        // InvalidData io errors, never panics.
        let mut cut = Vec::new();
        write_frame(&mut cut, &FabricMsg::Bye).unwrap();
        cut.truncate(cut.len() - 3);
        let mut reader = std::io::BufReader::new(cut.as_slice());
        assert!(read_frame(&mut reader).is_err());
        for broken in ["x\n", "5\nab{}c\n", "14\n{\"type\":\"nah\"}\n"] {
            let mut reader = std::io::BufReader::new(broken.as_bytes());
            assert!(read_frame(&mut reader).is_err(), "{broken}");
        }
    }

    #[test]
    fn unknown_buckets_are_rejected() {
        let line = encode_result_line(0, &synthetic("x", 1)).replace("\"<3K\"", "\"<9K\"");
        let err = match decode_result_line(&line) {
            Err(e) => e,
            Ok(_) => panic!("tampered bucket label must not decode"),
        };
        assert!(err.0.contains("unknown flow-size bucket"), "{err}");
    }
}
