//! Shard planning for the parallel packet engine.
//!
//! The topology-level cut (switch chunking, host co-location, the
//! conservative lookahead bound) lives in [`hpcc_topology::partition()`]; this
//! module wraps it in a [`ShardLayout`] and adds the one thing only the
//! simulator knows: which shard *handles* each [`Event`] variant. Node-bound
//! events go to the shard owning the node, flow starts to the shard owning
//! the source host, and the global bookkeeping events (sampling, tracing,
//! fault transitions) are replicated on every shard so each shard can keep
//! its local node replicas' fault state and its own sampling schedule in
//! lockstep without cross-shard coordination.

use crate::engine::Event;
use hpcc_topology::TopologySpec;
use hpcc_types::{Duration, FlowSpec, NodeId};

/// A shard assignment over a topology, as the parallel engine consumes it.
#[derive(Clone, Debug)]
pub struct ShardLayout {
    /// Shard index per node id.
    pub shard_of: Vec<u32>,
    /// Number of shards actually produced (`1 ..= requested threads`).
    pub parts: u32,
    /// Conservative lookahead: the minimum one-way delay over cross-shard
    /// links. `None` when no link crosses a shard boundary (then every
    /// window is unbounded).
    pub lookahead: Option<Duration>,
}

/// Plan a shard layout for `threads` worker threads over `topo`.
///
/// Delegates to [`hpcc_topology::partition()`] (which clamps to the switch
/// count and collapses zero-lookahead cuts to one shard); `threads == 0` is
/// treated as 1 here — the spec layer rejects it earlier with a typed error.
pub fn plan_shards(topo: &TopologySpec, threads: u32) -> ShardLayout {
    let p = hpcc_topology::partition(topo, threads.max(1));
    ShardLayout {
        shard_of: p.shard_of,
        parts: p.parts,
        lookahead: p.lookahead,
    }
}

impl ShardLayout {
    /// The shard owning a node.
    pub fn owner(&self, node: NodeId) -> u32 {
        self.shard_of[node.index()]
    }

    /// Whether `shard` owns `node`.
    pub fn owns(&self, shard: u32, node: NodeId) -> bool {
        self.owner(node) == shard
    }

    /// The shard that must handle `ev`, or `None` for the replicated global
    /// events (every shard handles its own copy).
    pub(crate) fn event_home(&self, ev: &Event, flows: &[FlowSpec]) -> Option<u32> {
        match ev {
            Event::FlowStart(idx) => Some(self.owner(flows[*idx].src)),
            Event::PortReady { node, .. }
            | Event::PacketArrive { node, .. }
            | Event::HostWake { node }
            | Event::CcTimer { node, .. }
            | Event::RtoCheck { node, .. } => Some(self.owner(*node)),
            Event::Sample | Event::TraceSample | Event::FaultTransition => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcc_topology::{fat_tree, FatTreeParams};
    use hpcc_types::{FlowId, PortId, SimTime};

    #[test]
    fn events_route_to_the_owner_of_their_node() {
        let topo = fat_tree(FatTreeParams::small());
        let layout = plan_shards(&topo, 4);
        assert!(layout.parts >= 2);
        let hosts = topo.hosts().to_vec();
        let flows = vec![FlowSpec::new(
            FlowId(1),
            hosts[0],
            hosts[1],
            1000,
            SimTime::ZERO,
        )];
        let n = hosts[0];
        assert_eq!(
            layout.event_home(&Event::HostWake { node: n }, &flows),
            Some(layout.owner(n))
        );
        assert_eq!(
            layout.event_home(&Event::FlowStart(0), &flows),
            Some(layout.owner(hosts[0]))
        );
        assert_eq!(
            layout.event_home(
                &Event::PortReady {
                    node: n,
                    port: PortId(0)
                },
                &flows
            ),
            Some(layout.owner(n))
        );
        for ev in [Event::Sample, Event::TraceSample, Event::FaultTransition] {
            assert_eq!(layout.event_home(&ev, &flows), None, "replicated event");
        }
    }

    #[test]
    fn zero_threads_plans_a_single_shard() {
        let topo = fat_tree(FatTreeParams::small());
        let layout = plan_shards(&topo, 0);
        assert_eq!(layout.parts, 1);
        assert_eq!(layout.lookahead, None);
    }
}
