//! Trace-driven workloads: flow traces as reproducible artifacts.
//!
//! A [`Trace`] is an ordered list of [`TraceRecord`]s — one flow per record,
//! endpoints given as *host indices* into the topology's host list. Traces
//! round-trip through two dependency-free text formats, line for line:
//!
//! * **CSV**: `start_ns,src,dst,bytes[,prio]` per line (`#` comments and
//!   blank lines are ignored),
//! * **JSONL**: one flat object per line,
//!   `{"start_ns": 1500.25, "src": 0, "dst": 7, "bytes": 64000, "prio": 0}`.
//!
//! `start_ns` is a decimal number of nanoseconds with an optional fractional
//! part of up to three digits, parsed with integer arithmetic — so the
//! simulator's picosecond timestamps survive *exactly* and a workload
//! exported with [`Trace::from_flows`] and replayed with [`Trace::replay`]
//! reproduces the identical per-flow tuples (and therefore identical
//! campaign digests). `prio` is optional and carries the
//! [`FlowPriority::wire_code`]: `0` is [`FlowPriority::Normal`] (the
//! default), `1` is [`FlowPriority::LatencySensitive`], and `2 + c` is the
//! explicit data class `c` ([`FlowPriority::Class`]).
//!
//! Malformed input never panics: every parse or replay failure is a typed
//! [`TraceError`] carrying the 1-based line (or record) number.

use hpcc_types::{Duration, FlowId, FlowPriority, FlowSpec, NodeId, SimTime};
use std::fmt;

/// One flow of a [`Trace`]: start time, endpoints as host indices, size and
/// priority.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Start time relative to the scenario start.
    pub start: Duration,
    /// Index of the sending host in the topology's host list.
    pub src: usize,
    /// Index of the receiving host in the topology's host list.
    pub dst: usize,
    /// Flow size in bytes.
    pub bytes: u64,
    /// Application priority of the flow.
    pub prio: FlowPriority,
}

impl TraceRecord {
    /// A record with [`FlowPriority::Normal`].
    pub fn new(start: Duration, src: usize, dst: usize, bytes: u64) -> Self {
        TraceRecord {
            start,
            src,
            dst,
            bytes,
            prio: FlowPriority::Normal,
        }
    }
}

/// Error raised while parsing, validating or replaying a trace.
///
/// `line` is 1-based: for text input it is the offending line of the file
/// (comments and blank lines count, so editors agree); for in-memory record
/// lists it is the record's position. `line == 0` means the error concerns
/// the trace as a whole (e.g. an unreadable file).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line (or record) number; 0 for whole-trace errors.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl TraceError {
    fn at(line: usize, message: impl Into<String>) -> Self {
        TraceError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "trace error: {}", self.message)
        } else {
            write!(f, "trace error at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for TraceError {}

/// An ordered flow trace (see the [module docs](self) for the text formats
/// and the exactness guarantees).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    /// The records, in file order. Replay preserves this order (flow ids are
    /// assigned sequentially along it); it need not be time-sorted.
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Parse trace text. Each non-blank, non-comment line is either a CSV
    /// record or a JSONL object (auto-detected per line by its first
    /// character), so the two formats may even be mixed.
    pub fn parse(text: &str) -> Result<Trace, TraceError> {
        let mut records = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let record = if line.starts_with('{') {
                parse_jsonl_record(line, line_no)?
            } else {
                parse_csv_record(line, line_no)?
            };
            records.push(record);
        }
        Ok(Trace { records })
    }

    /// Read and parse a trace file. I/O failures surface as a whole-trace
    /// [`TraceError`] (`line == 0`) naming the path.
    pub fn from_file(path: &str) -> Result<Trace, TraceError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| TraceError::at(0, format!("cannot read {path}: {e}")))?;
        Trace::parse(&text)
    }

    /// Render as CSV, one `start_ns,src,dst,bytes[,prio]` line per record
    /// (the `prio` column is written only for non-default priorities).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&format_start_ns(r.start));
            out.push_str(&format!(",{},{},{}", r.src, r.dst, r.bytes));
            if r.prio != FlowPriority::Normal {
                out.push_str(&format!(",{}", r.prio.wire_code()));
            }
            out.push('\n');
        }
        out
    }

    /// Render as JSONL, one flat object per record.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&format!(
                "{{\"start_ns\": {}, \"src\": {}, \"dst\": {}, \"bytes\": {}, \"prio\": {}}}\n",
                format_start_ns(r.start),
                r.src,
                r.dst,
                r.bytes,
                r.prio.wire_code()
            ));
        }
        out
    }

    /// Capture a generated flow list as a trace (the "trace-gen" path):
    /// every synthetic workload can be exported to a file and replayed
    /// later, byte-identically.
    ///
    /// `hosts` is the topology's host list; each flow's endpoints are mapped
    /// back to host indices. Flow ids are *not* stored — [`Trace::replay`]
    /// reassigns them sequentially in record order, which reproduces the ids
    /// of every in-tree generator (they allocate sequentially from
    /// `first_flow_id` in generation order). A flow whose endpoint is not in
    /// `hosts` is a [`TraceError`] at that flow's 1-based position.
    pub fn from_flows(flows: &[FlowSpec], hosts: &[NodeId]) -> Result<Trace, TraceError> {
        // One index map up front: the freeze/export paths run this over
        // every flow of paper-scale scenarios, where a per-flow linear scan
        // of the host list would be O(flows × hosts).
        let index: std::collections::HashMap<NodeId, usize> =
            hosts.iter().enumerate().map(|(i, &h)| (h, i)).collect();
        let index_of = |n: NodeId| index.get(&n).copied();
        let mut records = Vec::with_capacity(flows.len());
        for (i, f) in flows.iter().enumerate() {
            let src = index_of(f.src).ok_or_else(|| {
                TraceError::at(i + 1, format!("flow src {} is not a host", f.src))
            })?;
            let dst = index_of(f.dst).ok_or_else(|| {
                TraceError::at(i + 1, format!("flow dst {} is not a host", f.dst))
            })?;
            records.push(TraceRecord {
                start: f.start - SimTime::ZERO,
                src,
                dst,
                bytes: f.size,
                prio: f.priority,
            });
        }
        Ok(Trace { records })
    }

    /// Deterministically replay the trace against a concrete host list:
    /// record `k` becomes a flow with id `first_flow_id + k`, endpoints
    /// `hosts[src]` / `hosts[dst]`, starting at the record's offset from
    /// time zero.
    ///
    /// Out-of-range indices and `src == dst` records are typed errors at the
    /// record's 1-based position, never panics.
    pub fn replay(
        &self,
        hosts: &[NodeId],
        first_flow_id: u64,
    ) -> Result<Vec<FlowSpec>, TraceError> {
        let mut flows = Vec::with_capacity(self.records.len());
        for (i, r) in self.records.iter().enumerate() {
            let line = i + 1;
            if r.src >= hosts.len() {
                return Err(TraceError::at(
                    line,
                    format!("src index {} out of range ({} hosts)", r.src, hosts.len()),
                ));
            }
            if r.dst >= hosts.len() {
                return Err(TraceError::at(
                    line,
                    format!("dst index {} out of range ({} hosts)", r.dst, hosts.len()),
                ));
            }
            if r.src == r.dst {
                return Err(TraceError::at(
                    line,
                    format!("src and dst are both host {}", r.src),
                ));
            }
            let mut flow = FlowSpec::new(
                FlowId(first_flow_id + i as u64),
                hosts[r.src],
                hosts[r.dst],
                r.bytes,
                SimTime::ZERO + r.start,
            );
            flow.priority = r.prio;
            flows.push(flow);
        }
        Ok(flows)
    }

    /// Total bytes across all records.
    pub fn total_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.bytes).sum()
    }

    /// The latest start time in the trace ([`Duration::ZERO`] when empty).
    pub fn horizon(&self) -> Duration {
        self.records
            .iter()
            .map(|r| r.start)
            .max()
            .unwrap_or(Duration::ZERO)
    }
}

/// Where a trace workload's records come from, as plain data (the
/// declarative counterpart of [`Trace`], carried by scenario specs and
/// campaign manifests).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceSpec {
    /// Read the trace from a CSV/JSONL file at build time. Relative paths
    /// resolve against the working directory of the building process, so
    /// distributed workers need the file at the same path.
    Path(String),
    /// Records carried inline (inside the manifest itself) — the fully
    /// self-contained form, which is what sharded campaigns should prefer.
    Inline(Vec<TraceRecord>),
}

impl TraceSpec {
    /// Resolve into a concrete [`Trace`] (reading the file for
    /// [`TraceSpec::Path`]).
    pub fn load(&self) -> Result<Trace, TraceError> {
        match self {
            TraceSpec::Path(path) => Trace::from_file(path),
            TraceSpec::Inline(records) => Ok(Trace {
                records: records.clone(),
            }),
        }
    }
}

/// Largest valid priority code: `0` normal, `1` latency-sensitive,
/// `2 + c` explicit data class `c` (see [`FlowPriority::wire_code`]).
const MAX_PRIO_CODE: u64 = 1 + hpcc_types::Priority::MAX_DATA_CLASSES as u64;

fn prio_from_code(code: u64, line: usize) -> Result<FlowPriority, TraceError> {
    if code <= MAX_PRIO_CODE {
        Ok(FlowPriority::from_wire_code(code as u8))
    } else {
        Err(TraceError::at(
            line,
            format!(
                "unknown priority {code} (0 = normal, 1 = latency-sensitive, \
                 2+c = data class c)"
            ),
        ))
    }
}

/// Format a duration as decimal nanoseconds, keeping picosecond precision
/// exactly: `1500` for 1.5 µs, `1500.25` for 1500250 ps.
fn format_start_ns(d: Duration) -> String {
    let ps = d.as_ps();
    let (ns, frac) = (ps / 1000, ps % 1000);
    if frac == 0 {
        format!("{ns}")
    } else {
        format!("{ns}.{frac:03}")
    }
}

/// Parse decimal nanoseconds into an exact picosecond [`Duration`] with
/// integer arithmetic only (no `f64` on the way, so `.001` ns = 1 ps is
/// exact and anything finer than a picosecond is rejected, not rounded).
fn parse_start_ns(text: &str, line: usize) -> Result<Duration, TraceError> {
    let bad = || TraceError::at(line, format!("bad start_ns {text:?}"));
    let (int_part, frac_part) = match text.split_once('.') {
        Some((i, f)) => (i, f),
        None => (text, ""),
    };
    if int_part.is_empty() && frac_part.is_empty() {
        return Err(bad());
    }
    let ns: u64 = if int_part.is_empty() {
        0
    } else {
        int_part.parse().map_err(|_| bad())?
    };
    let frac_ps: u64 = if frac_part.is_empty() {
        0
    } else {
        let trimmed = frac_part.trim_end_matches('0');
        if trimmed.len() > 3 {
            return Err(TraceError::at(
                line,
                format!("start_ns {text:?} is finer than a picosecond"),
            ));
        }
        if !frac_part.bytes().all(|b| b.is_ascii_digit()) {
            return Err(bad());
        }
        if trimmed.is_empty() {
            0
        } else {
            trimmed.parse::<u64>().map_err(|_| bad())? * 10u64.pow(3 - trimmed.len() as u32)
        }
    };
    let ps = ns
        .checked_mul(1000)
        .and_then(|p| p.checked_add(frac_ps))
        .ok_or_else(|| TraceError::at(line, format!("start_ns {text:?} overflows")))?;
    Ok(Duration::from_ps(ps))
}

fn parse_u64_field(text: &str, what: &str, line: usize) -> Result<u64, TraceError> {
    text.parse()
        .map_err(|_| TraceError::at(line, format!("bad {what} {text:?}")))
}

fn parse_csv_record(line: &str, line_no: usize) -> Result<TraceRecord, TraceError> {
    let fields: Vec<&str> = line.split(',').map(str::trim).collect();
    if fields.len() < 4 || fields.len() > 5 {
        return Err(TraceError::at(
            line_no,
            format!(
                "expected 4 or 5 fields (start_ns,src,dst,bytes[,prio]), got {}",
                fields.len()
            ),
        ));
    }
    let start = parse_start_ns(fields[0], line_no)?;
    let src = parse_u64_field(fields[1], "src", line_no)? as usize;
    let dst = parse_u64_field(fields[2], "dst", line_no)? as usize;
    let bytes = parse_u64_field(fields[3], "bytes", line_no)?;
    let prio = match fields.get(4) {
        Some(f) => prio_from_code(parse_u64_field(f, "prio", line_no)?, line_no)?,
        None => FlowPriority::Normal,
    };
    Ok(TraceRecord {
        start,
        src,
        dst,
        bytes,
        prio,
    })
}

/// Parse one flat JSONL object with numeric fields. Hand-rolled (the
/// workload crate deliberately has no JSON dependency): accepts exactly the
/// shape [`Trace::to_jsonl`] writes — string keys mapping to plain decimal
/// numbers, no nesting, any key order, unknown keys rejected.
fn parse_jsonl_record(line: &str, line_no: usize) -> Result<TraceRecord, TraceError> {
    let inner = line
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| TraceError::at(line_no, "JSONL record must be a {...} object"))?;
    let mut start = None;
    let mut src = None;
    let mut dst = None;
    let mut bytes = None;
    let mut prio = None;
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (key, value) = part
            .split_once(':')
            .ok_or_else(|| TraceError::at(line_no, format!("bad field {part:?}")))?;
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        match key {
            "start_ns" => start = Some(parse_start_ns(value, line_no)?),
            "src" => src = Some(parse_u64_field(value, "src", line_no)? as usize),
            "dst" => dst = Some(parse_u64_field(value, "dst", line_no)? as usize),
            "bytes" => bytes = Some(parse_u64_field(value, "bytes", line_no)?),
            "prio" => {
                prio = Some(prio_from_code(
                    parse_u64_field(value, "prio", line_no)?,
                    line_no,
                )?)
            }
            other => {
                return Err(TraceError::at(
                    line_no,
                    format!("unknown trace field {other:?}"),
                ))
            }
        }
    }
    Ok(TraceRecord {
        start: start.ok_or_else(|| TraceError::at(line_no, "missing start_ns"))?,
        src: src.ok_or_else(|| TraceError::at(line_no, "missing src"))?,
        dst: dst.ok_or_else(|| TraceError::at(line_no, "missing dst"))?,
        bytes: bytes.ok_or_else(|| TraceError::at(line_no, "missing bytes"))?,
        prio: prio.unwrap_or(FlowPriority::Normal),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hosts(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    fn sample_trace() -> Trace {
        Trace {
            records: vec![
                TraceRecord::new(Duration::ZERO, 0, 1, 500),
                TraceRecord {
                    start: Duration::from_ps(1_500_250),
                    src: 2,
                    dst: 0,
                    bytes: 64_000,
                    prio: FlowPriority::LatencySensitive,
                },
                TraceRecord::new(Duration::from_us(2), 1, 2, 1),
            ],
        }
    }

    #[test]
    fn csv_round_trips_exact_picoseconds() {
        let trace = sample_trace();
        let text = trace.to_csv();
        assert!(text.contains("1500.250,2,0,64000,1"), "{text}");
        let back = Trace::parse(&text).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn jsonl_round_trips_exact_picoseconds() {
        let trace = sample_trace();
        let text = trace.to_jsonl();
        assert!(text.lines().all(|l| l.starts_with('{')), "{text}");
        let back = Trace::parse(&text).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn comments_blank_lines_and_mixed_formats_parse() {
        let text =
            "# a comment\n\n0,0,1,100\n{\"start_ns\": 5, \"src\": 1, \"dst\": 0, \"bytes\": 7}\n";
        let t = Trace::parse(text).unwrap();
        assert_eq!(t.records.len(), 2);
        assert_eq!(t.records[1].start, Duration::from_ns(5));
        assert_eq!(t.records[1].bytes, 7);
        assert_eq!(t.total_bytes(), 107);
        assert_eq!(t.horizon(), Duration::from_ns(5));
    }

    #[test]
    fn start_ns_fraction_parses_without_floats() {
        // .001 ns = exactly 1 ps; trailing zeros are fine; finer is an error.
        for (text, ps) in [
            ("0.001", 1),
            ("1.5", 1_500),
            ("1.50", 1_500),
            ("1500.250", 1_500_250),
            ("2", 2_000),
            (".5", 500),
        ] {
            assert_eq!(
                parse_start_ns(text, 1).unwrap(),
                Duration::from_ps(ps),
                "{text}"
            );
        }
        let err = parse_start_ns("1.0005", 3).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.to_string().contains("finer than a picosecond"), "{err}");
    }

    #[test]
    fn malformed_lines_are_typed_errors_with_line_numbers() {
        let cases = [
            ("0,0,1,100\nnonsense", 2, "fields"),
            ("0,0,1", 1, "fields"),
            ("0,0,1,100,2,9", 1, "fields"),
            ("x,0,1,100", 1, "start_ns"),
            ("0,a,1,100", 1, "src"),
            ("0,0,b,100", 1, "dst"),
            ("0,0,1,c", 1, "bytes"),
            ("0,0,1,100,7", 1, "priority"),
            ("# ok\n0,0,1,100\n{\"src\": 1}", 3, "missing start_ns"),
            (
                "{\"start_ns\": 0, \"src\": 0, \"dst\": 1, \"bytes\": 1, \"zap\": 3}",
                1,
                "unknown trace field",
            ),
            ("{broken", 1, "object"),
            ("-5,0,1,100", 1, "start_ns"),
        ];
        for (text, line, needle) in cases {
            let err = Trace::parse(text).unwrap_err();
            assert_eq!(err.line, line, "{text:?}");
            assert!(
                err.to_string().contains(needle),
                "{text:?} -> {err} (wanted {needle:?})"
            );
        }
    }

    #[test]
    fn replay_assigns_sequential_ids_and_validates() {
        let h = hosts(3);
        let flows = sample_trace().replay(&h, 100).unwrap();
        assert_eq!(flows.len(), 3);
        assert_eq!(flows[0].id, FlowId(100));
        assert_eq!(flows[2].id, FlowId(102));
        assert_eq!(flows[1].src, h[2]);
        assert_eq!(flows[1].priority, FlowPriority::LatencySensitive);
        assert_eq!(flows[1].start, SimTime::ZERO + Duration::from_ps(1_500_250));
        // Out-of-range and self-loop records are typed errors at the record.
        let bad_dst = Trace {
            records: vec![
                TraceRecord::new(Duration::ZERO, 0, 1, 5),
                TraceRecord::new(Duration::ZERO, 0, 9, 5),
            ],
        };
        let err = bad_dst.replay(&h, 0).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("out of range"), "{err}");
        let self_loop = Trace {
            records: vec![TraceRecord::new(Duration::ZERO, 1, 1, 5)],
        };
        let err = self_loop.replay(&h, 0).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("src and dst"), "{err}");
    }

    #[test]
    fn flows_export_and_replay_are_inverse() {
        let h = hosts(4);
        let mut flows = vec![
            FlowSpec::new(FlowId(50), h[0], h[3], 1_000, SimTime::from_us(1)),
            FlowSpec::new(
                FlowId(51),
                h[2],
                h[1],
                2_000,
                SimTime::ZERO + Duration::from_ps(123),
            ),
        ];
        flows[1].priority = FlowPriority::LatencySensitive;
        let trace = Trace::from_flows(&flows, &h).unwrap();
        let back = trace.replay(&h, 50).unwrap();
        assert_eq!(back, flows);
        // …and surviving a text round trip too.
        let reparsed = Trace::parse(&trace.to_csv()).unwrap();
        assert_eq!(reparsed.replay(&h, 50).unwrap(), flows);
        // A non-host endpoint is a typed error naming the flow.
        let err = Trace::from_flows(&flows, &h[..2]).unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn trace_spec_loads_inline_and_files() {
        let inline = TraceSpec::Inline(sample_trace().records);
        assert_eq!(inline.load().unwrap(), sample_trace());
        let missing = TraceSpec::Path("/nonexistent/definitely_not_here.csv".into());
        let err = missing.load().unwrap_err();
        assert_eq!(err.line, 0);
        assert!(err.to_string().contains("cannot read"), "{err}");
        let dir = std::env::temp_dir().join("hpcc_trace_spec_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        std::fs::write(&path, sample_trace().to_csv()).unwrap();
        let loaded = TraceSpec::Path(path.to_string_lossy().into_owned())
            .load()
            .unwrap();
        assert_eq!(loaded, sample_trace());
    }
}
