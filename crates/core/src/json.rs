//! A minimal JSON value type with a writer and a recursive-descent parser.
//!
//! The build environment vendors no external crates, so scenario
//! serialization cannot lean on serde; this module implements the small JSON
//! subset the [`crate::scenario`] types need: objects, arrays, strings,
//! booleans, null, and numbers. Unsigned integers are kept exact (they carry
//! picosecond timestamps and 64-bit seeds that would not survive an `f64`
//! round-trip).

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer literal (kept exact up to `u64::MAX`).
    UInt(u64),
    /// A negative integer literal.
    Int(i64),
    /// A fractional or exponent-form number.
    ///
    /// JSON has no representation for non-finite values: [`render`] emits
    /// `null` for `NaN`/`±inf` (so they re-parse as [`JsonValue::Null`],
    /// never as an invalid token a merging coordinator would choke on).
    /// Finite values round-trip bit-exactly: the writer uses Rust's
    /// shortest-round-trip formatting and the parser is correctly rounded.
    ///
    /// [`render`]: JsonValue::render
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, JsonValue)>),
}

/// Error produced when parsing or interpreting JSON.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

impl JsonValue {
    /// Look up a key of an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Look up a key of an object, failing with a descriptive error.
    pub fn require(&self, key: &str) -> Result<&JsonValue, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError(format!("missing key {key:?}")))
    }

    /// Interpret as `u64` (integral floats are accepted).
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        match self {
            JsonValue::UInt(n) => Ok(*n),
            JsonValue::Int(n) if *n >= 0 => Ok(*n as u64),
            JsonValue::Float(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= 2f64.powi(53) => {
                Ok(*f as u64)
            }
            other => err(format!("expected unsigned integer, got {other:?}")),
        }
    }

    /// Interpret as `f64`.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            JsonValue::UInt(n) => Ok(*n as f64),
            JsonValue::Int(n) => Ok(*n as f64),
            JsonValue::Float(f) => Ok(*f),
            other => err(format!("expected number, got {other:?}")),
        }
    }

    /// Interpret as `usize`.
    pub fn as_usize(&self) -> Result<usize, JsonError> {
        Ok(self.as_u64()? as usize)
    }

    /// Interpret as a string slice.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            JsonValue::Str(s) => Ok(s),
            other => err(format!("expected string, got {other:?}")),
        }
    }

    /// Interpret as a bool.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            JsonValue::Bool(b) => Ok(*b),
            other => err(format!("expected bool, got {other:?}")),
        }
    }

    /// Interpret as an array.
    pub fn as_array(&self) -> Result<&[JsonValue], JsonError> {
        match self {
            JsonValue::Array(items) => Ok(items),
            other => err(format!("expected array, got {other:?}")),
        }
    }

    /// Render to a compact JSON string.
    ///
    /// The output is always valid JSON: non-finite floats become `null`
    /// (see [`JsonValue::Float`]), and finite floats are written in a form
    /// that re-parses to the bit-identical `f64`.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.render_into(&mut s);
        s
    }

    fn render_into(&self, s: &mut String) {
        match self {
            JsonValue::Null => s.push_str("null"),
            JsonValue::Bool(b) => s.push_str(if *b { "true" } else { "false" }),
            JsonValue::UInt(n) => s.push_str(&n.to_string()),
            JsonValue::Int(n) => s.push_str(&n.to_string()),
            JsonValue::Float(f) => {
                if f.is_finite() {
                    // Guarantee a re-parseable float (always keep a dot or
                    // e). Rust's Display prints the shortest string that
                    // round-trips, so the value survives bit-exactly.
                    let text = format!("{f}");
                    s.push_str(&text);
                    if !text.contains(['.', 'e', 'E']) {
                        s.push_str(".0");
                    }
                } else {
                    // NaN/±inf have no JSON representation; `NaN`/`inf`
                    // tokens would be invalid JSON that no peer could
                    // re-parse. Emit `null` instead (documented contract).
                    s.push_str("null");
                }
            }
            JsonValue::Str(text) => render_string(text, s),
            JsonValue::Array(items) => {
                s.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    item.render_into(s);
                }
                s.push(']');
            }
            JsonValue::Object(pairs) => {
                s.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    render_string(k, s);
                    s.push(':');
                    v.render_into(s);
                }
                s.push('}');
            }
        }
    }

    /// Parse a JSON document.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

/// Build an object from key/value pairs (helper for serializers).
pub fn obj(pairs: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn render_string(text: &str, s: &mut String) {
    s.push('"');
    for c in text.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                s.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), JsonError> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => err("unexpected end of input"),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: JsonValue,
) -> Result<JsonValue, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(pairs));
            }
            _ => return err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return err("unterminated string"),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = parse_u_escape(bytes, *pos)?;
                        *pos += 4;
                        if (0xD800..0xDC00).contains(&code) {
                            // High surrogate: must be followed by \uDC00-\uDFFF,
                            // the pair encodes one supplementary-plane char.
                            if bytes.get(*pos + 1..*pos + 3) != Some(b"\\u") {
                                return err("unpaired surrogate in \\u escape");
                            }
                            let low = parse_u_escape(bytes, *pos + 2)?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return err("unpaired surrogate in \\u escape");
                            }
                            *pos += 6;
                            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            out.push(
                                char::from_u32(combined)
                                    .ok_or_else(|| JsonError("bad surrogate pair".into()))?,
                            );
                        } else {
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| JsonError("unpaired surrogate".into()))?,
                            );
                        }
                    }
                    _ => return err("bad escape"),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (bytes are valid UTF-8: the
                // input came in as &str).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| JsonError("invalid utf-8".into()))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Read the 4 hex digits of a `\uXXXX` escape; `pos_of_u` points at the
/// `u`.
fn parse_u_escape(bytes: &[u8], pos_of_u: usize) -> Result<u32, JsonError> {
    let hex = bytes
        .get(pos_of_u + 1..pos_of_u + 5)
        .ok_or_else(|| JsonError("truncated \\u escape".into()))?;
    let text = std::str::from_utf8(hex).map_err(|_| JsonError("bad \\u escape".into()))?;
    u32::from_str_radix(text, 16).map_err(|_| JsonError("bad \\u escape".into()))
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).unwrap();
    if text.is_empty() || text == "-" {
        return err(format!("invalid number at byte {start}"));
    }
    if !is_float {
        if let Some(stripped) = text.strip_prefix('-') {
            if let Ok(n) = stripped.parse::<i64>() {
                return Ok(JsonValue::Int(-n));
            }
        } else if let Ok(n) = text.parse::<u64>() {
            return Ok(JsonValue::UInt(n));
        }
    }
    text.parse::<f64>()
        .map(JsonValue::Float)
        .map_err(|_| JsonError(format!("invalid number {text:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let doc = obj(vec![
            ("name", JsonValue::Str("fig 11 \"Clos\"\n".into())),
            ("seed", JsonValue::UInt(u64::MAX)),
            ("load", JsonValue::Float(0.3)),
            ("offset", JsonValue::Int(-7)),
            ("incast", JsonValue::Bool(true)),
            ("nothing", JsonValue::Null),
            (
                "flows",
                JsonValue::Array(vec![JsonValue::UInt(1), JsonValue::UInt(2)]),
            ),
        ]);
        let text = doc.render();
        let back = JsonValue::parse(&text).unwrap();
        assert_eq!(back, doc);
        // u64::MAX survived exactly.
        assert_eq!(back.require("seed").unwrap().as_u64().unwrap(), u64::MAX);
        assert_eq!(back.get("load").unwrap().as_f64().unwrap(), 0.3);
        assert_eq!(back.get("offset").unwrap().as_f64().unwrap(), -7.0);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = JsonValue::parse(" { \"a\" : [ 1 , 2.5e1 , \"x\\u0041\\n\" ] } ").unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64().unwrap(), 1);
        assert_eq!(arr[1].as_f64().unwrap(), 25.0);
        assert_eq!(arr[2].as_str().unwrap(), "xA\n");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "tru", "\"unterminated", "1 2"] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn surrogate_pairs_combine_and_unpaired_ones_error() {
        // A standard JSON surrogate-pair escape decodes to one char…
        let v = JsonValue::parse("\"\\ud83d\\ude80\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "\u{1F680}");
        // …and that char round-trips through our writer (as raw UTF-8).
        assert_eq!(
            JsonValue::parse(&v.render()).unwrap().as_str().unwrap(),
            "\u{1F680}"
        );
        // Unpaired surrogates are rejected instead of silently mangled.
        for bad in [
            "\"\\ud83d\"",
            "\"\\ud83d x\"",
            "\"\\ude80\"",
            "\"\\ud83d\\u0041\"",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn float_rendering_is_reparseable() {
        let v = JsonValue::Float(2.0);
        assert_eq!(v.render(), "2.0");
        assert_eq!(JsonValue::parse("2.0").unwrap().as_f64().unwrap(), 2.0);
    }

    #[test]
    fn non_finite_floats_render_as_null_not_invalid_tokens() {
        for f in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let doc = obj(vec![("x", JsonValue::Float(f))]);
            let text = doc.render();
            assert_eq!(text, "{\"x\":null}", "{f} must not leak into JSON");
            // The output re-parses (as null — the value does not survive,
            // the document does).
            let back = JsonValue::parse(&text).unwrap();
            assert_eq!(back.get("x"), Some(&JsonValue::Null));
        }
    }

    #[test]
    fn finite_floats_round_trip_bit_exactly() {
        for f in [
            0.0,
            -0.0,
            0.3,
            1.0 / 3.0,
            1e-12,
            6.02214076e23,
            1e300,
            -1e300,
            f64::MAX,
            f64::MIN,
            f64::MIN_POSITIVE,
            5e-324, // smallest subnormal
            -123_456_789.125,
        ] {
            let text = JsonValue::Float(f).render();
            let back = JsonValue::parse(&text)
                .unwrap_or_else(|e| panic!("{f} rendered as unparseable {text:?}: {e}"));
            let g = back.as_f64().unwrap();
            assert_eq!(g.to_bits(), f.to_bits(), "{f} -> {text} -> {g}");
        }
    }
}
