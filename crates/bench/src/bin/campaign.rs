//! Campaign wall-clock benchmark, manifest runner and multi-process
//! sharded-campaign coordinator.
//!
//! With no arguments, builds the Figure 11 scheme set (six scenarios on the
//! scaled-down Clos fabric), runs it serially and then in parallel, verifies
//! the per-scenario digests are bit-identical, and reports the speedup.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p hpcc-bench --bin campaign [duration_ms] [load]
//! cargo run --release -p hpcc-bench --bin campaign -- --manifest file.json
//! cargo run --release -p hpcc-bench --bin campaign -- --dump-manifest [duration_ms] [load]
//! cargo run --release -p hpcc-bench --bin campaign -- --events-per-sec [out.json] \
//!     [--baseline BENCH_hotpath.json] [--max-regress 0.15]
//! cargo run --release -p hpcc-bench --bin campaign -- --bench
//! cargo run --release -p hpcc-bench --bin campaign -- --cross-validate \
//!     [--manifest f] [--tolerance 0.75] [--report out.json] [duration_ms]
//! cargo run --release -p hpcc-bench --bin campaign -- --fluid-bench [out.json] \
//!     [--min-fluid-speedup 100]
//! cargo run --release -p hpcc-bench --bin campaign -- --scaling-curve [out.json] \
//!     [--scaling-threads 1,2,4,8] [--verify-digest] [--min-parallel-speedup 1.6]
//! cargo run --release -p hpcc-bench --bin campaign -- --shards N \
//!     [--verify-serial] [--report out.json] [--manifest f] [duration_ms] [load]
//! cargo run --release -p hpcc-bench --bin campaign -- --worker-shard i/N \
//!     [--manifest f] [duration_ms] [load]
//! cargo run --release -p hpcc-bench --bin campaign -- --merge a.jsonl b.jsonl ... \
//!     [--expect N | --manifest f] [--report out.json]
//! cargo run --release -p hpcc-bench --bin campaign -- --serve ADDR \
//!     [--spawn-workers N] [--chaos-kill-at F] [--checkpoint file.jsonl] \
//!     [--lease-timeout-ms N] [--verify-serial] [--report out.json] \
//!     [--manifest f] [duration_ms] [load]
//! cargo run --release -p hpcc-bench --bin campaign -- --join ADDR \
//!     [--name W] [--heartbeat-ms N] [--hang-after N] [--quit-after N]
//! cargo run --release -p hpcc-bench --bin campaign -- --dump-fabric-manifest
//! ```
//!
//! `--manifest` runs a JSON campaign manifest (an array of ScenarioSpec
//! objects, see `hpcc_core::scenario`) instead of the built-in scheme set;
//! `--dump-manifest` prints the built-in campaign as such a manifest (a
//! starting point for hand-edited grids); `--events-per-sec` runs the fixed
//! hot-path smoke scenario and writes engine-throughput numbers to
//! `BENCH_hotpath.json` (or the given path) so CI can track the perf
//! trajectory — with `--baseline FILE` it additionally compares against a
//! committed reference and exits non-zero when the measured events/sec
//! regresses by more than `--max-regress` (default 0.15, i.e. 15%);
//! `--bench` runs the dependency-free micro-benchmark suite (the port of
//! the legacy Criterion benches: per-ACK congestion-control cost, raw
//! engine throughput, miniature figure scenarios) and prints one line per
//! benchmark.
//!
//! Backend cross-validation (see `hpcc_core::validate`):
//!
//! * `--cross-validate` — run the validation grid (or a `--manifest`) on
//!   both the packet engine and the fluid backend, print the per-scenario
//!   divergence table, and exit with status 3 when the worst FCT-slowdown
//!   (relative) or utilization (absolute) divergence exceeds `--tolerance`
//!   (default 0.75). `--report` writes the canonical (digest-stable)
//!   divergence JSON.
//! * `--fluid-bench` — run the same grid and write fluid-backend throughput
//!   numbers (wall-clock speedup over the packet engine, events/sec
//!   equivalent) to `BENCH_fluid.json` (or the given path); with
//!   `--min-fluid-speedup X` it exits non-zero when the fluid backend is
//!   less than `X` times faster than the packet engine.
//!
//! Parallel-engine scaling suite (see `hpcc_sim::parallel`):
//!
//! * `--scaling-curve` — run the fixed scaling scenarios (two fat-tree
//!   sizes, frozen workload) on the parallel partitioned engine at each
//!   thread count in `--scaling-threads` (default `1,2,4,8`) and write the
//!   events/sec curve to `BENCH_scaling.json` (or the given path). The file
//!   records the host's core count next to every number: speedups are only
//!   meaningful when `cores >= threads`. `--verify-digest` additionally
//!   runs the sequential engine on every scenario and exits non-zero unless
//!   each parallel output digest is bit-identical to it (the CI smoke
//!   configuration); `--min-parallel-speedup X` exits non-zero when the
//!   best measured speedup at the highest thread count is below `X`
//!   (intended for multi-core perf machines, not the digest smoke).
//!
//! Distributed modes (see `hpcc_core::wire` for the JSONL schema and the
//! determinism contract):
//!
//! * `--shards N` — coordinator: re-spawns this binary as `N` worker
//!   subprocesses (`--worker-shard i/N` each, same campaign arguments),
//!   reads their JSONL stdout streams, and merges them into one report in
//!   scenario order. `--verify-serial` additionally runs the campaign
//!   serially in-process and exits non-zero unless digests and canonical
//!   report JSON are bit-identical. `--report` writes the merged canonical
//!   JSON to a file.
//! * `--worker-shard i/N` — worker: runs the round-robin shard `i` of `N`
//!   and streams one JSONL line per completed scenario on stdout (all
//!   diagnostics go to stderr, so stdout is pure JSONL and can be piped or
//!   redirected to a file on a remote host).
//! * `--merge` — fold JSONL files produced elsewhere (e.g. workers on other
//!   hosts) into one report. Pass `--expect N` (or `--manifest`, whose
//!   scenario count is used) so a shard file truncated at its tail cannot
//!   slip through as a shorter-but-valid report.
//!
//! Elastic fabric modes (see `hpcc_core::fabric` and `docs/WIRE.md` for the
//! framed TCP protocol):
//!
//! * `--serve ADDR` — fabric coordinator: bind ADDR (use port 0 for an
//!   ephemeral port; the bound address is printed), serve the campaign's
//!   scenario indices as a dynamic work queue to any workers that join, and
//!   merge streamed results into one report. Unlike `--shards`, workers may
//!   join late, die mid-lease (their work is reassigned) and deliver
//!   duplicates (deduplicated by digest). `--spawn-workers N` launches N
//!   local `--join` subprocesses; `--chaos-kill-at F` SIGKILLs the first
//!   spawned worker once the fraction F of scenarios has completed (a
//!   self-test of fault tolerance); `--checkpoint FILE` appends each
//!   accepted result to a JSONL file and replays it on restart so finished
//!   scenarios are never re-run; `--lease-timeout-ms` tunes failure
//!   detection. `--verify-serial` and `--report` behave as for `--shards`.
//! * `--join ADDR` — fabric worker: connect to a coordinator, receive the
//!   campaign manifest over the wire (no local campaign arguments needed),
//!   lease scenario batches and stream results until told to stop.
//!   `--hang-after N` / `--quit-after N` inject worker failures for chaos
//!   tests.
//! * `--dump-fabric-manifest` — print the committed fabric smoke campaign
//!   (`manifests/fabric_smoke.json`).

use hpcc_core::campaign::digest_output;
use hpcc_core::fabric;
use hpcc_core::presets::{
    corpus_sweep, fabric_smoke_campaign, fattree_fb_hadoop, fig11_campaign, validation_grid,
    CORPUS_FILES,
};
use hpcc_core::{wire, BackendSpec, Campaign, CcSpec, ScenarioSpec, ShardPlan, ValidationReport};
use hpcc_sim::FlowControlMode;
use hpcc_topology::FatTreeParams;
use hpcc_types::Bandwidth;
use hpcc_types::Duration;
use std::hint::black_box;
use std::io::Read as _;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Events/sec of the `BinaryHeap` event queue on the smoke scenario, measured
/// on the CI reference machine before the indexed-wheel engine landed. Kept
/// so every BENCH_hotpath.json records the speedup against the same baseline.
const BASELINE_BINARYHEAP_EVENTS_PER_SEC: f64 = 3_350_000.0;

/// Run the fixed hot-path smoke scenario and write throughput numbers as
/// JSON: events/sec, wall-clock, peak event-queue length. Returns the
/// measured events/sec (for the `--baseline` regression guard).
///
/// The scenario is deliberately frozen (HPCC on the scaled-down Clos fabric,
/// 0.5 load plus incast, 5 ms, seed 42): the numbers are only comparable over
/// time if the workload never moves.
fn run_hotpath_smoke(out_path: &str) -> f64 {
    let spec = fattree_fb_hadoop(
        "hotpath-smoke",
        CcSpec::by_label("HPCC"),
        FatTreeParams::small(),
        0.5,
        Duration::from_ms(5),
        true,
        FlowControlMode::Lossless,
        42,
    );
    // Untimed warm-up run (page cache, branch predictors, allocator pools).
    let warmup = spec.build().run();
    let started = Instant::now();
    let results = spec.build().run();
    let wall = started.elapsed();
    let out = &results.out;
    assert_eq!(
        digest_output(&warmup.out),
        digest_output(out),
        "smoke scenario must be deterministic"
    );
    let events_per_sec = out.events_processed as f64 / wall.as_secs_f64().max(1e-9);
    let speedup = if BASELINE_BINARYHEAP_EVENTS_PER_SEC > 0.0 {
        events_per_sec / BASELINE_BINARYHEAP_EVENTS_PER_SEC
    } else {
        0.0
    };
    let json = format!(
        "{{\n  \"bench\": \"hotpath-smoke\",\n  \"scenario\": \"fig11 HPCC, small Clos, load 0.5 + incast, 5 ms, seed 42\",\n  \"events_processed\": {},\n  \"wall_seconds\": {:.6},\n  \"events_per_sec\": {:.0},\n  \"peak_event_queue_len\": {},\n  \"flows_completed\": {},\n  \"digest\": \"{:016x}\",\n  \"baseline_binaryheap_events_per_sec\": {:.0},\n  \"baseline_note\": \"heap engine on the machine that recorded the baseline; speedup is only meaningful on comparable hardware\",\n  \"speedup_vs_baseline\": {:.3}\n}}\n",
        out.events_processed,
        wall.as_secs_f64(),
        events_per_sec,
        out.peak_event_queue,
        out.flows.len(),
        digest_output(out),
        BASELINE_BINARYHEAP_EVENTS_PER_SEC,
        speedup,
    );
    std::fs::write(out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("{json}");
    println!("wrote {out_path}");
    events_per_sec
}

/// Compare a fresh events/sec measurement against a committed baseline
/// JSON (the `BENCH_hotpath.json` written by a previous `--events-per-sec`
/// run) and die when it regressed by more than `max_regress` (a fraction;
/// 0.15 = 15%). Used by CI as the hot-path regression guard.
fn check_baseline(measured: f64, baseline_path: &str, max_regress: f64) {
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| die(format!("cannot read baseline {baseline_path}: {e}")));
    let doc = hpcc_core::json::JsonValue::parse(&text)
        .unwrap_or_else(|e| die(format!("cannot parse baseline {baseline_path}: {e}")));
    let baseline = doc
        .require("events_per_sec")
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|e| die(format!("{baseline_path}: {e}")));
    if baseline.is_nan() || baseline <= 0.0 {
        die(format!(
            "{baseline_path}: events_per_sec {baseline} unusable"
        ));
    }
    let floor = baseline * (1.0 - max_regress);
    let change = measured / baseline - 1.0;
    println!(
        "hot-path regression guard: measured {measured:.0} events/sec vs baseline \
         {baseline:.0} ({:+.1}%), floor {floor:.0} (max regress {:.0}%)",
        change * 100.0,
        max_regress * 100.0
    );
    if measured < floor {
        die(format!(
            "hot-path throughput regressed {:.1}% (> {:.0}% allowed) vs {baseline_path}",
            -change * 100.0,
            max_regress * 100.0
        ));
    }
    println!("hot-path regression guard: OK");
}

/// One timed micro-benchmark line: run `iters` iterations of `body`, print
/// ns/iteration (plus a caller-chosen throughput figure).
fn bench_line(name: &str, iters: u64, mut body: impl FnMut() -> u64) {
    // One untimed warm-up iteration.
    let mut checksum = body();
    let started = Instant::now();
    for _ in 0..iters {
        checksum = checksum.wrapping_add(body());
    }
    let wall = started.elapsed();
    let ns_per_iter = wall.as_nanos() as f64 / iters as f64;
    println!(
        "bench {name:<28} {iters:>9} iters  {ns_per_iter:>12.1} ns/iter  (checksum {:x})",
        checksum & 0xffff
    );
}

/// The dependency-free micro-benchmark suite: ports of the legacy Criterion
/// benches (`cc_algorithms`, `engine`, `figures`) onto plain `Instant`
/// timing, so `campaign --bench` covers the same code paths without any
/// external crate.
fn run_bench() {
    use hpcc_cc::{
        build_cc, AckEvent, CcAlgorithm, DcqcnConfig, DctcpConfig, HpccConfig, TimelyConfig,
    };
    use hpcc_sim::{SimConfig, Simulator};
    use hpcc_topology::{star, testbed_pod};
    use hpcc_types::{Bandwidth, FlowId, FlowSpec, IntHeader, IntHopRecord, SimTime};

    println!("== cc/on_ack: per-acknowledgement cost of each scheme ==");
    let line = Bandwidth::from_gbps(100);
    let rtt = Duration::from_us(13);
    let schemes: Vec<(&str, CcAlgorithm)> = vec![
        ("HPCC", CcAlgorithm::Hpcc(HpccConfig::default())),
        (
            "DCQCN",
            CcAlgorithm::Dcqcn(DcqcnConfig::vendor_default(line)),
        ),
        (
            "TIMELY",
            CcAlgorithm::Timely(TimelyConfig::recommended(line, rtt)),
        ),
        ("DCTCP", CcAlgorithm::Dctcp(DctcpConfig::default())),
    ];
    for (name, alg) in &schemes {
        let mut cc = build_cc(alg, line, rtt, 1000);
        let mut int = IntHeader::new();
        int.push_hop(
            1,
            IntHopRecord {
                bandwidth: line,
                ts: SimTime::from_us(10),
                tx_bytes: 1_000_000,
                rx_bytes: 1_000_000,
                qlen: 10_000,
            },
        );
        let mut seq = 0u64;
        let mut ts = 10u64;
        bench_line(&format!("cc/on_ack/{name}"), 1_000_000, || {
            seq += 1000;
            ts += 1;
            let mut int2 = int;
            int2.hops[0].ts = SimTime::from_us(ts);
            int2.hops[0].tx_bytes += seq;
            let ack = AckEvent {
                now: SimTime::from_us(ts),
                ack_seq: seq,
                snd_nxt: seq + 100_000,
                newly_acked: 1000,
                ecn_echo: seq % 7 == 0,
                rtt: Duration::from_us(15),
                int: &int2,
            };
            cc.on_ack(black_box(&ack));
            black_box(cc.state()).window
        });
    }

    println!("== engine: raw simulated-event throughput ==");
    // One 2 MB flow between two hosts on a star: raw forwarding throughput.
    {
        let mut events = 0u64;
        let started = Instant::now();
        let iters = 5;
        for _ in 0..iters {
            let topo = star(2, line, Duration::from_us(1));
            let rtt = topo.suggested_base_rtt(1106);
            let mut cfg = SimConfig::for_cc(CcAlgorithm::hpcc_default(), line, rtt);
            cfg.end_time = SimTime::from_ms(10);
            let hosts = topo.hosts().to_vec();
            let mut sim = Simulator::new(topo, cfg);
            sim.add_flow(FlowSpec::new(
                FlowId(1),
                hosts[0],
                hosts[1],
                2_000_000,
                SimTime::ZERO,
            ));
            let out = sim.run();
            assert_eq!(out.flows.len(), 1);
            events += out.events_processed;
        }
        let rate = events as f64 / started.elapsed().as_secs_f64();
        println!("bench engine/single_flow        {iters:>9} runs   {rate:>12.0} events/sec");
    }
    // N-to-1 incast on the testbed PoD: queueing, PFC, multi-hop paths.
    for n in [4usize, 8] {
        let mut events = 0u64;
        let started = Instant::now();
        let iters = 3;
        for _ in 0..iters {
            let topo = testbed_pod(Duration::from_us(1));
            let bw = Bandwidth::from_gbps(25);
            let rtt = topo.suggested_base_rtt(1106);
            let mut cfg = SimConfig::for_cc(CcAlgorithm::hpcc_default(), bw, rtt);
            cfg.end_time = SimTime::from_ms(5);
            let hosts = topo.hosts().to_vec();
            let mut sim = Simulator::new(topo, cfg);
            for i in 0..n {
                sim.add_flow(FlowSpec::new(
                    FlowId(i as u64 + 1),
                    hosts[8 + i],
                    hosts[0],
                    200_000,
                    SimTime::ZERO,
                ));
            }
            let out = sim.run();
            assert_eq!(out.flows.len(), n);
            events += out.events_processed;
        }
        let rate = events as f64 / started.elapsed().as_secs_f64();
        println!("bench engine/incast_pod/{n:<8} {iters:>9} runs   {rate:>12.0} events/sec");
    }

    println!("== figures: miniature figure scenarios (shape-asserted) ==");
    for (name, run) in [
        (
            "fig06_tx_vs_rx",
            Box::new(|| {
                let report = hpcc_bench::figures::fig06(1);
                assert!(report.contains("HPCC-rxRate"));
                report.len() as u64
            }) as Box<dyn Fn() -> u64>,
        ),
        (
            "fig13_reaction_modes",
            Box::new(|| {
                let report = hpcc_bench::figures::fig13(1);
                assert!(report.contains("per-RTT"));
                report.len() as u64
            }),
        ),
        (
            "tab_int_overhead",
            Box::new(|| hpcc_bench::figures::tab_int_overhead().len() as u64),
        ),
        (
            "fluid_convergence",
            Box::new(|| hpcc_bench::figures::fluid_convergence().len() as u64),
        ),
    ] {
        let started = Instant::now();
        let len = run();
        println!(
            "bench figures/{name:<22} {:>9.3} ms/run   ({len} report bytes)",
            started.elapsed().as_secs_f64() * 1e3
        );
    }
}

/// Exit with a usage/runtime error on stderr (workers keep stdout pure
/// JSONL, so nothing diagnostic may ever go there).
fn die(msg: impl AsRef<str>) -> ! {
    eprintln!("campaign: {}", msg.as_ref());
    std::process::exit(2);
}

/// Parsed command line. Positional arguments keep the program name at
/// index 0 so `hpcc_bench::arg_or` indexing stays 1-based.
#[derive(Default)]
struct Cli {
    manifest: Option<String>,
    shards: Option<usize>,
    worker_shard: Option<ShardPlan>,
    report: Option<String>,
    merge: Vec<String>,
    expect: Option<usize>,
    verify_serial: bool,
    dump_manifest: bool,
    events_per_sec: Option<Option<String>>,
    baseline: Option<String>,
    max_regress: f64,
    bench: bool,
    dump_fluid_manifest: bool,
    cross_validate: bool,
    tolerance: f64,
    fluid_bench: Option<Option<String>>,
    min_fluid_speedup: Option<f64>,
    scaling_curve: Option<Option<String>>,
    scaling_threads: Option<Vec<u32>>,
    verify_digest: bool,
    min_parallel_speedup: Option<f64>,
    serve: Option<String>,
    join: Option<String>,
    spawn_workers: usize,
    chaos_kill_at: Option<f64>,
    checkpoint: Option<String>,
    worker_name: Option<String>,
    lease_timeout_ms: Option<u64>,
    heartbeat_ms: Option<u64>,
    hang_after: Option<usize>,
    quit_after: Option<usize>,
    dump_fabric_manifest: bool,
    positional: Vec<String>,
}

impl Cli {
    fn parse(args: &[String]) -> Cli {
        let mut cli = Cli {
            positional: vec![args[0].clone()],
            max_regress: 0.15,
            tolerance: 0.75,
            ..Cli::default()
        };
        let value = |i: usize, flag: &str| -> String {
            // A following flag is not a value: `--report --verify-serial`
            // must error, not write a file named "--verify-serial".
            match args.get(i + 1) {
                Some(next) if !next.starts_with("--") => next.clone(),
                _ => die(format!("{flag} needs a value")),
            }
        };
        let mut merging = false;
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--manifest" => {
                    cli.manifest = Some(value(i, "--manifest"));
                    i += 2;
                }
                "--shards" => {
                    let n = value(i, "--shards");
                    cli.shards = Some(
                        n.parse()
                            .ok()
                            .filter(|n| *n >= 1)
                            .unwrap_or_else(|| die(format!("bad shard count {n:?}"))),
                    );
                    i += 2;
                }
                "--worker-shard" => {
                    let spec = value(i, "--worker-shard");
                    cli.worker_shard = Some(ShardPlan::parse(&spec).unwrap_or_else(|e| die(e)));
                    i += 2;
                }
                "--report" => {
                    cli.report = Some(value(i, "--report"));
                    i += 2;
                }
                "--verify-serial" => {
                    cli.verify_serial = true;
                    i += 1;
                }
                "--dump-manifest" => {
                    cli.dump_manifest = true;
                    i += 1;
                }
                "--merge" => {
                    merging = true;
                    i += 1;
                }
                "--bench" => {
                    cli.bench = true;
                    i += 1;
                }
                "--cross-validate" => {
                    cli.cross_validate = true;
                    i += 1;
                }
                "--dump-fluid-manifest" => {
                    cli.dump_fluid_manifest = true;
                    i += 1;
                }
                "--tolerance" => {
                    let f = value(i, "--tolerance");
                    cli.tolerance = f
                        .parse()
                        .ok()
                        .filter(|x: &f64| x.is_finite() && *x > 0.0)
                        .unwrap_or_else(|| die(format!("bad tolerance {f:?}")));
                    i += 2;
                }
                "--min-fluid-speedup" => {
                    let f = value(i, "--min-fluid-speedup");
                    cli.min_fluid_speedup = Some(
                        f.parse()
                            .ok()
                            .filter(|x: &f64| x.is_finite() && *x > 0.0)
                            .unwrap_or_else(|| die(format!("bad speedup floor {f:?}"))),
                    );
                    i += 2;
                }
                "--fluid-bench" => {
                    // Optional output path, like --events-per-sec.
                    match args.get(i + 1) {
                        Some(next) if !next.starts_with("--") => {
                            cli.fluid_bench = Some(Some(next.clone()));
                            i += 2;
                        }
                        _ => {
                            cli.fluid_bench = Some(None);
                            i += 1;
                        }
                    }
                }
                "--scaling-curve" => {
                    // Optional output path, like --events-per-sec.
                    match args.get(i + 1) {
                        Some(next) if !next.starts_with("--") => {
                            cli.scaling_curve = Some(Some(next.clone()));
                            i += 2;
                        }
                        _ => {
                            cli.scaling_curve = Some(None);
                            i += 1;
                        }
                    }
                }
                "--scaling-threads" => {
                    let list = value(i, "--scaling-threads");
                    let threads: Vec<u32> = list
                        .split(',')
                        .map(|t| {
                            t.trim()
                                .parse()
                                .ok()
                                .filter(|n| *n >= 1)
                                .unwrap_or_else(|| {
                                    die(format!("bad thread count {t:?} in {list:?}"))
                                })
                        })
                        .collect();
                    if threads.is_empty() {
                        die(format!("empty thread list {list:?}"));
                    }
                    cli.scaling_threads = Some(threads);
                    i += 2;
                }
                "--verify-digest" => {
                    cli.verify_digest = true;
                    i += 1;
                }
                "--min-parallel-speedup" => {
                    let f = value(i, "--min-parallel-speedup");
                    cli.min_parallel_speedup = Some(
                        f.parse()
                            .ok()
                            .filter(|x: &f64| x.is_finite() && *x > 0.0)
                            .unwrap_or_else(|| die(format!("bad speedup floor {f:?}"))),
                    );
                    i += 2;
                }
                "--baseline" => {
                    cli.baseline = Some(value(i, "--baseline"));
                    i += 2;
                }
                "--max-regress" => {
                    let f = value(i, "--max-regress");
                    cli.max_regress = f
                        .parse()
                        .ok()
                        .filter(|x: &f64| x.is_finite() && *x > 0.0 && *x < 1.0)
                        .unwrap_or_else(|| die(format!("bad regression fraction {f:?}")));
                    i += 2;
                }
                "--expect" => {
                    let n = value(i, "--expect");
                    cli.expect = Some(
                        n.parse()
                            .unwrap_or_else(|_| die(format!("bad scenario count {n:?}"))),
                    );
                    i += 2;
                }
                "--serve" => {
                    cli.serve = Some(value(i, "--serve"));
                    i += 2;
                }
                "--join" => {
                    cli.join = Some(value(i, "--join"));
                    i += 2;
                }
                "--spawn-workers" => {
                    let n = value(i, "--spawn-workers");
                    cli.spawn_workers = n
                        .parse()
                        .unwrap_or_else(|_| die(format!("bad worker count {n:?}")));
                    i += 2;
                }
                "--chaos-kill-at" => {
                    let f = value(i, "--chaos-kill-at");
                    cli.chaos_kill_at = Some(
                        f.parse()
                            .ok()
                            .filter(|x: &f64| x.is_finite() && (0.0..=1.0).contains(x))
                            .unwrap_or_else(|| die(format!("bad kill fraction {f:?}"))),
                    );
                    i += 2;
                }
                "--checkpoint" => {
                    cli.checkpoint = Some(value(i, "--checkpoint"));
                    i += 2;
                }
                "--name" => {
                    cli.worker_name = Some(value(i, "--name"));
                    i += 2;
                }
                "--lease-timeout-ms" => {
                    let n = value(i, "--lease-timeout-ms");
                    cli.lease_timeout_ms = Some(
                        n.parse()
                            .ok()
                            .filter(|n| *n >= 1)
                            .unwrap_or_else(|| die(format!("bad lease timeout {n:?}"))),
                    );
                    i += 2;
                }
                "--heartbeat-ms" => {
                    let n = value(i, "--heartbeat-ms");
                    cli.heartbeat_ms = Some(
                        n.parse()
                            .ok()
                            .filter(|n| *n >= 1)
                            .unwrap_or_else(|| die(format!("bad heartbeat period {n:?}"))),
                    );
                    i += 2;
                }
                "--hang-after" => {
                    let n = value(i, "--hang-after");
                    cli.hang_after = Some(
                        n.parse()
                            .unwrap_or_else(|_| die(format!("bad hang count {n:?}"))),
                    );
                    i += 2;
                }
                "--quit-after" => {
                    let n = value(i, "--quit-after");
                    cli.quit_after = Some(
                        n.parse()
                            .unwrap_or_else(|_| die(format!("bad quit count {n:?}"))),
                    );
                    i += 2;
                }
                "--dump-fabric-manifest" => {
                    cli.dump_fabric_manifest = true;
                    i += 1;
                }
                "--events-per-sec" => {
                    // Optional output path: take the next arg unless it is
                    // another flag.
                    match args.get(i + 1) {
                        Some(next) if !next.starts_with("--") => {
                            cli.events_per_sec = Some(Some(next.clone()));
                            i += 2;
                        }
                        _ => {
                            cli.events_per_sec = Some(None);
                            i += 1;
                        }
                    }
                }
                flag if flag.starts_with("--") => die(format!("unknown flag {flag}")),
                other => {
                    if merging {
                        cli.merge.push(other.to_string());
                    } else {
                        cli.positional.push(other.to_string());
                    }
                    i += 1;
                }
            }
        }
        cli
    }

    /// The campaign this invocation describes (manifest file or the
    /// built-in Figure 11 scheme set at `[duration_ms] [load]`).
    fn build_campaign(&self) -> Campaign {
        if let Some(path) = &self.manifest {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| die(format!("cannot read {path}: {e}")));
            Campaign::from_json_str(&text)
                .unwrap_or_else(|e| die(format!("cannot parse {path}: {e}")))
        } else {
            let ms = hpcc_bench::arg_or(&self.positional, 1, 10u64);
            let load = hpcc_bench::arg_or(&self.positional, 2, 0.3f64);
            fig11_campaign(
                FatTreeParams::small(),
                load,
                Duration::from_ms(ms),
                true,
                42,
            )
        }
    }

    /// The campaign-selection arguments a worker subprocess needs to build
    /// the identical campaign.
    fn campaign_args(&self) -> Vec<String> {
        match &self.manifest {
            Some(path) => vec!["--manifest".to_string(), path.clone()],
            None => self.positional[1..].to_vec(),
        }
    }

    /// The scenario grid for the cross-validation modes: a `--manifest`
    /// when given, otherwise the built-in validation grid at
    /// `[duration_ms]` (seed 42). The default duration differs by mode:
    /// 2 ms keeps `--cross-validate` a fast gate, while `--fluid-bench`
    /// uses 10 ms so the packet engine's cost dominates its fixed setup
    /// overhead and the measured speedup reflects steady state.
    fn grid_specs(&self, default_ms: u64) -> Vec<ScenarioSpec> {
        if self.manifest.is_some() {
            self.build_campaign().specs().to_vec()
        } else {
            let ms = hpcc_bench::arg_or(&self.positional, 1, default_ms);
            validation_grid(Duration::from_ms(ms), 42)
        }
    }
}

/// Cross-validation mode: run the grid on both backends, print the
/// divergence table, optionally write the canonical report, and gate on the
/// worst divergence (exit 3 — distinct from usage errors — when exceeded).
fn run_cross_validate(specs: &[ScenarioSpec], tolerance: f64, report_path: Option<&str>) {
    let report = ValidationReport::run(specs).unwrap_or_else(|e| die(format!("{e}")));
    println!(
        "== cross-validation: packet vs fluid, {} scenarios ==\n{}",
        report.rows.len(),
        report.table()
    );
    println!("canonical report digest: {:016x}", report.digest());
    if let Some(path) = report_path {
        std::fs::write(path, report.to_json_string() + "\n")
            .unwrap_or_else(|e| die(format!("cannot write {path}: {e}")));
        println!("wrote {path}");
    }
    let slow = report.max_slowdown_divergence();
    let util = report.max_utilization_divergence();
    if slow > tolerance || util > tolerance {
        eprintln!(
            "campaign: cross-validation divergence above tolerance {tolerance}: \
             slowdown {slow:.3} (relative), utilization {util:.4} (absolute)"
        );
        std::process::exit(3);
    }
    println!("cross-validation: OK (tolerance {tolerance})");
}

/// Fluid-bench mode: run the validation grid on both backends and record
/// the fluid backend's throughput — wall-clock speedup over the packet
/// engine and events/sec equivalent (packet events the grid would have
/// cost, per second of fluid wall time) — as JSON for CI trend tracking.
fn run_fluid_bench(specs: &[ScenarioSpec], out_path: &str, min_speedup: Option<f64>) {
    let report = ValidationReport::run(specs).unwrap_or_else(|e| die(format!("{e}")));
    let packet_wall: f64 = report
        .rows
        .iter()
        .map(|r| r.packet_wall.as_secs_f64())
        .sum();
    let fluid_wall: f64 = report.rows.iter().map(|r| r.fluid_wall.as_secs_f64()).sum();
    let packet_events: u64 = report.rows.iter().map(|r| r.packet_events).sum();
    let speedup = report.speedup();
    let json = format!(
        "{{\n  \"bench\": \"fluid-validation-grid\",\n  \"scenarios\": {},\n  \"packet_events\": {},\n  \"packet_wall_seconds\": {:.6},\n  \"fluid_wall_seconds\": {:.6},\n  \"speedup\": {:.1},\n  \"fluid_events_per_sec_equivalent\": {:.0},\n  \"max_slowdown_divergence\": {:.6},\n  \"max_utilization_divergence\": {:.6},\n  \"report_digest\": \"{:016x}\",\n  \"note\": \"wall times are host-dependent; the digest pins the deterministic part\"\n}}\n",
        report.rows.len(),
        packet_events,
        packet_wall,
        fluid_wall,
        speedup,
        report.fluid_events_per_sec_equivalent(),
        report.max_slowdown_divergence(),
        report.max_utilization_divergence(),
        report.digest(),
    );
    std::fs::write(out_path, &json)
        .unwrap_or_else(|e| die(format!("cannot write {out_path}: {e}")));
    println!("{json}");
    println!("wrote {out_path}");
    if let Some(floor) = min_speedup {
        if speedup < floor {
            die(format!(
                "fluid backend speedup {speedup:.1}x is below the required {floor}x"
            ));
        }
        println!("fluid speedup gate: OK ({speedup:.1}x >= {floor}x)");
    }
}

/// The frozen scaling-suite scenarios: the fat-tree sizes the curve sweeps
/// (label, topology parameters, horizon). Like the hot-path smoke, the
/// workload must never move or the numbers stop being comparable over time.
fn scaling_scenarios() -> Vec<(&'static str, FatTreeParams, Duration)> {
    let medium = FatTreeParams {
        pods: 3,
        tors_per_pod: 3,
        aggs_per_pod: 3,
        cores: 6,
        hosts_per_tor: 6,
        ..FatTreeParams::small()
    };
    vec![
        (
            "fat-tree-small",
            FatTreeParams::small(),
            Duration::from_ms(2),
        ),
        ("fat-tree-medium", medium, Duration::from_ms(1)),
    ]
}

/// Scaling-curve mode: run the frozen scaling scenarios on the parallel
/// partitioned engine at each requested thread count and write the
/// events/sec curve as JSON for CI trend tracking. The host's core count is
/// recorded next to every number — a speedup measured with fewer cores than
/// threads says nothing about the engine. With `verify_digest`, every
/// parallel output must be bit-identical (by campaign digest) to the
/// sequential engine on the same scenario.
fn run_scaling_curve(
    out_path: &str,
    threads_list: &[u32],
    verify_digest: bool,
    min_speedup: Option<f64>,
) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads_csv = threads_list
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    println!(
        "== scaling curve: threads [{threads_csv}] on {cores} core(s), \
         digest verification {} ==",
        if verify_digest { "on" } else { "off" }
    );
    let mut blocks = Vec::new();
    let mut best: Option<(f64, u32, &'static str)> = None;
    for (label, params, duration) in scaling_scenarios() {
        let spec = fattree_fb_hadoop(
            format!("scaling {label}"),
            CcSpec::by_label("HPCC"),
            params,
            0.5,
            duration,
            true,
            FlowControlMode::Lossless,
            42,
        );
        let topo = hpcc_topology::fat_tree(params);
        let (hosts, switches) = (topo.hosts().len(), topo.switches().len());
        // Sequential reference: the digest every parallel run must hit,
        // and the warm-up (page cache, allocator pools) for the timed runs.
        let reference = spec.build().run();
        let ref_digest = digest_output(&reference.out);
        let mut points = Vec::new();
        let mut curve: Vec<(u32, f64)> = Vec::new();
        for &t in threads_list {
            let shards = hpcc_sim::plan_shards(&topo, t).parts;
            let pspec = spec
                .clone()
                .with_backend(BackendSpec::ParallelPacket { threads: t });
            let started = Instant::now();
            let results = pspec.build().run();
            let wall = started.elapsed();
            let out = &results.out;
            let digest = digest_output(out);
            if verify_digest && digest != ref_digest {
                die(format!(
                    "scaling {label}: parallel digest {digest:016x} at {t} thread(s) \
                     differs from sequential {ref_digest:016x}"
                ));
            }
            let eps = out.events_processed as f64 / wall.as_secs_f64().max(1e-9);
            curve.push((t, eps));
            println!(
                "scaling {label}: {t} thread(s) -> {shards} shard(s), \
                 {eps:.0} events/sec, digest {digest:016x}"
            );
            points.push(format!(
                "        {{\"threads\": {t}, \"shards\": {shards}, \"events_processed\": {}, \
                 \"wall_seconds\": {:.6}, \"events_per_sec\": {eps:.0}, \
                 \"digest\": \"{digest:016x}\"}}",
                out.events_processed,
                wall.as_secs_f64(),
            ));
        }
        // Speedup of the highest thread count over the single-thread point
        // of the same curve (absent when the list has no 1 to compare to).
        let base = curve.iter().find(|(t, _)| *t == 1).map(|&(_, e)| e);
        let top = curve.iter().max_by_key(|(t, _)| *t).copied();
        let speedup = match (base, top) {
            (Some(b), Some((t, e))) if t > 1 && b > 0.0 => Some((e / b, t)),
            _ => None,
        };
        if let Some((s, t)) = speedup {
            println!("scaling {label}: {s:.2}x at {t} threads vs 1");
            if best.map(|(b, _, _)| s > b).unwrap_or(true) {
                best = Some((s, t, label));
            }
        }
        blocks.push(format!(
            "    {{\n      \"topology\": \"{label}\",\n      \"hosts\": {hosts},\n      \
             \"switches\": {switches},\n      \"duration_ms\": {},\n      \"points\": [\n{}\n      ],\n      \
             \"speedup_at_max_threads\": {}\n    }}",
            duration.as_ps() / 1_000_000_000,
            points.join(",\n"),
            match speedup {
                Some((s, _)) => format!("{s:.3}"),
                None => "null".to_string(),
            },
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"scaling-curve\",\n  \"cores\": {cores},\n  \"threads\": [{threads_csv}],\n  \
         \"verified_digest\": {verify_digest},\n  \"sizes\": [\n{}\n  ],\n  \
         \"note\": \"events/sec of the parallel partitioned engine on the frozen scaling \
         scenarios; wall times and speedups are host-dependent and only meaningful when \
         cores >= threads (cores is recorded above); digests pin the deterministic part\"\n}}\n",
        blocks.join(",\n"),
    );
    std::fs::write(out_path, &json)
        .unwrap_or_else(|e| die(format!("cannot write {out_path}: {e}")));
    println!("{json}");
    println!("wrote {out_path}");
    if verify_digest {
        println!("scaling digest verification: OK (all thread counts bit-identical to sequential)");
    }
    if let Some(floor) = min_speedup {
        match best {
            Some((s, t, label)) if s >= floor => {
                println!(
                    "parallel speedup gate: OK ({s:.2}x at {t} threads on {label} >= {floor}x)"
                )
            }
            Some((s, t, label)) => die(format!(
                "parallel speedup {s:.2}x at {t} threads on {label} is below the required \
                 {floor}x (host has {cores} core(s))"
            )),
            None => die(
                "no speedup measurable: --min-parallel-speedup needs --scaling-threads \
                 to include 1 and a count > 1",
            ),
        }
    }
}

/// Worker mode: run one round-robin shard, streaming JSONL on stdout.
fn run_worker(campaign: &Campaign, plan: ShardPlan) {
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let started = Instant::now();
    let executed = campaign
        .run_shard_streaming(plan, &mut out)
        .unwrap_or_else(|e| die(format!("shard {}/{}: {e}", plan.shard(), plan.of())));
    eprintln!(
        "worker shard {}/{}: {executed} of {} scenarios in {:.2} s",
        plan.shard(),
        plan.of(),
        campaign.len(),
        started.elapsed().as_secs_f64()
    );
}

/// Coordinator mode: spawn one worker subprocess per shard, merge their
/// JSONL streams, optionally verify against an in-process serial run and
/// write the canonical report JSON.
fn run_coordinator(
    campaign: &Campaign,
    shards: usize,
    worker_args: &[String],
    verify_serial: bool,
    report_path: Option<&str>,
) {
    let exe = std::env::current_exe()
        .unwrap_or_else(|e| die(format!("cannot locate own executable: {e}")));
    let started = Instant::now();
    let mut workers = Vec::new();
    for shard in 0..shards {
        let mut child = Command::new(&exe)
            .arg("--worker-shard")
            .arg(format!("{shard}/{shards}"))
            .args(worker_args)
            .stdout(Stdio::piped())
            .spawn()
            .unwrap_or_else(|e| die(format!("cannot spawn worker {shard}: {e}")));
        // Drain the worker's stdout on its own thread: a pipe left full
        // would deadlock the worker against our wait().
        let mut pipe = child.stdout.take().expect("stdout was piped");
        let reader = std::thread::spawn(move || {
            let mut text = String::new();
            pipe.read_to_string(&mut text).map(|_| text)
        });
        workers.push((shard, child, reader));
    }
    let mut streams = Vec::new();
    for (shard, mut child, reader) in workers {
        let status = child
            .wait()
            .unwrap_or_else(|e| die(format!("waiting for worker {shard}: {e}")));
        let text = reader
            .join()
            .expect("stdout reader thread panicked")
            .unwrap_or_else(|e| die(format!("reading worker {shard} stdout: {e}")));
        if !status.success() {
            die(format!("worker {shard} exited with {status}"));
        }
        streams.push(text);
    }
    let mut merged =
        wire::merge_shard_streams(streams.iter().map(String::as_str), Some(campaign.len()))
            .unwrap_or_else(|e| die(format!("merging shard streams: {e}")));
    merged.wall = started.elapsed();
    println!(
        "== merged from {} worker process(es) ==\n{}",
        shards,
        merged.table()
    );
    verify_and_write(&merged, campaign, verify_serial, report_path);
}

/// The shared tail of every coordinator mode (`--shards`, `--serve`):
/// optionally prove the merged report bit-identical to an in-process
/// `run_serial()` (digests and canonical JSON), then optionally write the
/// canonical report JSON.
fn verify_and_write(
    merged: &hpcc_core::CampaignReport,
    campaign: &Campaign,
    verify_serial: bool,
    report_path: Option<&str>,
) {
    if verify_serial {
        let serial = campaign.run_serial();
        let digests_match = merged.digests() == serial.digests();
        let json_match = merged.to_json_string() == serial.to_json_string();
        if !digests_match || !json_match {
            die(format!(
                "merged multi-process report differs from the serial reference \
                 (digests match: {digests_match}, canonical JSON matches: {json_match})"
            ));
        }
        println!(
            "verified: merged report is bit-identical to run_serial() \
             ({} scenarios: digests and canonical JSON)",
            serial.results.len()
        );
    }
    if let Some(path) = report_path {
        std::fs::write(path, merged.to_json_string() + "\n")
            .unwrap_or_else(|e| die(format!("cannot write {path}: {e}")));
        println!("wrote {path}");
    }
}

/// How long the fabric coordinator tolerates zero progress before giving
/// up (exit 4). Insurance against a wedged CI job: were every worker to
/// die with none rejoining, `serve` would otherwise block forever.
const FABRIC_STALL_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(120);

/// Fabric coordinator mode: serve the campaign's scenario indices over TCP
/// to elastic workers, optionally spawning local worker subprocesses (and
/// chaos-killing the first one mid-run), then verify/write the merged
/// report exactly like `--shards`.
fn run_serve(campaign: &Campaign, addr: &str, cli: &Cli) {
    let started = Instant::now();
    let coordinator =
        fabric::Coordinator::bind(addr).unwrap_or_else(|e| die(format!("cannot bind {addr}: {e}")));
    let local = coordinator
        .local_addr()
        .unwrap_or_else(|e| die(format!("bound address: {e}")));
    let progress = Arc::new(AtomicUsize::new(0));
    let mut cfg = fabric::FabricConfig {
        checkpoint: cli.checkpoint.as_ref().map(std::path::PathBuf::from),
        progress: Some(Arc::clone(&progress)),
        ..fabric::FabricConfig::default()
    };
    if let Some(ms) = cli.lease_timeout_ms {
        cfg.lease_timeout = std::time::Duration::from_millis(ms);
    }
    println!(
        "fabric coordinator on {local}: {} scenarios, lease timeout {} ms",
        campaign.len(),
        cfg.lease_timeout.as_millis()
    );
    // Spawn local workers after bind: their connections queue in the listen
    // backlog until serve() starts accepting. Worker stdout is discarded —
    // results travel over the TCP connection; diagnostics go to stderr.
    let children = Arc::new(Mutex::new(Vec::new()));
    if cli.spawn_workers > 0 {
        let exe = std::env::current_exe()
            .unwrap_or_else(|e| die(format!("cannot locate own executable: {e}")));
        for w in 0..cli.spawn_workers {
            let mut cmd = Command::new(&exe);
            cmd.args(["--join", &local.to_string(), "--name", &format!("w{w}")]);
            if let Some(ms) = cli.heartbeat_ms {
                cmd.args(["--heartbeat-ms", &ms.to_string()]);
            }
            let child = cmd
                .stdout(Stdio::null())
                .spawn()
                .unwrap_or_else(|e| die(format!("cannot spawn worker {w}: {e}")));
            children.lock().unwrap().push(child);
        }
    }
    // Chaos monitor: SIGKILL the first spawned worker once the requested
    // fraction of scenarios has results. The fabric must finish correctly
    // anyway — the kill is the point.
    if let (Some(frac), true) = (
        cli.chaos_kill_at,
        cli.spawn_workers > 0 && !campaign.is_empty(),
    ) {
        let threshold = ((frac * campaign.len() as f64).ceil() as usize).clamp(1, campaign.len());
        let progress = Arc::clone(&progress);
        let children = Arc::clone(&children);
        std::thread::spawn(move || loop {
            if progress.load(Ordering::SeqCst) >= threshold {
                if let Some(victim) = children.lock().unwrap().first_mut() {
                    eprintln!("campaign: chaos: SIGKILL worker 0 at {threshold} results");
                    let _ = victim.kill();
                }
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        });
    }
    // Stall watchdog: if the result count stops moving for FABRIC_STALL_TIMEOUT
    // while incomplete, exit 4 rather than hang a CI job forever.
    {
        let progress = Arc::clone(&progress);
        let len = campaign.len();
        std::thread::spawn(move || {
            let mut last = progress.load(Ordering::SeqCst);
            let mut last_change = Instant::now();
            loop {
                std::thread::sleep(std::time::Duration::from_millis(200));
                let now = progress.load(Ordering::SeqCst);
                if now >= len {
                    return;
                }
                if now != last {
                    last = now;
                    last_change = Instant::now();
                } else if last_change.elapsed() > FABRIC_STALL_TIMEOUT {
                    eprintln!(
                        "campaign: fabric stalled at {now}/{len} results for {} s; giving up",
                        FABRIC_STALL_TIMEOUT.as_secs()
                    );
                    std::process::exit(4);
                }
            }
        });
    }
    let fab = coordinator
        .serve(campaign, &cfg)
        .unwrap_or_else(|e| die(format!("fabric serve failed: {e}")));
    // Reap the spawned workers. A chaos-killed (or otherwise dead) worker
    // is expected and must not fail the run — the merged report already
    // proved the fabric rode out the loss.
    for (w, child) in children.lock().unwrap().iter_mut().enumerate() {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => eprintln!("campaign: worker {w} exited with {status} (tolerated)"),
            Err(e) => eprintln!("campaign: waiting for worker {w}: {e}"),
        }
    }
    let mut merged = fab.report;
    merged.wall = started.elapsed();
    println!(
        "== fabric: {} scenarios via {} worker(s) ==\n{}",
        merged.results.len(),
        fab.workers_seen,
        merged.table()
    );
    println!(
        "fabric stats: executed {} (resumed {} from checkpoint), deduped {}, \
         reassigned {} lease(s)",
        fab.executed, fab.resumed, fab.deduped, fab.reassigned
    );
    verify_and_write(&merged, campaign, cli.verify_serial, cli.report.as_deref());
}

/// Fabric worker mode: join a coordinator, receive the campaign over the
/// wire and execute leased scenarios until dismissed. All diagnostics go
/// to stderr (symmetry with `--worker-shard`; results travel over the TCP
/// connection, not stdout).
fn run_join(addr: &str, cli: &Cli) {
    let mut cfg = fabric::WorkerConfig::default();
    if let Some(name) = &cli.worker_name {
        cfg.name = name.clone();
    }
    if let Some(ms) = cli.heartbeat_ms {
        cfg.heartbeat = std::time::Duration::from_millis(ms);
    }
    cfg.hang_after = cli.hang_after;
    cfg.quit_after = cli.quit_after;
    let started = Instant::now();
    let summary =
        fabric::join(addr, &cfg).unwrap_or_else(|e| die(format!("worker {}: {e}", cfg.name)));
    eprintln!(
        "fabric worker {}: executed {} of {} scenarios in {:.2} s",
        cfg.name,
        summary.executed,
        summary.campaign_len,
        started.elapsed().as_secs_f64()
    );
}

/// Merge mode: fold JSONL files produced by workers (possibly on other
/// hosts) into one report. `expected_len` (from `--expect N`, or the
/// manifest's scenario count when `--manifest` is given) guards against a
/// truncated or lost shard file: without it, contiguous-from-0 validation
/// cannot notice missing *trailing* scenarios, so the merge warns.
fn run_merge(files: &[String], expected_len: Option<usize>, report_path: Option<&str>) {
    let texts: Vec<String> = files
        .iter()
        .map(|p| {
            std::fs::read_to_string(p).unwrap_or_else(|e| die(format!("cannot read {p}: {e}")))
        })
        .collect();
    let report = wire::merge_shard_streams(texts.iter().map(String::as_str), expected_len)
        .unwrap_or_else(|e| die(format!("merge failed: {e}")));
    println!(
        "merged {} results from {} file(s)\n{}",
        report.results.len(),
        files.len(),
        report.table()
    );
    if expected_len.is_none() {
        eprintln!(
            "campaign: warning: no --expect N (or --manifest) given; a shard \
             file that lost only trailing scenarios cannot be detected"
        );
    }
    if let Some(path) = report_path {
        std::fs::write(path, report.to_json_string() + "\n")
            .unwrap_or_else(|e| die(format!("cannot write {path}: {e}")));
        println!("wrote {path}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cli = Cli::parse(&args);
    if cli.bench {
        run_bench();
        return;
    }
    if cli.dump_fluid_manifest {
        // The fluid smoke campaign committed as manifests/fluid_smoke.json:
        // the validation grid on the fluid backend, plus the corpus sweep on
        // both backends (one manifest sweeping the "backend" key end to
        // end). Corpus paths are repo-relative — run it from the repo root.
        let mut specs: Vec<ScenarioSpec> = validation_grid(Duration::from_ms(2), 42)
            .into_iter()
            .map(|s| s.with_backend(BackendSpec::Fluid))
            .collect();
        let corpus = corpus_sweep(
            &CORPUS_FILES,
            CcSpec::by_label("HPCC"),
            Bandwidth::from_gbps(25),
            0.3,
            Duration::from_us(500),
            42,
        );
        for spec in corpus.specs() {
            specs.push(spec.clone());
            let mut fluid = spec.clone().with_backend(BackendSpec::Fluid);
            fluid.name = format!("{} (fluid)", spec.name);
            specs.push(fluid);
        }
        println!("{}", Campaign::from_scenarios(specs).to_json_string());
        return;
    }
    if cli.dump_fabric_manifest {
        println!("{}", fabric_smoke_campaign().to_json_string());
        return;
    }
    if let Some(addr) = &cli.join {
        // Workers need no campaign arguments: the manifest arrives over
        // the wire from the coordinator.
        run_join(addr, &cli);
        return;
    }
    if cli.cross_validate {
        run_cross_validate(&cli.grid_specs(2), cli.tolerance, cli.report.as_deref());
        return;
    }
    if let Some(out) = &cli.fluid_bench {
        run_fluid_bench(
            &cli.grid_specs(10),
            out.as_deref().unwrap_or("BENCH_fluid.json"),
            cli.min_fluid_speedup,
        );
        return;
    }
    if let Some(out) = &cli.scaling_curve {
        let threads = cli
            .scaling_threads
            .clone()
            .unwrap_or_else(|| vec![1, 2, 4, 8]);
        run_scaling_curve(
            out.as_deref().unwrap_or("BENCH_scaling.json"),
            &threads,
            cli.verify_digest,
            cli.min_parallel_speedup,
        );
        return;
    }
    if let Some(out) = &cli.events_per_sec {
        let measured = run_hotpath_smoke(out.as_deref().unwrap_or("BENCH_hotpath.json"));
        if let Some(baseline) = &cli.baseline {
            check_baseline(measured, baseline, cli.max_regress);
        }
        return;
    }
    if !cli.merge.is_empty() {
        // Validate completeness against --expect N, or against the
        // manifest's scenario count when one is given.
        let expected = cli
            .expect
            .or_else(|| cli.manifest.as_ref().map(|_| cli.build_campaign().len()));
        run_merge(&cli.merge, expected, cli.report.as_deref());
        return;
    }
    let campaign = cli.build_campaign();
    if cli.dump_manifest {
        println!("{}", campaign.to_json_string());
        return;
    }
    if let Some(addr) = &cli.serve {
        run_serve(&campaign, addr, &cli);
        return;
    }
    if let Some(plan) = cli.worker_shard {
        run_worker(&campaign, plan);
        return;
    }
    if let Some(shards) = cli.shards {
        run_coordinator(
            &campaign,
            shards,
            &cli.campaign_args(),
            cli.verify_serial,
            cli.report.as_deref(),
        );
        return;
    }

    println!(
        "campaign: {} scenarios ({} available cores)",
        campaign.len(),
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );

    let serial = campaign.run_serial();
    println!("\n== serial ==\n{}", serial.table());

    // One OS thread per scenario (not capped at the core count): on a
    // multi-core host this is the full fan-out; on a loaded or small host
    // the digests still prove determinism.
    let parallel = campaign.run_with_threads(campaign.len());
    println!("== parallel ==\n{}", parallel.table());

    assert_eq!(
        serial.digests(),
        parallel.digests(),
        "parallel execution must be bit-identical to serial"
    );
    let speedup = serial.wall.as_secs_f64() / parallel.wall.as_secs_f64().max(1e-9);
    println!(
        "digests identical across {} scenarios; speedup {:.2}x ({:.2} s serial -> {:.2} s on {} threads)",
        serial.results.len(),
        speedup,
        serial.wall.as_secs_f64(),
        parallel.wall.as_secs_f64(),
        parallel.threads
    );
    if parallel.threads > 1 && speedup <= 1.0 {
        println!("warning: no speedup observed (heavily loaded or single-core host?)");
    }
}
